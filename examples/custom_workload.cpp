// End-to-end workflow for a user-defined HRTDM instantiation:
//
//   1. describe the message classes in a plain text file,
//   2. check the paper's feasibility conditions,
//   3. auto-dimension the trees if the naive configuration fails,
//   4. validate the chosen configuration in simulation.
//
// Build & run:  ./build/examples/custom_workload                  (demo file)
//               ./build/examples/custom_workload --file my.hrtdm
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/dimensioning.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/serialize.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char* kDemo = R"(# Dual-redundant engine controllers on one Gigabit segment.
workload engine-control
source 0 fadec-a
class 0 sensor-a l_bits=2048 d_us=2000 a=2 w_us=5000
class 1 actuator-a l_bits=1024 d_us=1000 a=1 w_us=5000
source 1 fadec-b
class 2 sensor-b l_bits=2048 d_us=2000 a=2 w_us=5000
class 3 actuator-b l_bits=1024 d_us=1000 a=1 w_us=5000
source 2 monitor
class 4 health l_bits=8192 d_us=20000 a=1 w_us=20000
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hrtdm;

  util::CliFlags flags;
  flags.add_string("file", "", "workload file (empty: built-in demo)");
  if (!flags.parse(argc, argv)) {
    return 2;
  }

  std::string text = kDemo;
  if (!flags.get_string("file").empty()) {
    std::ifstream in(flags.get_string("file"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("file").c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  const traffic::Workload workload = traffic::parse_workload(text);
  std::printf("workload `%s`: %d sources, %zu classes, offered load %.2f "
              "Mbit/s\n",
              workload.name.c_str(), workload.z(),
              workload.all_classes().size(),
              workload.offered_load_bits_per_second() / 1e6);

  // Feasibility with the naive configuration, then auto-dimensioning.
  traffic::FcAdapterOptions fc_options;
  fc_options.overhead_bits = 160;
  fc_options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  const auto system = traffic::to_fc_system(workload, fc_options);

  analysis::DimensioningRequest request;
  request.phy = system.phy;
  request.sources = system.sources;
  const auto dim = analysis::dimension(request);
  std::printf("dimensioning: %s (q = %lld, steps = %zu)\n",
              dim.feasible ? "feasible" : "INFEASIBLE",
              static_cast<long long>(dim.trees.q), dim.steps.size());
  for (const auto& cls : dim.report.classes) {
    std::printf("  %-12s B = %8.1f us  vs  d = %8.1f us  %s\n",
                cls.klass.c_str(), cls.b_ddcr_s * 1e6, cls.d_s * 1e6,
                cls.feasible ? "ok" : "MISSED");
  }
  if (!dim.feasible) {
    return 1;
  }

  // Simulation with the dimensioned configuration.
  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.m_time = dim.trees.m_time;
  options.ddcr.F = dim.trees.F;
  options.ddcr.m_static = dim.trees.m_static;
  options.ddcr.q = dim.trees.q;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(workload.max_deadline(), dim.trees.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.ddcr.static_indices = core::DdcrConfig::spread_indices(
      workload.z(), dim.trees.q, dim.nu);
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(100'000'000);
  options.drain_cap = sim::SimTime::from_ns(400'000'000);
  options.check_consistency = true;
  const auto result = core::run_ddcr(workload, options);

  std::printf("simulation: %lld/%lld delivered, %lld misses, worst latency "
              "%.1f us, consistent: %s\n",
              static_cast<long long>(result.metrics.delivered),
              static_cast<long long>(result.generated),
              static_cast<long long>(result.metrics.misses),
              result.metrics.worst_latency_s * 1e6,
              result.consistency_ok ? "yes" : "NO");
  return result.metrics.misses == 0 ? 0 : 1;
}
