// The dimensioning assistant in action: start from an HRTDM instantiation
// whose FCs fail with the naive configuration, let the assistant escalate
// static indices / grow the static tree until B_DDCR <= d holds for every
// class, then verify the chosen configuration in simulation.
//
// Build & run:  ./build/examples/auto_dimension
#include <cstdio>

#include "analysis/dimensioning.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"

int main() {
  using namespace hrtdm;

  // A trading floor with one very busy gateway: its local backlog drives
  // v(M) (static trees to search) beyond what one static index can serve.
  traffic::Workload wl = traffic::stock_exchange(6);
  for (auto& cls : wl.sources[0].classes) {
    cls.a *= 6;  // gateway 0 carries 6x the order/tick rate
  }

  traffic::FcAdapterOptions fc_options;
  fc_options.psi_bps = 1e9;
  fc_options.slot_s = 4.096e-6;
  fc_options.overhead_bits = 160;
  fc_options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  const auto system = traffic::to_fc_system(wl, fc_options);

  analysis::DimensioningRequest request;
  request.phy = system.phy;
  request.sources = system.sources;
  request.m = 4;
  request.F = 64;

  const auto result = analysis::dimension(request);
  std::printf("dimensioning %s after %zu steps\n",
              result.feasible ? "SUCCEEDED" : "FAILED", result.steps.size());
  for (const auto& step : result.steps) {
    std::printf("  - %s\n", step.c_str());
  }
  std::printf("chosen: q = %lld, nu = {",
              static_cast<long long>(result.trees.q));
  for (std::size_t s = 0; s < result.nu.size(); ++s) {
    std::printf("%s%lld", s == 0 ? "" : ", ",
                static_cast<long long>(result.nu[s]));
  }
  std::printf("}, worst margin %.3f ms\n",
              result.report.worst_margin_s * 1e3);

  if (!result.feasible) {
    return 1;
  }

  // Simulation check: run the workload with the chosen configuration under
  // the saturating adversary.
  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.m_time = result.trees.m_time;
  options.ddcr.F = result.trees.F;
  options.ddcr.m_static = result.trees.m_static;
  options.ddcr.q = result.trees.q;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), result.trees.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.ddcr.static_indices = core::DdcrConfig::spread_indices(
      wl.z(), result.trees.q, result.nu);
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(100'000'000);
  options.drain_cap = sim::SimTime::from_ns(400'000'000);
  const auto run = core::run_ddcr(wl, options);

  std::printf("\nsimulation under the saturating adversary:\n");
  std::printf("  delivered %lld / %lld, misses %lld, worst latency %.1f us\n",
              static_cast<long long>(run.metrics.delivered),
              static_cast<long long>(run.generated),
              static_cast<long long>(run.metrics.misses),
              run.metrics.worst_latency_s * 1e6);
  return run.metrics.misses == 0 ? 0 : 1;
}
