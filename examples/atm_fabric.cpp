// Section 3.2 / 5 scenario: a bus internal to an ATM switch.
//
// Such busses span a few bit times, so the exclusive-OR bus logic makes
// collisions non-destructive: a contention slot resolves by wired-OR
// arbitration on the message's priority — here, its absolute deadline, as
// the paper suggests ("message deadlines would serve as priorities"). The
// same CSMA/DDCR stations run unchanged; the tree machinery simply never
// engages because no destructive collision ever happens.
//
// This example runs the same surveillance workload on (a) the ATM bus with
// deadline arbitration and (b) a destructive-collision Ethernet-style bus
// with identical throughput, and compares contention overhead.
//
// Build & run:  ./build/examples/atm_fabric
#include <cstdio>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"

namespace {

hrtdm::core::DdcrRunResult run_fabric(hrtdm::net::CollisionMode mode) {
  using namespace hrtdm;
  const traffic::Workload workload = traffic::air_traffic_control(8);

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::atm_internal_bus();
  options.collision_mode = mode;
  options.ddcr.m_time = 2;
  options.ddcr.F = 64;
  options.ddcr.m_static = 2;
  options.ddcr.q = 64;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(workload.max_deadline(), 64);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(60'000'000);  // 60 ms
  options.drain_cap = sim::SimTime::from_ns(250'000'000);
  return core::run_ddcr(workload, options);
}

}  // namespace

int main() {
  using hrtdm::net::CollisionMode;
  const auto arbitrated = run_fabric(CollisionMode::kArbitration);
  const auto destructive = run_fabric(CollisionMode::kDestructive);

  std::printf("8 radar feeds over a 622 Mbit/s ATM internal bus (x = 16 ns)\n");
  std::printf("%-28s %18s %18s\n", "", "wired-OR (ATM)", "destructive");
  std::printf("%-28s %18lld %18lld\n", "delivered",
              static_cast<long long>(arbitrated.metrics.delivered),
              static_cast<long long>(destructive.metrics.delivered));
  std::printf("%-28s %18lld %18lld\n", "deadline misses",
              static_cast<long long>(arbitrated.metrics.misses),
              static_cast<long long>(destructive.metrics.misses));
  std::printf("%-28s %18lld %18lld\n", "arbitration wins",
              static_cast<long long>(arbitrated.channel.arbitration_wins),
              static_cast<long long>(destructive.channel.arbitration_wins));
  std::printf("%-28s %18lld %18lld\n", "destructive collisions",
              static_cast<long long>(arbitrated.channel.collision_slots),
              static_cast<long long>(destructive.channel.collision_slots));
  std::printf("%-28s %18lld %18lld\n", "tree-search epochs",
              static_cast<long long>(arbitrated.per_station.front().epochs),
              static_cast<long long>(destructive.per_station.front().epochs));
  std::printf("%-28s %18lld %18lld\n", "deadline inversions",
              static_cast<long long>(arbitrated.metrics.deadline_inversions),
              static_cast<long long>(destructive.metrics.deadline_inversions));
  std::printf("%-28s %18.1f %18.1f\n", "mean latency (us)",
              arbitrated.metrics.mean_latency_s * 1e6,
              destructive.metrics.mean_latency_s * 1e6);
  std::printf("%-28s %18.1f %18.1f\n", "worst latency (us)",
              arbitrated.metrics.worst_latency_s * 1e6,
              destructive.metrics.worst_latency_s * 1e6);
  std::printf("%-28s %18.2f %18.2f\n", "utilization (%)",
              arbitrated.utilization * 100.0,
              destructive.utilization * 100.0);
  return 0;
}
