// Feasibility-condition walkthrough (section 4.3 of the paper).
//
// Takes a videoconferencing workload, computes r(M), u(M), v(M) and the
// latency bound B_DDCR for every message class, prints the FC verdict, and
// then demonstrates the two levers an engineer has when a class fails its
// FC: adding static indices (nu_i) and re-dimensioning the trees.
//
// Build & run:  ./build/examples/feasibility_check
#include <cstdio>

#include "analysis/feasibility.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

namespace {

void print_report(const char* title, const hrtdm::analysis::FcReport& report) {
  using hrtdm::util::TextTable;
  std::printf("%s\n", hrtdm::util::banner(title).c_str());
  TextTable table({"source", "class", "r", "u", "v", "S1", "S2", "B(ms)",
                   "d(ms)", "verdict"});
  for (const auto& cls : report.classes) {
    table.add_row({cls.source, cls.klass, TextTable::cell(cls.r),
                   TextTable::cell(cls.u), TextTable::cell(cls.v),
                   TextTable::cell(cls.s1_slots, 1),
                   TextTable::cell(cls.s2_slots, 1),
                   TextTable::cell(cls.b_ddcr_s * 1e3, 3),
                   TextTable::cell(cls.d_s * 1e3, 3),
                   cls.feasible ? "ok" : "INFEASIBLE"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("offered load: %.2f%%   worst margin: %.3f ms   verdict: %s\n",
              report.offered_load * 100.0, report.worst_margin_s * 1e3,
              report.feasible ? "FEASIBLE" : "INFEASIBLE");
}

}  // namespace

int main() {
  using namespace hrtdm;

  const traffic::Workload workload = traffic::videoconference(12);

  traffic::FcAdapterOptions options;
  options.psi_bps = 1e9;           // Gigabit Ethernet
  options.slot_s = 4.096e-6;       // 802.3z slot time
  options.overhead_bits = 160;     // preamble + IFG
  options.trees = analysis::FcTreeParams{4, 64, 4, 64};

  // 1. Baseline: one static index per source.
  const auto baseline = traffic::to_fc_system(workload, options);
  print_report("FCs: 12-party videoconference, nu_i = 1",
               analysis::check_feasibility(baseline));

  // 2. Stress: double the video slice rate — watch u(M) and B grow.
  traffic::Workload stressed = workload;
  for (auto& src : stressed.sources) {
    for (auto& cls : src.classes) {
      if (cls.name.rfind("video", 0) == 0) {
        cls.a *= 3;
      }
    }
  }
  const auto stressed_system = traffic::to_fc_system(stressed, options);
  print_report("FCs: video slice rate tripled",
               analysis::check_feasibility(stressed_system));

  // 3. Remedy: four static indices per source lower v(M), and a bigger
  //    static tree keeps the partition disjoint.
  traffic::FcAdapterOptions remedied = options;
  remedied.trees.q = 256;  // 4^4 leaves
  remedied.nu.assign(static_cast<std::size_t>(stressed.z()), 4);
  const auto remedied_system = traffic::to_fc_system(stressed, remedied);
  print_report("FCs: tripled rate, nu_i = 4, q = 256",
               analysis::check_feasibility(remedied_system));

  return 0;
}
