// Slot-level anatomy of one CSMA/DDCR epoch, rendered as an ASCII
// timeline. Five stations collide; the trace shows the initial collision
// (X), the time-tree descent (X/. probes), the successful transmissions
// (#) and the return to silence — exactly the slot sequence the paper's
// xi analysis counts.
//
// Alongside the ASCII view, the same epoch is exported as a Perfetto
// trace (Chrome trace-event JSON) through obs::EventTracer: the channel's
// slot track sits next to one track per station showing the TTs/STs
// descent probes and epoch markers. Open the file at
// https://ui.perfetto.dev (or chrome://tracing).
//
// Build & run:  ./build/examples/collision_trace [trace-out.json]
#include <cstdio>

#include "core/ddcr_network.hpp"
#include "net/trace.hpp"
#include "obs/event_tracer.hpp"
#include "traffic/message.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;

  core::DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = util::Duration::microseconds(1);
  options.ddcr.alpha = util::Duration::nanoseconds(0);

  // An explicit tracer (not the HRTDM_TRACE_OUT-gated global) so the
  // example always demonstrates the Perfetto export.
  obs::EventTracer tracer;
  options.tracer = &tracer;

  core::DdcrTestbed bed(5, options);
  net::TraceRecorder trace;
  bed.channel().add_observer(trace);

  // Five messages: three distinct deadline classes plus a same-class pair
  // that will need the static tie-break.
  const std::int64_t deadlines_us[] = {5, 5, 8, 11, 14};
  for (int s = 0; s < 5; ++s) {
    traffic::Message msg;
    msg.uid = s;
    msg.class_id = s;
    msg.source = s;
    msg.l_bits = 200;  // 200 ns = 2 slots of transmission
    msg.arrival = sim::SimTime::zero();
    msg.absolute_deadline =
        sim::SimTime::from_ns(deadlines_us[s] * 1'000);
    bed.inject(s, msg);
  }
  bed.run_until_delivered(5, sim::SimTime::from_ns(1'000'000));
  bed.run(bed.simulator().now() + options.phy.slot_x * 6);  // trailing idle

  std::printf("5 stations, deadlines {5, 5, 8, 11, 14} us, c = 1 us\n");
  std::printf("legend: X collision   . silence   # transmission\n\n");
  std::printf("%s\n", trace.ascii_timeline(64).c_str());

  std::printf("delivery order (expect EDF, station 0/1 tie broken by "
              "static index):\n");
  for (const auto& tx : bed.metrics().log()) {
    std::printf("  t=%6lld ns  station %d  (deadline %lld us)\n",
                static_cast<long long>(tx.completed.ns()), tx.source,
                static_cast<long long>(tx.deadline.ns() / 1000));
  }

  const auto& counters = bed.station(0).counters();
  std::printf("\nepochs: %lld, time tree searches: %lld, static searches: "
              "%lld\n",
              static_cast<long long>(counters.epochs),
              static_cast<long long>(counters.tts_runs),
              static_cast<long long>(counters.sts_runs));
  std::printf("time-tree search slots heard: %lld, static: %lld\n",
              static_cast<long long>(counters.search_slots_time),
              static_cast<long long>(counters.search_slots_static));
  std::printf("\nCSV trace (first 3 rows):\n");
  const std::string csv = trace.csv();
  std::size_t pos = 0;
  for (int i = 0; i < 4 && pos != std::string::npos; ++i) {
    const std::size_t next = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }

  // End-of-run introspection: every station should be back in CSMA-CD
  // with an empty queue.
  std::printf("\nstation snapshots:\n");
  for (const auto& snap : bed.station_snapshots()) {
    std::printf("  station %d: mode=%s queue=%zu reft=%lld ns\n", snap.id,
                snap.mode, snap.queue_depth,
                static_cast<long long>(snap.reft_ns));
  }

  const char* trace_path =
      argc > 1 ? argv[1] : "collision_trace.perfetto.json";
  if (tracer.write_chrome_json(trace_path)) {
    std::printf("\nwrote %s (%zu events; open at https://ui.perfetto.dev)\n",
                trace_path, tracer.size());
  } else {
    std::printf("\nfailed to write %s\n", trace_path);
    return 1;
  }
  return 0;
}
