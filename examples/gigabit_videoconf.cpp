// Section 5 scenario: half-duplex Gigabit Ethernet carrying a
// videoconference, with and without IEEE 802.3z packet bursting.
//
// The paper argues that packet bursting (transmitting the first k
// EDF-ranked messages, up to 512 bytes, without relinquishing the channel)
// "will entail much less deadline inversions than those resulting from
// using deadline equivalence classes". This example measures exactly that
// trade-off: inversions, latency and channel overhead with bursting off
// and on.
//
// Build & run:  ./build/examples/gigabit_videoconf
#include <cstdio>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"

namespace {

hrtdm::core::DdcrRunResult run_conference(bool bursting) {
  using namespace hrtdm;
  const traffic::Workload workload = traffic::videoconference(10);

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.phy.burst_budget_bits = bursting ? 512 * 8 : 0;
  options.ddcr.m_time = 4;
  options.ddcr.F = 64;
  options.ddcr.m_static = 4;
  options.ddcr.q = 64;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(workload.max_deadline(), 64);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(200'000'000);  // 200 ms
  options.drain_cap = sim::SimTime::from_ns(500'000'000);
  return core::run_ddcr(workload, options);
}

}  // namespace

int main() {
  const auto plain = run_conference(false);
  const auto bursty = run_conference(true);

  std::printf("10-party videoconference on half-duplex Gigabit Ethernet\n");
  std::printf("%-28s %15s %15s\n", "", "no bursting", "802.3z bursting");
  std::printf("%-28s %15lld %15lld\n", "delivered",
              static_cast<long long>(plain.metrics.delivered),
              static_cast<long long>(bursty.metrics.delivered));
  std::printf("%-28s %15lld %15lld\n", "deadline misses",
              static_cast<long long>(plain.metrics.misses),
              static_cast<long long>(bursty.metrics.misses));
  std::printf("%-28s %15lld %15lld\n", "deadline inversions",
              static_cast<long long>(plain.metrics.deadline_inversions),
              static_cast<long long>(bursty.metrics.deadline_inversions));
  std::printf("%-28s %15lld %15lld\n", "burst continuations",
              static_cast<long long>(plain.channel.burst_continuations),
              static_cast<long long>(bursty.channel.burst_continuations));
  std::printf("%-28s %15lld %15lld\n", "collision slots",
              static_cast<long long>(plain.channel.collision_slots),
              static_cast<long long>(bursty.channel.collision_slots));
  std::printf("%-28s %15.1f %15.1f\n", "mean latency (us)",
              plain.metrics.mean_latency_s * 1e6,
              bursty.metrics.mean_latency_s * 1e6);
  std::printf("%-28s %15.1f %15.1f\n", "p99 latency (us)",
              plain.metrics.p99_latency_s * 1e6,
              bursty.metrics.p99_latency_s * 1e6);
  std::printf("%-28s %15.2f %15.2f\n", "utilization (%)",
              plain.utilization * 100.0, bursty.utilization * 100.0);
  return 0;
}
