// Protocol face-off: CSMA/DDCR against its three natural baselines —
// randomized Ethernet (CSMA-CD with binary exponential backoff), the
// earlier deterministic 802.3D CSMA/DCR (static tree only, no deadline
// awareness), and fixed TDMA — on the same bursty trading-floor workload.
//
// Build & run:  ./build/examples/protocol_faceoff
#include <cstdio>

#include "baseline/runner.hpp"
#include "core/ddcr_config.hpp"
#include "traffic/workload.hpp"

int main() {
  using namespace hrtdm;
  using baseline::Protocol;

  traffic::Workload workload = traffic::stock_exchange(12).scaled_load(1.5);

  baseline::ProtocolRunOptions options;
  options.base.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(workload.max_deadline(),
                                        options.base.ddcr.F);
  options.base.ddcr.alpha = options.base.ddcr.class_width_c * 2;
  options.base.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.base.arrival_horizon = sim::SimTime::from_ns(100'000'000);
  options.base.drain_cap = sim::SimTime::from_ns(400'000'000);
  options.dcr_q = 64;

  std::printf(
      "12 trading gateways, bursty orders/ticks at 1.5x nominal load\n"
      "offered load: %.1f Mbit/s\n\n",
      workload.offered_load_bits_per_second() / 1e6);
  std::printf("%-14s %10s %8s %9s %12s %11s %10s\n", "protocol", "delivered",
              "misses", "miss-%", "mean-lat-us", "p99-lat-us", "util-%");

  for (const Protocol protocol :
       {Protocol::kDdcr, Protocol::kBeb, Protocol::kDcr, Protocol::kTdma}) {
    const auto result = baseline::run_protocol(protocol, workload, options);
    std::printf("%-14s %10lld %8lld %8.2f%% %12.1f %11.1f %9.2f%%\n",
                baseline::protocol_name(protocol).c_str(),
                static_cast<long long>(result.metrics.delivered),
                static_cast<long long>(result.metrics.misses +
                                       result.undelivered + result.dropped),
                result.miss_ratio() * 100.0,
                result.metrics.mean_latency_s * 1e6,
                result.metrics.p99_latency_s * 1e6,
                result.utilization * 100.0);
  }
  return 0;
}
