// Quickstart: build an 8-node Gigabit Ethernet segment running CSMA/DDCR,
// push a mixed control/bulk workload through it, and print the delivery
// report. This is the five-minute tour of the public API:
//
//   1. describe the workload    (traffic::Workload)
//   2. pick protocol parameters (core::DdcrRunOptions)
//   3. run                      (core::run_ddcr)
//   4. read the metrics         (core::DdcrRunResult)
//
// Build & run:  ./build/examples/quickstart
//               ./build/examples/quickstart --scenario atc --z 12 --load 2
#include <cstdio>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;

  util::CliFlags flags;
  flags.add_string("scenario", "quickstart",
                   "workload: quickstart | videoconference | atc | stocks | "
                   "factory | avionics")
      .add_int("z", 8, "number of sources")
      .add_double("load", 1.0, "load multiplier")
      .add_int("seed", 1, "RNG seed")
      .add_int("horizon-ms", 100, "arrival horizon in milliseconds");
  if (!flags.parse(argc, argv)) {
    return 2;
  }

  // 1. The workload: per-source message classes {l, d, a, w}.
  const traffic::Workload workload =
      traffic::workload_by_name(flags.get_string("scenario"),
                                static_cast<int>(flags.get_int("z")))
          .scaled_load(flags.get_double("load"));

  // 2. Gigabit Ethernet PHY, quaternary trees with 64 leaves, 100 us
  //    deadline-equivalence classes, compressed time on.
  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.m_time = 4;
  options.ddcr.F = 64;
  options.ddcr.m_static = 4;
  options.ddcr.q = 64;
  // Scheduling horizon cF dimensioned over the deadline range.
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(workload.max_deadline(), 64);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.ddcr.theta_factor = 1.0;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.arrival_horizon = sim::SimTime::from_ns(
      flags.get_int("horizon-ms") * 1'000'000);
  options.drain_cap = sim::SimTime::from_ns(
      flags.get_int("horizon-ms") * 5'000'000);
  options.check_consistency = true;

  // 3. Run.
  const core::DdcrRunResult result = core::run_ddcr(workload, options);

  // 4. Report.
  std::printf("workload: %s (z = %d sources, offered load %.1f Mbit/s)\n",
              workload.name.c_str(), workload.z(),
              workload.offered_load_bits_per_second() / 1e6);
  std::printf("generated:   %lld messages\n",
              static_cast<long long>(result.generated));
  std::printf("delivered:   %lld (undelivered %lld)\n",
              static_cast<long long>(result.metrics.delivered),
              static_cast<long long>(result.undelivered));
  std::printf("misses:      %lld\n",
              static_cast<long long>(result.metrics.misses));
  std::printf("latency:     mean %.1f us, p99 %.1f us, worst %.1f us\n",
              result.metrics.mean_latency_s * 1e6,
              result.metrics.p99_latency_s * 1e6,
              result.metrics.worst_latency_s * 1e6);
  std::printf("channel:     %lld collisions, %lld silent slots, "
              "utilization %.1f%%\n",
              static_cast<long long>(result.channel.collision_slots),
              static_cast<long long>(result.channel.silence_slots),
              result.utilization * 100.0);
  std::printf("inversions:  %lld deadline inversions\n",
              static_cast<long long>(result.metrics.deadline_inversions));
  std::printf("consistency: replicated state %s\n",
              result.consistency_ok ? "identical at every slot" : "DIVERGED");

  util::TextTable table({"class", "delivered", "misses", "mean(us)",
                         "worst(us)"});
  for (const auto& [id, cls] : result.metrics.per_class) {
    table.add_row({std::to_string(id),
                   util::TextTable::cell(cls.delivered),
                   util::TextTable::cell(cls.misses),
                   util::TextTable::cell(cls.mean_latency_s * 1e6, 1),
                   util::TextTable::cell(cls.worst_latency_s * 1e6, 1)});
  }
  std::printf("\n%s", table.str().c_str());
  return result.metrics.misses == 0 && result.undelivered == 0 ? 0 : 1;
}
