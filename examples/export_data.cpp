// Exports the paper-figure series and the main simulation sweeps as CSV
// files for external plotting (gnuplot, matplotlib, ...).
//
// Build & run:  ./build/examples/export_data --dir /tmp/hrtdm_data
// Produces:
//   fig1_quaternary.csv      k, xi_exact, xi_asymptote
//   fig2_binary_vs_quat.csv  k, xi_m2, xi_m4
//   tightness.csv            m, t, gap_even, gap_all, bound
//   load_sweep.csv           load_factor, protocol, miss_pct, mean_lat_us
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/xi.hpp"
#include "baseline/runner.hpp"
#include "core/ddcr_config.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"

namespace {

using namespace hrtdm;

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), body.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags;
  flags.add_string("dir", "/tmp/hrtdm_data", "output directory");
  if (!flags.parse(argc, argv)) {
    return 2;
  }
  const std::filesystem::path dir = flags.get_string("dir");
  std::filesystem::create_directories(dir);

  // Fig. 1 series.
  {
    analysis::XiExactTable table(4, 3);
    std::string csv = "k,xi_exact,xi_asymptote\n";
    for (std::int64_t k = 0; k <= 64; ++k) {
      csv += std::to_string(k) + "," + std::to_string(table.xi(k)) + ",";
      if (k >= 2) {
        csv += std::to_string(analysis::xi_asymptotic(4, 64.0,
                                                      static_cast<double>(k)));
      }
      csv += "\n";
    }
    write_file(dir / "fig1_quaternary.csv", csv);
  }

  // Fig. 2 series.
  {
    analysis::XiExactTable binary(2, 6);
    analysis::XiExactTable quaternary(4, 3);
    std::string csv = "k,xi_m2,xi_m4\n";
    for (std::int64_t k = 0; k <= 64; ++k) {
      csv += std::to_string(k) + "," + std::to_string(binary.xi(k)) + "," +
             std::to_string(quaternary.xi(k)) + "\n";
    }
    write_file(dir / "fig2_binary_vs_quat.csv", csv);
  }

  // Tightness (Eq. 12-14) across shapes.
  {
    std::string csv = "m,t,gap_even,gap_all,bound\n";
    struct Shape { int m; int n; };
    for (const auto& [m, n] : {Shape{2, 8}, {2, 10}, {3, 5}, {3, 7},
                               {4, 4}, {4, 6}, {5, 4}, {8, 4}}) {
      analysis::XiExactTable table(m, n);
      const auto report = analysis::max_asymptote_gap(table);
      csv += std::to_string(m) + "," + std::to_string(table.t()) + "," +
             std::to_string(report.max_gap_even) + "," +
             std::to_string(report.max_gap) + "," +
             std::to_string(report.bound) + "\n";
    }
    write_file(dir / "tightness.csv", csv);
  }

  // Protocol load sweep (E10 data).
  {
    std::string csv = "load_factor,protocol,miss_pct,mean_lat_us,p99_lat_us\n";
    for (const double factor : {0.5, 1.0, 2.0, 4.0}) {
      const auto wl = traffic::stock_exchange(12).scaled_load(factor);
      baseline::ProtocolRunOptions options;
      options.base.ddcr.class_width_c = core::DdcrConfig::class_width_for(
          wl.max_deadline(), options.base.ddcr.F);
      options.base.ddcr.alpha = options.base.ddcr.class_width_c * 2;
      options.base.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
      options.base.arrival_horizon = sim::SimTime::from_ns(40'000'000);
      options.base.drain_cap = sim::SimTime::from_ns(200'000'000);
      for (const auto protocol :
           {baseline::Protocol::kDdcr, baseline::Protocol::kBeb,
            baseline::Protocol::kDcr, baseline::Protocol::kTdma,
            baseline::Protocol::kStack}) {
        const auto result = baseline::run_protocol(protocol, wl, options);
        csv += std::to_string(factor) + "," +
               baseline::protocol_name(protocol) + "," +
               std::to_string(result.miss_ratio() * 100.0) + "," +
               std::to_string(result.metrics.mean_latency_s * 1e6) + "," +
               std::to_string(result.metrics.p99_latency_s * 1e6) + "\n";
      }
    }
    write_file(dir / "load_sweep.csv", csv);
  }

  std::printf("done.\n");
  return 0;
}
