// Exact average-case search cost: closed form vs exhaustive enumeration,
// Monte Carlo, and the worst case.
#include "analysis/xi_expected.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/xi.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {
namespace {

/// Exact average by enumerating all binomial(t, k) subsets (small t).
double exhaustive_average(int m, std::int64_t t, std::int64_t k) {
  if (k == 0) {
    return 1.0;
  }
  std::vector<std::int64_t> subset(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    subset[static_cast<std::size_t>(i)] = i;
  }
  double total = 0.0;
  std::int64_t count = 0;
  while (true) {
    total += static_cast<double>(search_cost_for_leaves(m, t, subset));
    ++count;
    std::int64_t i = k - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] == t - k + i) {
      --i;
    }
    if (i < 0) {
      break;
    }
    ++subset[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < k; ++j) {
      subset[static_cast<std::size_t>(j)] =
          subset[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  EXPECT_EQ(count, util::binomial(t, k));
  return total / static_cast<double>(count);
}

TEST(HypergeometricPmf, SumsToOneAndMatchesCounting) {
  for (const auto& [t, k, s] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{16, 5, 4},
        {16, 16, 8},
        {64, 2, 16},
        {9, 3, 3}}) {
    double sum = 0.0;
    for (std::int64_t j = 0; j <= k; ++j) {
      const double p = hypergeometric_pmf(t, k, s, j);
      EXPECT_GE(p, 0.0);
      // Counting identity: p = C(s,j) C(t-s,k-j) / C(t,k).
      if (j <= s && k - j <= t - s) {
        const double expected =
            static_cast<double>(util::binomial(s, j)) *
            static_cast<double>(util::binomial(t - s, k - j)) /
            static_cast<double>(util::binomial(t, k));
        EXPECT_NEAR(p, expected, 1e-9) << "t=" << t << " k=" << k
                                       << " s=" << s << " j=" << j;
      }
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(XiExpected, MatchesExhaustiveEnumerationOnSmallTrees) {
  for (const auto& [m, n] : {std::pair{2, 3}, {2, 4}, {3, 2}, {4, 2}}) {
    const std::int64_t t = util::ipow(m, n);
    for (std::int64_t k = 0; k <= t; ++k) {
      EXPECT_NEAR(xi_expected(m, t, k), exhaustive_average(m, t, k), 1e-9)
          << "m=" << m << " t=" << t << " k=" << k;
    }
  }
}

TEST(XiExpected, BoundaryValues) {
  EXPECT_NEAR(xi_expected(4, 64, 0), 1.0, 1e-12);  // one silent root probe
  EXPECT_NEAR(xi_expected(4, 64, 1), 0.0, 1e-12);  // free transmission
  // k = t is deterministic: every placement is the full tree.
  EXPECT_NEAR(xi_expected(4, 64, 64),
              static_cast<double>(xi_full(4, 64)), 1e-9);
  EXPECT_NEAR(xi_expected(2, 1024, 1024),
              static_cast<double>(xi_full(2, 1024)), 1e-6);
}

TEST(XiExpected, NeverExceedsWorstCase) {
  for (const auto& [m, n] : {std::pair{2, 6}, {4, 3}, {3, 4}}) {
    XiExactTable table(m, n);
    for (std::int64_t k = 0; k <= table.t(); ++k) {
      EXPECT_LE(xi_expected(m, table.t(), k),
                static_cast<double>(table.xi(k)) + 1e-9)
          << "m=" << m << " t=" << table.t() << " k=" << k;
    }
  }
}

TEST(XiExpected, MonteCarloAgreesWithClosedForm) {
  for (const auto& [m, t, k] :
       {std::tuple<int, std::int64_t, std::int64_t>{2, 64, 8},
        {4, 64, 16},
        {2, 256, 40}}) {
    const double exact = xi_expected(m, t, k);
    const double estimate = xi_expected_monte_carlo(m, t, k, 4000, 777);
    // 4000 trials: standard error well under 2% of the mean here.
    EXPECT_NEAR(estimate, exact, exact * 0.05)
        << "m=" << m << " t=" << t << " k=" << k;
  }
}

TEST(XiExpected, SubstantiallyBelowWorstCaseMidRange) {
  // The gap between average and worst case is what the FCs' adversary
  // pays for determinism guarantees; it should be large in the mid-range.
  XiExactTable table(4, 3);
  const double avg = xi_expected(4, 64, 16);
  EXPECT_LT(avg, 0.8 * static_cast<double>(table.xi(16)));
}

TEST(XiExpected, RejectsMalformedInput) {
  EXPECT_THROW(xi_expected(2, 48, 3), util::ContractViolation);
  EXPECT_THROW(xi_expected(2, 64, 65), util::ContractViolation);
  EXPECT_THROW(xi_expected_monte_carlo(2, 64, 2, 0, 1),
               util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::analysis
