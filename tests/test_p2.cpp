// Problem P2 (section 4.2): worst-case searches over multiple consecutive
// trees, Eq. 16-19.
#include "analysis/p2.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hrtdm::analysis {
namespace {

TEST(P2Bound, TwoFormsAgree) {
  // Eq. 18: v xi~(u/v, t) = xi~(u, tv) - (v-1)/(m-1), an algebraic identity.
  for (int m = 2; m <= 5; ++m) {
    for (double t : {16.0, 64.0, 256.0}) {
      for (double v : {1.0, 2.0, 3.0, 7.0}) {
        for (double u = 2.0 * v; u <= t * v; u += 3.0) {
          EXPECT_NEAR(p2_bound(m, t, u, v), p2_bound_alt(m, t, u, v), 1e-6)
              << "m=" << m << " t=" << t << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(P2Bound, SingleTreeReducesToAsymptote) {
  EXPECT_NEAR(p2_bound(4, 64.0, 10.0, 1.0), xi_asymptotic(4, 64.0, 10.0),
              1e-12);
}

struct P2Param {
  int m;
  int n;
  int v;
};

class P2Exhaustive : public ::testing::TestWithParam<P2Param> {};

TEST_P(P2Exhaustive, BoundDominatesExhaustiveMaximum) {
  // Eq. 19: max over compositions <= v xi~(u/v, t), for every u.
  const auto [m, n, v] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t u = 2 * v; u <= v * t; ++u) {
    const std::int64_t exact = p2_exhaustive(table, u, v);
    const double bound = p2_bound(m, static_cast<double>(t),
                                  static_cast<double>(u),
                                  static_cast<double>(v));
    EXPECT_LE(static_cast<double>(exact), bound + 1e-9)
        << "m=" << m << " t=" << t << " u=" << u << " v=" << v;
  }
}

TEST_P(P2Exhaustive, WorstCompositionIsValidAndAchievesMaximum) {
  const auto [m, n, v] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t u = 2 * v; u <= v * t; u += 5) {
    const auto parts = p2_worst_composition(table, u, v);
    ASSERT_EQ(static_cast<int>(parts.size()), v);
    std::int64_t sum = 0;
    std::int64_t cost = 0;
    for (const std::int64_t k : parts) {
      EXPECT_GE(k, 2);
      EXPECT_LE(k, t);
      sum += k;
      cost += table.xi(k);
    }
    EXPECT_EQ(sum, u);
    EXPECT_EQ(cost, p2_exhaustive(table, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, P2Exhaustive,
    ::testing::Values(P2Param{2, 4, 2}, P2Param{2, 4, 3}, P2Param{2, 5, 4},
                      P2Param{3, 3, 2}, P2Param{3, 3, 3}, P2Param{4, 2, 2},
                      P2Param{4, 3, 3}, P2Param{4, 3, 5}, P2Param{5, 2, 4}),
    [](const ::testing::TestParamInfo<P2Param>& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "v" + std::to_string(info.param.v);
    });

TEST(P2Exhaustive, EqualSplitIsWorstForTheAsymptote) {
  // The proof of Eq. 18 rests on concavity of xi~: an equal split maximises
  // the sum. Check numerically against random unequal splits.
  const int m = 4;
  const double t = 64.0;
  const double v = 4.0;
  const double u = 80.0;
  const double equal = v * xi_asymptotic(m, t, u / v);
  for (double delta = 1.0; delta <= 15.0; delta += 1.0) {
    const double unequal = 2.0 * xi_asymptotic(m, t, u / v - delta) +
                           2.0 * xi_asymptotic(m, t, u / v + delta);
    EXPECT_GE(equal + 1e-9, unequal) << "delta=" << delta;
  }
}

TEST(P2Contracts, RejectsInvalidRanges) {
  XiExactTable table(2, 3);  // t = 8
  EXPECT_THROW(p2_exhaustive(table, 3, 2), util::ContractViolation);   // u < 2v
  EXPECT_THROW(p2_exhaustive(table, 17, 2), util::ContractViolation);  // u > vt
  EXPECT_THROW(p2_bound(2, 8.0, 20.0, 2.0), util::ContractViolation);  // u/v > t
  EXPECT_THROW(p2_bound(2, 8.0, 4.0, 0.0), util::ContractViolation);   // v < 1
}

}  // namespace
}  // namespace hrtdm::analysis
