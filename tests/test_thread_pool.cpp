// Deterministic thread pool (util/thread_pool): static index->worker
// mapping, serial == parallel results, run-every-task exception semantics
// with lowest-index rethrow, and edge cases (n = 0, n < threads).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hrtdm;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_index(kN, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ResultsIdenticalToSerialLoop) {
  // The pool's contract: index-keyed slot writes are bit-identical to the
  // serial loop because the mapping carries no scheduling dependence.
  constexpr std::int64_t kN = 257;  // deliberately not a multiple of threads
  auto work = [](std::int64_t i) {
    // Deterministic per-index value with real computation behind it.
    util::SplitMix64 mix(static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL);
    std::uint64_t acc = 0;
    for (int r = 0; r < 100; ++r) {
      acc ^= mix.next();
    }
    return acc;
  };

  std::vector<std::uint64_t> serial(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    serial[i] = work(i);
  }

  for (const int threads : {1, 2, 3, 8}) {
    std::vector<std::uint64_t> parallel(kN);
    util::parallel_for_index(threads, kN,
                             [&](std::int64_t i) { parallel[i] = work(i); });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, StaticRoundRobinAssignment) {
  // Worker w must execute exactly the indices {w, w+T, w+2T, ...}: record
  // the executing thread per index and check each stride class is served
  // by one thread.
  constexpr int kThreads = 3;
  constexpr std::int64_t kN = 20;
  util::ThreadPool pool(kThreads);
  std::vector<std::thread::id> executor(kN);
  pool.for_index(kN, [&](std::int64_t i) {
    executor[i] = std::this_thread::get_id();
  });
  for (int w = 0; w < kThreads; ++w) {
    std::set<std::thread::id> ids;
    for (std::int64_t i = w; i < kN; i += kThreads) {
      ids.insert(executor[i]);
    }
    EXPECT_EQ(ids.size(), 1u) << "stride class " << w;
  }
}

TEST(ThreadPool, EmptyBatchAndFewerTasksThanThreads) {
  util::ThreadPool pool(8);
  int calls = 0;
  pool.for_index(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<int> hit(3, 0);
  pool.for_index(3, [&](std::int64_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 3);

  // Pool is reusable after a batch.
  std::atomic<int> again{0};
  pool.for_index(16, [&](std::int64_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 16);
}

TEST(ThreadPool, RethrowsLowestIndexExceptionAfterFullBatch) {
  // Indices 5 and 11 throw; every other task must still run, and the
  // surfaced exception must be index 5's regardless of thread timing.
  for (const int threads : {1, 4}) {
    constexpr std::int64_t kN = 16;
    std::vector<std::atomic<int>> ran(kN);
    try {
      util::parallel_for_index(threads, kN, [&](std::int64_t i) {
        ran[i].fetch_add(1);
        if (i == 5 || i == 11) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5") << "threads=" << threads;
    }
    for (std::int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(ran[i].load(), 1) << "threads=" << threads << " index " << i;
    }
  }
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1);
  // threads <= 0 selects hardware_threads().
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), util::ThreadPool::hardware_threads());
}

}  // namespace
