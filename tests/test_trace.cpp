#include "net/trace.hpp"

#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "traffic/message.hpp"

namespace hrtdm::net {
namespace {

using util::SimTime;

SlotRecord make_record(SlotKind kind, std::int64_t start_ns,
                       std::int64_t end_ns) {
  SlotRecord record;
  record.kind = kind;
  record.start = SimTime::from_ns(start_ns);
  record.end = SimTime::from_ns(end_ns);
  if (kind == SlotKind::kSuccess) {
    Frame frame;
    frame.source = 3;
    frame.msg_uid = 42;
    frame.class_id = 1;
    frame.l_bits = 1000;
    record.frame = frame;
  }
  return record;
}

TEST(TraceRecorder, SymbolsPerKind) {
  EXPECT_EQ(trace_symbol(make_record(SlotKind::kSilence, 0, 100)), '.');
  EXPECT_EQ(trace_symbol(make_record(SlotKind::kCollision, 0, 100)), 'X');
  EXPECT_EQ(trace_symbol(make_record(SlotKind::kSuccess, 0, 100)), '#');
  auto burst = make_record(SlotKind::kSuccess, 0, 100);
  burst.in_burst = true;
  EXPECT_EQ(trace_symbol(burst), 'b');
  auto arb = make_record(SlotKind::kSuccess, 0, 100);
  arb.arbitration = true;
  EXPECT_EQ(trace_symbol(arb), 'a');
}

TEST(TraceRecorder, CountsAndTimeline) {
  TraceRecorder trace;
  trace.on_slot(make_record(SlotKind::kSilence, 0, 100));
  trace.on_slot(make_record(SlotKind::kCollision, 100, 200));
  trace.on_slot(make_record(SlotKind::kSuccess, 200, 1200));
  const auto counts = trace.counts();
  EXPECT_EQ(counts.silence, 1);
  EXPECT_EQ(counts.collision, 1);
  EXPECT_EQ(counts.success, 1);
  const std::string timeline = trace.ascii_timeline(80);
  EXPECT_NE(timeline.find(".X#"), std::string::npos);
}

TEST(TraceRecorder, TimelineWrapsRows) {
  TraceRecorder trace;
  for (int i = 0; i < 25; ++i) {
    trace.on_slot(make_record(SlotKind::kSilence, i * 100, (i + 1) * 100));
  }
  const std::string timeline = trace.ascii_timeline(10);
  EXPECT_EQ(std::count(timeline.begin(), timeline.end(), '\n'), 3);
}

TEST(TraceRecorder, CapacityEvictsOldest) {
  TraceRecorder trace(2);
  trace.on_slot(make_record(SlotKind::kSilence, 0, 100));
  trace.on_slot(make_record(SlotKind::kCollision, 100, 200));
  trace.on_slot(make_record(SlotKind::kSuccess, 200, 300));
  ASSERT_EQ(trace.slots().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
  EXPECT_EQ(trace.slots().front().kind, SlotKind::kCollision);
  EXPECT_NE(trace.ascii_timeline().find("1 earlier slots dropped"),
            std::string::npos);
}

TEST(TraceRecorder, CapacityKeepsExactWindowAndDropCount) {
  TraceRecorder trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.on_slot(make_record(SlotKind::kSilence, i * 100, (i + 1) * 100));
  }
  ASSERT_EQ(trace.slots().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  // Slots 0..5 were evicted; the retained window is slots 6..9.
  EXPECT_EQ(trace.slots().front().start.ns(), 600);
  EXPECT_EQ(trace.slots().back().start.ns(), 900);
}

TEST(TraceRecorder, TimelineAnnotationReflectsRetainedWindow) {
  TraceRecorder trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.on_slot(make_record(SlotKind::kSilence, i * 100, (i + 1) * 100));
  }
  const std::string timeline = trace.ascii_timeline(4);
  // The first row must be annotated with the start time of the first
  // RETAINED slot (600 ns), not the first recorded one (0 ns).
  const std::string expected_prefix = trace.slots().front().start.str();
  EXPECT_EQ(timeline.substr(0, expected_prefix.size()), expected_prefix);
  EXPECT_NE(timeline.find("6 earlier slots dropped"), std::string::npos);
}

TEST(TraceRecorder, CsvContainsOnlyRetainedRows) {
  TraceRecorder trace(3);
  for (int i = 0; i < 8; ++i) {
    trace.on_slot(make_record(SlotKind::kSilence, i * 100, (i + 1) * 100));
  }
  const std::string csv = trace.csv();
  // Header + 3 retained rows, nothing from the evicted prefix.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_EQ(csv.find("\n0,100,"), std::string::npos);
  EXPECT_NE(csv.find("500,600,silence"), std::string::npos);
  EXPECT_NE(csv.find("700,800,silence"), std::string::npos);
}

TEST(TraceRecorder, CsvHeaderAndRows) {
  TraceRecorder trace;
  trace.on_slot(make_record(SlotKind::kSuccess, 200, 1200));
  trace.on_slot(make_record(SlotKind::kSilence, 1200, 1300));
  const std::string csv = trace.csv();
  EXPECT_NE(csv.find("start_ns,end_ns,kind"), std::string::npos);
  EXPECT_NE(csv.find("200,1200,success,3,42,1,1000,0,0"), std::string::npos);
  EXPECT_NE(csv.find("1200,1300,silence,,,,,0,0"), std::string::npos);
}

TEST(TraceRecorder, AttachesToLiveChannel) {
  core::DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.ddcr.class_width_c = util::Duration::microseconds(10);
  core::DdcrTestbed bed(2, options);
  TraceRecorder trace;
  bed.channel().add_observer(trace);
  traffic::Message msg;
  msg.uid = 1;
  msg.class_id = 0;
  msg.source = 0;
  msg.l_bits = 100;
  msg.arrival = SimTime::zero();
  msg.absolute_deadline = SimTime::from_ns(50'000);
  bed.inject(0, msg);
  bed.run(SimTime::from_ns(5'000));
  EXPECT_EQ(trace.counts().success, 1);
  EXPECT_GT(trace.counts().silence, 0);
}

}  // namespace
}  // namespace hrtdm::net
