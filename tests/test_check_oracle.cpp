// Unit tests for the centralized non-preemptive EDF oracle — the
// independent leg of the conformance differential. The oracle must realise
// textbook NP-EDF semantics exactly: deadline order over the backlog, uid
// tie-break, non-preemption, work conservation and the slot-floor channel
// occupancy, independent of input order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/edf_oracle.hpp"
#include "net/phy.hpp"

namespace hrtdm::check {
namespace {

net::PhyConfig tiny_phy() {
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  return phy;
}

Message make(std::int64_t uid, std::int64_t arrival_ns,
             std::int64_t deadline_ns, std::int64_t l_bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.source = static_cast<int>(uid % 4);
  msg.class_id = msg.source;
  msg.l_bits = l_bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

TEST(EdfOracle, EmptyInputIsFeasibleAndEmpty) {
  const auto schedule = EdfOracle(tiny_phy()).schedule({});
  EXPECT_TRUE(schedule.order.empty());
  EXPECT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.misses, 0);
  EXPECT_EQ(schedule.makespan, SimTime::zero());
}

TEST(EdfOracle, SingleMessageOccupiesTransmissionTime) {
  // 1000 bits at 1 Gbit/s = 1 us > x: occupancy is the transmission time.
  const auto schedule =
      EdfOracle(tiny_phy()).schedule({make(7, 500, 100'000, 1000)});
  ASSERT_EQ(schedule.order.size(), 1u);
  EXPECT_EQ(schedule.order[0].uid, 7);
  EXPECT_EQ(schedule.order[0].start, SimTime::from_ns(500));
  EXPECT_EQ(schedule.order[0].completed, SimTime::from_ns(1500));
  EXPECT_EQ(schedule.makespan, SimTime::from_ns(1500));
  EXPECT_TRUE(schedule.feasible);
}

TEST(EdfOracle, TinyFramesPayTheSlotFloor) {
  // 10 bits = 10 ns of wire time, but a channel win costs at least one
  // slot x = 100 ns — the same floor a successful contention slot pays.
  const auto schedule =
      EdfOracle(tiny_phy()).schedule({make(1, 0, 100'000, 10)});
  ASSERT_EQ(schedule.order.size(), 1u);
  EXPECT_EQ(schedule.order[0].completed, SimTime::from_ns(100));
}

TEST(EdfOracle, BacklogServedInDeadlineOrder) {
  // All three arrive at t = 0 with deadlines opposite to uid order.
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(0, 0, 30'000),
      make(1, 0, 20'000),
      make(2, 0, 10'000),
  });
  ASSERT_EQ(schedule.order.size(), 3u);
  EXPECT_EQ(schedule.order[0].uid, 2);
  EXPECT_EQ(schedule.order[1].uid, 1);
  EXPECT_EQ(schedule.order[2].uid, 0);
  // Back-to-back service: no idling while the backlog is non-empty.
  EXPECT_EQ(schedule.order[1].start, schedule.order[0].completed);
  EXPECT_EQ(schedule.order[2].start, schedule.order[1].completed);
}

TEST(EdfOracle, EqualDeadlinesBreakTiesByUid) {
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(5, 0, 10'000),
      make(3, 0, 10'000),
      make(9, 0, 10'000),
  });
  ASSERT_EQ(schedule.order.size(), 3u);
  EXPECT_EQ(schedule.order[0].uid, 3);
  EXPECT_EQ(schedule.order[1].uid, 5);
  EXPECT_EQ(schedule.order[2].uid, 9);
}

TEST(EdfOracle, NonPreemptiveServiceBlocksUrgentArrivals) {
  // A 10 us frame starts at t = 0; an urgent message lands mid-service.
  // NP-EDF cannot preempt: the urgent one starts only at 10 us and misses.
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(0, 0, 50'000, 10'000),
      make(1, 2'000, 8'000, 100),
  });
  ASSERT_EQ(schedule.order.size(), 2u);
  EXPECT_EQ(schedule.order[0].uid, 0);
  EXPECT_EQ(schedule.order[1].uid, 1);
  EXPECT_EQ(schedule.order[1].start, SimTime::from_ns(10'000));
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.misses, 1);
}

TEST(EdfOracle, WorkConservingServerIdlesOnlyWhenEmpty) {
  // Second message arrives long after the first completes: the server
  // jumps to its arrival instead of busy-waiting or starting early.
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(0, 0, 10'000),
      make(1, 50'000, 80'000),
  });
  ASSERT_EQ(schedule.order.size(), 2u);
  EXPECT_EQ(schedule.order[0].completed, SimTime::from_ns(100));
  EXPECT_EQ(schedule.order[1].start, SimTime::from_ns(50'000));
  EXPECT_TRUE(schedule.feasible);
}

TEST(EdfOracle, LaterUrgentArrivalOvertakesTheBacklog) {
  // uid 0 is in service when uids 1 and 2 arrive; the tighter deadline
  // (uid 2) must be served next despite arriving last.
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(0, 0, 100'000, 1000),
      make(1, 200, 90'000),
      make(2, 300, 5'000),
  });
  ASSERT_EQ(schedule.order.size(), 3u);
  EXPECT_EQ(schedule.order[0].uid, 0);
  EXPECT_EQ(schedule.order[1].uid, 2);
  EXPECT_EQ(schedule.order[2].uid, 1);
}

TEST(EdfOracle, InputOrderIsIrrelevant) {
  std::vector<Message> messages = {
      make(0, 400, 30'000), make(1, 0, 20'000),   make(2, 100, 10'000),
      make(3, 0, 10'000),   make(4, 2'000, 9'000), make(5, 50, 50'000),
  };
  const auto reference = EdfOracle(tiny_phy()).schedule(messages);
  std::reverse(messages.begin(), messages.end());
  const auto reversed = EdfOracle(tiny_phy()).schedule(messages);
  ASSERT_EQ(reference.order.size(), reversed.order.size());
  for (std::size_t i = 0; i < reference.order.size(); ++i) {
    EXPECT_EQ(reference.order[i].uid, reversed.order[i].uid) << i;
    EXPECT_EQ(reference.order[i].start, reversed.order[i].start) << i;
    EXPECT_EQ(reference.order[i].completed, reversed.order[i].completed) << i;
  }
  EXPECT_EQ(reference.makespan, reversed.makespan);
}

TEST(EdfOracle, CompletionLookupAndContains) {
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(11, 0, 10'000),
      make(12, 0, 20'000),
  });
  EXPECT_TRUE(schedule.contains(11));
  EXPECT_TRUE(schedule.contains(12));
  EXPECT_FALSE(schedule.contains(13));
  EXPECT_EQ(schedule.completion_of(11), SimTime::from_ns(100));
  EXPECT_EQ(schedule.completion_of(12), SimTime::from_ns(200));
}

TEST(EdfOracle, MissCountingIsPerMessage) {
  // Three impossible deadlines: every completion is late.
  const auto schedule = EdfOracle(tiny_phy()).schedule({
      make(0, 0, 10, 1000),
      make(1, 0, 20, 1000),
      make(2, 0, 30, 1000),
  });
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.misses, 3);
}

}  // namespace
}  // namespace hrtdm::check
