// The dimensioning assistant and the channel-efficiency analysis.
#include <gtest/gtest.h>

#include "analysis/dimensioning.hpp"
#include "analysis/efficiency.hpp"
#include "analysis/xi.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {
namespace {

DimensioningRequest request_for(const traffic::Workload& wl) {
  traffic::FcAdapterOptions options;
  options.trees = FcTreeParams{4, 64, 4, 64};
  const FcSystem system = traffic::to_fc_system(wl, options);
  DimensioningRequest request;
  request.phy = system.phy;
  request.sources = system.sources;
  request.m = 4;
  request.F = 64;
  return request;
}

TEST(Dimensioning, EasyWorkloadFeasibleImmediately) {
  const auto result = dimension(request_for(traffic::quickstart(4)));
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.trees.q, 4);  // smallest power of 4 seating 4 sources
  for (const auto nu : result.nu) {
    EXPECT_EQ(nu, 1);
  }
  EXPECT_TRUE(result.report.feasible);
}

TEST(Dimensioning, EscalatesNuForContendedSources) {
  // A source with a massive local backlog: r(M) ~ a - 1, so with nu = 1
  // the bound pays v(M) ~ a static trees (the S2 term alone blows the
  // deadline). Extra static indices divide v(M) and restore feasibility.
  DimensioningRequest request;
  request.m = 4;
  request.F = 64;
  FcSource heavy;
  heavy.name = "heavy";
  FcMessageClass backlog;
  backlog.name = "backlog";
  backlog.l_bits = 8000;
  backlog.d_s = 3e-3;
  backlog.a = 100;
  backlog.w_s = 100e-3;
  heavy.classes.push_back(backlog);
  FcSource light;
  light.name = "light";
  FcMessageClass ping;
  ping.name = "ping";
  ping.l_bits = 800;
  ping.d_s = 50e-3;
  ping.a = 1;
  ping.w_s = 100e-3;
  light.classes.push_back(ping);
  request.sources = {heavy, light};

  // Baseline with one index each must be infeasible (v ~ 100 -> S2 alone
  // is 50 * 11 slots ~ 2.25 ms on a 3 ms deadline, plus S1 and tx).
  FcSystem baseline;
  baseline.phy = request.phy;
  baseline.trees = FcTreeParams{4, 4, 4, 64};
  baseline.sources = request.sources;
  ASSERT_FALSE(check_feasibility(baseline).feasible);

  const auto result = dimension(request);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.nu[0], 1) << "the heavy source needed extra indices";
  EXPECT_FALSE(result.steps.empty());
}

TEST(Dimensioning, ReportsInfeasibleWhenBudgetsExhausted) {
  traffic::Workload wl = traffic::quickstart(2);
  // A deadline no configuration can meet (shorter than one transmission).
  wl.sources[0].classes[0].d = util::Duration::nanoseconds(100);
  auto request = request_for(wl);
  request.max_q = 16;
  const auto result = dimension(request);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.steps.empty());
  EXPECT_FALSE(result.report.feasible);
}

TEST(Dimensioning, ChosenConfigurationValidates) {
  const auto result = dimension(request_for(traffic::videoconference(6)));
  ASSERT_TRUE(result.feasible);
  // The returned (q, nu) must form a structurally valid FcSystem.
  FcSystem system;
  system.trees = result.trees;
  traffic::FcAdapterOptions options;
  options.trees = result.trees;
  auto rebuilt = traffic::to_fc_system(traffic::videoconference(6), options);
  for (std::size_t s = 0; s < rebuilt.sources.size(); ++s) {
    rebuilt.sources[s].nu = result.nu[s];
  }
  rebuilt.validate();
  EXPECT_TRUE(check_feasibility(rebuilt).feasible);
}

TEST(Dimensioning, RejectsDegenerateInputs) {
  DimensioningRequest request;
  EXPECT_THROW(dimension(request), util::ContractViolation);  // no sources
  request = request_for(traffic::quickstart(2));
  request.F = 48;  // not a power of 4
  EXPECT_THROW(dimension(request), util::ContractViolation);
  request = request_for(traffic::quickstart(2));
  request.max_q = 1;  // below z
  EXPECT_THROW(dimension(request), util::ContractViolation);
}

TEST(Dimensioning, FastFailsBeyondChannelCapacity) {
  // A workload whose slot-limited load alone exceeds 1 must be rejected
  // immediately, without burning the escalation budget.
  traffic::Workload wl = traffic::stock_exchange(10).scaled_load(128.0);
  auto request = request_for(wl);
  const auto result = dimension(request);
  EXPECT_FALSE(result.feasible);
  ASSERT_FALSE(result.steps.empty());
  EXPECT_NE(result.steps.front().find("slot-limited"), std::string::npos);
  EXPECT_EQ(result.steps.size(), 1u);  // no escalation attempted
}

TEST(Dimensioning, SlotLimitedLoadAccountsSlotPadding) {
  // 64-byte frames at Gigabit speed are slot-bound (0.512 us < 4.096 us):
  // the slot-limited load must use the slot time, not the bit time.
  analysis::FcSystem system;
  system.phy.psi_bps = 1e9;
  system.phy.slot_s = 4.096e-6;
  system.phy.overhead_bits = 0;
  system.trees = FcTreeParams{4, 4, 4, 64};
  FcSource src;
  src.name = "s";
  src.nu = 1;
  FcMessageClass tiny;
  tiny.name = "tiny";
  tiny.l_bits = 64 * 8;
  tiny.d_s = 1e-3;
  tiny.a = 1;
  tiny.w_s = 10e-6;  // one frame per 10 us
  src.classes.push_back(tiny);
  system.sources.push_back(src);
  // Bit-time load: 0.512us/10us = 5.12%; slot-limited: 4.096/10 = 41%.
  EXPECT_NEAR(system.offered_load(), 0.0512, 1e-6);
  EXPECT_NEAR(system.slot_limited_load(), 0.4096, 1e-6);
}

TEST(Efficiency, OverheadPerMessageMatchesXi) {
  for (const std::int64_t k : {2LL, 8LL, 32LL, 64LL}) {
    const double expected =
        (static_cast<double>(xi_closed(4, 64, k)) + 1.0) /
        static_cast<double>(k);
    EXPECT_NEAR(per_message_overhead_slots(4, 64, k), expected, 1e-12);
  }
  EXPECT_EQ(per_message_overhead_slots(4, 64, 1), 0.0);
}

TEST(Efficiency, ApproachesSaturationFloor) {
  // (xi(t,t) + 1)/t = ((t-1)/(m-1) + 1)/t -> 1/(m-1) as t grows.
  for (const int m : {2, 3, 4}) {
    const std::int64_t t = util::ipow(m, 6);
    EXPECT_NEAR(per_message_overhead_slots(m, t, t),
                saturated_overhead_slots(m), 0.02)
        << "m=" << m;
  }
}

TEST(Efficiency, MonotoneInTransmissionTime) {
  // Longer frames amortise the search overhead: efficiency rises with tx.
  double previous = 0.0;
  for (const double tx : {1e-6, 4e-6, 12e-6, 100e-6}) {
    const double eta = worst_case_efficiency(4, 64, 16, tx, 4.096e-6);
    EXPECT_GT(eta, previous);
    previous = eta;
  }
  EXPECT_LT(previous, 1.0);
}

TEST(Efficiency, HigherBranchingBeatsLowerAtSaturation) {
  // Fig. 2 consequence: quaternary search overhead is lower, so its
  // worst-case efficiency is higher for the same k and frame length.
  const double eta2 = worst_case_efficiency(2, 64, 32, 12e-6, 4.096e-6);
  const double eta4 = worst_case_efficiency(4, 64, 32, 12e-6, 4.096e-6);
  EXPECT_GT(eta4, eta2);
}

}  // namespace
}  // namespace hrtdm::analysis
