// The last-child inference (classic CRA optimisation, excluded from the
// paper's Eq. 1): correctness, exact slot savings, and replica consistency
// when enabled protocol-wide.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/xi.hpp"
#include "core/ddcr_network.hpp"
#include "core/tree_search.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace hrtdm::core {
namespace {

/// Drives an engine against a concrete set of distinct active leaves.
struct DriveResult {
  std::vector<std::int64_t> order;
  std::int64_t slots = 0;
  std::int64_t skips = 0;
};

DriveResult drive(TreeSearchEngine& engine, std::vector<std::int64_t> active) {
  DriveResult result;
  engine.begin();
  while (engine.active()) {
    const auto interval = engine.current();
    std::vector<std::int64_t> inside;
    for (const std::int64_t leaf : active) {
      if (interval.contains(leaf)) {
        inside.push_back(leaf);
      }
    }
    if (inside.empty()) {
      engine.feedback(TreeSearchEngine::Feedback::kSilence);
    } else if (inside.size() == 1) {
      result.order.push_back(inside.front());
      std::erase(active, inside.front());
      engine.feedback(TreeSearchEngine::Feedback::kSuccess);
    } else {
      engine.feedback(TreeSearchEngine::Feedback::kCollision);
    }
  }
  result.slots = engine.search_slots();
  result.skips = engine.inferred_skips();
  return result;
}

TEST(LastChildInference, PreservesResolutionOrderAndSavesExactlyTheSkips) {
  util::Rng rng(515);
  for (const auto& [m, t] : {std::pair<int, std::int64_t>{2, 64},
                             {4, 64},
                             {2, 256},
                             {3, 81}}) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::int64_t k = rng.uniform_i64(2, std::min<std::int64_t>(t, 16));
      const auto perm = rng.permutation(t);
      std::vector<std::int64_t> leaves(perm.begin(), perm.begin() + k);
      std::sort(leaves.begin(), leaves.end());

      TreeSearchEngine plain(m, t, false);
      TreeSearchEngine inferring(m, t, true);
      const auto base = drive(plain, leaves);
      const auto opt = drive(inferring, leaves);

      EXPECT_EQ(base.order, opt.order) << "m=" << m << " t=" << t;
      EXPECT_EQ(base.skips, 0);
      // Every inference skips a probe that would have been a collision
      // slot, and changes nothing else.
      EXPECT_EQ(opt.slots, base.slots - opt.skips)
          << "m=" << m << " t=" << t << " k=" << k;
      EXPECT_LE(opt.slots, base.slots);
    }
  }
}

TEST(LastChildInference, SkipsFireOnRightmostPackedPlacements) {
  // All actives in the rightmost subtree: every level's first m-1 children
  // are silent, so the inference fires once per level above the actives.
  TreeSearchEngine engine(2, 16, true);
  const auto result = drive(engine, {14, 15});
  EXPECT_EQ(result.order, (std::vector<std::int64_t>{14, 15}));
  EXPECT_GE(result.skips, 2);
  TreeSearchEngine plain(2, 16, false);
  const auto base = drive(plain, {14, 15});
  EXPECT_EQ(base.slots - result.skips, result.slots);
}

TEST(LastChildInference, LeafLastChildIsStillProbed) {
  // A single-leaf last child is never skipped: the collision slot is the
  // tie-break trigger (the static search's root probe) and must happen on
  // the channel.
  TreeSearchEngine engine(2, 4, true);
  engine.begin();
  ASSERT_EQ(engine.current().lo, 0);
  ASSERT_EQ(engine.current().size, 2);
  engine.feedback(TreeSearchEngine::Feedback::kCollision);  // [0,2) splits
  ASSERT_EQ(engine.current().size, 1);
  engine.feedback(TreeSearchEngine::Feedback::kSilence);  // [0,1) empty
  // [1,2) is the last pending sibling with no activity — but it is a leaf,
  // so it must still be exposed as a genuine probe.
  ASSERT_TRUE(engine.active());
  EXPECT_EQ(engine.current().lo, 1);
  EXPECT_EQ(engine.current().size, 1);
  const auto result = engine.feedback(TreeSearchEngine::Feedback::kCollision);
  EXPECT_EQ(result, TreeSearchEngine::StepResult::kLeafCollision);
}

TEST(LastChildInference, WorstCaseBeatsXiOnAdversarialPlacements) {
  // On the xi-achieving placements the inference strictly helps for
  // shapes where the adversary packs leaves into last children.
  analysis::XiExactTable table(2, 6);
  bool strictly_better_somewhere = false;
  for (std::int64_t k = 2; k <= 16; ++k) {
    const auto leaves = analysis::worst_case_leaves(table, k);
    TreeSearchEngine inferring(2, 64, true);
    std::vector<std::int64_t> copy(leaves.begin(), leaves.end());
    const auto result = drive(inferring, copy);
    EXPECT_LE(result.slots + 1, table.xi(k)) << "k=" << k;
    strictly_better_somewhere =
        strictly_better_somewhere || result.slots + 1 < table.xi(k);
  }
  EXPECT_TRUE(strictly_better_somewhere);
}

TEST(LastChildInference, NetworkStaysConsistentWithInferenceOn) {
  const auto wl = traffic::stock_exchange(8);
  DdcrRunOptions options;
  options.ddcr.infer_last_child = true;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(30'000'000);
  options.drain_cap = SimTime::from_ns(200'000'000);
  options.check_consistency = true;
  const auto result = run_ddcr(wl, options);
  EXPECT_TRUE(result.consistency_ok);
  EXPECT_EQ(result.undelivered, 0);
  EXPECT_EQ(result.metrics.misses, 0);
}

TEST(LastChildInference, ReducesCollisionSlotsOnTheSameWorkload) {
  const auto wl = traffic::stock_exchange(10);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = SimTime::from_ns(30'000'000);
  options.drain_cap = SimTime::from_ns(200'000'000);

  options.ddcr.infer_last_child = false;
  const auto plain = run_ddcr(wl, options);
  options.ddcr.infer_last_child = true;
  const auto inferred = run_ddcr(wl, options);
  EXPECT_EQ(plain.metrics.delivered, inferred.metrics.delivered);
  EXPECT_LE(inferred.channel.collision_slots, plain.channel.collision_slots);
}

}  // namespace
}  // namespace hrtdm::core
