// MetricsCollector: slot accounting, per-class summaries (incl. p99),
// Jain's fairness index, and the drop-late option.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

net::SlotRecord success_record(std::int64_t uid, int class_id, int source,
                               std::int64_t arrival_ns,
                               std::int64_t start_ns, std::int64_t end_ns,
                               std::int64_t deadline_ns) {
  net::SlotRecord record;
  record.kind = net::SlotKind::kSuccess;
  record.start = SimTime::from_ns(start_ns);
  record.end = SimTime::from_ns(end_ns);
  net::Frame frame;
  frame.source = source;
  frame.msg_uid = uid;
  frame.class_id = class_id;
  frame.l_bits = 100;
  frame.enqueue_time = SimTime::from_ns(arrival_ns);
  frame.absolute_deadline = SimTime::from_ns(deadline_ns);
  record.frame = frame;
  return record;
}

net::SlotRecord plain_record(net::SlotKind kind) {
  net::SlotRecord record;
  record.kind = kind;
  return record;
}

TEST(Metrics, SlotAndDeliveryAccounting) {
  MetricsCollector metrics;
  metrics.on_slot(plain_record(net::SlotKind::kSilence));
  metrics.on_slot(plain_record(net::SlotKind::kCollision));
  metrics.on_slot(plain_record(net::SlotKind::kCollision));
  metrics.on_slot(success_record(1, 0, 0, 0, 100, 200, 1'000));
  metrics.on_slot(success_record(2, 0, 1, 0, 200, 400, 300));  // late!
  const auto summary = metrics.summarize();
  EXPECT_EQ(summary.silence_slots, 1);
  EXPECT_EQ(summary.collision_slots, 2);
  EXPECT_EQ(summary.delivered, 2);
  EXPECT_EQ(summary.misses, 1);
  EXPECT_NEAR(summary.worst_latency_s, 400e-9, 1e-15);
  EXPECT_NEAR(summary.mean_latency_s, 300e-9, 1e-15);
}

TEST(Metrics, PerClassSummariesIncludePercentiles) {
  MetricsCollector metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.on_slot(success_record(i, /*class=*/7, /*source=*/0,
                                   /*arrival=*/0, i * 100, i * 100 + i * 10,
                                   /*deadline=*/10'000'000));
  }
  const auto summary = metrics.summarize();
  ASSERT_EQ(summary.per_class.size(), 1u);
  const auto& cls = summary.per_class.at(7);
  EXPECT_EQ(cls.delivered, 100);
  EXPECT_EQ(cls.misses, 0);
  // Latency of record i is i*100 + i*10 ns; p99 = the 99th value.
  EXPECT_NEAR(cls.p99_latency_s, (99 * 100 + 990) * 1e-9, 1e-15);
  EXPECT_NEAR(cls.worst_latency_s, (100 * 100 + 1000) * 1e-9, 1e-15);
}

TEST(Metrics, FairnessIndexExtremes) {
  // Perfectly fair: two sources, equal counts -> 1.0.
  MetricsCollector fair;
  for (int i = 0; i < 10; ++i) {
    fair.on_slot(success_record(i, 0, i % 2, 0, i * 100, i * 100 + 50,
                                1'000'000));
  }
  EXPECT_NEAR(fair.summarize().source_fairness, 1.0, 1e-12);

  // Monopoly over two sources: Jain -> (n)^2 / (2 n^2) = 0.5... with one
  // source holding everything and the other 1 message:
  MetricsCollector skewed;
  for (int i = 0; i < 9; ++i) {
    skewed.on_slot(success_record(i, 0, 0, 0, i * 100, i * 100 + 50,
                                  1'000'000));
  }
  skewed.on_slot(success_record(99, 0, 1, 0, 2000, 2050, 1'000'000));
  // (9 + 1)^2 / (2 * (81 + 1)) = 100 / 164.
  EXPECT_NEAR(skewed.summarize().source_fairness, 100.0 / 164.0, 1e-12);

  // Single source: index stays at its default 1.0.
  MetricsCollector single;
  single.on_slot(success_record(1, 0, 0, 0, 0, 50, 1'000'000));
  EXPECT_NEAR(single.summarize().source_fairness, 1.0, 1e-12);
}

TEST(Metrics, DdcrIsFairAcrossSymmetricSources) {
  const auto wl = traffic::quickstart(8);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = SimTime::from_ns(40'000'000);
  options.drain_cap = SimTime::from_ns(200'000'000);
  const auto result = run_ddcr(wl, options);
  EXPECT_GT(result.metrics.source_fairness, 0.99);
}

TEST(Metrics, DropLateShedsExpiredMessages) {
  DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.ddcr.class_width_c = util::Duration::microseconds(10);
  options.ddcr.alpha = util::Duration::nanoseconds(0);
  options.ddcr.drop_late_messages = true;
  DdcrTestbed bed(2, options);
  // Arrives mid-slot (t = 150 ns) with a deadline (190 ns) that expires
  // before the next contention slot boundary (200 ns): at poll time the
  // message is already dead and must be shed, never transmitted.
  traffic::Message doomed;
  doomed.uid = 1;
  doomed.class_id = 0;
  doomed.source = 0;
  doomed.l_bits = 100;
  doomed.arrival = SimTime::from_ns(150);
  doomed.absolute_deadline = SimTime::from_ns(190);
  bed.inject(0, doomed);
  traffic::Message fine;
  fine.uid = 2;
  fine.class_id = 0;
  fine.source = 0;
  fine.l_bits = 100;
  fine.arrival = SimTime::from_ns(150);
  fine.absolute_deadline = SimTime::from_ns(1'000'000);
  bed.inject(0, fine);
  bed.run(SimTime::from_ns(100'000));
  // Only the live message was transmitted; the doomed one was shed.
  ASSERT_EQ(bed.metrics().log().size(), 1u);
  EXPECT_EQ(bed.metrics().log().front().uid, 2);
  EXPECT_EQ(bed.station(0).counters().dropped_late, 1);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TxRecord tx_record(std::int64_t uid, std::int64_t tx_start_ns,
                   std::int64_t deadline_ns, std::int64_t arrival_ns = 0) {
  TxRecord record;
  record.uid = uid;
  record.arrival = SimTime::from_ns(arrival_ns);
  record.deadline = SimTime::from_ns(deadline_ns);
  record.tx_start = SimTime::from_ns(tx_start_ns);
  record.completed = SimTime::from_ns(tx_start_ns + 50);
  return record;
}

TEST(Metrics, InversionCountOnOrderedLog) {
  // Record 1 (deadline 900) transmits before record 2 (deadline 500)
  // although 2 was already waiting -> one inversion.
  std::vector<TxRecord> log;
  log.push_back(tx_record(1, 100, 900));
  log.push_back(tx_record(2, 200, 500));
  log.push_back(tx_record(3, 300, 950));
  EXPECT_EQ(count_deadline_inversions(log), 1);
}

TEST(Metrics, InversionCountRejectsUnorderedLog) {
  // Regression: the precondition used to be `a.completed <= b.tx_start ||
  // a.tx_start <= b.tx_start`, whose second disjunct is always true for a
  // log sorted by anything at all — a spliced log with decreasing
  // tx_start sailed through and produced a wrong count. It must throw.
  std::vector<TxRecord> log;
  log.push_back(tx_record(1, 500, 900));
  log.push_back(tx_record(2, 100, 500));  // tx_start goes backwards
  EXPECT_THROW(count_deadline_inversions(log), util::ContractViolation);
}

TEST(Metrics, DropLateOffTransmitsLateMessages) {
  DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.ddcr.class_width_c = util::Duration::microseconds(10);
  options.ddcr.alpha = util::Duration::nanoseconds(0);
  DdcrTestbed bed(2, options);
  traffic::Message late;
  late.uid = 1;
  late.class_id = 0;
  late.source = 0;
  late.l_bits = 100;
  late.arrival = SimTime::from_ns(0);
  late.absolute_deadline = SimTime::from_ns(50);
  bed.inject(0, late);
  bed.run(SimTime::from_ns(100'000));
  ASSERT_EQ(bed.metrics().log().size(), 1u);
  EXPECT_EQ(bed.metrics().summarize().misses, 1);
  EXPECT_EQ(bed.station(0).counters().dropped_late, 0);
}

}  // namespace
}  // namespace hrtdm::core
