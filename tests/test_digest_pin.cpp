// Pinned end-to-end determinism for the hot-path engine overhaul.
//
// The golden digests below were captured from reference CSMA/DDCR runs on
// the tree *before* the pooled event loop, the idle fast-forward and the
// concave xi kernels landed. The overhaul claims bit-identical protocol
// behaviour, so the exact same digests must come out of the new engine —
// traced or untraced, serial or parallel. Any optimisation that changes
// event ordering, skips a slot a faithful run would have delivered, or
// perturbs an RNG stream shows up here as a digest mismatch.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/conformance.hpp"
#include "core/ddcr_config.hpp"
#include "core/ddcr_network.hpp"
#include "core/multi_channel.hpp"
#include "obs/event_tracer.hpp"
#include "traffic/workload.hpp"

namespace hrtdm {
namespace {

const bool kConformanceInstalled = check::install_conformance_auditor();

struct Golden {
  int z;
  std::uint64_t digest;
  std::int64_t delivered;
  std::int64_t silence_slots;
  std::int64_t collision_slots;
};

// Captured pre-overhaul (commit e9edd51) with the options below.
constexpr Golden kGolden[] = {
    {4, 0x11feb296fdb5ae61ULL, 12, 2405, 8},
    {16, 0x38093d41393de765ULL, 48, 2309, 20},
};

core::DdcrRunOptions reference_options(const traffic::Workload& workload) {
  core::DdcrRunOptions options;
  options.ddcr.class_width_c = core::DdcrConfig::class_width_for(
      workload.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = sim::SimTime::from_ns(10'000'000);
  options.drain_cap = sim::SimTime::from_ns(50'000'000);
  return options;
}

TEST(DigestPin, UntracedRunsReproducePreOverhaulDigests) {
  for (const Golden& golden : kGolden) {
    const auto workload = traffic::quickstart(golden.z);
    const auto result = core::run_ddcr(workload, reference_options(workload));
    EXPECT_EQ(result.protocol_digest, golden.digest) << "z=" << golden.z;
    EXPECT_EQ(result.metrics.delivered, golden.delivered);
    EXPECT_EQ(result.metrics.silence_slots, golden.silence_slots);
    EXPECT_EQ(result.metrics.collision_slots, golden.collision_slots);
    EXPECT_EQ(result.undelivered, 0);
    EXPECT_TRUE(result.consistency_ok);
  }
}

TEST(DigestPin, TracedRunsMatchUntracedDigests) {
  // Tracing changes which engine paths run (per-slot spans vs one bulk
  // idle-gap span, label formatting) but must never change the protocol.
  for (const Golden& golden : kGolden) {
    const auto workload = traffic::quickstart(golden.z);
    auto options = reference_options(workload);
    obs::EventTracer tracer;
    options.tracer = &tracer;
    const auto result = core::run_ddcr(workload, options);
    EXPECT_EQ(result.protocol_digest, golden.digest) << "z=" << golden.z;
    EXPECT_GT(tracer.size(), 0u) << "tracer was installed but saw nothing";
  }
}

TEST(DigestPin, ConformanceCheckedRunsKeepTheGoldenDigests) {
  // The conformance auditor is a pure channel observer: turning it on must
  // not perturb a single slot. The pre-overhaul golden digests stand.
  ASSERT_TRUE(kConformanceInstalled);
  for (const Golden& golden : kGolden) {
    const auto workload = traffic::quickstart(golden.z);
    auto options = reference_options(workload);
    options.conformance_check = true;
    const auto result = core::run_ddcr(workload, options);
    EXPECT_EQ(result.protocol_digest, golden.digest) << "z=" << golden.z;
    EXPECT_EQ(result.metrics.delivered, golden.delivered);
    EXPECT_EQ(result.metrics.silence_slots, golden.silence_slots);
    EXPECT_EQ(result.metrics.collision_slots, golden.collision_slots);
    EXPECT_TRUE(result.conformance.checked);
    EXPECT_TRUE(result.conformance.ok) << result.conformance.summary();
  }
  // Third configuration of the seed matrix: z = 8 has no hardcoded golden,
  // so pin checked-vs-unchecked equality directly.
  const auto workload = traffic::quickstart(8);
  auto checked_options = reference_options(workload);
  checked_options.conformance_check = true;
  const auto checked = core::run_ddcr(workload, checked_options);
  const auto unchecked = core::run_ddcr(workload, reference_options(workload));
  EXPECT_EQ(checked.protocol_digest, unchecked.protocol_digest);
  EXPECT_EQ(checked.metrics.delivered, unchecked.metrics.delivered);
  EXPECT_EQ(checked.metrics.silence_slots, unchecked.metrics.silence_slots);
  EXPECT_TRUE(checked.conformance.ok) << checked.conformance.summary();
}

TEST(DigestPin, RunsAreRepeatable) {
  const auto workload = traffic::quickstart(4);
  const auto options = reference_options(workload);
  const auto first = core::run_ddcr(workload, options);
  const auto second = core::run_ddcr(workload, options);
  EXPECT_EQ(first.protocol_digest, second.protocol_digest);
}

TEST(DigestPin, SerialAndParallelMultiChannelAgree) {
  // The multi-channel runner promises bit-identical results regardless of
  // worker count; pin that against the overhauled engine.
  const auto workload = traffic::quickstart(12);
  const auto options = reference_options(workload);
  const auto serial = core::run_multi_channel(workload, 3, options, 1);
  const auto parallel = core::run_multi_channel(workload, 3, options, 4);
  EXPECT_NE(serial.protocol_digest, 0u);
  EXPECT_EQ(serial.protocol_digest, parallel.protocol_digest);
  EXPECT_EQ(serial.delivered, parallel.delivered);
  EXPECT_EQ(serial.misses, parallel.misses);
  ASSERT_EQ(serial.per_channel.size(), parallel.per_channel.size());
  for (std::size_t ch = 0; ch < serial.per_channel.size(); ++ch) {
    EXPECT_EQ(serial.per_channel[ch].protocol_digest,
              parallel.per_channel[ch].protocol_digest)
        << "channel " << ch;
  }
}

}  // namespace
}  // namespace hrtdm
