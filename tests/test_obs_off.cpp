// Compiled with -DHRTDM_OBS_OFF (see tests/CMakeLists.txt): proves the
// observability macros disappear entirely — no code, no argument
// evaluation, no registry registrations — so an instrumented hot path
// costs nothing in an obs-off build.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#ifndef HRTDM_OBS_OFF
#error "this test must be compiled with HRTDM_OBS_OFF"
#endif

namespace hrtdm::obs {
namespace {

TEST(ObsOff, MacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return std::int64_t{1};
  };
  (void)touch;  // only "used" when the macros expand to real code
  HRTDM_COUNT("off.counter");
  HRTDM_COUNT_N("off.counter", touch());
  HRTDM_OBSERVE("off.hist", touch());
  HRTDM_GAUGE_SET("off.gauge", touch());
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsOff, MacrosRegisterNothing) {
  // This TU's macros above are no-ops, so none of the "off.*" names exist.
  // (The registry API itself stays available: explicit calls still work,
  // which is what keeps snapshot plumbing compilable in obs-off builds.)
  const RegistrySnapshot snap = Registry::global().snapshot();
  for (const auto& counter : snap.counters) {
    EXPECT_NE(counter.name.substr(0, 4), "off.");
  }
  for (const auto& gauge : snap.gauges) {
    EXPECT_NE(gauge.name.substr(0, 4), "off.");
  }
  for (const auto& hist : snap.histograms) {
    EXPECT_NE(hist.name.substr(0, 4), "off.");
  }
}

TEST(ObsOff, ExplicitRegistryStillWorks) {
  Registry reg;
  reg.counter("explicit").inc(2);
  EXPECT_EQ(reg.counter("explicit").value(), 2);
}

}  // namespace
}  // namespace hrtdm::obs
