// The slotted broadcast channel: outcome resolution, timing, safety
// (mutual exclusion), arbitration mode and packet bursting.
#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace hrtdm::net {
namespace {

using sim::Simulator;
using util::Duration;
using util::SimTime;

/// Scripted station: transmits the queued frames whenever polled.
class ScriptedStation final : public Station {
 public:
  explicit ScriptedStation(int id) : id_(id) {}

  int id() const override { return id_; }

  void queue_frame(std::int64_t uid, std::int64_t bits,
                   std::int64_t arb_key = 0) {
    Frame frame;
    frame.source = id_;
    frame.msg_uid = uid;
    frame.class_id = 0;
    frame.l_bits = bits;
    frame.arb_key = arb_key;
    pending_.push_back(frame);
  }

  void set_burst_frames(std::vector<Frame> frames) {
    burst_ = std::move(frames);
  }

  std::optional<Frame> poll_intent(SimTime now) override {
    (void)now;
    if (pending_.empty()) {
      return std::nullopt;
    }
    return pending_.front();
  }

  std::optional<Frame> poll_burst(SimTime now,
                                  std::int64_t budget_bits) override {
    (void)now;
    if (burst_.empty() || burst_.front().l_bits > budget_bits) {
      return std::nullopt;
    }
    Frame next = burst_.front();
    burst_.erase(burst_.begin());
    return next;
  }

  void observe(const SlotObservation& obs) override {
    observations_.push_back(obs);
    if (obs.kind == SlotKind::kSuccess && obs.frame->source == id_ &&
        !pending_.empty() && pending_.front().msg_uid == obs.frame->msg_uid) {
      pending_.pop_front();
    }
  }

  const std::vector<SlotObservation>& observations() const {
    return observations_;
  }

 private:
  int id_;
  std::deque<Frame> pending_;
  std::vector<Frame> burst_;
  std::vector<SlotObservation> observations_;
};

PhyConfig test_phy() {
  PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;  // 1 bit per ns
  phy.overhead_bits = 0;
  return phy;
}

struct Fixture {
  Simulator sim;
  PhyConfig phy = test_phy();
  std::vector<std::unique_ptr<ScriptedStation>> stations;
  std::unique_ptr<BroadcastChannel> channel;

  explicit Fixture(int n, CollisionMode mode = CollisionMode::kDestructive,
                   std::int64_t burst_bits = 0) {
    phy.burst_budget_bits = burst_bits;
    channel = std::make_unique<BroadcastChannel>(sim, phy, mode);
    for (int i = 0; i < n; ++i) {
      stations.push_back(std::make_unique<ScriptedStation>(i));
      channel->attach(*stations.back());
    }
  }
};

TEST(Channel, SilenceSlotsAdvanceBySlotTime) {
  Fixture f(2);
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(1000));
  EXPECT_EQ(f.channel->stats().silence_slots, 10);
  EXPECT_EQ(f.channel->stats().successes, 0);
  // Every station observed every slot.
  EXPECT_EQ(f.stations[0]->observations().size(), 10u);
  EXPECT_EQ(f.stations[1]->observations().size(), 10u);
}

TEST(Channel, SingleTransmitterSucceeds) {
  Fixture f(2);
  f.stations[0]->queue_frame(7, 500);  // 500 ns transmission
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(500));
  const auto& stats = f.channel->stats();
  EXPECT_EQ(stats.successes, 1);
  EXPECT_EQ(stats.bits_delivered, 500);
  // The other station heard the same success.
  const auto& obs = f.stations[1]->observations();
  ASSERT_FALSE(obs.empty());
  EXPECT_EQ(obs.front().kind, SlotKind::kSuccess);
  EXPECT_EQ(obs.front().frame->msg_uid, 7);
  EXPECT_EQ(obs.front().slot_end.ns(), 500);
}

TEST(Channel, ShortFrameStillOccupiesOneSlot) {
  Fixture f(1);
  f.stations[0]->queue_frame(1, 10);  // 10 ns << slot 100 ns
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(100));
  ASSERT_EQ(f.channel->stats().successes, 1);
  EXPECT_EQ(f.stations[0]->observations().front().slot_end.ns(), 100);
}

TEST(Channel, TwoTransmittersCollideDestructively) {
  Fixture f(3);
  f.stations[0]->queue_frame(1, 500);
  f.stations[1]->queue_frame(2, 500);
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(100));
  EXPECT_EQ(f.channel->stats().collision_slots, 1);
  EXPECT_EQ(f.channel->stats().successes, 0);
  for (const auto& station : f.stations) {
    ASSERT_EQ(station->observations().size(), 1u);
    EXPECT_EQ(station->observations().front().kind, SlotKind::kCollision);
    EXPECT_FALSE(station->observations().front().frame.has_value());
  }
}

TEST(Channel, SafetyNoSuccessWithTwoContenders) {
  // HRTDM safety: simultaneous transmissions are never delivered.
  Fixture f(2);
  for (int i = 0; i < 20; ++i) {
    f.stations[0]->queue_frame(100 + i, 300);
    f.stations[1]->queue_frame(200 + i, 300);
  }
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(50'000));
  // Scripted stations never back off, so the collision repeats forever and
  // nothing is ever delivered.
  EXPECT_EQ(f.channel->stats().successes, 0);
  EXPECT_GT(f.channel->stats().collision_slots, 100);
}

TEST(Channel, ArbitrationModeDeliversLowestKey) {
  Fixture f(3, CollisionMode::kArbitration);
  f.stations[0]->queue_frame(10, 400, /*arb_key=*/300);
  f.stations[1]->queue_frame(11, 400, /*arb_key=*/100);  // winner
  f.stations[2]->queue_frame(12, 400, /*arb_key=*/200);
  f.channel->start();
  // Arbitration slot (100 ns) + transmission (400 ns).
  f.sim.run_until(SimTime::from_ns(500));
  const auto& stats = f.channel->stats();
  EXPECT_EQ(stats.successes, 1);
  EXPECT_EQ(stats.arbitration_wins, 1);
  EXPECT_EQ(stats.collision_slots, 0);
  const auto& obs = f.stations[0]->observations();
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs.front().kind, SlotKind::kSuccess);
  EXPECT_TRUE(obs.front().arbitration);
  EXPECT_EQ(obs.front().frame->msg_uid, 11);
  EXPECT_EQ(obs.front().slot_end.ns(), 500);
}

TEST(Channel, ArbitrationDrainsInKeyOrder) {
  Fixture f(2, CollisionMode::kArbitration);
  f.stations[0]->queue_frame(1, 200, 50);
  f.stations[0]->queue_frame(2, 200, 70);
  f.stations[1]->queue_frame(3, 200, 60);
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(5'000));
  const auto& obs = f.stations[0]->observations();
  std::vector<std::int64_t> delivered;
  for (const auto& o : obs) {
    if (o.kind == SlotKind::kSuccess) {
      delivered.push_back(o.frame->msg_uid);
    }
  }
  EXPECT_EQ(delivered, (std::vector<std::int64_t>{1, 3, 2}));
}

TEST(Channel, BurstChainsFramesWithoutContention) {
  Fixture f(2, CollisionMode::kDestructive, /*burst_bits=*/4096);
  f.stations[0]->queue_frame(1, 1000);
  Frame b1;
  b1.source = 0;
  b1.msg_uid = 2;
  b1.l_bits = 2000;
  Frame b2;
  b2.source = 0;
  b2.msg_uid = 3;
  b2.l_bits = 3000;  // exceeds remaining budget (4096 - 2000)
  f.stations[0]->set_burst_frames({b1, b2});
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(10'000));
  const auto& stats = f.channel->stats();
  EXPECT_EQ(stats.burst_continuations, 1);  // b1 fit, b2 did not
  EXPECT_EQ(stats.bits_delivered, 1000 + 2000);
  // The continuation was flagged in_burst for everyone.
  int bursts_seen = 0;
  for (const auto& o : f.stations[1]->observations()) {
    bursts_seen += o.in_burst ? 1 : 0;
  }
  EXPECT_EQ(bursts_seen, 1);
}

TEST(Channel, StopHaltsTheSlotLoop) {
  Fixture f(1);
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(500));
  f.channel->stop();
  const auto fired = f.sim.events_fired();
  f.sim.run_until(SimTime::from_ns(5'000));
  EXPECT_LE(f.sim.events_fired(), fired + 1);  // at most the pending delivery
}

TEST(Channel, UtilizationReflectsBusyTime) {
  Fixture f(1);
  f.stations[0]->queue_frame(1, 900);
  f.channel->start();
  f.sim.run_until(SimTime::from_ns(1000));
  // 900 ns busy out of 1000 ns elapsed, remainder silence.
  EXPECT_NEAR(f.channel->utilization(), 0.9, 1e-9);
}

TEST(Channel, RejectsMisconfiguration) {
  Simulator sim;
  BroadcastChannel channel(sim, test_phy());
  EXPECT_THROW(channel.start(), util::ContractViolation);  // no stations
  ScriptedStation a(0);
  ScriptedStation dup(0);
  channel.attach(a);
  EXPECT_THROW(channel.attach(dup), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::net
