// Shrinking replay harness tests: the ReplayCase round-trip, the replay
// path under the full differential, and the ddmin search itself — which
// must be deterministic, respect the eval budget and actually minimise.
#include <gtest/gtest.h>

#include <string>

#include "check/shrinker.hpp"
#include "util/check.hpp"

namespace hrtdm::check {
namespace {

using traffic::Message;
using util::Duration;
using util::SimTime;

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_ns, std::int64_t l_bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.source = source;
  msg.class_id = source;
  msg.l_bits = l_bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

ReplayCase tiny_case() {
  ReplayCase c;
  c.name = "tiny";
  c.stations = 2;
  c.phy.slot_x = Duration::nanoseconds(100);
  c.phy.psi_bps = 1e9;
  c.phy.overhead_bits = 0;
  c.ddcr.m_time = 2;
  c.ddcr.F = 16;
  c.ddcr.m_static = 2;
  c.ddcr.q = 4;
  c.ddcr.class_width_c = Duration::microseconds(2);
  c.ddcr.alpha = Duration::nanoseconds(0);
  c.messages = {make_msg(0, 0, 0, 50'000), make_msg(1, 1, 0, 60'000)};
  return c;
}

TEST(ReplayCaseTest, SerializeParseRoundTrip) {
  ReplayCase c = tiny_case();
  c.collision_mode = net::CollisionMode::kArbitration;
  c.ddcr.epoch_mode = core::EpochMode::kPerpetual;
  c.ddcr.infer_last_child = true;
  c.ddcr.theta_factor = 1.5;
  c.expect_timeliness = true;
  c.edf_tolerance = Duration::microseconds(3);

  const ReplayCase parsed = parse_case(serialize_case(c));
  EXPECT_EQ(parsed.name, c.name);
  EXPECT_EQ(parsed.stations, c.stations);
  EXPECT_EQ(parsed.phy.slot_x, c.phy.slot_x);
  EXPECT_EQ(parsed.collision_mode, c.collision_mode);
  EXPECT_EQ(parsed.ddcr.m_time, c.ddcr.m_time);
  EXPECT_EQ(parsed.ddcr.F, c.ddcr.F);
  EXPECT_EQ(parsed.ddcr.q, c.ddcr.q);
  EXPECT_EQ(parsed.ddcr.epoch_mode, c.ddcr.epoch_mode);
  EXPECT_EQ(parsed.ddcr.infer_last_child, c.ddcr.infer_last_child);
  EXPECT_DOUBLE_EQ(parsed.ddcr.theta_factor, c.ddcr.theta_factor);
  EXPECT_EQ(parsed.expect_timeliness, c.expect_timeliness);
  EXPECT_EQ(parsed.edf_tolerance, c.edf_tolerance);
  ASSERT_EQ(parsed.messages.size(), c.messages.size());
  for (std::size_t i = 0; i < parsed.messages.size(); ++i) {
    EXPECT_EQ(parsed.messages[i].uid, c.messages[i].uid);
    EXPECT_EQ(parsed.messages[i].source, c.messages[i].source);
    EXPECT_EQ(parsed.messages[i].arrival, c.messages[i].arrival);
    EXPECT_EQ(parsed.messages[i].absolute_deadline,
              c.messages[i].absolute_deadline);
  }
  // Serialisation is canonical: a second round-trip is a fixed point.
  EXPECT_EQ(serialize_case(parsed), serialize_case(c));
}

TEST(ReplayCaseTest, ParserIgnoresCommentsAndBlankLines) {
  const std::string text =
      "# pinned reproducer\n"
      "repro commented\n"
      "\n"
      "phy slot_ns=100 psi_bps=1000000000 overhead_bits=0 burst_bits=0\n"
      "mode destructive  # default\n"
      "ddcr m_time=2 F=16 c_ns=2000 alpha_ns=0 theta_pm=1000 m_static=2 "
      "q=4 epoch=fallback infer_last=0 drop_late=0 max_empty_tts=2\n"
      "stations 1\n"
      "expect timeliness=0 tolerance_ns=0\n"
      "msg uid=3 source=0 class=0 l_bits=100 arrival_ns=0 deadline_ns=9000\n";
  const ReplayCase c = parse_case(text);
  EXPECT_EQ(c.name, "commented");
  ASSERT_EQ(c.messages.size(), 1u);
  EXPECT_EQ(c.messages[0].uid, 3);
}

TEST(ReplayCaseTest, ValidateRejectsBrokenCases) {
  ReplayCase dup = tiny_case();
  dup.messages.push_back(make_msg(0, 0, 100, 70'000));  // uid collides
  EXPECT_THROW(dup.validate(), util::ContractViolation);

  ReplayCase range = tiny_case();
  range.messages[0].source = 7;  // only 2 stations
  EXPECT_THROW(range.validate(), util::ContractViolation);

  ReplayCase noisy = tiny_case();
  noisy.phy.corruption_prob = 0.1;
  EXPECT_THROW(noisy.validate(), util::ContractViolation);

  ReplayCase inverted = tiny_case();
  inverted.messages[0].absolute_deadline =
      inverted.messages[0].arrival - Duration::nanoseconds(1);
  EXPECT_THROW(inverted.validate(), util::ContractViolation);
}

TEST(ReplayCaseTest, CleanCaseReplaysGreen) {
  const auto report = replay_case(tiny_case());
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_GT(report.slots_checked, 0);
}

ReplayCase hostile_case() {
  ReplayCase c = tiny_case();
  c.name = "hostile";
  c.stations = 3;
  c.ddcr.q = 16;
  c.ddcr.max_empty_tts = 2;  // rejoin-capable: hostile axes need it
  c.fault_seed = 5;
  c.fault_plan.crashes.push_back({12, 1});
  c.fault_plan.symmetric.push_back({20, 30, 0.5});
  c.fault_plan.asymmetric.push_back(
      {35, 40, 2, fault::AsymmetricKind::kMissReceive, 1.0});
  c.churn.events.push_back({50, 0, fault::ChurnKind::kLeave});
  c.churn.events.push_back({120, 0, fault::ChurnKind::kJoin});
  c.drift.specs.push_back({2, Duration::nanoseconds(-30), 250.0,
                           Duration::nanoseconds(45)});
  c.messages = {make_msg(0, 0, 0, 50'000), make_msg(1, 1, 0, 60'000),
                make_msg(2, 2, 400, 70'000)};
  return c;
}

TEST(ReplayCaseTest, HostileFieldsRoundTripThroughTheTextFormat) {
  const ReplayCase c = hostile_case();
  const ReplayCase parsed = parse_case(serialize_case(c));
  EXPECT_EQ(parsed.fault_seed, c.fault_seed);
  ASSERT_EQ(parsed.fault_plan.crashes.size(), 1u);
  EXPECT_EQ(parsed.fault_plan.crashes[0].at_observation, 12);
  EXPECT_EQ(parsed.fault_plan.crashes[0].station, 1);
  ASSERT_EQ(parsed.fault_plan.symmetric.size(), 1u);
  EXPECT_EQ(parsed.fault_plan.symmetric[0].from_observation, 20);
  EXPECT_EQ(parsed.fault_plan.symmetric[0].to_observation, 30);
  EXPECT_DOUBLE_EQ(parsed.fault_plan.symmetric[0].prob, 0.5);
  ASSERT_EQ(parsed.fault_plan.asymmetric.size(), 1u);
  EXPECT_EQ(parsed.fault_plan.asymmetric[0].station, 2);
  EXPECT_EQ(parsed.fault_plan.asymmetric[0].kind,
            fault::AsymmetricKind::kMissReceive);
  ASSERT_EQ(parsed.churn.events.size(), 2u);
  EXPECT_EQ(parsed.churn.events[0].kind, fault::ChurnKind::kLeave);
  EXPECT_EQ(parsed.churn.events[1].at_observation, 120);
  ASSERT_EQ(parsed.drift.specs.size(), 1u);
  EXPECT_EQ(parsed.drift.specs[0].station, 2);
  EXPECT_EQ(parsed.drift.specs[0].initial_phase.ns(), -30);
  EXPECT_DOUBLE_EQ(parsed.drift.specs[0].rate_ppm, 250.0);
  EXPECT_EQ(parsed.drift.specs[0].phase_bound.ns(), 45);
  // Canonical: a second round-trip is a fixed point.
  EXPECT_EQ(serialize_case(parsed), serialize_case(c));
}

TEST(ReplayCaseTest, GilbertElliottModeRoundTripsAndStaysOptional) {
  ReplayCase c = tiny_case();
  c.phy.gilbert_elliott(0.1, 0.25, 0.0, 0.5);
  const ReplayCase parsed = parse_case(serialize_case(c));
  EXPECT_TRUE(parsed.phy.ge_enabled);
  EXPECT_DOUBLE_EQ(parsed.phy.ge_p_good_bad, 0.1);
  EXPECT_DOUBLE_EQ(parsed.phy.ge_p_bad_good, 0.25);
  EXPECT_DOUBLE_EQ(parsed.phy.ge_loss_good, 0.0);
  EXPECT_DOUBLE_EQ(parsed.phy.ge_loss_bad, 0.5);
  // A clean case serialises no ge/fault/churn/drift/seed lines at all.
  const std::string clean = serialize_case(tiny_case());
  EXPECT_EQ(clean.find("ge "), std::string::npos);
  EXPECT_EQ(clean.find("seed "), std::string::npos);
}

TEST(ReplayCaseTest, ValidateRejectsBrokenHostilePlans) {
  ReplayCase dangling = tiny_case();
  dangling.churn.events.push_back({10, 0, fault::ChurnKind::kLeave});
  EXPECT_THROW(dangling.validate(), util::ContractViolation);  // no join

  ReplayCase out_of_range = tiny_case();
  out_of_range.drift.specs.push_back({9, Duration::nanoseconds(10), 0.0,
                                      Duration()});
  EXPECT_THROW(out_of_range.validate(), util::ContractViolation);
}

TEST(ReplayCaseTest, HostileCaseReplaysGreenUnderThePrefixClippedCheck) {
  const auto report = replay_case(hostile_case());
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_GT(report.slots_checked, 0);
}

TEST(ShrinkerTest, RenumberingKeepsPlanReferencedStations) {
  // Station 2 carries no traffic but is the drift victim and churn target:
  // the structural renumbering pass must keep it (and remap the plan ids
  // consistently) instead of compacting it away into an invalid plan.
  ReplayCase start = tiny_case();
  start.stations = 4;
  start.ddcr.max_empty_tts = 2;
  start.messages = {make_msg(0, 0, 0, 50'000), make_msg(1, 3, 0, 60'000)};
  start.churn.events.push_back({40, 2, fault::ChurnKind::kLeave});
  start.churn.events.push_back({90, 2, fault::ChurnKind::kJoin});
  Shrinker shrinker([](const ReplayCase& c) { return !c.messages.empty(); });
  const ShrinkResult result = shrinker.shrink(start);
  result.minimal.validate();
  ASSERT_EQ(result.minimal.churn.events.size(), 2u);
  EXPECT_LT(result.minimal.churn.events[0].station, result.minimal.stations);
}

TEST(ShrinkerTest, RequiresAFailingStart) {
  Shrinker shrinker([](const ReplayCase&) { return false; });
  EXPECT_THROW(shrinker.shrink(tiny_case()), util::ContractViolation);
}

TEST(ShrinkerTest, DdminReducesToTheSingleRelevantMessage) {
  // Pure structural property (no replay): "uid 7 is present". ddmin must
  // strip the other nine messages, renumber sources densely and shift the
  // time origin to the surviving arrival.
  ReplayCase start = tiny_case();
  start.stations = 5;
  start.messages.clear();
  for (int i = 0; i < 10; ++i) {
    start.messages.push_back(
        make_msg(i, i % 5, 1'000 + i * 200, 90'000 + i * 200));
  }
  Shrinker shrinker([](const ReplayCase& c) {
    for (const Message& msg : c.messages) {
      if (msg.uid == 7) return true;
    }
    return false;
  });
  const ShrinkResult result = shrinker.shrink(start);
  ASSERT_EQ(result.minimal.messages.size(), 1u);
  EXPECT_EQ(result.minimal.messages[0].uid, 7);
  EXPECT_EQ(result.minimal.messages[0].source, 0);
  EXPECT_EQ(result.minimal.stations, 1);
  EXPECT_EQ(result.minimal.messages[0].arrival, SimTime::zero());
  EXPECT_GT(result.accepted, 0);
  EXPECT_LE(result.evals, 400);
}

TEST(ShrinkerTest, ShrinkingIsDeterministic) {
  ReplayCase start = tiny_case();
  start.stations = 4;
  start.messages.clear();
  for (int i = 0; i < 8; ++i) {
    start.messages.push_back(make_msg(i, i % 4, i * 300, 80'000));
  }
  Shrinker shrinker([](const ReplayCase& c) {
    return c.messages.size() >= 2;  // anything with >= 2 messages "fails"
  });
  const auto first = shrinker.shrink(start);
  const auto second = shrinker.shrink(start);
  EXPECT_EQ(serialize_case(first.minimal), serialize_case(second.minimal));
  EXPECT_EQ(first.evals, second.evals);
  EXPECT_EQ(first.minimal.messages.size(), 2u);
}

TEST(ShrinkerTest, ConformancePropertyShrinksAnInfeasibleTimelinessClaim) {
  // End-to-end through replay_case: five harmless messages plus one whose
  // deadline even the clairvoyant NP-EDF server cannot meet, wrongly
  // declared timely. The conformance differential fails on the oracle
  // infeasibility; the shrinker must isolate the impossible message.
  ReplayCase start = tiny_case();
  start.expect_timeliness = true;
  start.messages.clear();
  for (int i = 0; i < 5; ++i) {
    start.messages.push_back(make_msg(i, i % 2, i * 400, 500'000));
  }
  // 1000 bits = 1 us of wire time against a 200 ns relative deadline.
  start.messages.push_back(make_msg(5, 1, 2'000, 2'200, 1000));

  const Shrinker shrinker(Shrinker::conformance_fails());
  const ShrinkResult result = shrinker.shrink(start, /*max_evals=*/60);
  ASSERT_EQ(result.minimal.messages.size(), 1u);
  EXPECT_EQ(result.minimal.messages[0].uid, 5);
  EXPECT_EQ(result.minimal.stations, 1);
  EXPECT_EQ(result.minimal.messages[0].arrival, SimTime::zero());
  // The shrunk case still fails, and serialisation round-trips it.
  EXPECT_FALSE(replay_case(result.minimal).ok);
  const ReplayCase reparsed = parse_case(serialize_case(result.minimal));
  EXPECT_FALSE(replay_case(reparsed).ok);
}

}  // namespace
}  // namespace hrtdm::check
