// Shrinking replay harness tests: the ReplayCase round-trip, the replay
// path under the full differential, and the ddmin search itself — which
// must be deterministic, respect the eval budget and actually minimise.
#include <gtest/gtest.h>

#include <string>

#include "check/shrinker.hpp"
#include "util/check.hpp"

namespace hrtdm::check {
namespace {

using traffic::Message;
using util::Duration;
using util::SimTime;

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_ns, std::int64_t l_bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.source = source;
  msg.class_id = source;
  msg.l_bits = l_bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

ReplayCase tiny_case() {
  ReplayCase c;
  c.name = "tiny";
  c.stations = 2;
  c.phy.slot_x = Duration::nanoseconds(100);
  c.phy.psi_bps = 1e9;
  c.phy.overhead_bits = 0;
  c.ddcr.m_time = 2;
  c.ddcr.F = 16;
  c.ddcr.m_static = 2;
  c.ddcr.q = 4;
  c.ddcr.class_width_c = Duration::microseconds(2);
  c.ddcr.alpha = Duration::nanoseconds(0);
  c.messages = {make_msg(0, 0, 0, 50'000), make_msg(1, 1, 0, 60'000)};
  return c;
}

TEST(ReplayCaseTest, SerializeParseRoundTrip) {
  ReplayCase c = tiny_case();
  c.collision_mode = net::CollisionMode::kArbitration;
  c.ddcr.epoch_mode = core::EpochMode::kPerpetual;
  c.ddcr.infer_last_child = true;
  c.ddcr.theta_factor = 1.5;
  c.expect_timeliness = true;
  c.edf_tolerance = Duration::microseconds(3);

  const ReplayCase parsed = parse_case(serialize_case(c));
  EXPECT_EQ(parsed.name, c.name);
  EXPECT_EQ(parsed.stations, c.stations);
  EXPECT_EQ(parsed.phy.slot_x, c.phy.slot_x);
  EXPECT_EQ(parsed.collision_mode, c.collision_mode);
  EXPECT_EQ(parsed.ddcr.m_time, c.ddcr.m_time);
  EXPECT_EQ(parsed.ddcr.F, c.ddcr.F);
  EXPECT_EQ(parsed.ddcr.q, c.ddcr.q);
  EXPECT_EQ(parsed.ddcr.epoch_mode, c.ddcr.epoch_mode);
  EXPECT_EQ(parsed.ddcr.infer_last_child, c.ddcr.infer_last_child);
  EXPECT_DOUBLE_EQ(parsed.ddcr.theta_factor, c.ddcr.theta_factor);
  EXPECT_EQ(parsed.expect_timeliness, c.expect_timeliness);
  EXPECT_EQ(parsed.edf_tolerance, c.edf_tolerance);
  ASSERT_EQ(parsed.messages.size(), c.messages.size());
  for (std::size_t i = 0; i < parsed.messages.size(); ++i) {
    EXPECT_EQ(parsed.messages[i].uid, c.messages[i].uid);
    EXPECT_EQ(parsed.messages[i].source, c.messages[i].source);
    EXPECT_EQ(parsed.messages[i].arrival, c.messages[i].arrival);
    EXPECT_EQ(parsed.messages[i].absolute_deadline,
              c.messages[i].absolute_deadline);
  }
  // Serialisation is canonical: a second round-trip is a fixed point.
  EXPECT_EQ(serialize_case(parsed), serialize_case(c));
}

TEST(ReplayCaseTest, ParserIgnoresCommentsAndBlankLines) {
  const std::string text =
      "# pinned reproducer\n"
      "repro commented\n"
      "\n"
      "phy slot_ns=100 psi_bps=1000000000 overhead_bits=0 burst_bits=0\n"
      "mode destructive  # default\n"
      "ddcr m_time=2 F=16 c_ns=2000 alpha_ns=0 theta_pm=1000 m_static=2 "
      "q=4 epoch=fallback infer_last=0 drop_late=0 max_empty_tts=2\n"
      "stations 1\n"
      "expect timeliness=0 tolerance_ns=0\n"
      "msg uid=3 source=0 class=0 l_bits=100 arrival_ns=0 deadline_ns=9000\n";
  const ReplayCase c = parse_case(text);
  EXPECT_EQ(c.name, "commented");
  ASSERT_EQ(c.messages.size(), 1u);
  EXPECT_EQ(c.messages[0].uid, 3);
}

TEST(ReplayCaseTest, ValidateRejectsBrokenCases) {
  ReplayCase dup = tiny_case();
  dup.messages.push_back(make_msg(0, 0, 100, 70'000));  // uid collides
  EXPECT_THROW(dup.validate(), util::ContractViolation);

  ReplayCase range = tiny_case();
  range.messages[0].source = 7;  // only 2 stations
  EXPECT_THROW(range.validate(), util::ContractViolation);

  ReplayCase noisy = tiny_case();
  noisy.phy.corruption_prob = 0.1;
  EXPECT_THROW(noisy.validate(), util::ContractViolation);

  ReplayCase inverted = tiny_case();
  inverted.messages[0].absolute_deadline =
      inverted.messages[0].arrival - Duration::nanoseconds(1);
  EXPECT_THROW(inverted.validate(), util::ContractViolation);
}

TEST(ReplayCaseTest, CleanCaseReplaysGreen) {
  const auto report = replay_case(tiny_case());
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_GT(report.slots_checked, 0);
}

TEST(ShrinkerTest, RequiresAFailingStart) {
  Shrinker shrinker([](const ReplayCase&) { return false; });
  EXPECT_THROW(shrinker.shrink(tiny_case()), util::ContractViolation);
}

TEST(ShrinkerTest, DdminReducesToTheSingleRelevantMessage) {
  // Pure structural property (no replay): "uid 7 is present". ddmin must
  // strip the other nine messages, renumber sources densely and shift the
  // time origin to the surviving arrival.
  ReplayCase start = tiny_case();
  start.stations = 5;
  start.messages.clear();
  for (int i = 0; i < 10; ++i) {
    start.messages.push_back(
        make_msg(i, i % 5, 1'000 + i * 200, 90'000 + i * 200));
  }
  Shrinker shrinker([](const ReplayCase& c) {
    for (const Message& msg : c.messages) {
      if (msg.uid == 7) return true;
    }
    return false;
  });
  const ShrinkResult result = shrinker.shrink(start);
  ASSERT_EQ(result.minimal.messages.size(), 1u);
  EXPECT_EQ(result.minimal.messages[0].uid, 7);
  EXPECT_EQ(result.minimal.messages[0].source, 0);
  EXPECT_EQ(result.minimal.stations, 1);
  EXPECT_EQ(result.minimal.messages[0].arrival, SimTime::zero());
  EXPECT_GT(result.accepted, 0);
  EXPECT_LE(result.evals, 400);
}

TEST(ShrinkerTest, ShrinkingIsDeterministic) {
  ReplayCase start = tiny_case();
  start.stations = 4;
  start.messages.clear();
  for (int i = 0; i < 8; ++i) {
    start.messages.push_back(make_msg(i, i % 4, i * 300, 80'000));
  }
  Shrinker shrinker([](const ReplayCase& c) {
    return c.messages.size() >= 2;  // anything with >= 2 messages "fails"
  });
  const auto first = shrinker.shrink(start);
  const auto second = shrinker.shrink(start);
  EXPECT_EQ(serialize_case(first.minimal), serialize_case(second.minimal));
  EXPECT_EQ(first.evals, second.evals);
  EXPECT_EQ(first.minimal.messages.size(), 2u);
}

TEST(ShrinkerTest, ConformancePropertyShrinksAnInfeasibleTimelinessClaim) {
  // End-to-end through replay_case: five harmless messages plus one whose
  // deadline even the clairvoyant NP-EDF server cannot meet, wrongly
  // declared timely. The conformance differential fails on the oracle
  // infeasibility; the shrinker must isolate the impossible message.
  ReplayCase start = tiny_case();
  start.expect_timeliness = true;
  start.messages.clear();
  for (int i = 0; i < 5; ++i) {
    start.messages.push_back(make_msg(i, i % 2, i * 400, 500'000));
  }
  // 1000 bits = 1 us of wire time against a 200 ns relative deadline.
  start.messages.push_back(make_msg(5, 1, 2'000, 2'200, 1000));

  const Shrinker shrinker(Shrinker::conformance_fails());
  const ShrinkResult result = shrinker.shrink(start, /*max_evals=*/60);
  ASSERT_EQ(result.minimal.messages.size(), 1u);
  EXPECT_EQ(result.minimal.messages[0].uid, 5);
  EXPECT_EQ(result.minimal.stations, 1);
  EXPECT_EQ(result.minimal.messages[0].arrival, SimTime::zero());
  // The shrunk case still fails, and serialisation round-trips it.
  EXPECT_FALSE(replay_case(result.minimal).ok);
  const ReplayCase reparsed = parse_case(serialize_case(result.minimal));
  EXPECT_FALSE(replay_case(reparsed).ok);
}

}  // namespace
}  // namespace hrtdm::check
