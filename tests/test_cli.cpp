#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hrtdm::util {
namespace {

CliFlags sample_flags() {
  CliFlags flags;
  flags.add_int("z", 8, "number of sources")
      .add_double("load", 1.0, "load multiplier")
      .add_bool("burst", false, "enable packet bursting")
      .add_string("scenario", "quickstart", "workload name");
  return flags;
}

bool parse(CliFlags& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliFlags, DefaultsApply) {
  CliFlags flags = sample_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_EQ(flags.get_int("z"), 8);
  EXPECT_EQ(flags.get_double("load"), 1.0);
  EXPECT_FALSE(flags.get_bool("burst"));
  EXPECT_EQ(flags.get_string("scenario"), "quickstart");
}

TEST(CliFlags, SpaceAndEqualsForms) {
  CliFlags flags = sample_flags();
  ASSERT_TRUE(parse(flags, {"--z", "12", "--load=2.5", "--scenario=atc"}));
  EXPECT_EQ(flags.get_int("z"), 12);
  EXPECT_EQ(flags.get_double("load"), 2.5);
  EXPECT_EQ(flags.get_string("scenario"), "atc");
}

TEST(CliFlags, BooleanSwitchForms) {
  CliFlags flags = sample_flags();
  ASSERT_TRUE(parse(flags, {"--burst"}));
  EXPECT_TRUE(flags.get_bool("burst"));

  CliFlags explicit_false = sample_flags();
  ASSERT_TRUE(parse(explicit_false, {"--burst=false"}));
  EXPECT_FALSE(explicit_false.get_bool("burst"));

  CliFlags numeric = sample_flags();
  ASSERT_TRUE(parse(numeric, {"--burst=1"}));
  EXPECT_TRUE(numeric.get_bool("burst"));
}

TEST(CliFlags, RejectsUnknownAndMalformed) {
  CliFlags unknown = sample_flags();
  EXPECT_FALSE(parse(unknown, {"--nope", "3"}));

  CliFlags bad_int = sample_flags();
  EXPECT_FALSE(parse(bad_int, {"--z", "many"}));

  CliFlags bad_bool = sample_flags();
  EXPECT_FALSE(parse(bad_bool, {"--burst=probably"}));

  CliFlags missing = sample_flags();
  EXPECT_FALSE(parse(missing, {"--z"}));

  CliFlags positional = sample_flags();
  EXPECT_FALSE(parse(positional, {"stray"}));
}

TEST(CliFlags, HelpReturnsFalseAndRendersUsage) {
  CliFlags flags = sample_flags();
  EXPECT_FALSE(parse(flags, {"--help"}));
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--z"), std::string::npos);
  EXPECT_NE(usage.find("number of sources"), std::string::npos);
  EXPECT_NE(usage.find("default 8"), std::string::npos);
}

TEST(CliFlags, UsageShowsDefaultsNotCurrentValues) {
  // Regression: usage() used to print the flag's *current* value as the
  // "default", so `--z 12 --help`-style flows showed "default 12".
  CliFlags flags = sample_flags();
  ASSERT_TRUE(parse(flags, {"--z", "12", "--load=2.5", "--burst",
                            "--scenario=atc"}));
  EXPECT_EQ(flags.get_int("z"), 12);
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("default 8"), std::string::npos);
  EXPECT_NE(usage.find("default 1"), std::string::npos);
  EXPECT_NE(usage.find("default false"), std::string::npos);
  EXPECT_NE(usage.find("default quickstart"), std::string::npos);
  EXPECT_EQ(usage.find("default 12"), std::string::npos);
  EXPECT_EQ(usage.find("default 2.5"), std::string::npos);
  EXPECT_EQ(usage.find("default atc"), std::string::npos);
}

TEST(CliFlags, TypeSafetyOnAccess) {
  CliFlags flags = sample_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_THROW(flags.get_double("z"), ContractViolation);
  EXPECT_THROW(flags.get_int("never-registered"), ContractViolation);
}

TEST(CliFlags, DuplicateRegistrationRejected) {
  CliFlags flags;
  flags.add_int("z", 1, "first");
  EXPECT_THROW(flags.add_int("z", 2, "second"), ContractViolation);
}

}  // namespace
}  // namespace hrtdm::util
