// Arbitration-mode feasibility (the ATM-switch analysis the paper says is
// straightforward to derive from section 4): structure, comparisons with
// the Ethernet-mode bound, and soundness against simulation.
#include "analysis/feasibility_atm.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::analysis {
namespace {

FcSystem atm_system(const traffic::Workload& wl) {
  traffic::FcAdapterOptions options;
  options.psi_bps = 622e6;
  options.slot_s = 16e-9;
  options.overhead_bits = 40;
  options.trees = FcTreeParams{2, 64, 2, 64};  // ignored by the ATM bound
  return traffic::to_fc_system(wl, options);
}

TEST(AtmFeasibility, SingleClassHandComputation) {
  FcSystem system;
  system.phy.psi_bps = 1e9;
  system.phy.slot_s = 16e-9;
  system.phy.overhead_bits = 0;
  system.trees = FcTreeParams{2, 2, 2, 2};
  FcSource src;
  src.name = "s0";
  src.nu = 1;
  FcMessageClass cls;
  cls.name = "only";
  cls.l_bits = 1000;  // 1 us at 1 Gbit/s
  cls.d_s = 1e-3;
  cls.a = 1;
  cls.w_s = 10e-3;
  src.classes.push_back(cls);
  system.sources.push_back(src);

  const AtmClassReport report = evaluate_class_atm(system, 0, 0);
  // blocking = max tx + slot = 1 us + 16 ns.
  EXPECT_NEAR(report.blocking_s, 1e-6 + 16e-9, 1e-15);
  // u = ceil((1ms + 1ms - 1us)/10ms) = 1 (itself).
  EXPECT_EQ(report.u, 1);
  EXPECT_NEAR(report.b_atm_s, report.blocking_s + 1e-6 + 16e-9, 1e-15);
  EXPECT_TRUE(report.feasible);
}

TEST(AtmFeasibility, TighterThanEthernetBoundWhenSlotsAreExpensive) {
  // With Ethernet-scale slots (x = 4.096 us) the DDCR bound's tree-search
  // terms dominate, so dropping them (arbitration) wins despite the extra
  // explicit blocking term.
  const auto wl = traffic::air_traffic_control(6);
  FcSystem system = atm_system(wl);
  system.phy.slot_s = 4.096e-6;
  const FcReport ethernet = check_feasibility(system);
  const AtmReport atm = check_feasibility_atm(system);
  ASSERT_EQ(ethernet.classes.size(), atm.classes.size());
  for (std::size_t i = 0; i < atm.classes.size(); ++i) {
    EXPECT_LT(atm.classes[i].b_atm_s, ethernet.classes[i].b_ddcr_s)
        << atm.classes[i].klass;
  }
}

TEST(AtmFeasibility, TreeOverheadNegligibleAtAtmSlotTimes) {
  // The section 5 observation from the other side: at x = 16 ns the whole
  // tree-search overhead in B_DDCR is worth only a few microseconds, so
  // the two bounds agree to within the (small) arbitration + blocking
  // terms — deterministic collision resolution is essentially free on an
  // ATM internal bus.
  const auto wl = traffic::air_traffic_control(6);
  const FcSystem system = atm_system(wl);
  const FcReport ethernet = check_feasibility(system);
  const AtmReport atm = check_feasibility_atm(system);
  for (std::size_t i = 0; i < atm.classes.size(); ++i) {
    const double diff =
        std::abs(atm.classes[i].b_atm_s - ethernet.classes[i].b_ddcr_s);
    EXPECT_LT(diff, 0.15 * ethernet.classes[i].b_ddcr_s)
        << atm.classes[i].klass;
  }
}

TEST(AtmFeasibility, BoundGrowsWithInterference) {
  auto wl = traffic::videoconference(4);
  const AtmReport before = check_feasibility_atm(atm_system(wl));
  for (auto& src : wl.sources) {
    for (auto& cls : src.classes) {
      cls.a *= 2;
    }
  }
  const AtmReport after = check_feasibility_atm(atm_system(wl));
  for (std::size_t i = 0; i < before.classes.size(); ++i) {
    EXPECT_GT(after.classes[i].b_atm_s, before.classes[i].b_atm_s);
  }
}

TEST(AtmFeasibility, SimulationRespectsTheBound) {
  const auto wl = traffic::air_traffic_control(4);
  const FcSystem system = atm_system(wl);
  const AtmReport report = check_feasibility_atm(system);
  ASSERT_TRUE(report.feasible);

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::atm_internal_bus();
  options.phy.overhead_bits = 40;
  options.collision_mode = net::CollisionMode::kArbitration;
  options.ddcr.m_time = 2;
  options.ddcr.m_static = 2;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(100'000'000);
  options.drain_cap = sim::SimTime::from_ns(400'000'000);
  const auto result = core::run_ddcr(wl, options);
  EXPECT_EQ(result.metrics.misses, 0);

  std::size_t idx = 0;
  for (const auto& src : wl.sources) {
    for (const auto& cls : src.classes) {
      const auto& bound = report.classes[idx++];
      const auto it = result.metrics.per_class.find(cls.id);
      if (it != result.metrics.per_class.end()) {
        EXPECT_LE(it->second.worst_latency_s, bound.b_atm_s)
            << "class " << cls.name;
      }
    }
  }
}

TEST(AtmFeasibility, ReportAggregation) {
  const auto wl = traffic::quickstart(3);
  const AtmReport report = check_feasibility_atm(atm_system(wl));
  EXPECT_EQ(report.classes.size(), wl.all_classes().size());
  double worst = std::numeric_limits<double>::infinity();
  bool all = true;
  for (const auto& cls : report.classes) {
    worst = std::min(worst, cls.d_s - cls.b_atm_s);
    all = all && cls.feasible;
  }
  EXPECT_EQ(report.feasible, all);
  EXPECT_NEAR(report.worst_margin_s, worst, 1e-12);
}

}  // namespace
}  // namespace hrtdm::analysis
