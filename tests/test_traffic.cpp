// Arrival processes under the unimodal arbitrary model, workload builders,
// and the FC adapter.
#include <gtest/gtest.h>

#include "traffic/arrival.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::traffic {
namespace {

MessageClass sample_class() {
  MessageClass cls;
  cls.id = 0;
  cls.name = "sample";
  cls.source = 0;
  cls.l_bits = 8000;
  cls.d = Duration::milliseconds(5);
  cls.a = 3;
  cls.w = Duration::milliseconds(10);
  return cls;
}

class ArrivalKinds : public ::testing::TestWithParam<ArrivalKind> {};

TEST_P(ArrivalKinds, RespectsDensityBoundAndHorizon) {
  const MessageClass cls = sample_class();
  util::Rng rng(2026);
  const SimTime horizon = SimTime::from_ns(500'000'000);  // 500 ms
  const auto times = generate_arrivals(cls, GetParam(), horizon, rng);
  ASSERT_FALSE(times.empty());
  EXPECT_TRUE(respects_density(times, cls.a, cls.w));
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_LT(times.back(), horizon);
  EXPECT_GE(times.front(), SimTime::zero());
}

TEST_P(ArrivalKinds, DeterministicPerSeed) {
  const MessageClass cls = sample_class();
  const SimTime horizon = SimTime::from_ns(100'000'000);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  EXPECT_EQ(generate_arrivals(cls, GetParam(), horizon, rng_a),
            generate_arrivals(cls, GetParam(), horizon, rng_b));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ArrivalKinds,
    ::testing::Values(ArrivalKind::kSaturatingAdversary,
                      ArrivalKind::kPeriodicJitter, ArrivalKind::kSporadic,
                      ArrivalKind::kBoundedPoisson),
    [](const ::testing::TestParamInfo<ArrivalKind>& info) {
      switch (info.param) {
        case ArrivalKind::kSaturatingAdversary: return std::string("Saturating");
        case ArrivalKind::kPeriodicJitter: return std::string("Periodic");
        case ArrivalKind::kSporadic: return std::string("Sporadic");
        case ArrivalKind::kBoundedPoisson: return std::string("Poisson");
      }
      return std::string("Unknown");
    });

TEST(SaturatingAdversary, AchievesTheDensityBoundExactly) {
  // The peak-load generator must realise a arrivals per window — that is
  // the extreme point the FCs are computed against.
  const MessageClass cls = sample_class();
  util::Rng rng(1);
  const SimTime horizon = SimTime::from_ns(100'000'000);  // 10 windows
  const auto times = generate_arrivals(
      cls, ArrivalKind::kSaturatingAdversary, horizon, rng);
  EXPECT_EQ(times.size(), 30u);  // 3 per 10 ms window over 100 ms
  // Windows are saturated: times[i+a] - times[i] == w exactly for burst
  // heads.
  EXPECT_EQ((times[3] - times[0]).ns(), cls.w.ns());
}

TEST(RespectsDensity, DetectsViolations) {
  std::vector<SimTime> times = {SimTime::from_ns(0), SimTime::from_ns(1),
                                SimTime::from_ns(2), SimTime::from_ns(3)};
  EXPECT_FALSE(respects_density(times, 3, Duration::nanoseconds(10)));
  EXPECT_TRUE(respects_density(times, 4, Duration::nanoseconds(10)));
  EXPECT_TRUE(respects_density({}, 1, Duration::nanoseconds(10)));
}

TEST(Materialize, AssignsUidsAndDeadlines) {
  const MessageClass cls = sample_class();
  std::int64_t next_uid = 100;
  const std::vector<SimTime> times = {SimTime::from_ns(10),
                                      SimTime::from_ns(20)};
  const auto messages = materialize(cls, times, next_uid);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(next_uid, 102);
  EXPECT_EQ(messages[0].uid, 100);
  EXPECT_EQ(messages[1].uid, 101);
  EXPECT_EQ(messages[0].absolute_deadline.ns(), 10 + cls.d.ns());
  EXPECT_EQ(messages[1].class_id, cls.id);
  EXPECT_EQ(messages[1].source, cls.source);
}

TEST(Workload, BuildersProduceValidWorkloads) {
  for (const Workload& wl :
       {quickstart(4), videoconference(6), air_traffic_control(3),
        stock_exchange(5)}) {
    wl.validate();
    EXPECT_GE(wl.z(), 3);
    EXPECT_FALSE(wl.all_classes().empty());
    EXPECT_GT(wl.offered_load_bits_per_second(), 0.0);
  }
}

TEST(Workload, ScaledLoadScalesOfferedLoad) {
  const Workload base = quickstart(4);
  const Workload heavier = base.scaled_load(2.0);
  EXPECT_NEAR(heavier.offered_load_bits_per_second(),
              2.0 * base.offered_load_bits_per_second(),
              base.offered_load_bits_per_second() * 0.01);
}

TEST(Workload, GenerateTrafficCoversAllSourcesSorted) {
  const Workload wl = videoconference(4);
  const auto traffic = generate_traffic(
      wl, ArrivalKind::kPeriodicJitter, SimTime::from_ns(200'000'000), 5);
  ASSERT_EQ(traffic.per_source.size(), 4u);
  std::int64_t total = 0;
  std::set<std::int64_t> uids;
  for (const auto& msgs : traffic.per_source) {
    EXPECT_FALSE(msgs.empty());
    total += static_cast<std::int64_t>(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_TRUE(uids.insert(msgs[i].uid).second) << "duplicate uid";
      if (i > 0) {
        EXPECT_LE(msgs[i - 1].arrival, msgs[i].arrival);
      }
    }
  }
  EXPECT_EQ(total, traffic.total_messages);
}

TEST(Workload, ValidateRejectsBadMappings) {
  Workload wl = quickstart(2);
  wl.sources[1].classes[0].source = 0;  // mapped to the wrong source
  EXPECT_THROW(wl.validate(), util::ContractViolation);

  Workload dup = quickstart(2);
  dup.sources[1].classes[0].id = dup.sources[0].classes[0].id;
  EXPECT_THROW(dup.validate(), util::ContractViolation);
}

TEST(FcAdapter, RoundTripsClassesAndUnits) {
  const Workload wl = quickstart(3);
  FcAdapterOptions options;
  options.psi_bps = 1e9;
  options.slot_s = 4.096e-6;
  options.overhead_bits = 160;
  options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  const analysis::FcSystem system = to_fc_system(wl, options);
  system.validate();
  ASSERT_EQ(system.sources.size(), 3u);
  ASSERT_EQ(system.sources[0].classes.size(), 2u);
  const auto& cls = system.sources[0].classes[0];
  const auto& orig = wl.sources[0].classes[0];
  EXPECT_EQ(cls.l_bits, orig.l_bits);
  EXPECT_NEAR(cls.d_s, orig.d.to_seconds(), 1e-15);
  EXPECT_NEAR(cls.w_s, orig.w.to_seconds(), 1e-15);
  EXPECT_EQ(cls.a, orig.a);
  // One default static index per source.
  EXPECT_EQ(system.sources[0].nu, 1);
}

TEST(FcAdapter, CustomNuVector) {
  const Workload wl = quickstart(2);
  FcAdapterOptions options;
  options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  options.nu = {4, 2};
  const analysis::FcSystem system = to_fc_system(wl, options);
  EXPECT_EQ(system.sources[0].nu, 4);
  EXPECT_EQ(system.sources[1].nu, 2);
  options.nu = {1};
  EXPECT_THROW(to_fc_system(wl, options), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::traffic
