// Bench harness (bench/harness): artifact schema fields, deterministic
// dump / strict parse round-trips (including workload serialisation text
// through JSON string escaping), and parse error reporting.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/harness.hpp"
#include "traffic/serialize.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace {

using namespace hrtdm;
using bench::BenchReport;
using bench::Json;

TEST(Json, ScalarDumpAndParse) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Json("hi\n\"there\"").dump(), "\"hi\\n\\\"there\\\"\"");

  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_EQ(Json::parse("\"a\\tb\"").as_string(), "a\tb");
}

TEST(Json, DoubleRoundTripsExactly) {
  for (const double value : {0.1, 1.0 / 3.0, -2.5e-7, 1e300, 4.096e-6}) {
    const Json parsed = Json::parse(Json(value).dump());
    EXPECT_EQ(parsed.as_double(), value) << Json(value).dump();
  }
  // Whole doubles keep a distinguishing ".0" so they re-parse as kDouble.
  const Json two = Json::parse(Json(2.0).dump());
  EXPECT_EQ(two.kind(), Json::Kind::kDouble);
  EXPECT_EQ(two.as_double(), 2.0);
}

TEST(Json, ObjectKeysSortedAndNestedRoundTrip) {
  Json::Object obj;
  obj["zeta"] = Json(std::int64_t{1});
  obj["alpha"] = Json("x");
  obj["mid"] = Json(Json::Array{Json(true), Json(), Json(2.5)});
  const Json value(obj);
  const std::string text = value.dump();
  // Sorted key order makes dumps deterministic across runs.
  EXPECT_EQ(text, "{\"alpha\":\"x\",\"mid\":[true,null,2.5],\"zeta\":1}");
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump(), text);
  EXPECT_EQ(back.at("mid").as_array()[2].as_double(), 2.5);
}

TEST(Json, WorkloadSerializationSurvivesJsonEscaping) {
  // The harness embeds free-form text (e.g. a serialized workload) in
  // string fields; the exact bytes must survive dump -> parse.
  const traffic::Workload wl = traffic::videoconference(4);
  const std::string text = traffic::serialize_workload(wl);
  Json::Object obj;
  obj["workload"] = Json(text);
  const Json back = Json::parse(Json(obj).dump());
  EXPECT_EQ(back.at("workload").as_string(), text);
  // And the recovered text still parses as the same workload.
  const traffic::Workload recovered =
      traffic::parse_workload(back.at("workload").as_string());
  EXPECT_EQ(traffic::serialize_workload(recovered), text);
}

TEST(Json, TypedAccessorsEnforceKind) {
  EXPECT_THROW(Json(std::int64_t{1}).as_string(), util::ContractViolation);
  EXPECT_THROW(Json("x").as_int(), util::ContractViolation);
  EXPECT_THROW(Json(true).as_double(), util::ContractViolation);
  // as_double accepts ints (metrics mix both).
  EXPECT_EQ(Json(std::int64_t{7}).as_double(), 7.0);
  const Json obj(Json::Object{});
  EXPECT_THROW(obj.at("missing"), util::ContractViolation);
  EXPECT_FALSE(obj.contains("missing"));
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), util::ContractViolation);
  EXPECT_THROW(Json::parse("{"), util::ContractViolation);
  EXPECT_THROW(Json::parse("[1,]"), util::ContractViolation);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), util::ContractViolation);
  EXPECT_THROW(Json::parse("tru"), util::ContractViolation);
  EXPECT_THROW(Json::parse("1 2"), util::ContractViolation);
  EXPECT_THROW(Json::parse("\"unterminated"), util::ContractViolation);
}

TEST(BenchReport, ArtifactHasSchemaFields) {
  BenchReport report("unit_test");
  report.config("channels", 4);
  report.metric("speedup", 2.0);
  report.set_threads(4);
  auto& row = report.add_row();
  row["k"] = Json(std::int64_t{2});

  const Json artifact = report.to_json();
  EXPECT_EQ(artifact.at("schema").as_string(), BenchReport::kSchema);
  EXPECT_EQ(artifact.at("name").as_string(), "unit_test");
  EXPECT_EQ(artifact.at("threads").as_int(), 4);
  EXPECT_EQ(artifact.at("smoke").kind(), Json::Kind::kBool);
  EXPECT_GE(artifact.at("wall_clock_s").as_double(), 0.0);
  EXPECT_EQ(artifact.at("config").at("channels").as_int(), 4);
  EXPECT_EQ(artifact.at("metrics").at("speedup").as_double(), 2.0);
  ASSERT_EQ(artifact.at("rows").as_array().size(), 1u);
  EXPECT_EQ(artifact.at("rows").as_array()[0].at("k").as_int(), 2);

  // The whole artifact round-trips through its own parser.
  const Json reparsed = Json::parse(artifact.dump());
  EXPECT_EQ(reparsed.dump(), artifact.dump());
}

TEST(BenchReport, WriteHonoursBenchDirOverride) {
  const std::string dir = ::testing::TempDir();
  ::setenv("HRTDM_BENCH_DIR", dir.c_str(), 1);
  BenchReport report("harness_selftest");
  report.metric("ok", true);
  const std::string path = report.write();
  ::unsetenv("HRTDM_BENCH_DIR");

  EXPECT_EQ(path.rfind(dir, 0), 0u) << path;
  EXPECT_NE(path.find("BENCH_harness_selftest.json"), std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  const Json artifact = Json::parse(content);
  EXPECT_EQ(artifact.at("name").as_string(), "harness_selftest");
  EXPECT_EQ(artifact.at("metrics").at("ok").as_bool(), true);
  std::remove(path.c_str());
}

TEST(BenchReport, SmokeFlagReadsEnvironment) {
  ::unsetenv("HRTDM_BENCH_SMOKE");
  EXPECT_FALSE(BenchReport::smoke());
  ::setenv("HRTDM_BENCH_SMOKE", "0", 1);
  EXPECT_FALSE(BenchReport::smoke());
  ::setenv("HRTDM_BENCH_SMOKE", "1", 1);
  EXPECT_TRUE(BenchReport::smoke());
  ::unsetenv("HRTDM_BENCH_SMOKE");
}

}  // namespace
