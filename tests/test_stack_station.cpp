// The randomized binary stack collision-resolution baseline.
#include "baseline/stack_station.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/runner.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::baseline {
namespace {

using core::MetricsCollector;
using sim::Simulator;
using traffic::Message;
using util::Duration;
using util::SimTime;

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns = 10'000'000) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

net::PhyConfig fast_phy() {
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  return phy;
}

struct Fixture {
  Simulator sim;
  net::BroadcastChannel channel{sim, fast_phy()};
  std::vector<std::unique_ptr<StackStation>> stations;
  MetricsCollector metrics;

  explicit Fixture(int n, std::uint64_t seed = 1) {
    for (int i = 0; i < n; ++i) {
      stations.push_back(std::make_unique<StackStation>(
          i, seed * 1000 + static_cast<std::uint64_t>(i)));
      channel.attach(*stations.back());
    }
    channel.add_observer(metrics);
  }

  /// Runs until `count` deliveries (or the cap).
  void run_until_delivered(std::size_t count, SimTime cap) {
    channel.start();
    while (metrics.log().size() < count && sim.now() < cap) {
      sim.run_until(sim.now() + Duration::nanoseconds(10'000));
    }
  }

  /// Contention slots (collisions + silences) spent up to the last
  /// delivery: total elapsed minus transmission time, in slot units —
  /// immune to the trailing idle the chunked run_until adds.
  std::int64_t resolution_slots() const {
    if (metrics.log().empty()) {
      return 0;
    }
    std::int64_t tx_ns = 0;
    for (const auto& tx : metrics.log()) {
      tx_ns += (tx.completed - tx.tx_start).ns();
    }
    const std::int64_t last = metrics.log().back().completed.ns();
    return (last - tx_ns) / 100;  // fixture slot = 100 ns
  }
};

TEST(StackStation, LoneMessageGoesStraightOut) {
  Fixture f(3);
  f.stations[0]->enqueue(make_msg(1, 0, 0));
  f.channel.start();
  f.sim.run_until(SimTime::from_ns(10'000));
  EXPECT_EQ(f.metrics.log().size(), 1u);
  EXPECT_EQ(f.stations[0]->cra_count(), 0);
}

TEST(StackStation, ResolvesTwoWayCollision) {
  Fixture f(2);
  f.stations[0]->enqueue(make_msg(1, 0, 0));
  f.stations[1]->enqueue(make_msg(2, 1, 0));
  f.channel.start();
  f.sim.run_until(SimTime::from_ns(1'000'000));
  EXPECT_EQ(f.metrics.log().size(), 2u);
  EXPECT_TRUE(f.stations[0]->queue().empty());
  EXPECT_TRUE(f.stations[1]->queue().empty());
  EXPECT_GE(f.stations[0]->cra_count(), 1);
  EXPECT_FALSE(f.stations[0]->in_cra());
}

TEST(StackStation, ResolvesManyWayCollisionsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Fixture f(8, seed);
    for (int s = 0; s < 8; ++s) {
      f.stations[static_cast<std::size_t>(s)]->enqueue(make_msg(s, s, 0));
    }
    f.channel.start();
    f.sim.run_until(SimTime::from_ns(5'000'000));
    EXPECT_EQ(f.metrics.log().size(), 8u) << "seed " << seed;
    for (const auto& station : f.stations) {
      EXPECT_TRUE(station->queue().empty()) << "seed " << seed;
      EXPECT_FALSE(station->in_cra()) << "seed " << seed;
    }
  }
}

TEST(StackStation, BlockedAccessDefersMidCraArrivals) {
  Fixture f(3);
  f.stations[0]->enqueue(make_msg(1, 0, 0));
  f.stations[1]->enqueue(make_msg(2, 1, 0));
  // Arrives two slots into the CRA: must wait for it to end.
  f.sim.schedule_at(SimTime::from_ns(250), [&f] {
    f.stations[2]->enqueue(make_msg(3, 2, 250));
  });
  f.channel.start();
  f.sim.run_until(SimTime::from_ns(1'000'000));
  ASSERT_EQ(f.metrics.log().size(), 3u);
  // The blocked message is delivered last.
  EXPECT_EQ(f.metrics.log().back().uid, 3);
}

TEST(StackStation, MeanResolutionCostNearLiterature) {
  // Classic result: the binary CRA with blocked access resolves a k-way
  // collision in about 2.88 k slots for large k (throughput ~0.35-0.43 in
  // the fair-coin blocked variant). Measure the empirical mean for k = 8
  // across seeds and sanity-check the range generously.
  const int k = 8;
  double total_slots = 0.0;
  const int runs = 40;
  for (int run = 0; run < runs; ++run) {
    Fixture f(k, static_cast<std::uint64_t>(run) + 100);
    for (int s = 0; s < k; ++s) {
      f.stations[static_cast<std::size_t>(s)]->enqueue(make_msg(s, s, 0));
    }
    f.run_until_delivered(static_cast<std::size_t>(k),
                          SimTime::from_ns(5'000'000));
    EXPECT_EQ(f.metrics.log().size(), static_cast<std::size_t>(k));
    total_slots += static_cast<double>(f.resolution_slots());
  }
  const double mean_per_message =
      total_slots / static_cast<double>(runs * k);
  EXPECT_GT(mean_per_message, 1.0);
  EXPECT_LT(mean_per_message, 3.5);
}

TEST(StackStation, RunnerIntegration) {
  const auto wl = traffic::quickstart(4);
  ProtocolRunOptions options;
  options.base.arrival_horizon = SimTime::from_ns(20'000'000);
  options.base.drain_cap = SimTime::from_ns(100'000'000);
  const auto result = run_protocol(Protocol::kStack, wl, options);
  EXPECT_EQ(result.undelivered, 0);
  EXPECT_EQ(result.metrics.delivered, result.generated);
  EXPECT_EQ(protocol_name(Protocol::kStack), "Stack-CRA");
}

TEST(StackStation, WorstCaseUnboundedUnlikeDdcr) {
  // The defining weakness vs CSMA/DDCR: resolution length is a random
  // variable with unbounded support. Demonstrate variance across seeds:
  // the max observed resolution is meaningfully longer than the min.
  const int k = 6;
  std::int64_t min_slots = INT64_MAX;
  std::int64_t max_slots = 0;
  for (int run = 0; run < 60; ++run) {
    Fixture f(k, static_cast<std::uint64_t>(run) + 7000);
    for (int s = 0; s < k; ++s) {
      f.stations[static_cast<std::size_t>(s)]->enqueue(make_msg(s, s, 0));
    }
    f.run_until_delivered(static_cast<std::size_t>(k),
                          SimTime::from_ns(5'000'000));
    const std::int64_t slots = f.resolution_slots();
    min_slots = std::min(min_slots, slots);
    max_slots = std::max(max_slots, slots);
  }
  EXPECT_GT(max_slots, min_slots + 5);
}

}  // namespace
}  // namespace hrtdm::baseline
