#include "core/edf_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::core {
namespace {

Message make_msg(std::int64_t uid, std::int64_t deadline_ns,
                 std::int64_t arrival_ns = 0) {
  Message msg;
  msg.uid = uid;
  msg.class_id = 0;
  msg.source = 0;
  msg.l_bits = 1000;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

TEST(EdfQueue, HeadIsEarliestDeadline) {
  EdfQueue queue;
  EXPECT_FALSE(queue.head().has_value());
  queue.push(make_msg(1, 300));
  queue.push(make_msg(2, 100));
  queue.push(make_msg(3, 200));
  ASSERT_TRUE(queue.head().has_value());
  EXPECT_EQ(queue.head()->uid, 2);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(EdfQueue, EqualDeadlinesBreakTiesByUid) {
  EdfQueue queue;
  queue.push(make_msg(9, 100));
  queue.push(make_msg(4, 100));
  EXPECT_EQ(queue.head()->uid, 4);
}

TEST(EdfQueue, HeadChangesWhenEarlierMessageArrives) {
  // The paper stresses that LA runs in parallel with the searches: a new
  // arrival with a smaller DM becomes msg* immediately.
  EdfQueue queue;
  queue.push(make_msg(1, 500));
  EXPECT_EQ(queue.head()->uid, 1);
  queue.push(make_msg(2, 50));
  EXPECT_EQ(queue.head()->uid, 2);
}

TEST(EdfQueue, RemoveByUid) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  queue.push(make_msg(2, 200));
  EXPECT_TRUE(queue.remove(1));
  EXPECT_FALSE(queue.remove(1));
  EXPECT_EQ(queue.head()->uid, 2);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_TRUE(queue.empty());
}

TEST(EdfQueue, RejectsDuplicateUid) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  EXPECT_THROW(queue.push(make_msg(1, 200)), util::ContractViolation);
}

TEST(EdfQueue, TenThousandMessagesRemoveFromInterior) {
  // Regression for the O(n) remove() scan: with 10k queued messages,
  // removing from the interior used to walk half the deadline set per call,
  // making bursty multi-class backlogs quadratic. remove() now locates the
  // node by its (deadline, uid) key in O(log n); this drains a 10k-message
  // queue by uid in shuffled order and checks EDF head integrity throughout.
  constexpr std::int64_t kMessages = 10'000;
  EdfQueue queue;
  std::vector<std::int64_t> uids;
  uids.reserve(kMessages);
  util::SplitMix64 mix(0xEDFULL);
  for (std::int64_t uid = 0; uid < kMessages; ++uid) {
    // Many duplicate deadlines, so uid tie-breaking is exercised too.
    queue.push(make_msg(uid, 1000 + static_cast<std::int64_t>(
                                        mix.next() % (kMessages / 4))));
    uids.push_back(uid);
  }
  ASSERT_EQ(queue.size(), static_cast<std::size_t>(kMessages));
  // Fisher-Yates with the same deterministic stream.
  for (std::size_t i = uids.size(); i > 1; --i) {
    std::swap(uids[i - 1], uids[mix.next() % i]);
  }
  std::int64_t remaining = kMessages;
  for (const std::int64_t uid : uids) {
    ASSERT_TRUE(queue.remove(uid));
    --remaining;
    EXPECT_FALSE(queue.remove(uid));  // second remove of same uid is a miss
    if (remaining > 0 && remaining % 1000 == 0) {
      ASSERT_TRUE(queue.head().has_value());
    }
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EdfQueue, CountLate) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  queue.push(make_msg(2, 200));
  queue.push(make_msg(3, 300));
  EXPECT_EQ(queue.count_late(SimTime::from_ns(50)), 0);
  EXPECT_EQ(queue.count_late(SimTime::from_ns(250)), 2);
  EXPECT_EQ(queue.count_late(SimTime::from_ns(1000)), 3);
}

}  // namespace
}  // namespace hrtdm::core
