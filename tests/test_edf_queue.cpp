#include "core/edf_queue.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hrtdm::core {
namespace {

Message make_msg(std::int64_t uid, std::int64_t deadline_ns,
                 std::int64_t arrival_ns = 0) {
  Message msg;
  msg.uid = uid;
  msg.class_id = 0;
  msg.source = 0;
  msg.l_bits = 1000;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

TEST(EdfQueue, HeadIsEarliestDeadline) {
  EdfQueue queue;
  EXPECT_FALSE(queue.head().has_value());
  queue.push(make_msg(1, 300));
  queue.push(make_msg(2, 100));
  queue.push(make_msg(3, 200));
  ASSERT_TRUE(queue.head().has_value());
  EXPECT_EQ(queue.head()->uid, 2);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(EdfQueue, EqualDeadlinesBreakTiesByUid) {
  EdfQueue queue;
  queue.push(make_msg(9, 100));
  queue.push(make_msg(4, 100));
  EXPECT_EQ(queue.head()->uid, 4);
}

TEST(EdfQueue, HeadChangesWhenEarlierMessageArrives) {
  // The paper stresses that LA runs in parallel with the searches: a new
  // arrival with a smaller DM becomes msg* immediately.
  EdfQueue queue;
  queue.push(make_msg(1, 500));
  EXPECT_EQ(queue.head()->uid, 1);
  queue.push(make_msg(2, 50));
  EXPECT_EQ(queue.head()->uid, 2);
}

TEST(EdfQueue, RemoveByUid) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  queue.push(make_msg(2, 200));
  EXPECT_TRUE(queue.remove(1));
  EXPECT_FALSE(queue.remove(1));
  EXPECT_EQ(queue.head()->uid, 2);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_TRUE(queue.empty());
}

TEST(EdfQueue, RejectsDuplicateUid) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  EXPECT_THROW(queue.push(make_msg(1, 200)), util::ContractViolation);
}

TEST(EdfQueue, CountLate) {
  EdfQueue queue;
  queue.push(make_msg(1, 100));
  queue.push(make_msg(2, 200));
  queue.push(make_msg(3, 300));
  EXPECT_EQ(queue.count_late(SimTime::from_ns(50)), 0);
  EXPECT_EQ(queue.count_late(SimTime::from_ns(250)), 2);
  EXPECT_EQ(queue.count_late(SimTime::from_ns(1000)), 3);
}

}  // namespace
}  // namespace hrtdm::core
