// The replicated m-ary tree-search engine: DFS semantics, cost accounting
// against the analysis layer, and replica consistency.
#include "core/tree_search.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/xi.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::core {
namespace {

/// Drives one engine with a concrete set of active leaves, emulating the
/// channel: silence when no active leaf is in the probed interval, success
/// when exactly one, collision otherwise. Returns transmitted leaf order.
std::vector<std::int64_t> drive(TreeSearchEngine& engine,
                                std::vector<std::int64_t> active) {
  std::vector<std::int64_t> transmitted;
  engine.begin();
  while (engine.active()) {
    const auto interval = engine.current();
    std::vector<std::int64_t> inside;
    for (const std::int64_t leaf : active) {
      if (interval.contains(leaf)) {
        inside.push_back(leaf);
      }
    }
    if (inside.empty()) {
      engine.feedback(TreeSearchEngine::Feedback::kSilence);
    } else if (inside.size() == 1) {
      transmitted.push_back(inside.front());
      std::erase(active, inside.front());
      engine.feedback(TreeSearchEngine::Feedback::kSuccess);
    } else {
      const auto result =
          engine.feedback(TreeSearchEngine::Feedback::kCollision);
      if (result == TreeSearchEngine::StepResult::kLeafCollision) {
        // Tie-break resolved externally: all leaf occupants transmitted.
        // (Cannot happen with distinct leaves; used by dedicated tests.)
        for (const std::int64_t leaf : inside) {
          transmitted.push_back(leaf);
          std::erase(active, leaf);
        }
      }
    }
  }
  return transmitted;
}

TEST(TreeSearchEngine, ResolvesLeavesInIndexOrder) {
  TreeSearchEngine engine(2, 8);
  const auto order = drive(engine, {6, 1, 3});
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 3, 6}));
  EXPECT_TRUE(engine.done());
}

TEST(TreeSearchEngine, EmptySearchCostsMSlots) {
  // DESIGN decision 1: an empty tree search probes the m root children and
  // hears m consecutive empty slots.
  for (int m = 2; m <= 5; ++m) {
    TreeSearchEngine engine(m, m * m);
    const auto order = drive(engine, {});
    EXPECT_TRUE(order.empty());
    EXPECT_EQ(engine.search_slots(), m);
    EXPECT_EQ(engine.silence_slots(), m);
    EXPECT_EQ(engine.collision_slots(), 0);
  }
}

TEST(TreeSearchEngine, CostMatchesAnalysisForConcretePlacements) {
  // The engine's slot count must equal search_cost_for_leaves minus the
  // root probe (the triggering collision is charged to the caller).
  util::Rng rng(123);
  for (const auto& [m, t] : {std::pair<int, std::int64_t>{2, 64},
                             {4, 64},
                             {2, 256},
                             {4, 256},
                             {3, 81}}) {
    for (int trial = 0; trial < 30; ++trial) {
      const std::int64_t k = rng.uniform_i64(2, std::min<std::int64_t>(t, 20));
      const auto perm = rng.permutation(t);
      std::vector<std::int64_t> leaves(perm.begin(), perm.begin() + k);
      std::sort(leaves.begin(), leaves.end());
      TreeSearchEngine engine(m, t);
      drive(engine, leaves);
      EXPECT_EQ(engine.search_slots() + 1,
                analysis::search_cost_for_leaves(m, t, leaves))
          << "m=" << m << " t=" << t << " k=" << k;
    }
  }
}

TEST(TreeSearchEngine, WorstCaseCostEqualsXi) {
  // Driving the engine with the adversarial placement from the analysis
  // layer realises exactly xi(k, t) total slots (incl. the root probe).
  for (const auto& [m, n] : {std::pair{2, 4}, {2, 6}, {4, 3}, {3, 4}}) {
    analysis::XiExactTable table(m, n);
    for (std::int64_t k = 2; k <= table.t();
         k += std::max<std::int64_t>(1, table.t() / 8)) {
      const auto leaves = analysis::worst_case_leaves(table, k);
      TreeSearchEngine engine(m, table.t());
      const auto order = drive(engine, leaves);
      EXPECT_EQ(static_cast<std::int64_t>(order.size()), k);
      EXPECT_EQ(engine.search_slots() + 1, table.xi(k))
          << "m=" << m << " t=" << table.t() << " k=" << k;
    }
  }
}

TEST(TreeSearchEngine, LeafCollisionReported) {
  TreeSearchEngine engine(2, 4);
  engine.begin();
  // Probe [0,2): collision; probe [0,1): leaf collision.
  EXPECT_EQ(engine.feedback(TreeSearchEngine::Feedback::kCollision),
            TreeSearchEngine::StepResult::kDescended);
  EXPECT_EQ(engine.current().size, 1);
  EXPECT_EQ(engine.current().lo, 0);
  EXPECT_EQ(engine.feedback(TreeSearchEngine::Feedback::kCollision),
            TreeSearchEngine::StepResult::kLeafCollision);
  // The leaf was popped; the search resumes at leaf 1.
  EXPECT_EQ(engine.current().lo, 1);
  EXPECT_EQ(engine.resolved_up_to(), 1);
}

TEST(TreeSearchEngine, ResolvedUpToAdvancesLeftToRight) {
  TreeSearchEngine engine(2, 8);
  engine.begin();
  EXPECT_EQ(engine.resolved_up_to(), 0);
  engine.feedback(TreeSearchEngine::Feedback::kSilence);  // [0,4) empty
  EXPECT_EQ(engine.resolved_up_to(), 4);
  engine.feedback(TreeSearchEngine::Feedback::kCollision);  // [4,8) splits
  EXPECT_EQ(engine.resolved_up_to(), 4);
  engine.feedback(TreeSearchEngine::Feedback::kSuccess);  // [4,6) done
  EXPECT_EQ(engine.resolved_up_to(), 6);
  engine.feedback(TreeSearchEngine::Feedback::kSuccess);  // [6,8) done
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.resolved_up_to(), 8);
}

TEST(TreeSearchEngine, ReplicasStayInLockstep) {
  // Two replicas fed the same feedback sequence agree on digest after
  // every step, and diverge immediately if one misses a step.
  util::Rng rng(99);
  TreeSearchEngine a(4, 64);
  TreeSearchEngine b(4, 64);
  a.begin();
  b.begin();
  while (a.active()) {
    EXPECT_EQ(a.digest(), b.digest());
    const auto interval = a.current();
    TreeSearchEngine::Feedback fb;
    if (interval.size > 1 && rng.bernoulli(0.4)) {
      fb = TreeSearchEngine::Feedback::kCollision;
    } else if (rng.bernoulli(0.5)) {
      fb = TreeSearchEngine::Feedback::kSilence;
    } else {
      fb = TreeSearchEngine::Feedback::kSuccess;
    }
    a.feedback(fb);
    b.feedback(fb);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_TRUE(b.done());
}

TEST(TreeSearchEngine, ContractsOnMisuse) {
  TreeSearchEngine engine(2, 8);
  EXPECT_THROW(engine.current(), util::ContractViolation);
  EXPECT_THROW(engine.feedback(TreeSearchEngine::Feedback::kSilence),
               util::ContractViolation);
  engine.begin();
  EXPECT_THROW(engine.begin(), util::ContractViolation);
  EXPECT_THROW(TreeSearchEngine(2, 6), util::ContractViolation);
  EXPECT_THROW(TreeSearchEngine(1, 1), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::core
