// Clock drift: the paper assumes every station samples slot boundaries
// within half a slot of true time (the t + x/2 synchrony budget). The
// drift model (sim::DriftClock + fault::DriftPlan) violates exactly that
// assumption, and the grid below pins the watchdog's behavior at the
// threshold: phase errors strictly below x/2 rewrite nothing (zero false
// quarantines), phase errors at or above x/2 garble every heard success
// and are *guaranteed* to drive the victim through detection, quarantine
// and quiet-period rejoin, after which the resync rule re-anchors its
// clock.
#include <gtest/gtest.h>

#include <string>

#include "core/ddcr_network.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_injector.hpp"
#include "sim/drift_clock.hpp"
#include "traffic/message.hpp"
#include "util/check.hpp"

namespace hrtdm::fault {
namespace {

using core::DdcrRunOptions;
using core::DdcrTestbed;
using sim::DriftClock;
using traffic::Message;
using util::Duration;
using util::SimTime;

// --- DriftClock units -----------------------------------------------------

TEST(DriftClock, PhaseIsSkewPlusLinearDriftClampedAtTheBound) {
  // +5 ns skew, +1000 ppm (1 ns per us), clamp at 12 ns.
  DriftClock clock(Duration::nanoseconds(5), 1000.0,
                   Duration::nanoseconds(12));
  EXPECT_EQ(clock.phase_error(SimTime::zero()).ns(), 5);
  EXPECT_EQ(clock.phase_error(SimTime::from_ns(3'000)).ns(), 8);
  EXPECT_EQ(clock.phase_error(SimTime::from_ns(7'000)).ns(), 12);
  EXPECT_EQ(clock.phase_error(SimTime::from_ns(1'000'000)).ns(), 12);
}

TEST(DriftClock, MissamplesExactlyAtHalfASlot) {
  const Duration x = Duration::nanoseconds(100);
  EXPECT_FALSE(DriftClock(Duration::nanoseconds(49), 0.0, Duration())
                   .missamples(SimTime::zero(), x));
  EXPECT_FALSE(DriftClock(Duration::nanoseconds(-49), 0.0, Duration())
                   .missamples(SimTime::zero(), x));
  EXPECT_TRUE(DriftClock(Duration::nanoseconds(50), 0.0, Duration())
                  .missamples(SimTime::zero(), x));
  EXPECT_TRUE(DriftClock(Duration::nanoseconds(-50), 0.0, Duration())
                  .missamples(SimTime::zero(), x));
}

TEST(DriftClock, ResyncZeroesPhaseButKeepsTheRate) {
  DriftClock clock(Duration::nanoseconds(60), 2000.0,
                   Duration::nanoseconds(80));
  ASSERT_TRUE(clock.missamples(SimTime::zero(), Duration::nanoseconds(100)));
  clock.resync(SimTime::from_ns(10'000));
  EXPECT_EQ(clock.phase_error(SimTime::from_ns(10'000)).ns(), 0);
  // 2000 ppm = 2 ns per us: 5 us after the resync the phase is 10 ns.
  EXPECT_EQ(clock.phase_error(SimTime::from_ns(15'000)).ns(), 10);
  EXPECT_DOUBLE_EQ(clock.rate_ppm(), 2000.0);
}

// --- DriftPlan units ------------------------------------------------------

TEST(DriftPlanSuite, ValidatesSpecs) {
  DriftPlan plan;
  plan.specs.push_back({5, Duration::nanoseconds(10), 0.0, Duration()});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);  // id out of range
  plan.specs.clear();
  plan.specs.push_back({0, Duration::nanoseconds(10), 0.0, Duration()});
  plan.specs.push_back({0, Duration::nanoseconds(20), 0.0, Duration()});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);  // duplicate id
  plan.specs.clear();
  plan.specs.push_back({0, Duration(), 500.0, Duration()});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);  // rate, no bound

  DriftPlan ok;
  ok.specs.push_back({1, Duration::nanoseconds(-30), 100.0,
                      Duration::nanoseconds(60)});
  ok.validate(2);
  EXPECT_TRUE(ok.can_missample(Duration::nanoseconds(100)));
  EXPECT_FALSE(ok.can_missample(Duration::nanoseconds(200)));
}

TEST(DriftPlanSuite, UniformGeneratorIsDeterministicAndBounded) {
  const auto a = DriftPlan::uniform(6, 3, Duration::nanoseconds(40), 250.0,
                                    0xD21F7ULL);
  const auto b = DriftPlan::uniform(6, 3, Duration::nanoseconds(40), 250.0,
                                    0xD21F7ULL);
  ASSERT_EQ(a.specs.size(), 3u);
  a.validate(6);
  for (std::size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].station, b.specs[i].station);
    EXPECT_EQ(a.specs[i].initial_phase, b.specs[i].initial_phase);
    EXPECT_DOUBLE_EQ(a.specs[i].rate_ppm, b.specs[i].rate_ppm);
    EXPECT_LE(a.specs[i].initial_phase.ns(), 40);
    EXPECT_GE(a.specs[i].initial_phase.ns(), -40);
  }
}

// --- the threshold grid (satellite 3) -------------------------------------
//
// Station 1 streams six back-to-back CSMA-CD successes; station 0 has the
// scripted phase error. Below x/2 = 50 ns nothing may happen. At or above,
// every success station 0 hears is garbled into a collision: it starts a
// phantom epoch nobody else is in, and the watchdog's rules (an impossible
// success, or the bounded lone-leaf retry streak) must quarantine it.

DdcrRunOptions demo_options() {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.max_empty_tts = 2;
  return options;
}

Message demo_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

struct GridOutcome {
  std::int64_t missamples = 0;
  std::int64_t desyncs = 0;
  std::int64_t quarantines = 0;
  std::int64_t rejoins = 0;
  std::int64_t resyncs = 0;
  bool digests_agree = false;
  std::string str() const {
    return "missamples=" + std::to_string(missamples) +
           " desyncs=" + std::to_string(desyncs) +
           " quarantines=" + std::to_string(quarantines) +
           " rejoins=" + std::to_string(rejoins) +
           " resyncs=" + std::to_string(resyncs) +
           " digests_agree=" + std::to_string(digests_agree);
  }
};

GridOutcome run_grid_point(std::int64_t phase_ns) {
  auto options = demo_options();
  DdcrTestbed bed(2, options);
  DriftPlan drift;
  drift.specs.push_back(
      {0, Duration::nanoseconds(phase_ns), 0.0, Duration()});
  FaultInjector injector(FaultPlan{}, ChurnPlan{}, drift, 1);
  injector.set_sync_probe(
      [&bed](int id) { return !bed.station(id).synced(); });
  injector.install(bed.channel());
  // Contending traffic on BOTH sides: the drifted station must itself hold
  // messages so that, above threshold, its garbled own successes drive the
  // bounded lone-leaf retry streak (watchdog rule C) deterministically.
  for (int i = 0; i < 4; ++i) {
    bed.inject(0, demo_msg(10 + i, 0, 500, 12'000));
    bed.inject(1, demo_msg(20 + i, 1, 500, 12'000));
  }
  // Fixed horizon (not a delivery count): above threshold the victim's own
  // deliveries duplicate on the wire while it cannot hear them. 2000 slots
  // cover the epoch, the quarantine, the quiet period and the rejoin.
  bed.run(SimTime::from_ns(200'000));

  // One fresh shared epoch so a recovered replica re-derives full digest
  // agreement and both queues drain.
  const auto now = bed.simulator().now().ns();
  bed.inject(0, demo_msg(100, 0, now + 1'000, 12'000));
  bed.inject(1, demo_msg(101, 1, now + 1'000, 12'000));
  bed.run(SimTime::from_ns(now + 200'000));
  EXPECT_EQ(bed.queued(), 0) << "phase " << phase_ns;

  GridOutcome out;
  out.missamples = injector.stats().drift_missamples;
  out.desyncs = bed.station(0).counters().desyncs_detected;
  out.quarantines = bed.station(0).counters().quarantines;
  out.rejoins = bed.station(0).counters().rejoins;
  out.resyncs = injector.stats().drift_resyncs;
  out.digests_agree = bed.digests_agree();
  return out;
}

TEST(DriftGrid, SubThresholdPhaseErrorsNeverFireTheWatchdog) {
  // Up to (but excluding) half a slot: the synchrony budget absorbs the
  // skew. No observation is rewritten, so there can be no false
  // quarantine — the watchdog's exactness under drift.
  for (const std::int64_t phase_ns : {0L, 12L, -12L, 25L, -25L, 49L, -49L}) {
    const GridOutcome out = run_grid_point(phase_ns);
    EXPECT_EQ(out.missamples, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_EQ(out.desyncs, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_EQ(out.quarantines, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_TRUE(out.digests_agree) << "phase " << phase_ns << ": "
                                   << out.str();
  }
}

TEST(DriftGrid, ThresholdAndAbovePhaseErrorsGuaranteeQuarantineAndRecovery) {
  // At x/2 and beyond every heard success is garbled: the victim starts a
  // phantom epoch and the watchdog MUST fire — and the resync rule must
  // re-anchor its clock during the quarantine so recovery sticks.
  for (const std::int64_t phase_ns : {50L, -50L, 60L, -75L, 100L}) {
    const GridOutcome out = run_grid_point(phase_ns);
    EXPECT_GT(out.missamples, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_GT(out.desyncs, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_GT(out.quarantines, 0) << "phase " << phase_ns << ": "
                                  << out.str();
    EXPECT_GT(out.rejoins, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_GT(out.resyncs, 0) << "phase " << phase_ns << ": " << out.str();
    EXPECT_TRUE(out.digests_agree) << "phase " << phase_ns << ": "
                                   << out.str();
  }
}

TEST(DriftGrid, RateDrivenDriftCrossesTheThresholdMidRun) {
  // 50000 ppm (5%) from zero phase: +5 ns per us, so the clock crosses the
  // 50 ns threshold ~1 us in — mid-traffic — and the resync rule pulls it
  // back each time the watchdog quarantines the victim. The victim streams
  // its own messages too: its garbled successes feed the lone-leaf retry
  // streak that makes detection deterministic.
  auto options = demo_options();
  DdcrTestbed bed(2, options);
  DriftPlan drift;
  drift.specs.push_back(
      {0, Duration(), 50'000.0, Duration::nanoseconds(80)});
  FaultInjector injector(FaultPlan{}, ChurnPlan{}, drift, 1);
  injector.set_sync_probe(
      [&bed](int id) { return !bed.station(id).synced(); });
  injector.install(bed.channel());
  for (int i = 0; i < 40; ++i) {
    bed.inject(0, demo_msg(10 + i, 0, 500 + 400 * i, 20'000));
    bed.inject(1, demo_msg(50 + i, 1, 500 + 400 * i, 20'000));
  }
  bed.run(SimTime::from_ns(4'000'000));
  EXPECT_GT(injector.stats().drift_missamples, 0);
  EXPECT_GT(bed.station(0).counters().quarantines, 0);
  EXPECT_GT(injector.stats().drift_resyncs, 0);
}

TEST(DriftCampaign, DriftedCampaignsStillPassBothInvariants) {
  // The full campaign harness with the drift axis on: initial phases are
  // drawn in [-60, 60] ns around the campaign's 100 ns slot, so some seeds
  // mis-sample and some stay benign; either way safety + reconvergence
  // must hold.
  std::int64_t total_missamples = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 4;
    options.crashes = 0;
    options.symmetric_bursts = 0;
    options.asymmetric_bursts = 0;
    options.drifted_stations = 2;
    options.drift_phase_bound = Duration::nanoseconds(60);
    options.drift_rate_ppm = 1000.0;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << " safety=" << result.safety_ok
        << " drained=" << result.drained
        << " reconverged=" << result.reconverged;
    total_missamples += result.faults.drift_missamples;
  }
  EXPECT_GT(total_missamples, 0);  // the axis actually bit on some seed
}

}  // namespace
}  // namespace hrtdm::fault
