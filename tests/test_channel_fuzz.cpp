// Channel-contract fuzzing: stations with randomized (but seed-fixed)
// behaviour hammer the channel across all modes; the broadcast contract
// must hold regardless of what stations do:
//   - every station receives the identical observation sequence,
//   - slot accounting is conserved (silence + collision + success = slots),
//   - at most one frame is ever delivered per slot (safety),
//   - arbitration always delivers the minimal contending key,
//   - the recorded slot stream passes the differential conformance
//     comparator's protocol-agnostic checks (grid, mutual exclusion,
//     durations, exactly-once delivery, stats cross-check).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/conformance.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hrtdm::net {
namespace {

using sim::Simulator;
using util::Duration;
using util::SimTime;

/// Offers a frame with probability p each slot; records everything heard.
class ChaosStation final : public Station {
 public:
  ChaosStation(int id, double p, std::uint64_t seed)
      : id_(id), p_(p), rng_(seed) {}

  int id() const override { return id_; }

  std::optional<Frame> poll_intent(SimTime now) override {
    if (!rng_.bernoulli(p_)) {
      return std::nullopt;
    }
    Frame frame;
    frame.source = id_;
    frame.msg_uid = next_uid_++ * 100 + id_;
    frame.class_id = id_;
    frame.l_bits = 100 + rng_.uniform_i64(0, 9) * 50;
    frame.arb_key = rng_.uniform_i64(0, 999);
    frame.enqueue_time = now;
    frame.absolute_deadline = now + Duration::milliseconds(100);
    last_offered_key_ = frame.arb_key;
    offered_ = true;
    return frame;
  }

  std::optional<Frame> poll_burst(SimTime now,
                                  std::int64_t budget_bits) override {
    if (!rng_.bernoulli(0.5) || budget_bits < 100) {
      return std::nullopt;
    }
    Frame frame;
    frame.source = id_;
    frame.msg_uid = next_uid_++ * 100 + id_;
    frame.class_id = id_;
    frame.l_bits = 100;
    frame.enqueue_time = now;
    frame.absolute_deadline = now + Duration::milliseconds(100);
    return frame;
  }

  void observe(const SlotObservation& obs) override {
    observations_.push_back(obs);
    offered_ = false;
  }

  const std::vector<SlotObservation>& observations() const {
    return observations_;
  }
  bool offered_this_slot() const { return offered_; }
  std::int64_t last_offered_key() const { return last_offered_key_; }

 private:
  int id_;
  double p_;
  util::Rng rng_;
  std::int64_t next_uid_ = 1;
  bool offered_ = false;
  std::int64_t last_offered_key_ = 0;
  std::vector<SlotObservation> observations_;
};

struct FuzzParam {
  CollisionMode mode;
  double intent_prob;
  std::int64_t burst_bits;
  double corruption;
};

class ChannelFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ChannelFuzz, BroadcastContractHolds) {
  const auto& p = GetParam();
  Simulator sim;
  PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  phy.burst_budget_bits = p.burst_bits;
  phy.corruption_prob = p.corruption;
  BroadcastChannel channel(sim, phy, p.mode, /*noise_seed=*/99);
  check::ConformanceRecorder recorder;
  channel.add_observer(recorder);

  std::vector<std::unique_ptr<ChaosStation>> stations;
  for (int i = 0; i < 5; ++i) {
    stations.push_back(std::make_unique<ChaosStation>(
        i, p.intent_prob, 1000 + static_cast<std::uint64_t>(i)));
    channel.attach(*stations.back());
  }
  channel.start();
  sim.run_until(SimTime::from_ns(2'000'000));

  // 1. Identical observation streams.
  const auto& reference = stations[0]->observations();
  ASSERT_GT(reference.size(), 100u);
  for (const auto& station : stations) {
    const auto& obs = station->observations();
    ASSERT_EQ(obs.size(), reference.size());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      EXPECT_EQ(obs[i].kind, reference[i].kind) << "slot " << i;
      EXPECT_EQ(obs[i].slot_start, reference[i].slot_start);
      EXPECT_EQ(obs[i].slot_end, reference[i].slot_end);
      EXPECT_EQ(obs[i].frame.has_value(), reference[i].frame.has_value());
      if (obs[i].frame.has_value()) {
        EXPECT_EQ(obs[i].frame->msg_uid, reference[i].frame->msg_uid);
      }
    }
  }

  // 2. Accounting conservation.
  const auto& stats = channel.stats();
  std::int64_t successes = 0;
  std::int64_t collisions = 0;
  std::int64_t silences = 0;
  for (const auto& obs : reference) {
    switch (obs.kind) {
      case SlotKind::kSilence: ++silences; break;
      case SlotKind::kCollision: ++collisions; break;
      case SlotKind::kSuccess: ++successes; break;
    }
  }
  EXPECT_EQ(stats.successes, successes);
  EXPECT_EQ(stats.collision_slots, collisions);
  EXPECT_EQ(stats.silence_slots, silences);

  // 3. Safety: slots are serialised and non-overlapping.
  for (std::size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LE(reference[i - 1].slot_end, reference[i].slot_start);
  }

  // 4. In arbitration mode without noise, every contended slot delivers.
  if (p.mode == CollisionMode::kArbitration && p.corruption == 0.0) {
    EXPECT_EQ(stats.collision_slots, 0);
  }

  // 5. The differential comparator judges the recorded ground truth.
  // ChaosStations invent frames on the fly, so the message set is
  // synthesized from the delivered frames themselves: frame integrity
  // becomes tautological, but the slot grid, mutual exclusion, exact slot
  // durations, exactly-once delivery and the stats cross-check stay real.
  check::ConformanceInput input;
  input.phy = phy;
  input.collision_mode = p.mode;
  input.protocol_is_ddcr = false;  // chaos stations promise no EDF order
  input.stats = &stats;
  for (const auto& entry : recorder.entries()) {
    const auto& rec = entry.record;
    if (rec.kind != SlotKind::kSuccess || !rec.frame.has_value()) {
      continue;
    }
    traffic::Message msg;
    msg.uid = rec.frame->msg_uid;
    msg.class_id = rec.frame->class_id;
    msg.source = rec.frame->source;
    msg.l_bits = rec.frame->l_bits;
    msg.arrival = rec.frame->enqueue_time;
    msg.absolute_deadline = rec.frame->absolute_deadline;
    input.messages.push_back(msg);
  }
  EXPECT_FALSE(input.messages.empty());
  const auto report =
      check::ConformanceComparator{}.check(input, recorder);
  ASSERT_TRUE(report.checked);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_GT(report.slots_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ChannelFuzz,
    ::testing::Values(
        FuzzParam{CollisionMode::kDestructive, 0.3, 0, 0.0},
        FuzzParam{CollisionMode::kDestructive, 0.7, 0, 0.0},
        FuzzParam{CollisionMode::kDestructive, 0.3, 4096, 0.0},
        FuzzParam{CollisionMode::kDestructive, 0.5, 0, 0.2},
        FuzzParam{CollisionMode::kArbitration, 0.3, 0, 0.0},
        FuzzParam{CollisionMode::kArbitration, 0.8, 0, 0.0},
        FuzzParam{CollisionMode::kArbitration, 0.5, 2048, 0.1}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      std::string name =
          info.param.mode == CollisionMode::kDestructive ? "Dest" : "Arb";
      name += "P" + std::to_string(static_cast<int>(
                        info.param.intent_prob * 10));
      if (info.param.burst_bits > 0) {
        name += "Burst";
      }
      if (info.param.corruption > 0) {
        name += "Noise";
      }
      return name;
    });

}  // namespace
}  // namespace hrtdm::net
