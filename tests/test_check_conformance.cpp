// Differential conformance checker tests.
//
// The negative half forges violating slot streams — one per checker class
// (mutual exclusion, slot grid, frame integrity, causality, double
// delivery, completeness, timeliness, EDF order, channel accounting) — and
// asserts the comparator fires on each: a checker that cannot flag a
// planted violation proves nothing when it stays green on real runs. The
// positive half runs the real protocol and the four baseline MACs under
// the recorder and asserts the full differential passes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/runner.hpp"
#include "check/conformance.hpp"
#include "core/ddcr_network.hpp"
#include "net/channel.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::check {
namespace {

using traffic::Message;
using util::Duration;
using util::SimTime;

// Installs the run_ddcr auditor seam for the end-to-end tests below.
const bool kConformanceInstalled = install_conformance_auditor();

net::PhyConfig tiny_phy() {
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  return phy;
}

core::DdcrConfig tiny_ddcr() {
  core::DdcrConfig config;
  config.m_time = 2;
  config.F = 16;
  config.m_static = 2;
  config.q = 4;
  config.class_width_c = Duration::microseconds(2);
  config.alpha = Duration::nanoseconds(0);
  return config;
}

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_ns, std::int64_t l_bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.source = source;
  msg.class_id = source;
  msg.l_bits = l_bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

net::Frame frame_of(const Message& msg) {
  net::Frame frame;
  frame.source = msg.source;
  frame.msg_uid = msg.uid;
  frame.class_id = msg.class_id;
  frame.l_bits = msg.l_bits;
  frame.enqueue_time = msg.arrival;
  frame.absolute_deadline = msg.absolute_deadline;
  return frame;
}

using Entry = ConformanceRecorder::Entry;

Entry silence(std::int64_t start_ns, std::int64_t width_ns = 100) {
  Entry entry;
  entry.record.kind = net::SlotKind::kSilence;
  entry.record.contenders = 0;
  entry.record.start = SimTime::from_ns(start_ns);
  entry.record.end = SimTime::from_ns(start_ns + width_ns);
  return entry;
}

Entry collision(std::int64_t start_ns, int contenders) {
  Entry entry;
  entry.record.kind = net::SlotKind::kCollision;
  entry.record.contenders = contenders;
  entry.record.start = SimTime::from_ns(start_ns);
  entry.record.end = SimTime::from_ns(start_ns + 100);
  return entry;
}

Entry success(const Message& msg, std::int64_t start_ns, int contenders = 1) {
  Entry entry;
  entry.record.kind = net::SlotKind::kSuccess;
  entry.record.contenders = contenders;
  entry.record.start = SimTime::from_ns(start_ns);
  entry.record.end = SimTime::from_ns(start_ns + 100);  // l = 100 bits
  entry.record.frame = frame_of(msg);
  return entry;
}

ConformanceInput base_input(std::vector<Message> messages) {
  ConformanceInput input;
  input.messages = std::move(messages);
  input.phy = tiny_phy();
  input.ddcr = tiny_ddcr();
  return input;
}

bool mentions(const core::ConformanceReport& report,
              const std::string& needle) {
  for (const std::string& violation : report.violations) {
    if (violation.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- negative tests: every checker class must fire on a planted stream ----

TEST(ConformanceNegative, MutualExclusionViolationFires) {
  const Message msg = make_msg(0, 0, 0, 100'000);
  auto entry = success(msg, 0, /*contenders=*/2);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {entry}, /*whole_run=*/true);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "mutual exclusion")) << report.summary();
}

TEST(ConformanceNegative, MutualExclusionFiresForBaselinesToo) {
  // The safety property is protocol-independent: protocol_is_ddcr = false
  // must not disable it.
  const Message msg = make_msg(0, 0, 0, 100'000);
  auto input = base_input({msg});
  input.protocol_is_ddcr = false;
  const auto report = ConformanceComparator{}.check_entries(
      input, {success(msg, 0, 3)}, /*whole_run=*/true);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "mutual exclusion"));
}

TEST(ConformanceNegative, OverlappingSlotsFire) {
  const Message msg = make_msg(0, 0, 0, 100'000);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {silence(0), silence(50)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "slots overlap"));
}

TEST(ConformanceNegative, SilenceWithTransmittersFires) {
  auto entry = silence(0);
  entry.record.contenders = 1;
  const auto report = ConformanceComparator{}.check_entries(
      base_input({}), {entry}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "silence with transmitters"));
}

TEST(ConformanceNegative, LoneTransmitterCollisionFires) {
  // In noise-free destructive mode a collision proves >= 2 transmitters.
  const auto report = ConformanceComparator{}.check_entries(
      base_input({}), {collision(0, 1)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "fewer than 2 transmitters"));
}

TEST(ConformanceNegative, WrongSlotDurationFires) {
  const auto report = ConformanceComparator{}.check_entries(
      base_input({}), {silence(0, /*width_ns=*/150)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "duration != x"));
}

TEST(ConformanceNegative, PhantomFrameFires) {
  // A delivered frame whose uid was never injected.
  const Message ghost = make_msg(999, 0, 0, 100'000);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({}), {success(ghost, 0)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "never injected"));
}

TEST(ConformanceNegative, FrameMetadataMismatchFires) {
  const Message msg = make_msg(0, 0, 0, 100'000);
  auto entry = success(msg, 0);
  entry.record.frame->absolute_deadline = SimTime::from_ns(999'999);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {entry}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "does not match the injected message"));
}

TEST(ConformanceNegative, DeliveryBeforeArrivalFires) {
  const Message msg = make_msg(0, 0, 5'000, 100'000);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {success(msg, 0)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "before it arrived"));
}

TEST(ConformanceNegative, DoubleDeliveryFires) {
  const Message msg = make_msg(0, 0, 0, 100'000);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {success(msg, 0), success(msg, 200)},
      /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "delivered twice"));
}

TEST(ConformanceNegative, MissingDeliveryFiresWhenDrainExpected) {
  const Message delivered = make_msg(0, 0, 0, 100'000);
  const Message lost = make_msg(1, 1, 0, 100'000);
  auto input = base_input({delivered, lost});
  input.expect_drain = true;
  const auto report = ConformanceComparator{}.check_entries(
      input, {success(delivered, 0)}, /*whole_run=*/true);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "never delivered"));
}

TEST(ConformanceNegative, DeadlineMissFiresWhenTimelinessExpected) {
  const Message msg = make_msg(0, 0, 0, 10'000);
  auto input = base_input({msg});
  input.expect_timeliness = true;
  const auto report = ConformanceComparator{}.check_entries(
      input, {success(msg, 20'000)}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "deadline missed"));
  EXPECT_EQ(report.observed_misses, 1);
}

TEST(ConformanceNegative, MissWithoutTimelinessExpectationOnlyCounts) {
  const Message msg = make_msg(0, 0, 0, 10'000);
  const auto report = ConformanceComparator{}.check_entries(
      base_input({msg}), {success(msg, 20'000)}, /*whole_run=*/false);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.observed_misses, 1);
}

TEST(ConformanceNegative, InfeasibleScenarioCannotClaimTimeliness) {
  // 1000-bit frame with a 10 ns deadline: even the clairvoyant centralized
  // server misses, so declaring the scenario timely is itself the bug.
  const Message msg = make_msg(0, 0, 0, 10, 1000);
  auto input = base_input({msg});
  input.expect_timeliness = true;
  const auto report = ConformanceComparator{}.check_entries(
      input, {}, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "already misses"));
  EXPECT_FALSE(report.oracle_feasible);
}

TEST(ConformanceNegative, EdfOrderViolationFires) {
  const Message urgent = make_msg(0, 0, 0, 5'000);
  const Message lazy = make_msg(1, 1, 0, 50'000);
  auto input = base_input({urgent, lazy});
  input.edf_tolerance = Duration::microseconds(1);
  // The lazy message transmits at 1 us while the urgent one (deadline 45 us
  // earlier) has been waiting since t = 0.
  const auto report = ConformanceComparator{}.check_entries(
      input, {success(lazy, 1'000), success(urgent, 1'200)},
      /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "EDF order violated"));
  EXPECT_GE(report.edf_pairs_checked, 1);
}

TEST(ConformanceNegative, ChannelAccountingDriftFires) {
  const Message msg = make_msg(0, 0, 0, 100'000);
  net::ChannelStats stats;
  stats.successes = 5;  // recorded stream has exactly 1
  stats.silence_slots = 0;
  stats.collision_slots = 0;
  auto input = base_input({msg});
  input.stats = &stats;
  const auto report = ConformanceComparator{}.check_entries(
      input, {success(msg, 0)}, /*whole_run=*/true);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "channel accounting drift"));
}

TEST(ConformanceNegative, ViolationListIsCapped) {
  // 60 planted overlaps must not produce 60 strings — the tail collapses
  // into one summary line.
  std::vector<Entry> entries;
  for (int i = 0; i < 60; ++i) {
    auto entry = silence(0);
    entry.record.contenders = 1;
    entries.push_back(entry);
  }
  const auto report = ConformanceComparator{}.check_entries(
      base_input({}), entries, /*whole_run=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.violations.size(), 41u);
  EXPECT_TRUE(mentions(report, "further violation(s)"));
}

// --- positive: forged clean streams and exemptions ------------------------

TEST(ConformancePositive, CleanForgedStreamPasses) {
  const Message a = make_msg(0, 0, 0, 100'000);
  const Message b = make_msg(1, 1, 0, 110'000);
  auto input = base_input({a, b});
  input.expect_drain = true;
  const auto report = ConformanceComparator{}.check_entries(
      input, {silence(0), success(a, 100), success(b, 200), silence(300)},
      /*whole_run=*/true);
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.slots_checked, 4);
  EXPECT_EQ(report.observed_misses, 0);
  EXPECT_TRUE(report.oracle_feasible);
}

TEST(ConformancePositive, BurstAndArbitrationWinsAreExemptFromExclusion) {
  const Message a = make_msg(0, 0, 0, 100'000);
  const Message b = make_msg(1, 1, 0, 110'000);
  auto arb = success(a, 0, /*contenders=*/2);
  arb.record.arbitration = true;
  arb.record.end = arb.record.start + Duration::nanoseconds(200);  // x + tx
  auto burst = success(b, 200, /*contenders=*/2);
  burst.record.in_burst = true;
  burst.record.end = burst.record.start + Duration::nanoseconds(100);  // tx
  auto input = base_input({a, b});
  input.collision_mode = net::CollisionMode::kArbitration;
  const auto report = ConformanceComparator{}.check_entries(
      input, {arb, burst}, /*whole_run=*/false);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ConformanceRecorderTest, GapEntriesSpanTheWholeGap) {
  ConformanceRecorder recorder;
  recorder.on_slot(silence(0).record);
  recorder.on_idle_gap(10, SimTime::from_ns(100), Duration::nanoseconds(100));
  recorder.on_slot(silence(1'100).record);
  EXPECT_EQ(recorder.observations(), 12);
  ASSERT_EQ(recorder.entries().size(), 3u);
  const auto& gap = recorder.entries()[1];
  EXPECT_EQ(gap.gap_slots, 10);
  EXPECT_EQ(gap.record.start, SimTime::from_ns(100));
  EXPECT_EQ(gap.record.end, SimTime::from_ns(1'100));
  EXPECT_EQ(gap.obs_index, 1);
}

TEST(ConformanceRecorderTest, CleanPrefixClipsStraddlingGaps) {
  ConformanceRecorder recorder;
  recorder.on_slot(silence(0).record);
  recorder.on_idle_gap(10, SimTime::from_ns(100), Duration::nanoseconds(100));
  recorder.on_slot(silence(1'100).record);
  // Cut at observation 5: the 10-slot gap keeps only its first 4 slots.
  const auto prefix = recorder.clean_prefix(5);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[1].gap_slots, 4);
  EXPECT_EQ(prefix[1].record.end, SimTime::from_ns(500));
  // A cut before the first entry yields nothing.
  EXPECT_TRUE(recorder.clean_prefix(0).empty());
}

// --- end to end: the real protocol under the full differential ------------

core::DdcrRunOptions quickstart_options(const traffic::Workload& workload) {
  core::DdcrRunOptions options;
  options.ddcr.class_width_c = core::DdcrConfig::class_width_for(
      workload.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = sim::SimTime::from_ns(10'000'000);
  options.drain_cap = sim::SimTime::from_ns(50'000'000);
  return options;
}

TEST(ConformanceEndToEnd, RunDdcrPassesTheFullDifferential) {
  ASSERT_TRUE(kConformanceInstalled);
  const auto workload = traffic::quickstart(4);
  auto options = quickstart_options(workload);
  options.conformance_check = true;
  const auto result = core::run_ddcr(workload, options);
  EXPECT_TRUE(result.conformance.checked);
  EXPECT_TRUE(result.conformance.ok) << result.conformance.summary();
  EXPECT_GT(result.conformance.slots_checked, 0);
  EXPECT_GT(result.conformance.epochs, 0);
  EXPECT_GT(result.conformance.edf_pairs_checked, 0);
  EXPECT_TRUE(result.conformance.oracle_feasible);
}

TEST(ConformanceEndToEnd, UncheckedRunsStayUnchecked) {
  const auto workload = traffic::quickstart(4);
  const auto result = core::run_ddcr(workload, quickstart_options(workload));
  EXPECT_FALSE(result.conformance.checked);
  EXPECT_TRUE(result.conformance.ok);  // vacuously
}

// --- baselines: safety holds for every MAC under the same comparator ------

class BaselineSafety : public ::testing::TestWithParam<baseline::Protocol> {};

TEST_P(BaselineSafety, RecordedRunPassesSafetyChecks) {
  const auto workload = traffic::quickstart(4);
  baseline::ProtocolRunOptions options;
  options.base.arrival_horizon = sim::SimTime::from_ns(5'000'000);
  options.base.drain_cap = sim::SimTime::from_ns(100'000'000);
  ConformanceRecorder recorder;
  options.observer = &recorder;
  const auto result =
      baseline::run_protocol(GetParam(), workload, options);
  ASSERT_GT(result.generated, 0);

  ConformanceInput input;
  const auto traffic = traffic::generate_traffic(
      workload, options.base.arrivals, options.base.arrival_horizon,
      options.base.seed);
  for (const auto& source : traffic.per_source) {
    input.messages.insert(input.messages.end(), source.begin(), source.end());
  }
  input.phy = options.base.phy;
  input.collision_mode = options.base.collision_mode;
  input.ddcr = options.base.ddcr;
  input.protocol_is_ddcr = false;  // no EDF/bound promises for baselines
  input.expect_drain = result.undelivered == 0 && result.dropped == 0;
  input.stats = &result.channel;
  const auto report = ConformanceComparator{}.check(input, recorder);
  EXPECT_TRUE(report.checked);
  EXPECT_TRUE(report.ok)
      << baseline::protocol_name(GetParam()) << ": " << report.summary();
  EXPECT_GT(report.slots_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Macs, BaselineSafety,
    ::testing::Values(baseline::Protocol::kBeb, baseline::Protocol::kDcr,
                      baseline::Protocol::kTdma, baseline::Protocol::kStack),
    [](const ::testing::TestParamInfo<baseline::Protocol>& info) {
      switch (info.param) {
        case baseline::Protocol::kBeb: return std::string("Beb");
        case baseline::Protocol::kDcr: return std::string("Dcr");
        case baseline::Protocol::kTdma: return std::string("Tdma");
        case baseline::Protocol::kStack: return std::string("Stack");
        case baseline::Protocol::kDdcr: break;
      }
      return std::string("Ddcr");
    });

}  // namespace
}  // namespace hrtdm::check
