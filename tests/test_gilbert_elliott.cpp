// Gilbert–Elliott bursty loss: a hidden two-state (good/bad) channel whose
// loss probability depends on the state, so corrupted frames cluster into
// fading bursts instead of arriving i.i.d. The model replaces
// PhyConfig::corruption_prob as an optional channel mode; the protocol must
// survive it exactly as it survives i.i.d. noise (a destroyed success is a
// symmetric collision of the same duration), and enabling it must not
// perturb the i.i.d. noise stream of pinned runs (independent RNG split,
// drawn only when enabled).
#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "net/channel.hpp"
#include "traffic/message.hpp"
#include "util/check.hpp"

namespace hrtdm::net {
namespace {

using core::DdcrRunOptions;
using core::DdcrTestbed;
using traffic::Message;
using util::Duration;
using util::SimTime;

// --- validation -----------------------------------------------------------

TEST(GilbertElliott, ValidatesParameters) {
  PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.gilbert_elliott(0.05, 0.25, 0.0, 0.5);
  phy.validate();

  PhyConfig both = phy;
  both.corruption_prob = 0.1;  // mutually exclusive with i.i.d. noise
  EXPECT_THROW(both.validate(), util::ContractViolation);

  PhyConfig stuck = phy;
  stuck.ge_p_bad_good = 0.0;  // bad bursts would never end
  EXPECT_THROW(stuck.validate(), util::ContractViolation);

  PhyConfig certain = phy;
  certain.ge_loss_bad = 1.0;  // loss certainty would livelock retries
  EXPECT_THROW(certain.validate(), util::ContractViolation);

  PhyConfig range = phy;
  range.ge_p_good_bad = 1.5;
  EXPECT_THROW(range.validate(), util::ContractViolation);
}

// --- behavior -------------------------------------------------------------

DdcrRunOptions small_options() {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.max_empty_tts = 2;
  return options;
}

Message msg_from(std::int64_t uid, int source, std::int64_t arrival_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + 14'000);
  return msg;
}

TEST(GilbertElliott, ChainAdvancesEverySlotEvenWhenIdle) {
  // p(good->bad) = 1, p(bad->good) ~ 0: after the first slot the channel
  // sits in the bad state for the whole run. Idle fast-forward is disabled
  // under GE (the chain must see every slot boundary), so even a
  // traffic-free run accumulates bad slots.
  auto options = small_options();
  options.phy.gilbert_elliott(1.0, 1e-9, 0.0, 0.5);
  DdcrTestbed bed(2, options);
  bed.run(SimTime::from_ns(50'000));  // 500 slots, no traffic at all
  const ChannelStats& stats = bed.channel().stats();
  EXPECT_GT(stats.silence_slots, 400);
  EXPECT_GT(stats.ge_bad_slots, 400);
  EXPECT_EQ(stats.ge_losses, 0);  // nothing transmitted, nothing to lose
}

TEST(GilbertElliott, LossesClusterInBadStateAndTrafficStillDrains) {
  // Moderate fading: bursts of ~4 bad slots (p_bad_good = 0.25) destroying
  // half the successes inside them. The protocol retries through the
  // resulting symmetric collisions and every message must still deliver.
  auto options = small_options();
  options.phy.gilbert_elliott(0.10, 0.25, 0.0, 0.5);
  DdcrTestbed bed(3, options);
  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    bed.inject(i % 3, msg_from(100 + i, i % 3, 500 + 700 * i));
  }
  bed.run(SimTime::from_ns(3'000'000));
  EXPECT_EQ(bed.queued(), 0);
  EXPECT_EQ(static_cast<int>(bed.metrics().log().size()), kMessages);
  EXPECT_TRUE(bed.digests_agree());
  const ChannelStats& stats = bed.channel().stats();
  EXPECT_GT(stats.ge_bad_slots, 0);
  EXPECT_GT(stats.ge_losses, 0);
  // Every GE loss is accounted as a corrupted frame (same symmetric
  // destruction path as i.i.d. noise).
  EXPECT_LE(stats.ge_losses, stats.corrupted_frames);
}

TEST(GilbertElliott, DeterministicPerSeedAndInertWhenDisabled) {
  auto options = small_options();
  options.phy.gilbert_elliott(0.10, 0.25, 0.0, 0.5);
  auto run_stats = [&options]() {
    DdcrTestbed bed(3, options);
    for (int i = 0; i < 12; ++i) {
      bed.inject(i % 3, msg_from(100 + i, i % 3, 500 + 700 * i));
    }
    bed.run(SimTime::from_ns(1'500'000));
    return bed.channel().stats();
  };
  const ChannelStats a = run_stats();
  const ChannelStats b = run_stats();
  EXPECT_EQ(a.ge_bad_slots, b.ge_bad_slots);
  EXPECT_EQ(a.ge_losses, b.ge_losses);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collision_slots, b.collision_slots);

  // Disabled: the GE counters stay exactly zero (the GE RNG is never
  // drawn, so pinned clean-channel digests cannot shift).
  auto clean = small_options();
  DdcrTestbed bed(3, clean);
  for (int i = 0; i < 12; ++i) {
    bed.inject(i % 3, msg_from(100 + i, i % 3, 500 + 700 * i));
  }
  bed.run(SimTime::from_ns(1'500'000));
  EXPECT_EQ(bed.channel().stats().ge_bad_slots, 0);
  EXPECT_EQ(bed.channel().stats().ge_losses, 0);
}

TEST(GilbertElliott, BurstierChannelsLoseMoreUnderTheSameTraffic) {
  // Sanity on the burst structure: with identical loss-in-bad probability,
  // a channel that enters the bad state more often destroys more frames.
  auto run_losses = [](double p_good_bad) {
    DdcrRunOptions options;
    options.phy.slot_x = Duration::nanoseconds(100);
    options.phy.psi_bps = 1e9;
    options.phy.overhead_bits = 0;
    options.ddcr.m_time = 2;
    options.ddcr.F = 16;
    options.ddcr.m_static = 2;
    options.ddcr.q = 16;
    options.ddcr.class_width_c = Duration::microseconds(1);
    options.ddcr.max_empty_tts = 2;
    options.phy.gilbert_elliott(p_good_bad, 0.2, 0.0, 0.6);
    DdcrTestbed bed(3, options);
    for (int i = 0; i < 60; ++i) {
      Message msg;
      msg.uid = 100 + i;
      msg.class_id = i % 3;
      msg.source = i % 3;
      msg.l_bits = 100;
      msg.arrival = SimTime::from_ns(500 + 500 * i);
      msg.absolute_deadline = SimTime::from_ns(500 + 500 * i + 14'000);
      bed.inject(i % 3, msg);
    }
    bed.run(SimTime::from_ns(6'000'000));
    EXPECT_EQ(bed.queued(), 0) << "p_good_bad " << p_good_bad;
    return bed.channel().stats().ge_losses;
  };
  const std::int64_t calm = run_losses(0.02);
  const std::int64_t stormy = run_losses(0.5);
  EXPECT_GT(stormy, calm);
}

}  // namespace
}  // namespace hrtdm::net
