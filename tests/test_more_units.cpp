// Edge cases and randomized reference checks in corners the focused suites
// do not reach: exact burst budgets, simulator cancellation during event
// chains, static-index allocation properties, EDF-queue fuzz against a
// reference model, near-equal P2 compositions, and multi-index DCR.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "analysis/p2.hpp"
#include "baseline/dcr_station.hpp"
#include "core/ddcr_config.hpp"
#include "core/edf_queue.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hrtdm {
namespace {

using core::EdfQueue;
using sim::Simulator;
using util::Duration;
using util::SimTime;

// --- burst budget boundary --------------------------------------------

class BurstBoundaryStation final : public net::Station {
 public:
  explicit BurstBoundaryStation(int id) : id_(id) {}
  int id() const override { return id_; }

  std::optional<net::Frame> poll_intent(SimTime now) override {
    (void)now;
    if (!first_sent_) {
      first_sent_ = true;
      return frame(1, 100);
    }
    return std::nullopt;
  }

  std::optional<net::Frame> poll_burst(SimTime now,
                                       std::int64_t budget_bits) override {
    (void)now;
    // Offer a frame of exactly the remaining budget.
    if (burst_offers_ == 0) {
      ++burst_offers_;
      return frame(2, budget_bits);
    }
    return std::nullopt;
  }

  void observe(const net::SlotObservation& obs) override {
    if (obs.kind == net::SlotKind::kSuccess) {
      delivered_.push_back(obs.frame->msg_uid);
    }
  }

  const std::vector<std::int64_t>& delivered() const { return delivered_; }

 private:
  net::Frame frame(std::int64_t uid, std::int64_t bits) const {
    net::Frame f;
    f.source = id_;
    f.msg_uid = uid;
    f.l_bits = bits;
    return f;
  }
  int id_;
  bool first_sent_ = false;
  int burst_offers_ = 0;
  std::vector<std::int64_t> delivered_;
};

TEST(BurstBoundary, ExactBudgetFrameIsAccepted) {
  Simulator sim;
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.burst_budget_bits = 1000;
  net::BroadcastChannel channel(sim, phy);
  BurstBoundaryStation station(0);
  channel.attach(station);
  channel.start();
  sim.run_until(SimTime::from_ns(10'000));
  // The continuation of exactly 1000 bits (== budget) must go through.
  EXPECT_EQ(station.delivered(),
            (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(channel.stats().burst_continuations, 1);
}

// --- simulator cancellation inside callbacks ---------------------------

TEST(SimulatorEdges, CancelFromInsideAnEarlierEventAtTheSameTime) {
  Simulator sim;
  bool second_fired = false;
  sim::EventHandle second;
  sim.schedule_at(SimTime::from_ns(10), [&] { sim.cancel(second); });
  second = sim.schedule_at(SimTime::from_ns(10),
                           [&] { second_fired = true; });
  sim.run_to_completion();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorEdges, CancelSelfIsHarmless) {
  Simulator sim;
  sim::EventHandle self;
  int fired = 0;
  self = sim.schedule_at(SimTime::from_ns(5), [&] {
    ++fired;
    EXPECT_FALSE(sim.cancel(self));  // already consumed
  });
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
}

// --- static index allocation properties --------------------------------

TEST(SpreadIndices, RandomConfigurationsAreValidPartitions) {
  util::Rng rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    const int z = static_cast<int>(rng.uniform_i64(1, 12));
    const int m = rng.bernoulli(0.5) ? 2 : 4;
    std::int64_t q = m;
    while (q < z * 4) {
      q *= m;
    }
    std::vector<std::int64_t> nu(static_cast<std::size_t>(z));
    std::int64_t total = 0;
    for (auto& n : nu) {
      n = rng.uniform_i64(1, 3);
      total += n;
    }
    if (total > q) {
      continue;
    }
    const auto indices = core::DdcrConfig::spread_indices(z, q, nu);
    std::set<std::int64_t> seen;
    for (int s = 0; s < z; ++s) {
      const auto& mine = indices[static_cast<std::size_t>(s)];
      EXPECT_EQ(static_cast<std::int64_t>(mine.size()),
                nu[static_cast<std::size_t>(s)]);
      EXPECT_TRUE(std::is_sorted(mine.begin(), mine.end()));
      for (const auto index : mine) {
        EXPECT_GE(index, 0);
        EXPECT_LT(index, q);
        EXPECT_TRUE(seen.insert(index).second) << "duplicate index";
      }
    }
  }
}

TEST(SpreadIndices, SingleIndexAllocationsAreMaximallySpread) {
  const auto indices = core::DdcrConfig::one_index_per_source(4, 64);
  // Stride 16: indices {0, 16, 32, 48} — one per quaternary root subtree.
  EXPECT_EQ(indices[0][0], 0);
  EXPECT_EQ(indices[1][0], 16);
  EXPECT_EQ(indices[2][0], 32);
  EXPECT_EQ(indices[3][0], 48);
}

// --- EDF queue fuzz vs reference ---------------------------------------

TEST(EdfQueueFuzz, MatchesReferenceModelOverRandomOps) {
  util::Rng rng(909);
  EdfQueue queue;
  std::vector<traffic::Message> reference;
  std::int64_t next_uid = 0;
  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform01();
    if (dice < 0.55 || reference.empty()) {
      traffic::Message msg;
      msg.uid = next_uid++;
      msg.class_id = 0;
      msg.source = 0;
      msg.l_bits = 100;
      msg.arrival = SimTime::from_ns(op);
      msg.absolute_deadline =
          SimTime::from_ns(rng.uniform_i64(0, 500));
      queue.push(msg);
      reference.push_back(msg);
    } else if (dice < 0.85) {
      // Remove the EDF head.
      const auto head = queue.head();
      ASSERT_TRUE(head.has_value());
      EXPECT_TRUE(queue.remove(head->uid));
      const auto it = std::min_element(
          reference.begin(), reference.end(),
          [](const auto& a, const auto& b) {
            if (a.absolute_deadline != b.absolute_deadline) {
              return a.absolute_deadline < b.absolute_deadline;
            }
            return a.uid < b.uid;
          });
      EXPECT_EQ(head->uid, it->uid);
      reference.erase(it);
    } else {
      // Remove a random element by uid.
      const auto idx = static_cast<std::size_t>(rng.uniform_i64(
          0, static_cast<std::int64_t>(reference.size()) - 1));
      EXPECT_TRUE(queue.remove(reference[idx].uid));
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(idx));
    }
    EXPECT_EQ(queue.size(), reference.size());
    if (!reference.empty()) {
      const auto it = std::min_element(
          reference.begin(), reference.end(),
          [](const auto& a, const auto& b) {
            if (a.absolute_deadline != b.absolute_deadline) {
              return a.absolute_deadline < b.absolute_deadline;
            }
            return a.uid < b.uid;
          });
      ASSERT_TRUE(queue.head().has_value());
      EXPECT_EQ(queue.head()->uid, it->uid);
    }
  }
}

// --- P2 composition structure -------------------------------------------

TEST(P2Structure, WorstCompositionDominatesTheEqualSplit) {
  // The *exact* xi staircase is not concave, so — unlike the asymptote of
  // Eq. 18 — its maximising composition need not be an equal split (the
  // adversary gravitates to the touch points k = 2 m^i). What must hold:
  // the maximiser's value is at least the equal split's, and the whole
  // thing stays below the concave P2 bound.
  analysis::XiExactTable table(4, 3);  // t = 64
  for (const std::int64_t u : {40LL, 60LL, 100LL}) {
    const int v = 4;
    const auto parts = analysis::p2_worst_composition(table, u, v);
    std::int64_t value = 0;
    for (const auto part : parts) {
      value += table.xi(part);
    }
    std::int64_t equal_split = 0;
    for (int i = 0; i < v; ++i) {
      equal_split += table.xi(u / v + (i < u % v ? 1 : 0));
    }
    EXPECT_GE(value, equal_split) << "u=" << u;
    EXPECT_LE(static_cast<double>(value),
              analysis::p2_bound(4, 64.0, static_cast<double>(u),
                                 static_cast<double>(v)) +
                  1e-9)
        << "u=" << u;
  }
}

// --- DCR with several indices per source ---------------------------------

TEST(DcrMultiIndex, SourceTransmitsUpToNuPerResolution) {
  Simulator sim;
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  net::BroadcastChannel channel(sim, phy);
  baseline::DcrStation::Config config;
  config.m = 2;
  config.q = 8;
  baseline::DcrStation a(0, config, {0, 4});  // nu = 2
  baseline::DcrStation b(1, config, {6});
  channel.attach(a);
  channel.attach(b);
  core::MetricsCollector metrics;
  channel.add_observer(metrics);

  auto enqueue = [](baseline::DcrStation& station, std::int64_t uid,
                    int source) {
    traffic::Message msg;
    msg.uid = uid;
    msg.class_id = source;
    msg.source = source;
    msg.l_bits = 100;
    msg.arrival = SimTime::zero();
    msg.absolute_deadline = SimTime::from_ns(10'000'000);
    station.enqueue(msg);
  };
  enqueue(a, 1, 0);
  enqueue(a, 2, 0);
  enqueue(b, 3, 1);
  channel.start();
  sim.run_until(SimTime::from_ns(100'000));
  // One resolution serves both of a's messages (indices 0 then 4) plus
  // b's: all three delivered, in index order 0, 4, 6.
  ASSERT_EQ(metrics.log().size(), 3u);
  EXPECT_EQ(metrics.log()[0].uid, 1);
  EXPECT_EQ(metrics.log()[1].uid, 2);
  EXPECT_EQ(metrics.log()[2].uid, 3);
}

}  // namespace
}  // namespace hrtdm
