// Soak grid: the full protocol stack across scenarios, tree shapes, epoch
// modes, arrival processes, bursting and noise — checking on every
// combination the invariants that must never break:
//   - replica consistency on every slot,
//   - conservation (generated = delivered + still-queued),
//   - channel sanity (utilization <= 1, no lost frames),
//   - the full differential conformance check (EDF oracle, xi bounds,
//     accounting cross-checks) on the recorded slot stream of every run.
#include <gtest/gtest.h>

#include <string>

#include "check/conformance.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::core {
namespace {

using traffic::ArrivalKind;

const bool kConformanceInstalled = check::install_conformance_auditor();

struct SoakParam {
  const char* scenario;
  int z;
  int m_time;
  int m_static;
  EpochMode epoch_mode;
  ArrivalKind arrivals;
  bool bursting;
  double corruption;
};

std::string soak_name(const ::testing::TestParamInfo<SoakParam>& info) {
  const auto& p = info.param;
  std::string name = std::string(p.scenario) + "z" + std::to_string(p.z) +
                     "mt" + std::to_string(p.m_time) + "ms" +
                     std::to_string(p.m_static);
  name += p.epoch_mode == EpochMode::kPerpetual ? "Perp" : "Fall";
  switch (p.arrivals) {
    case ArrivalKind::kSaturatingAdversary: name += "Sat"; break;
    case ArrivalKind::kPeriodicJitter: name += "Per"; break;
    case ArrivalKind::kSporadic: name += "Spo"; break;
    case ArrivalKind::kBoundedPoisson: name += "Poi"; break;
  }
  if (p.bursting) {
    name += "Burst";
  }
  if (p.corruption > 0) {
    name += "Noise";
  }
  return name;
}

class Soak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(Soak, InvariantsHoldOverALongRun) {
  const auto& p = GetParam();
  const traffic::Workload wl = traffic::workload_by_name(p.scenario, p.z);

  DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.phy.burst_budget_bits = p.bursting ? 512 * 8 : 0;
  options.phy.corruption_prob = p.corruption;
  options.ddcr.m_time = p.m_time;
  // F must be a power of m_time; pick ~64 leaves.
  options.ddcr.F = p.m_time == 2 ? 64 : (p.m_time == 4 ? 64 : 64);
  options.ddcr.m_static = p.m_static;
  options.ddcr.q = p.m_static == 2 ? 64 : 64;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.ddcr.epoch_mode = p.epoch_mode;
  options.ddcr.theta_factor = 1.0;
  options.arrivals = p.arrivals;
  options.seed = 20260705;
  options.arrival_horizon = SimTime::from_ns(60'000'000);
  options.drain_cap = SimTime::from_ns(400'000'000);
  options.check_consistency = true;
  options.conformance_check = kConformanceInstalled;

  const DdcrRunResult result = run_ddcr(wl, options);
  EXPECT_TRUE(result.conformance.checked);
  EXPECT_TRUE(result.conformance.ok) << result.conformance.summary();
  EXPECT_GT(result.conformance.slots_checked, 0);
  EXPECT_TRUE(result.consistency_ok) << "replicas diverged";
  EXPECT_EQ(result.metrics.delivered + result.undelivered, result.generated);
  EXPECT_GT(result.generated, 0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
  // These workloads are light enough that everything must drain.
  EXPECT_EQ(result.undelivered, 0);
  if (p.corruption == 0.0) {
    EXPECT_EQ(result.metrics.misses, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Soak,
    ::testing::Values(
        SoakParam{"quickstart", 8, 4, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSaturatingAdversary, false, 0.0},
        SoakParam{"quickstart", 8, 2, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kBoundedPoisson, false, 0.0},
        SoakParam{"quickstart", 5, 4, 2, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSporadic, false, 0.0},
        SoakParam{"videoconference", 6, 4, 4, EpochMode::kPerpetual,
                  ArrivalKind::kSaturatingAdversary, false, 0.0},
        SoakParam{"videoconference", 6, 4, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kPeriodicJitter, true, 0.0},
        SoakParam{"atc", 5, 2, 2, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSaturatingAdversary, false, 0.05},
        SoakParam{"stocks", 6, 4, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSaturatingAdversary, false, 0.0},
        SoakParam{"stocks", 6, 4, 4, EpochMode::kPerpetual,
                  ArrivalKind::kBoundedPoisson, true, 0.02},
        SoakParam{"factory", 8, 2, 2, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSaturatingAdversary, false, 0.0},
        SoakParam{"factory", 8, 4, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kBoundedPoisson, false, 0.1},
        SoakParam{"avionics", 6, 4, 4, EpochMode::kCsmaCdFallback,
                  ArrivalKind::kSaturatingAdversary, false, 0.0},
        SoakParam{"avionics", 10, 2, 4, EpochMode::kPerpetual,
                  ArrivalKind::kSporadic, false, 0.0}),
    soak_name);

TEST(SoakSeeds, ConsistencyAcrossManySeeds) {
  // Same scenario, 12 seeds: replica consistency is seed-independent.
  const traffic::Workload wl = traffic::stock_exchange(6);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = ArrivalKind::kBoundedPoisson;
  options.arrival_horizon = SimTime::from_ns(15'000'000);
  options.drain_cap = SimTime::from_ns(100'000'000);
  options.check_consistency = true;
  options.conformance_check = kConformanceInstalled;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    options.seed = seed;
    const auto result = run_ddcr(wl, options);
    EXPECT_TRUE(result.consistency_ok) << "seed " << seed;
    EXPECT_EQ(result.undelivered, 0) << "seed " << seed;
    EXPECT_TRUE(result.conformance.ok)
        << "seed " << seed << ": " << result.conformance.summary();
  }
}

}  // namespace
}  // namespace hrtdm::core
