#include "traffic/serialize.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hrtdm::traffic {
namespace {

TEST(Serialize, RoundTripsEveryBuiltInScenario) {
  for (const auto& name : scenario_names()) {
    const Workload original = workload_by_name(name, 5);
    const Workload parsed = parse_workload(serialize_workload(original));
    EXPECT_EQ(parsed.name, original.name);
    ASSERT_EQ(parsed.sources.size(), original.sources.size());
    for (std::size_t s = 0; s < original.sources.size(); ++s) {
      const auto& a = original.sources[s];
      const auto& b = parsed.sources[s];
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.name, b.name);
      ASSERT_EQ(a.classes.size(), b.classes.size());
      for (std::size_t c = 0; c < a.classes.size(); ++c) {
        EXPECT_EQ(a.classes[c].id, b.classes[c].id);
        EXPECT_EQ(a.classes[c].name, b.classes[c].name);
        EXPECT_EQ(a.classes[c].source, b.classes[c].source);
        EXPECT_EQ(a.classes[c].l_bits, b.classes[c].l_bits);
        EXPECT_EQ(a.classes[c].d, b.classes[c].d);
        EXPECT_EQ(a.classes[c].a, b.classes[c].a);
        EXPECT_EQ(a.classes[c].w, b.classes[c].w);
      }
    }
  }
}

TEST(Serialize, ParsesHandWrittenFileWithComments) {
  const std::string text = R"(# two radar stations
workload radars
source 0 north
class 0 track l_bits=3200 d_us=50000 a=4 w_us=100000
class 1 alert l_bits=1024 d_us=2000 a=1 w_us=200000   # tight
source 1 south

class 2 track l_bits=3200 d_us=50000 a=4 w_us=100000
)";
  const Workload wl = parse_workload(text);
  EXPECT_EQ(wl.name, "radars");
  ASSERT_EQ(wl.sources.size(), 2u);
  EXPECT_EQ(wl.sources[0].classes.size(), 2u);
  EXPECT_EQ(wl.sources[1].classes.size(), 1u);
  EXPECT_EQ(wl.sources[0].classes[1].d.ns(), 2'000'000);
  EXPECT_EQ(wl.sources[1].classes[0].source, 1);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  const auto expect_mentions = [](const std::string& text,
                                  const std::string& needle) {
    try {
      parse_workload(text);
      FAIL() << "expected a parse failure";
    } catch (const util::ContractViolation& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };
  expect_mentions("workload w\nclass 0 c l_bits=1 d_us=1 a=1 w_us=1\n",
                  "line 2");
  expect_mentions("workload w\nsource 0 s\nclass 0 c l_bits=x d_us=1 a=1 "
                  "w_us=1\n",
                  "cannot parse integer");
  expect_mentions("workload w\nsource 0 s\nbanana\n", "unknown keyword");
  expect_mentions("source 0 s\n", "missing `workload");
  expect_mentions("workload w\nsource 0 s\nclass 0 c l_bits=1\n",
                  "class line needs");
}

TEST(Serialize, ParsedWorkloadFailsValidationWhenInconsistent) {
  // Duplicate class ids survive parsing but must be caught by validate().
  const std::string text = R"(workload w
source 0 a
class 0 x l_bits=100 d_us=1000 a=1 w_us=2000
source 1 b
class 0 y l_bits=100 d_us=1000 a=1 w_us=2000
)";
  EXPECT_THROW(parse_workload(text), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::traffic
