// Integration tests: full workloads through run_ddcr, replica consistency,
// and agreement between the feasibility analysis and the simulation.
#include "core/ddcr_network.hpp"

#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

using traffic::ArrivalKind;
using traffic::Workload;
using util::Duration;

DdcrRunOptions gigabit_options(const Workload& wl) {
  DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.m_time = 4;
  options.ddcr.F = 64;
  options.ddcr.m_static = 4;
  options.ddcr.q = 64;
  // Dimension the scheduling horizon cF over the workload's deadline range
  // (see DdcrConfig::class_width_for — the FCs assume pending messages can
  // enter the current time tree).
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.ddcr.theta_factor = 1.0;
  options.arrival_horizon = SimTime::from_ns(50'000'000);   // 50 ms
  options.drain_cap = SimTime::from_ns(200'000'000);
  return options;
}

TEST(DdcrNetwork, QuickstartDeliversEverythingOnTime) {
  const Workload wl = traffic::quickstart(8);
  auto options = gigabit_options(wl);
  options.check_consistency = true;
  const DdcrRunResult result = run_ddcr(wl, options);
  EXPECT_GT(result.generated, 0);
  EXPECT_EQ(result.undelivered, 0);
  EXPECT_EQ(result.metrics.delivered, result.generated);
  EXPECT_EQ(result.metrics.misses, 0);
  EXPECT_TRUE(result.consistency_ok);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LT(result.utilization, 1.0);
}

TEST(DdcrNetwork, AllArrivalKindsDeliverCleanly) {
  const Workload wl = traffic::videoconference(6);
  for (const ArrivalKind kind :
       {ArrivalKind::kSaturatingAdversary, ArrivalKind::kPeriodicJitter,
        ArrivalKind::kSporadic, ArrivalKind::kBoundedPoisson}) {
    auto options = gigabit_options(wl);
    options.arrivals = kind;
    const DdcrRunResult result = run_ddcr(wl, options);
    EXPECT_EQ(result.undelivered, 0) << "kind " << static_cast<int>(kind);
    EXPECT_EQ(result.metrics.misses, 0) << "kind " << static_cast<int>(kind);
  }
}

TEST(DdcrNetwork, ConsistencyHoldsUnderHeavyContention) {
  // Crank the load so epochs, STs and compressed time all fire, and verify
  // every station's replicated state stayed in lock-step on every slot.
  const Workload wl = traffic::stock_exchange(8);
  auto options = gigabit_options(wl);
  options.check_consistency = true;
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  const DdcrRunResult result = run_ddcr(wl, options);
  EXPECT_TRUE(result.consistency_ok);
  EXPECT_GT(result.per_station.front().epochs, 0);
}

TEST(DdcrNetwork, SeedsChangeJitteredRunsButNotAdversaryRuns) {
  const Workload wl = traffic::quickstart(4);
  auto options = gigabit_options(wl);
  options.arrivals = ArrivalKind::kSaturatingAdversary;
  options.seed = 1;
  const auto run_a = run_ddcr(wl, options);
  options.seed = 2;
  const auto run_b = run_ddcr(wl, options);
  // The adversary is deterministic: identical runs regardless of seed.
  EXPECT_EQ(run_a.metrics.delivered, run_b.metrics.delivered);
  EXPECT_EQ(run_a.metrics.worst_latency_s, run_b.metrics.worst_latency_s);
}

TEST(DdcrNetwork, DeterministicForFixedSeed) {
  const Workload wl = traffic::videoconference(5);
  auto options = gigabit_options(wl);
  options.arrivals = ArrivalKind::kBoundedPoisson;
  options.seed = 99;
  const auto run_a = run_ddcr(wl, options);
  const auto run_b = run_ddcr(wl, options);
  EXPECT_EQ(run_a.metrics.delivered, run_b.metrics.delivered);
  EXPECT_EQ(run_a.metrics.worst_latency_s, run_b.metrics.worst_latency_s);
  EXPECT_EQ(run_a.channel.collision_slots, run_b.channel.collision_slots);
}

TEST(DdcrNetwork, FeasibleWorkloadMeetsItsAnalyticBound) {
  // The soundness check behind the paper's FCs: for a workload the
  // analysis declares feasible, the measured worst-case latency under the
  // saturating adversary stays below B_DDCR for every class.
  const Workload wl = traffic::quickstart(4);
  auto options = gigabit_options(wl);

  traffic::FcAdapterOptions fc_options;
  fc_options.psi_bps = options.phy.psi_bps;
  fc_options.slot_s = options.phy.slot_x.to_seconds();
  fc_options.overhead_bits = options.phy.overhead_bits;
  fc_options.trees = analysis::FcTreeParams{
      options.ddcr.m_static, options.ddcr.q, options.ddcr.m_time,
      options.ddcr.F};
  const auto system = traffic::to_fc_system(wl, fc_options);
  const auto fc = analysis::check_feasibility(system);
  ASSERT_TRUE(fc.feasible) << "test workload must be FC-feasible";

  options.arrivals = ArrivalKind::kSaturatingAdversary;
  const DdcrRunResult result = run_ddcr(wl, options);
  EXPECT_EQ(result.metrics.misses, 0);
  EXPECT_EQ(result.undelivered, 0);

  // Per-class worst latency <= per-class bound.
  std::size_t fc_idx = 0;
  for (const auto& src : wl.sources) {
    for (const auto& cls : src.classes) {
      const auto& bound = fc.classes[fc_idx++];
      const auto it = result.metrics.per_class.find(cls.id);
      ASSERT_NE(it, result.metrics.per_class.end());
      EXPECT_LE(it->second.worst_latency_s, bound.b_ddcr_s)
          << "class " << cls.name;
    }
  }
}

TEST(DdcrNetwork, UndeliveredReportedWhenDrainCapTooSmall) {
  // Overload + tiny drain cap: the run must report undelivered messages
  // rather than pretending success.
  // At 64x nominal load the per-slot overhead alone exceeds channel
  // capacity (every frame occupies at least one 4.096 us slot), so a
  // backlog is guaranteed; the drain cap equal to the arrival horizon
  // cuts the run before the queues could empty.
  Workload wl = traffic::stock_exchange(10).scaled_load(64.0);
  auto options = gigabit_options(wl);
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  options.drain_cap = SimTime::from_ns(20'000'000);
  const DdcrRunResult result = run_ddcr(wl, options);
  EXPECT_GT(result.undelivered, 0);
}

TEST(DdcrNetwork, TestbedInjectValidatesArguments) {
  DdcrTestbed bed(2, gigabit_options(traffic::quickstart(2)));
  traffic::Message msg;
  msg.uid = 1;
  msg.source = 5;  // out of range
  msg.l_bits = 100;
  msg.arrival = SimTime::zero();
  msg.absolute_deadline = SimTime::from_ns(1000);
  EXPECT_THROW(bed.inject(5, msg), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::core
