#include "util/simtime.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace hrtdm::util {
namespace {

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::nanoseconds(5).ns(), 5);
  EXPECT_EQ(Duration::microseconds(3).ns(), 3'000);
  EXPECT_EQ(Duration::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::from_seconds(4.096e-6).ns(), 4096);
  EXPECT_EQ(Duration::from_seconds(-1e-9).ns(), -1);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::microseconds(10);
  const Duration b = Duration::microseconds(4);
  EXPECT_EQ((a + b).ns(), 14'000);
  EXPECT_EQ((a - b).ns(), 6'000);
  EXPECT_EQ((b - a).ns(), -6'000);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 3).ns(), 30'000);
  EXPECT_EQ((a / 4).ns(), 2'500);
  EXPECT_EQ((-a).ns(), -10'000);
}

TEST(Duration, FloorAndCeilDiv) {
  const Duration c = Duration::nanoseconds(100);
  EXPECT_EQ(Duration::nanoseconds(250).floor_div(c), 2);
  EXPECT_EQ(Duration::nanoseconds(250).ceil_div(c), 3);
  EXPECT_EQ(Duration::nanoseconds(200).floor_div(c), 2);
  EXPECT_EQ(Duration::nanoseconds(200).ceil_div(c), 2);
  // Negative numerators floor toward -infinity (needed by the raw
  // time-index computation for late messages).
  EXPECT_EQ(Duration::nanoseconds(-50).floor_div(c), -1);
  EXPECT_EQ(Duration::nanoseconds(-100).floor_div(c), -1);
  EXPECT_EQ(Duration::nanoseconds(-101).floor_div(c), -2);
  EXPECT_EQ(Duration::nanoseconds(-50).ceil_div(c), 0);
  EXPECT_THROW(Duration::nanoseconds(1).floor_div(Duration::nanoseconds(0)),
               ContractViolation);
}

TEST(SimTime, ArithmeticAndOrdering) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::microseconds(5);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).ns(), 5'000);
  EXPECT_EQ((t1 - Duration::microseconds(5)), t0);
  EXPECT_LT(t1, SimTime::infinity());
  EXPECT_EQ(SimTime::from_ns(42).ns(), 42);
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime::zero().str(), "t=0ns");
  EXPECT_EQ(SimTime::infinity().str(), "t=inf");
  EXPECT_EQ(Duration::nanoseconds(4096).str(), "4.096us");
  EXPECT_EQ(Duration::milliseconds(2).str(), "2ms");
  std::ostringstream oss;
  oss << Duration::seconds(1);
  EXPECT_EQ(oss.str(), "1s");
}

}  // namespace
}  // namespace hrtdm::util
