// Exhaustive small-configuration sweep — the executable analogue of the
// paper's correctness argument. For tiny instances we enumerate *every*
// combination of arrival slots and deadline classes for 2-3 stations and
// check, on each of the hundreds of resulting executions:
//   - safety: all messages delivered exactly once, no overlap,
//   - replica consistency at every slot,
//   - EDF order up to the deadline-equivalence granularity: a message may
//     precede an earlier-deadline one only if their deadlines fall within
//     one class width (plus the bounded reft drift),
//   - the latency never exceeds the horizon-dimensioned bound.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/ddcr_network.hpp"
#include "traffic/message.hpp"

namespace hrtdm::core {
namespace {

using traffic::Message;
using util::Duration;

struct Spec {
  int source;
  std::int64_t arrival_ns;
  std::int64_t deadline_rel_ns;
};

/// Runs one scenario and checks all invariants. Returns the delivery order.
void check_scenario(const std::vector<Spec>& specs, int stations,
                    const std::string& label) {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 4;
  options.ddcr.class_width_c = Duration::microseconds(2);
  options.ddcr.alpha = Duration::nanoseconds(0);

  DdcrTestbed bed(stations, options);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Message msg;
    msg.uid = static_cast<std::int64_t>(i);
    msg.class_id = specs[i].source;
    msg.source = specs[i].source;
    msg.l_bits = 100;
    msg.arrival = SimTime::from_ns(specs[i].arrival_ns);
    msg.absolute_deadline =
        SimTime::from_ns(specs[i].arrival_ns + specs[i].deadline_rel_ns);
    bed.inject(specs[i].source, msg);
  }
  bed.run_until_delivered(static_cast<std::int64_t>(specs.size()),
                          SimTime::from_ns(5'000'000));

  const auto& log = bed.metrics().log();
  // Safety: everything delivered exactly once, serialised.
  ASSERT_EQ(log.size(), specs.size()) << label;
  std::set<std::int64_t> uids;
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE(uids.insert(log[i].uid).second) << label;
    if (i > 0) {
      EXPECT_LE(log[i - 1].completed, log[i].tx_start) << label;
    }
  }
  // Consistency at the end of the run.
  EXPECT_TRUE(bed.digests_agree()) << label;
  // No deadline misses (every spec has slack far beyond the epoch length).
  EXPECT_EQ(bed.metrics().summarize().misses, 0) << label;

  // EDF modulo granularity: if A was transmitted before B although B's
  // deadline is earlier, then either B arrived after A's transmission
  // started, or their deadlines are within one class width + the maximal
  // reft drift of this tiny scenario (one epoch ~ 40 slots = 4 us).
  const std::int64_t tolerance_ns =
      options.ddcr.class_width_c.ns() + 4'000;
  for (std::size_t i = 0; i < log.size(); ++i) {
    for (std::size_t j = i + 1; j < log.size(); ++j) {
      if (log[j].deadline < log[i].deadline &&
          log[j].arrival <= log[i].tx_start) {
        EXPECT_LE((log[i].deadline - log[j].deadline).ns(), tolerance_ns)
            << label << " uid " << log[i].uid << " before " << log[j].uid;
      }
    }
  }
}

TEST(ExhaustiveSmall, TwoStationsAllArrivalAndDeadlineCombos) {
  // 2 stations x arrival slot in {0, 150, 250, 450} x deadline in
  // {6 us, 14 us, 26 us}: 144 scenarios, every one checked exhaustively.
  const std::int64_t arrivals[] = {0, 150, 250, 450};
  const std::int64_t deadlines[] = {6'000, 14'000, 26'000};
  int scenarios = 0;
  for (const auto a0 : arrivals) {
    for (const auto a1 : arrivals) {
      for (const auto d0 : deadlines) {
        for (const auto d1 : deadlines) {
          const std::string label =
              "a0=" + std::to_string(a0) + " a1=" + std::to_string(a1) +
              " d0=" + std::to_string(d0) + " d1=" + std::to_string(d1);
          check_scenario({{0, a0, d0}, {1, a1, d1}}, 2, label);
          ++scenarios;
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 144);
}

TEST(ExhaustiveSmall, ThreeStationsSimultaneousBursts) {
  // 3 stations, all at t = 0, every deadline combination from 3 classes:
  // 27 scenarios exercising 3-way time-tree collisions and static ties.
  const std::int64_t deadlines[] = {6'000, 14'000, 26'000};
  for (const auto d0 : deadlines) {
    for (const auto d1 : deadlines) {
      for (const auto d2 : deadlines) {
        const std::string label = "d=" + std::to_string(d0) + "/" +
                                  std::to_string(d1) + "/" +
                                  std::to_string(d2);
        check_scenario({{0, 0, d0}, {1, 0, d1}, {2, 0, d2}}, 3, label);
      }
    }
  }
}

TEST(ExhaustiveSmall, TwoMessagesPerStationCombos) {
  // Back-to-back messages per station across two deadline classes: the
  // second message exercises the nu budget and the resumed time search.
  const std::int64_t deadlines[] = {6'000, 22'000};
  for (const auto d0 : deadlines) {
    for (const auto d1 : deadlines) {
      for (const auto d2 : deadlines) {
        for (const auto d3 : deadlines) {
          const std::string label =
              "d=" + std::to_string(d0) + "/" + std::to_string(d1) + "/" +
              std::to_string(d2) + "/" + std::to_string(d3);
          check_scenario(
              {{0, 0, d0}, {0, 100, d1}, {1, 0, d2}, {1, 100, d3}}, 2,
              label);
        }
      }
    }
  }
}

}  // namespace
}  // namespace hrtdm::core
