// Exhaustive small-configuration sweep — the executable analogue of the
// paper's correctness argument, rewritten on the differential conformance
// oracle. For tiny instances we enumerate *every* combination of arrival
// slots and deadline classes for 2-4 stations, replay each of the hundreds
// of resulting executions through check::replay_case, and hold the
// recorded run against the full differential:
//   - safety (mutual exclusion, slot grid, frame integrity, exactly-once),
//   - timeliness vs the centralized NP-EDF oracle (every scenario here is
//     feasible by construction, so expect_timeliness is asserted),
//   - EDF dispatch order within the class-width granularity,
//   - per-epoch search costs vs xi and the station/replica accounting.
// The sweep runs for every tree arity the protocol supports in the small
// regime (m_time in {2, 3, 4}), plus a dedicated equal-deadline grid that
// forces time-tree leaf ties through the static-tree tie-break path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/shrinker.hpp"
#include "traffic/message.hpp"

namespace hrtdm::check {
namespace {

using traffic::Message;
using util::Duration;
using util::SimTime;

struct Spec {
  int source;
  std::int64_t arrival_ns;
  std::int64_t deadline_rel_ns;
};

struct TreeShape {
  int m_time;
  std::int64_t F;
};

// F must be a power of m_time; keep the trees small enough that every
// scenario stays a few hundred slots.
constexpr TreeShape kShapes[] = {{2, 16}, {3, 9}, {4, 16}};

ReplayCase scenario_case(const std::vector<Spec>& specs, int stations,
                         const TreeShape& shape, const std::string& label) {
  ReplayCase c;
  c.name = label;
  c.stations = stations;
  c.phy.slot_x = Duration::nanoseconds(100);
  c.phy.psi_bps = 1e9;
  c.phy.overhead_bits = 0;
  c.ddcr.m_time = shape.m_time;
  c.ddcr.F = shape.F;
  c.ddcr.m_static = 2;
  c.ddcr.q = 4;
  c.ddcr.class_width_c = Duration::microseconds(2);
  c.ddcr.alpha = Duration::nanoseconds(0);
  // Every spec below has slack far beyond the epoch length, so the
  // scenario is feasible and timeliness is a hard assertion.
  c.expect_timeliness = true;
  // One class width plus the maximal reft drift of these tiny scenarios
  // (one epoch ~ 40 slots = 4 us) — much tighter than the comparator's
  // general-run default.
  c.edf_tolerance = c.ddcr.class_width_c + Duration::nanoseconds(4'000);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Message msg;
    msg.uid = static_cast<std::int64_t>(i);
    msg.class_id = specs[i].source;
    msg.source = specs[i].source;
    msg.l_bits = 100;
    msg.arrival = SimTime::from_ns(specs[i].arrival_ns);
    msg.absolute_deadline =
        SimTime::from_ns(specs[i].arrival_ns + specs[i].deadline_rel_ns);
    c.messages.push_back(msg);
  }
  return c;
}

/// Replays one scenario under the full differential and asserts green.
void check_scenario(const std::vector<Spec>& specs, int stations,
                    const TreeShape& shape, const std::string& label) {
  const ReplayCase c = scenario_case(specs, stations, shape, label);
  const auto report = replay_case(c);
  ASSERT_TRUE(report.checked) << label;
  EXPECT_TRUE(report.ok) << label << ": " << report.summary();
  EXPECT_GT(report.slots_checked, 0) << label;
  EXPECT_EQ(report.observed_misses, 0) << label;
  EXPECT_TRUE(report.oracle_feasible) << label;
}

class ExhaustiveSmall : public ::testing::TestWithParam<TreeShape> {};

TEST_P(ExhaustiveSmall, TwoStationsAllArrivalAndDeadlineCombos) {
  // 2 stations x arrival slot in {0, 150, 250, 450} x deadline in
  // {6 us, 14 us, 26 us}: 144 scenarios, every one checked exhaustively.
  const TreeShape shape = GetParam();
  const std::int64_t arrivals[] = {0, 150, 250, 450};
  const std::int64_t deadlines[] = {6'000, 14'000, 26'000};
  int scenarios = 0;
  for (const auto a0 : arrivals) {
    for (const auto a1 : arrivals) {
      for (const auto d0 : deadlines) {
        for (const auto d1 : deadlines) {
          const std::string label =
              "a0=" + std::to_string(a0) + " a1=" + std::to_string(a1) +
              " d0=" + std::to_string(d0) + " d1=" + std::to_string(d1);
          check_scenario({{0, a0, d0}, {1, a1, d1}}, 2, shape, label);
          ++scenarios;
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 144);
}

TEST_P(ExhaustiveSmall, ThreeStationsSimultaneousBursts) {
  // 3 stations, all at t = 0, every deadline combination from 3 classes:
  // 27 scenarios exercising 3-way time-tree collisions, including the
  // all-equal diagonal that descends into the static tie-break tree.
  const TreeShape shape = GetParam();
  const std::int64_t deadlines[] = {6'000, 14'000, 26'000};
  for (const auto d0 : deadlines) {
    for (const auto d1 : deadlines) {
      for (const auto d2 : deadlines) {
        const std::string label = "d=" + std::to_string(d0) + "/" +
                                  std::to_string(d1) + "/" +
                                  std::to_string(d2);
        check_scenario({{0, 0, d0}, {1, 0, d1}, {2, 0, d2}}, 3, shape,
                       label);
      }
    }
  }
}

TEST_P(ExhaustiveSmall, TwoMessagesPerStationCombos) {
  // Back-to-back messages per station across two deadline classes: the
  // second message exercises the nu budget and the resumed time search.
  const TreeShape shape = GetParam();
  const std::int64_t deadlines[] = {6'000, 22'000};
  for (const auto d0 : deadlines) {
    for (const auto d1 : deadlines) {
      for (const auto d2 : deadlines) {
        for (const auto d3 : deadlines) {
          const std::string label =
              "d=" + std::to_string(d0) + "/" + std::to_string(d1) + "/" +
              std::to_string(d2) + "/" + std::to_string(d3);
          check_scenario(
              {{0, 0, d0}, {0, 100, d1}, {1, 0, d2}, {1, 100, d3}}, 2,
              shape, label);
        }
      }
    }
  }
}

TEST_P(ExhaustiveSmall, EqualDeadlineTiesResolveThroughTheStaticTree) {
  // The STs grid: every station count in {2, 3, 4} with a fully tied
  // deadline class (identical arrival and deadline), across three deadline
  // values and two arrival offsets. Each scenario forces a time-tree leaf
  // collision whose contenders are separable only by static index; at
  // least one STs search must be held against xi(s, q) per scenario.
  const TreeShape shape = GetParam();
  const std::int64_t deadlines[] = {6'000, 14'000, 26'000};
  const std::int64_t offsets[] = {0, 250};
  for (const int stations : {2, 3, 4}) {
    for (const auto deadline : deadlines) {
      for (const auto offset : offsets) {
        std::vector<Spec> specs;
        for (int s = 0; s < stations; ++s) {
          specs.push_back({s, offset, deadline});
        }
        const std::string label = "tied z=" + std::to_string(stations) +
                                  " d=" + std::to_string(deadline) +
                                  " a=" + std::to_string(offset);
        const ReplayCase c =
            scenario_case(specs, stations, shape, label);
        const auto report = replay_case(c);
        ASSERT_TRUE(report.checked) << label;
        EXPECT_TRUE(report.ok) << label << ": " << report.summary();
        EXPECT_GT(report.sts_bound_checked, 0)
            << label << ": tie never reached the static tree";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arity, ExhaustiveSmall,
    ::testing::Values(kShapes[0], kShapes[1], kShapes[2]),
    [](const ::testing::TestParamInfo<TreeShape>& info) {
      return "m" + std::to_string(info.param.m_time) + "F" +
             std::to_string(info.param.F);
    });

}  // namespace
}  // namespace hrtdm::check
