#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace hrtdm::sim {
namespace {

TEST(Simulator, FiresInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_ns(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_ns(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_ns(20), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 30);
  EXPECT_EQ(sim.events_fired(), 3u);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::from_ns(5), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed;
  sim.schedule_after(Duration::nanoseconds(10), [&] {
    sim.schedule_after(Duration::nanoseconds(5),
                       [&] { observed = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_EQ(observed.ns(), 15);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventHandle handle =
      sim.schedule_at(SimTime::from_ns(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // second cancel is a no-op
  sim.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulator, CancelNullHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, RunUntilStopsAtHorizonButAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime::from_ns(10), [&] { fired.push_back(1); });
  sim.schedule_at(SimTime::from_ns(20), [&] { fired.push_back(2); });
  sim.schedule_at(SimTime::from_ns(30), [&] { fired.push_back(3); });
  sim.run_until(SimTime::from_ns(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // horizon-inclusive
  EXPECT_EQ(sim.now().ns(), 20);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(SimTime::from_ns(100));
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sim.now().ns(), 100);  // clock advances to the horizon
}

TEST(Simulator, SelfReschedulingChainTerminatesAtHorizon) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_after(Duration::nanoseconds(10), tick);
  };
  sim.schedule_at(SimTime::zero(), tick);
  sim.run_until(SimTime::from_ns(95));
  EXPECT_EQ(count, 10);  // t = 0, 10, ..., 90
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(SimTime::from_ns(10), [] {});
  sim.run_to_completion();
  EXPECT_THROW(sim.schedule_at(SimTime::from_ns(5), [] {}),
               util::ContractViolation);
  EXPECT_THROW(sim.schedule_after(Duration::nanoseconds(-1), [] {}),
               util::ContractViolation);
}

TEST(Simulator, EventsCanScheduleAtTheirOwnTime) {
  Simulator sim;
  bool nested_fired = false;
  sim.schedule_at(SimTime::from_ns(10), [&] {
    sim.schedule_at(SimTime::from_ns(10), [&] { nested_fired = true; });
  });
  sim.run_to_completion();
  EXPECT_TRUE(nested_fired);
}

TEST(Simulator, CancelledEventsDoNotBlockRunUntil) {
  Simulator sim;
  const auto handle = sim.schedule_at(SimTime::from_ns(50), [] {});
  sim.cancel(handle);
  sim.run_until(SimTime::from_ns(100));
  EXPECT_EQ(sim.now().ns(), 100);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  // A handle to an event that already fired must not cancel whatever event
  // now occupies the recycled pool slot.
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  const auto stale =
      sim.schedule_at(SimTime::from_ns(10), [&] { first_fired = true; });
  sim.run_until(SimTime::from_ns(20));
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(sim.cancel(stale));
  // The freed slot is recycled by the next schedule; the stale handle must
  // still refuse to touch it.
  sim.schedule_at(SimTime::from_ns(30), [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(stale));
  sim.run_to_completion();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, CancelThenRescheduleAtSameTimestampKeepsOrder) {
  // Cancelling and re-scheduling at the same instant must place the new
  // event at its new (later) position in the equal-time FIFO, not inherit
  // the cancelled event's slot in line.
  Simulator sim;
  std::vector<int> order;
  const auto first =
      sim.schedule_at(SimTime::from_ns(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_ns(10), [&] { order.push_back(2); });
  EXPECT_TRUE(sim.cancel(first));
  sim.schedule_at(SimTime::from_ns(10), [&] { order.push_back(3); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(Simulator, EqualTimeFifoSurvivesPoolRecycling) {
  // Interleave schedules and cancels so freed slots are re-acquired while
  // same-timestamp events are pending; the FIFO order must track scheduling
  // order, never pool-slot order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int round = 0; round < 8; ++round) {
    doomed.push_back(
        sim.schedule_at(SimTime::from_ns(5), [&order] { order.push_back(-1); }));
    sim.schedule_at(SimTime::from_ns(5),
                    [&order, round] { order.push_back(round); });
    EXPECT_TRUE(sim.cancel(doomed.back()));
    // This schedule reuses the slot just freed by the cancel above.
    sim.schedule_at(SimTime::from_ns(5),
                    [&order, round] { order.push_back(100 + round); });
  }
  sim.run_to_completion();
  std::vector<int> expected;
  for (int round = 0; round < 8; ++round) {
    expected.push_back(round);
    expected.push_back(100 + round);
  }
  EXPECT_EQ(order, expected);
}

TEST(Simulator, HandleReuseNeverResurrectsCancelledEvents) {
  // Churn the pool hard: every slot is freed and re-acquired many times;
  // every stale handle (fired or cancelled) must stay dead forever.
  Simulator sim;
  std::vector<EventHandle> stale;
  int fired = 0;
  for (int wave = 0; wave < 50; ++wave) {
    const SimTime at = SimTime::from_ns(1000 + wave * 10);
    std::vector<EventHandle> alive;
    for (int i = 0; i < 16; ++i) {
      alive.push_back(sim.schedule_at(at, [&fired] { ++fired; }));
    }
    for (int i = 0; i < 16; i += 2) {
      EXPECT_TRUE(sim.cancel(alive[static_cast<std::size_t>(i)]));
      stale.push_back(alive[static_cast<std::size_t>(i)]);
    }
    for (const EventHandle& handle : stale) {
      EXPECT_FALSE(sim.cancel(handle));  // never matches a recycled slot
    }
    sim.run_until(at);
    for (int i = 1; i < 16; i += 2) {
      stale.push_back(alive[static_cast<std::size_t>(i)]);  // fired handles
    }
  }
  EXPECT_EQ(fired, 50 * 8);
  for (const EventHandle& handle : stale) {
    EXPECT_FALSE(sim.cancel(handle));
  }
  EXPECT_EQ(sim.events_pending(), 0u);
}

}  // namespace
}  // namespace hrtdm::sim
