#include "obs/event_tracer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/message.hpp"

namespace hrtdm::obs {
namespace {

TEST(EventTracer, RecordsInstantAndComplete) {
  EventTracer tracer;
  tracer.instant(0, 1, 100, "tick", "a,b", 7, 8);
  tracer.complete(0, 2, 200, 50, "span");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].ts_ns, 100);
  EXPECT_EQ(events[0].args[0], 7);
  EXPECT_EQ(events[0].args[1], 8);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].dur_ns, 50);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(EventTracer, RingEvictsOldestAndCountsDropped) {
  EventTracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant(0, 0, i * 10, "e");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the retained window is events 6..9.
  EXPECT_EQ(events[0].ts_ns, 60);
  EXPECT_EQ(events[3].ts_ns, 90);
}

TEST(EventTracer, DisabledRecordsNothing) {
  EventTracer tracer;
  tracer.set_enabled(false);
  tracer.instant(0, 0, 1, "e");
  tracer.complete(0, 0, 2, 3, "s");
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  tracer.instant(0, 0, 4, "e");
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(EventTracer, ClearDropsEventsKeepsTrackNames) {
  EventTracer tracer;
  tracer.set_process_name(3, "channel 3");
  tracer.instant(3, 0, 1, "e");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0);
  // The metadata event for pid 3 must still be emitted.
  EXPECT_NE(tracer.chrome_json().find("channel 3"), std::string::npos);
}

TEST(EventTracer, ChromeJsonParsesWithTracksAndArgs) {
  EventTracer tracer;
  tracer.set_process_name(0, "channel 0");
  tracer.set_thread_name(0, 1, "station 0");
  tracer.instant(0, 1, 1500, "epoch-start", "epoch", 3);
  tracer.complete(0, 0, 2000, 100, "tx");
  const bench::Json doc = bench::Json::parse(tracer.chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  const auto& events = doc.at("traceEvents").as_array();
  // 2 metadata (process_name, thread_name) + 2 recorded.
  ASSERT_EQ(events.size(), 4u);
  std::set<std::string> phases;
  for (const auto& ev : events) {
    phases.insert(ev.at("ph").as_string());
  }
  EXPECT_EQ(phases, (std::set<std::string>{"M", "X", "i"}));
  // The instant event: ts in microseconds with ns as fractional digits.
  bool found_instant = false;
  for (const auto& ev : events) {
    if (ev.at("ph").as_string() != "i") {
      continue;
    }
    found_instant = true;
    EXPECT_DOUBLE_EQ(ev.at("ts").as_double(), 1.5);
    EXPECT_EQ(ev.at("s").as_string(), "t");
    EXPECT_EQ(ev.at("args").at("epoch").as_int(), 3);
  }
  EXPECT_TRUE(found_instant);
}

TEST(EventTracer, WriteChromeJsonRoundTrips) {
  EventTracer tracer;
  tracer.instant(0, 0, 1, "e");
  const std::string path =
      testing::TempDir() + "hrtdm_tracer_roundtrip.json";
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const bench::Json doc = bench::Json::parse(buffer.str());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(EventTracer, TestbedEmitsPerStationAndChannelTracks) {
  EventTracer tracer;
  core::DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.ddcr.class_width_c = util::Duration::microseconds(10);
  options.tracer = &tracer;
  core::DdcrTestbed bed(3, options);
  for (int s = 0; s < 3; ++s) {
    traffic::Message msg;
    msg.uid = s;
    msg.class_id = 0;
    msg.source = s;
    msg.l_bits = 100;
    msg.arrival = sim::SimTime::zero();
    msg.absolute_deadline = sim::SimTime::from_ns(100'000);
    bed.inject(s, msg);
  }
  bed.run(sim::SimTime::from_ns(50'000));
  std::set<std::int32_t> tids;
  bool saw_channel_span = false;
  for (const auto& ev : tracer.events()) {
    tids.insert(ev.tid);
    if (ev.tid == 0 && ev.phase == 'X') {
      saw_channel_span = true;
    }
  }
  // tid 0 = channel track; tids 1..3 = stations 0..2.
  EXPECT_EQ(tids, (std::set<std::int32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(saw_channel_span);
  // The exported JSON parses and names all four tracks.
  const bench::Json doc = bench::Json::parse(tracer.chrome_json());
  std::set<std::string> track_names;
  for (const auto& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "thread_name") {
      track_names.insert(ev.at("args").at("name").as_string());
    }
  }
  EXPECT_EQ(track_names,
            (std::set<std::string>{"channel", "station 0", "station 1",
                                   "station 2"}));
}

TEST(TraceOutPath, SetTraceOutEnablesGlobal) {
  // Session-local override; HRTDM_TRACE_OUT is unset in test runs, so the
  // global starts disabled and set_trace_out("") restores that.
  set_trace_out("");
  ASSERT_TRUE(trace_out_path().empty());
  EXPECT_EQ(write_global_trace(), "");
  const std::string path = testing::TempDir() + "hrtdm_global_trace.json";
  set_trace_out(path);
  EXPECT_EQ(trace_out_path(), path);
  EXPECT_TRUE(EventTracer::global().enabled());
  EventTracer::global().instant(0, 0, 1, "e");
  EXPECT_EQ(write_global_trace(), path);
  std::remove(path.c_str());
  set_trace_out("");
  EventTracer::global().set_enabled(false);
  EventTracer::global().clear();
}

}  // namespace
}  // namespace hrtdm::obs
