#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hrtdm::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(43);
  Rng d(42);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    differing += c.next_u64() != d.next_u64();
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all values hit
  EXPECT_EQ(rng.uniform_i64(5, 5), 5);
  EXPECT_THROW(rng.uniform_i64(3, 2), ContractViolation);
}

TEST(Rng, Uniform01MomentsReasonable) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.003);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.add(rng.exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  const auto perm = rng.permutation(50);
  std::set<std::int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.next_u64() == child.next_u64();
  }
  EXPECT_LT(equal, 5);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats stats;
  const double values[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double v : values) {
    stats.add(v);
    sum += v;
  }
  EXPECT_EQ(stats.count(), 5);
  EXPECT_NEAR(stats.mean(), sum / 5.0, 1e-12);
  EXPECT_NEAR(stats.min(), 1.0, 1e-12);
  EXPECT_NEAR(stats.max(), 16.0, 1e-12);
  // Sample variance of {1,2,4,8,16}: mean 6.2, sum of squared deviations
  // 148.8, divided by n-1 = 4 gives 37.2.
  EXPECT_NEAR(stats.variance(), 37.2, 1e-9);
}

TEST(OnlineStats, MergeEqualsBulk) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01() * 10.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_NEAR(left.min(), all.min(), 1e-12);
  EXPECT_NEAR(left.max(), all.max(), 1e-12);
}

TEST(Samples, PercentilesNearestRank) {
  Samples samples;
  for (int i = 1; i <= 100; ++i) {
    samples.add(static_cast<double>(i));
  }
  EXPECT_EQ(samples.percentile(0.0), 1.0);
  EXPECT_EQ(samples.percentile(50.0), 50.0);
  EXPECT_EQ(samples.percentile(99.0), 99.0);
  EXPECT_EQ(samples.percentile(100.0), 100.0);
  EXPECT_EQ(samples.min(), 1.0);
  EXPECT_EQ(samples.max(), 100.0);
  Samples empty;
  EXPECT_THROW(empty.percentile(50.0), ContractViolation);
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);
  hist.add(9.5);
  hist.add(-100.0);  // clamps into the first bin
  hist.add(100.0);   // clamps into the last bin
  EXPECT_EQ(hist.total(), 4);
  EXPECT_EQ(hist.bin_count(0), 2);
  EXPECT_EQ(hist.bin_count(9), 2);
  EXPECT_EQ(hist.bin_lo(0), 0.0);
  EXPECT_EQ(hist.bin_hi(9), 10.0);
  EXPECT_FALSE(hist.ascii().empty());
}

TEST(Histogram, NanSamplesCountedNotBinned) {
  // Regression: add() used to cast the scaled sample straight to int64,
  // which is UB for NaN (the "clamp" below the cast never saw it). NaN now
  // lands in nan_dropped() and leaves total() and every bin untouched.
  Histogram hist(0.0, 10.0, 10);
  hist.add(5.0);
  hist.add(std::nan(""));
  hist.add(-std::nan(""));
  EXPECT_EQ(hist.total(), 1);
  EXPECT_EQ(hist.nan_dropped(), 2);
  std::int64_t binned = 0;
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    binned += hist.bin_count(i);
  }
  EXPECT_EQ(binned, 1);

  // Infinities are finite-ordered and clamp into the edge bins as before.
  hist.add(std::numeric_limits<double>::infinity());
  hist.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.total(), 3);
  EXPECT_EQ(hist.bin_count(0), 1);
  EXPECT_EQ(hist.bin_count(9), 1);
}

TEST(Samples, RejectsNanInput) {
  // NaN breaks sorting (and thus every percentile); add() contract-fails
  // instead of silently poisoning the order statistics.
  Samples samples;
  samples.add(1.0);
  EXPECT_THROW(samples.add(std::nan("")), ContractViolation);
  samples.add(std::numeric_limits<double>::infinity());  // inf is ordered
  EXPECT_EQ(samples.count(), 2);
  EXPECT_EQ(samples.percentile(100.0),
            std::numeric_limits<double>::infinity());
}

TEST(TextTable, RendersAlignedRows) {
  TextTable table({"k", "xi", "note"});
  table.add_row({TextTable::cell(std::int64_t{2}), TextTable::cell(11.0, 1),
                 "anchor"});
  const std::string out = table.str();
  EXPECT_NE(out.find("k"), std::string::npos);
  EXPECT_NE(out.find("11.0"), std::string::npos);
  EXPECT_NE(out.find("anchor"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "few"}), ContractViolation);
}

}  // namespace
}  // namespace hrtdm::util
