// Pinned reproducers: every *.repro file under tests/repro/ is a shrunk
// replay case that once exposed a checker or protocol accounting bug. Each
// is replayed under the full differential conformance check on every test
// run, so a regression of the original bug (or an unsound tightening of a
// checker bound) trips immediately. HRTDM_REPRO_DIR is injected by the
// build so the test finds the source-tree directory from any build dir.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/shrinker.hpp"

#ifndef HRTDM_REPRO_DIR
#error "HRTDM_REPRO_DIR must point at tests/repro"
#endif

namespace hrtdm::check {
namespace {

std::vector<std::string> repro_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(HRTDM_REPRO_DIR)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReproCases, DirectoryHoldsThePinnedReproducers) {
  // The directory must never silently go empty — that would turn every
  // pinned regression off at once.
  EXPECT_GE(repro_files().size(), 2u);
}

TEST(ReproCases, EveryPinnedCaseReplaysGreen) {
  for (const std::string& path : repro_files()) {
    SCOPED_TRACE(path);
    const ReplayCase c = load_case_file(path);
    const auto report = replay_case(c);
    EXPECT_TRUE(report.checked);
    EXPECT_TRUE(report.ok) << c.name << ": " << report.summary();
    EXPECT_GT(report.slots_checked, 0) << c.name;
  }
}

TEST(ReproCases, PinnedCasesAreCanonicallySerialised) {
  // Hand-edited drift (reordered keys, renamed fields) would silently stop
  // matching what save_case_file writes; keep the pins canonical so a
  // fresh shrink can always overwrite them byte-for-byte.
  for (const std::string& path : repro_files()) {
    SCOPED_TRACE(path);
    const ReplayCase c = load_case_file(path);
    EXPECT_EQ(parse_case(serialize_case(c)).name, c.name);
  }
}

TEST(ReproCases, TieDescentCasesExerciseTheStaticTree) {
  // The tie-descent pins exist to cover the leaf-collision accounting path
  // (a tied deadline class resolving through the static tree). Assert the
  // coverage is real: at least one pinned case must run an STs search.
  bool some_sts = false;
  for (const std::string& path : repro_files()) {
    const auto report = replay_case(load_case_file(path));
    some_sts = some_sts || report.sts_bound_checked > 0;
  }
  EXPECT_TRUE(some_sts)
      << "no pinned case exercises the static-tree tie-break path";
}

}  // namespace
}  // namespace hrtdm::check
