// Structural properties of xi beyond the paper's stated equations —
// monotonicity and concavity facts the closed forms imply, exercised over
// wide (m, t) sweeps.
#include <gtest/gtest.h>

#include "analysis/xi.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {
namespace {

TEST(XiStructure, MonotoneInTreeSizeForFixedK) {
  // A deeper tree can only lengthen the worst-case search for the same k.
  for (const int m : {2, 3, 4}) {
    for (int n = 1; n + 1 <= (m == 2 ? 10 : 6); ++n) {
      const std::int64_t t = util::ipow(m, n);
      const std::int64_t bigger = t * m;
      for (std::int64_t k = 0; k <= t; ++k) {
        EXPECT_LE(xi_closed(m, t, k), xi_closed(m, bigger, k))
            << "m=" << m << " t=" << t << " k=" << k;
      }
    }
  }
}

TEST(XiStructure, EvenDerivativeNonIncreasing) {
  // Eq. 8's derivative m(log_m t - floor(log_m m p)) - 2 is non-increasing
  // in p: the even-k staircase is concave up to 2t/m.
  for (const auto& [m, n] : {std::pair{2, 8}, {3, 5}, {4, 4}}) {
    const std::int64_t t = util::ipow(m, n);
    std::int64_t previous = xi_even_derivative(m, t, 1);
    for (std::int64_t p = 2; p <= t / 2 - 1; ++p) {
      const std::int64_t current = xi_even_derivative(m, t, p);
      EXPECT_LE(current, previous) << "m=" << m << " t=" << t << " p=" << p;
      previous = current;
    }
  }
}

TEST(XiStructure, PeakAtTwoTOverM) {
  // The worst-case staircase has its maximum exactly at k = 2t/m (the
  // crossover between the growing region and the Eq. 15 line).
  for (const auto& [m, n] : {std::pair{2, 6}, {2, 9}, {3, 4}, {4, 3},
                             {4, 5}, {5, 3}}) {
    XiExactTable table(m, n);
    const std::int64_t peak_k = 2 * table.t() / m;
    const std::int64_t peak = table.xi(peak_k);
    for (std::int64_t k = 0; k <= table.t(); ++k) {
      EXPECT_LE(table.xi(k), peak) << "m=" << m << " k=" << k;
    }
  }
}

TEST(XiStructure, SubtreeConsistencyAcrossLevels) {
  // xi_at_level(j, k) must equal an independently built table for m^j.
  XiExactTable big(3, 5);
  for (int level = 0; level <= 5; ++level) {
    XiExactTable small(3, level);
    for (std::int64_t k = 0; k <= small.t(); ++k) {
      EXPECT_EQ(big.xi_at_level(level, k), small.xi(k))
          << "level=" << level << " k=" << k;
    }
  }
}

TEST(XiStructure, WorstPlacementsAreReproducible) {
  // The adversarial reconstruction is deterministic and stable.
  XiExactTable table(4, 4);
  for (std::int64_t k = 2; k <= 40; k += 7) {
    EXPECT_EQ(worst_case_leaves(table, k), worst_case_leaves(table, k));
  }
}

TEST(XiStructure, TwoActivesWorstCaseIsSiblingLeaves) {
  // The k = 2 adversary puts both actives under one deepest node: verify
  // the reconstructed placement is a sibling pair.
  for (const auto& [m, n] : {std::pair{2, 6}, {4, 3}}) {
    XiExactTable table(m, n);
    const auto leaves = worst_case_leaves(table, 2);
    ASSERT_EQ(leaves.size(), 2u);
    EXPECT_EQ(leaves[0] / m, leaves[1] / m) << "not siblings";
  }
}

}  // namespace
}  // namespace hrtdm::analysis
