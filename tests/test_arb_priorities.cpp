// Quantised arbitration keys (the 802.1p priority-field model of §5).
#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "traffic/message.hpp"

namespace hrtdm::core {
namespace {

using traffic::Message;
using util::Duration;

DdcrRunOptions arb_options(std::int64_t quantum_ns) {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.overhead_bits = 0;
  options.collision_mode = net::CollisionMode::kArbitration;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(10);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.arb_priority_quantum = Duration::nanoseconds(quantum_ns);
  return options;
}

Message make_msg(std::int64_t uid, int source, std::int64_t deadline_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::zero();
  msg.absolute_deadline = SimTime::from_ns(deadline_ns);
  return msg;
}

TEST(ArbPriorities, ExactKeysDeliverStrictEdf) {
  DdcrTestbed bed(3, arb_options(0));
  bed.inject(0, make_msg(1, 0, 30'000));
  bed.inject(1, make_msg(2, 1, 20'000));
  bed.inject(2, make_msg(3, 2, 10'000));
  bed.run_until_delivered(3, SimTime::from_ns(1'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 3u);
  EXPECT_EQ(bed.metrics().log()[0].uid, 3);
  EXPECT_EQ(bed.metrics().log()[1].uid, 2);
  EXPECT_EQ(bed.metrics().log()[2].uid, 1);
}

TEST(ArbPriorities, CoarseQuantumBreaksTiesByStationId) {
  // Deadlines 10/20/30 us all fall in one 100 us quantum: the key ties and
  // the lowest station id wins each arbitration — deliberately NOT EDF.
  DdcrTestbed bed(3, arb_options(100'000));
  bed.inject(0, make_msg(1, 0, 30'000));
  bed.inject(1, make_msg(2, 1, 20'000));
  bed.inject(2, make_msg(3, 2, 10'000));
  bed.run_until_delivered(3, SimTime::from_ns(1'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 3u);
  EXPECT_EQ(bed.metrics().log()[0].uid, 1);  // station 0 first
  EXPECT_EQ(bed.metrics().log()[1].uid, 2);
  EXPECT_EQ(bed.metrics().log()[2].uid, 3);
  EXPECT_GT(count_deadline_inversions(bed.metrics().log()), 0);
}

TEST(ArbPriorities, QuantumPreservesOrderingAcrossQuanta) {
  // Deadlines in different quanta still arbitrate in deadline order.
  DdcrTestbed bed(2, arb_options(50'000));
  bed.inject(0, make_msg(1, 0, 120'000));  // quantum 2
  bed.inject(1, make_msg(2, 1, 40'000));   // quantum 0
  bed.run_until_delivered(2, SimTime::from_ns(1'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 2u);
  EXPECT_EQ(bed.metrics().log()[0].uid, 2);
  EXPECT_EQ(bed.metrics().log()[1].uid, 1);
}

}  // namespace
}  // namespace hrtdm::core
