// Failure injection: symmetric frame corruption (channel noise) and
// station crash / rejoin. The broadcast property makes corruption look
// like a collision to everyone simultaneously, so the replicated protocol
// state machines must stay consistent and simply retry; a crashed station
// rejoins via the listen-only quiet-period certificate.
#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "core/ddcr_station.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

using traffic::Message;
using util::Duration;

DdcrRunOptions noisy_options(double corruption) {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.phy.corruption_prob = corruption;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  return options;
}

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

TEST(Noise, CorruptedFramesAreRetriedAndDelivered) {
  auto options = noisy_options(0.3);
  DdcrTestbed bed(3, options);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      bed.inject(s, make_msg(s * 100 + i, s, i * 20'000, 500'000));
    }
  }
  bed.run_until_delivered(30, SimTime::from_ns(50'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 30u);
  EXPECT_GT(bed.channel().stats().corrupted_frames, 0);
  EXPECT_TRUE(bed.digests_agree());
  EXPECT_EQ(bed.queued(), 0);
}

TEST(Noise, HeavyNoiseStillDeliversEventually) {
  auto options = noisy_options(0.6);
  DdcrTestbed bed(2, options);
  bed.inject(0, make_msg(1, 0, 0, 10'000'000));
  bed.inject(1, make_msg(2, 1, 0, 10'000'000));
  bed.run_until_delivered(2, SimTime::from_ns(100'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 2u);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(Noise, StaticLeafRetriesAccountedWhenTieBreakCorrupted) {
  // Force repeated static searches under noise; corrupted lone static-leaf
  // transmissions must be re-probed, never treated as a genuine tie.
  auto options = noisy_options(0.4);
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 6; ++i) {
      // Same deadline class for all: every epoch goes through STs.
      bed.inject(s, make_msg(s * 10 + i, s, i * 50'000, 400'000));
    }
  }
  bed.run_until_delivered(24, SimTime::from_ns(100'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 24u);
  EXPECT_TRUE(bed.digests_agree());
  std::int64_t retries = 0;
  for (int s = 0; s < 4; ++s) {
    retries += bed.station(s).counters().static_leaf_retries;
  }
  // Retries are noise-dependent but with 40% corruption across many STs
  // at least one corrupted lone-leaf transmission is overwhelmingly likely.
  EXPECT_GT(retries, 0);
}

TEST(Noise, DeterministicPerSeedIncludingCorruption) {
  auto options = noisy_options(0.25);
  const traffic::Workload wl = traffic::quickstart(4);
  DdcrRunOptions run_options = options;
  run_options.phy = net::PhyConfig::gigabit_ethernet();
  run_options.phy.corruption_prob = 0.25;
  run_options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), run_options.ddcr.F);
  run_options.ddcr.F = 64;
  run_options.ddcr.m_time = 4;
  run_options.ddcr.m_static = 4;
  run_options.ddcr.q = 64;
  run_options.arrival_horizon = SimTime::from_ns(20'000'000);
  run_options.drain_cap = SimTime::from_ns(100'000'000);
  const auto a = run_ddcr(wl, run_options);
  const auto b = run_ddcr(wl, run_options);
  EXPECT_EQ(a.channel.corrupted_frames, b.channel.corrupted_frames);
  EXPECT_EQ(a.metrics.delivered, b.metrics.delivered);
  EXPECT_GT(a.channel.corrupted_frames, 0);
}

TEST(Rejoin, ThresholdRequiresBoundedSilenceStreaks) {
  DdcrConfig config;
  config.epoch_mode = EpochMode::kPerpetual;
  config.theta_factor = 1.0;
  EXPECT_THROW(config.resync_silence_threshold(), util::ContractViolation);

  config.epoch_mode = EpochMode::kCsmaCdFallback;
  config.theta_factor = 1.0;
  config.max_empty_tts = 0;  // unbounded compressed-time chains
  EXPECT_THROW(config.resync_silence_threshold(), util::ContractViolation);

  config.max_empty_tts = 2;
  EXPECT_GT(config.resync_silence_threshold(), 0);
  config.max_empty_tts = 0;
  config.theta_factor = 0.0;  // chains close immediately: also bounded
  EXPECT_GT(config.resync_silence_threshold(), 0);
}

TEST(Rejoin, CrashedStationResyncsAndDelivers) {
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(3, options);
  // Phase 1: traffic involving all three stations.
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(s, s, 0, 200'000));
  }
  bed.run_until_delivered(3, SimTime::from_ns(5'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 3u);

  // Crash station 2 mid-run; it keeps its queue but loses protocol state.
  bed.station(2).reset_for_rejoin();
  EXPECT_FALSE(bed.station(2).synced());

  // Quiet channel lets it certify and rejoin.
  const auto threshold = options.ddcr.resync_silence_threshold();
  bed.run(bed.simulator().now() +
          options.phy.slot_x * (threshold + 4));
  EXPECT_TRUE(bed.station(2).synced());
  EXPECT_EQ(bed.station(2).counters().rejoins, 1);

  // Phase 2: new contention involving the rejoined station resolves
  // consistently and delivers everything.
  const auto now = bed.simulator().now().ns();
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(100 + s, s, now + 1'000, 300'000));
  }
  bed.run_until_delivered(6, SimTime::from_ns(now + 10'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 6u);
  EXPECT_TRUE(bed.digests_agree());
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TEST(Rejoin, ResyncWaitsOutLiveContention) {
  // A station rejoining while an epoch rages must not certify early: its
  // counter resets on every collision/success.
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 30; ++i) {
      bed.inject(s, make_msg(s * 100 + i, s, i * 400, 2'000'000));
    }
  }
  bed.station(3).reset_for_rejoin();
  // Run just past the arrival burst; contention is continuous, so the
  // joiner must still be waiting.
  bed.run(SimTime::from_ns(6'000));
  EXPECT_FALSE(bed.station(3).synced());
  // After the backlog drains the channel goes quiet and it joins.
  bed.run_until_delivered(90, SimTime::from_ns(60'000'000));
  bed.run(bed.simulator().now() +
          options.phy.slot_x *
              (options.ddcr.resync_silence_threshold() + 4));
  EXPECT_TRUE(bed.station(3).synced());
}

TEST(Rejoin, QueueSurvivesCrash) {
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 1;
  DdcrTestbed bed(2, options);
  bed.inject(0, make_msg(1, 0, 0, 1'000'000));
  bed.run(SimTime::from_ns(50));  // message queued, not yet transmitted
  bed.station(0).reset_for_rejoin();
  EXPECT_EQ(bed.station(0).queue().size(), 1u);
  // After resync the queued message goes out.
  bed.run_until_delivered(1, SimTime::from_ns(10'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 1u);
}

TEST(Rejoin, RejectsUnsoundConfiguration) {
  auto options = noisy_options(0.0);
  options.ddcr.theta_factor = 1.0;
  options.ddcr.max_empty_tts = 0;
  DdcrTestbed bed(2, options);
  EXPECT_THROW(bed.station(0).reset_for_rejoin(), util::ContractViolation);
}

TEST(Rejoin, RejectsUnsoundConfigurationAtConstructionWhenRequired) {
  // A run that intends to crash/rejoin can opt into the up-front check and
  // get an actionable error at network construction instead of a deep
  // failure inside reset_for_rejoin() later.
  auto options = noisy_options(0.0);
  options.ddcr.theta_factor = 1.0;
  options.ddcr.max_empty_tts = 0;
  options.require_rejoinable = true;
  EXPECT_THROW(DdcrTestbed(2, options), util::ContractViolation);

  options.ddcr.max_empty_tts = 2;  // bounded silence streaks: accepted
  DdcrTestbed bed(2, options);
  EXPECT_EQ(bed.station_count(), 2);
}

TEST(Rejoin, CrashDuringStaticSearchLeavesSurvivorsConsistent) {
  // Three stations collide in the same deadline class, forcing the epoch
  // into a static tree search; station 2 crashes while *inside* that
  // search. The survivors must finish the (now smaller) search and deliver;
  // the crashed station rejoins over a quiet channel and delivers its
  // retained message afterwards.
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(3, options);
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(s, s, 500, 12'000));
  }
  // Step slot-by-slot until station 2 is mid static search, then crash it.
  const auto step = options.phy.slot_x;
  while (bed.station(2).mode() != DdcrStation::Mode::kStaticSearch) {
    bed.run(bed.simulator().now() + step);
    ASSERT_LT(bed.simulator().now().ns(), 1'000'000) << "never reached STs";
  }
  bed.station(2).reset_for_rejoin();
  EXPECT_FALSE(bed.station(2).synced());
  EXPECT_EQ(bed.station(2).queue().size(), 1u);

  // Survivors complete the epoch: step slot-by-slot (coarser runs would
  // overshoot past the quiet-period rejoin) until their two deliveries are
  // out, and check their digests agree while the crashed station is still
  // resyncing.
  while (bed.metrics().log().size() < 2u) {
    bed.run(bed.simulator().now() + step);
    ASSERT_LT(bed.simulator().now().ns(), 1'000'000) << "survivors stalled";
  }
  EXPECT_EQ(bed.station(0).protocol_digest(), bed.station(1).protocol_digest());

  // The crashed station rejoins over the quiet channel and delivers its
  // retained message once synced.
  bed.run_until_delivered(3, SimTime::from_ns(20'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 3u);
  EXPECT_TRUE(bed.station(2).synced());
  EXPECT_EQ(bed.station(2).counters().rejoins, 1);

  // A rejoined station carries reft = 0 until its next epoch; a fresh
  // 3-way contention round resynchronises it and restores full agreement.
  const auto now = bed.simulator().now().ns();
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(100 + s, s, now + 1'000, 12'000));
  }
  bed.run_until_delivered(6, SimTime::from_ns(now + 20'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 6u);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(Rejoin, CrashDuringPacketBurstReleasesTheChannel) {
  // Station 0 wins the channel and is chaining continuation frames under
  // the 802.3z-style burst budget when it crashes (scripted, at the slot
  // boundary of its second continuation). A crashed station must not keep
  // bursting from inside listen-only resync: the channel is released, the
  // remaining message stays queued, and it goes out after the rejoin.
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  options.phy.burst_budget_bits = 400;
  DdcrTestbed bed(2, options);
  for (int i = 0; i < 4; ++i) {
    bed.inject(0, make_msg(10 + i, 0, 500, 50'000));
  }

  // Arrivals at 500 ns with 100 ns slots: observations 0..4 are silence,
  // 5 is the initial win, 6.. are burst continuations. Crash at the
  // boundary of observation 7 — after the second continuation delivered,
  // before the station is polled for the third.
  fault::FaultPlan plan;
  plan.crashes.push_back({7, 0});
  fault::FaultInjector injector(std::move(plan), 1);
  injector.set_crash_hook([&bed](int id) { bed.station(id).reset_for_rejoin(); });
  injector.install(bed.channel());

  // Run to just past the slot boundary following the crash (coarser runs
  // would overshoot the short quiet-period rejoin): the burst is cut after
  // two continuations and the channel falls silent.
  bed.run(SimTime::from_ns(950));
  ASSERT_EQ(injector.stats().crashes_fired, 1);
  ASSERT_EQ(bed.metrics().log().size(), 3u);
  EXPECT_EQ(bed.channel().stats().burst_continuations, 2);
  EXPECT_FALSE(bed.station(0).synced());
  EXPECT_EQ(bed.station(0).queue().size(), 1u);

  // Quiet channel -> rejoin -> the retained fourth message goes out as a
  // plain CSMA-CD success, not a burst continuation.
  bed.run_until_delivered(4, SimTime::from_ns(10'000'000));
  EXPECT_TRUE(bed.station(0).synced());
  EXPECT_EQ(bed.station(0).counters().rejoins, 1);
  EXPECT_EQ(bed.metrics().log().size(), 4u);
  EXPECT_EQ(bed.channel().stats().burst_continuations, 2);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(Rejoin, TwoStationsWithOverlappingResyncWindows) {
  // Station 2 starts its quiet-period count; station 3 crashes a few slots
  // later, so their resync windows overlap. Both must certify
  // independently (the certificate is pure listening — joiners do not
  // disturb each other) and the four-way contention afterwards resolves
  // consistently.
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(4, options);
  bed.inject(0, make_msg(1, 0, 0, 200'000));
  bed.run_until_delivered(1, SimTime::from_ns(5'000'000));

  bed.station(2).reset_for_rejoin();
  bed.run(bed.simulator().now() + options.phy.slot_x * 5);
  bed.station(3).reset_for_rejoin();
  EXPECT_FALSE(bed.station(2).synced());
  EXPECT_FALSE(bed.station(3).synced());

  bed.run(bed.simulator().now() +
          options.phy.slot_x * (options.ddcr.resync_silence_threshold() + 8));
  EXPECT_TRUE(bed.station(2).synced());
  EXPECT_TRUE(bed.station(3).synced());
  EXPECT_EQ(bed.station(2).counters().rejoins, 1);
  EXPECT_EQ(bed.station(3).counters().rejoins, 1);

  const auto now = bed.simulator().now().ns();
  for (int s = 0; s < 4; ++s) {
    bed.inject(s, make_msg(100 + s, s, now + 1'000, 300'000));
  }
  bed.run_until_delivered(5, SimTime::from_ns(now + 20'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 5u);
  EXPECT_TRUE(bed.digests_agree());
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

}  // namespace
}  // namespace hrtdm::core
