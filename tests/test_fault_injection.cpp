// Failure injection: symmetric frame corruption (channel noise) and
// station crash / rejoin. The broadcast property makes corruption look
// like a collision to everyone simultaneously, so the replicated protocol
// state machines must stay consistent and simply retry; a crashed station
// rejoins via the listen-only quiet-period certificate.
#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "core/ddcr_station.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

using traffic::Message;
using util::Duration;

DdcrRunOptions noisy_options(double corruption) {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.phy.corruption_prob = corruption;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  return options;
}

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

TEST(Noise, CorruptedFramesAreRetriedAndDelivered) {
  auto options = noisy_options(0.3);
  DdcrTestbed bed(3, options);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      bed.inject(s, make_msg(s * 100 + i, s, i * 20'000, 500'000));
    }
  }
  bed.run_until_delivered(30, SimTime::from_ns(50'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 30u);
  EXPECT_GT(bed.channel().stats().corrupted_frames, 0);
  EXPECT_TRUE(bed.digests_agree());
  EXPECT_EQ(bed.queued(), 0);
}

TEST(Noise, HeavyNoiseStillDeliversEventually) {
  auto options = noisy_options(0.6);
  DdcrTestbed bed(2, options);
  bed.inject(0, make_msg(1, 0, 0, 10'000'000));
  bed.inject(1, make_msg(2, 1, 0, 10'000'000));
  bed.run_until_delivered(2, SimTime::from_ns(100'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 2u);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(Noise, StaticLeafRetriesAccountedWhenTieBreakCorrupted) {
  // Force repeated static searches under noise; corrupted lone static-leaf
  // transmissions must be re-probed, never treated as a genuine tie.
  auto options = noisy_options(0.4);
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 6; ++i) {
      // Same deadline class for all: every epoch goes through STs.
      bed.inject(s, make_msg(s * 10 + i, s, i * 50'000, 400'000));
    }
  }
  bed.run_until_delivered(24, SimTime::from_ns(100'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 24u);
  EXPECT_TRUE(bed.digests_agree());
  std::int64_t retries = 0;
  for (int s = 0; s < 4; ++s) {
    retries += bed.station(s).counters().static_leaf_retries;
  }
  // Retries are noise-dependent but with 40% corruption across many STs
  // at least one corrupted lone-leaf transmission is overwhelmingly likely.
  EXPECT_GT(retries, 0);
}

TEST(Noise, DeterministicPerSeedIncludingCorruption) {
  auto options = noisy_options(0.25);
  const traffic::Workload wl = traffic::quickstart(4);
  DdcrRunOptions run_options = options;
  run_options.phy = net::PhyConfig::gigabit_ethernet();
  run_options.phy.corruption_prob = 0.25;
  run_options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), run_options.ddcr.F);
  run_options.ddcr.F = 64;
  run_options.ddcr.m_time = 4;
  run_options.ddcr.m_static = 4;
  run_options.ddcr.q = 64;
  run_options.arrival_horizon = SimTime::from_ns(20'000'000);
  run_options.drain_cap = SimTime::from_ns(100'000'000);
  const auto a = run_ddcr(wl, run_options);
  const auto b = run_ddcr(wl, run_options);
  EXPECT_EQ(a.channel.corrupted_frames, b.channel.corrupted_frames);
  EXPECT_EQ(a.metrics.delivered, b.metrics.delivered);
  EXPECT_GT(a.channel.corrupted_frames, 0);
}

TEST(Rejoin, ThresholdRequiresBoundedSilenceStreaks) {
  DdcrConfig config;
  config.epoch_mode = EpochMode::kPerpetual;
  config.theta_factor = 1.0;
  EXPECT_THROW(config.resync_silence_threshold(), util::ContractViolation);

  config.epoch_mode = EpochMode::kCsmaCdFallback;
  config.theta_factor = 1.0;
  config.max_empty_tts = 0;  // unbounded compressed-time chains
  EXPECT_THROW(config.resync_silence_threshold(), util::ContractViolation);

  config.max_empty_tts = 2;
  EXPECT_GT(config.resync_silence_threshold(), 0);
  config.max_empty_tts = 0;
  config.theta_factor = 0.0;  // chains close immediately: also bounded
  EXPECT_GT(config.resync_silence_threshold(), 0);
}

TEST(Rejoin, CrashedStationResyncsAndDelivers) {
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(3, options);
  // Phase 1: traffic involving all three stations.
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(s, s, 0, 200'000));
  }
  bed.run_until_delivered(3, SimTime::from_ns(5'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 3u);

  // Crash station 2 mid-run; it keeps its queue but loses protocol state.
  bed.station(2).reset_for_rejoin();
  EXPECT_FALSE(bed.station(2).synced());

  // Quiet channel lets it certify and rejoin.
  const auto threshold = options.ddcr.resync_silence_threshold();
  bed.run(bed.simulator().now() +
          options.phy.slot_x * (threshold + 4));
  EXPECT_TRUE(bed.station(2).synced());
  EXPECT_EQ(bed.station(2).counters().rejoins, 1);

  // Phase 2: new contention involving the rejoined station resolves
  // consistently and delivers everything.
  const auto now = bed.simulator().now().ns();
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(100 + s, s, now + 1'000, 300'000));
  }
  bed.run_until_delivered(6, SimTime::from_ns(now + 10'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 6u);
  EXPECT_TRUE(bed.digests_agree());
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TEST(Rejoin, ResyncWaitsOutLiveContention) {
  // A station rejoining while an epoch rages must not certify early: its
  // counter resets on every collision/success.
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 2;
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 30; ++i) {
      bed.inject(s, make_msg(s * 100 + i, s, i * 400, 2'000'000));
    }
  }
  bed.station(3).reset_for_rejoin();
  // Run just past the arrival burst; contention is continuous, so the
  // joiner must still be waiting.
  bed.run(SimTime::from_ns(6'000));
  EXPECT_FALSE(bed.station(3).synced());
  // After the backlog drains the channel goes quiet and it joins.
  bed.run_until_delivered(90, SimTime::from_ns(60'000'000));
  bed.run(bed.simulator().now() +
          options.phy.slot_x *
              (options.ddcr.resync_silence_threshold() + 4));
  EXPECT_TRUE(bed.station(3).synced());
}

TEST(Rejoin, QueueSurvivesCrash) {
  auto options = noisy_options(0.0);
  options.ddcr.max_empty_tts = 1;
  DdcrTestbed bed(2, options);
  bed.inject(0, make_msg(1, 0, 0, 1'000'000));
  bed.run(SimTime::from_ns(50));  // message queued, not yet transmitted
  bed.station(0).reset_for_rejoin();
  EXPECT_EQ(bed.station(0).queue().size(), 1u);
  // After resync the queued message goes out.
  bed.run_until_delivered(1, SimTime::from_ns(10'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 1u);
}

TEST(Rejoin, RejectsUnsoundConfiguration) {
  auto options = noisy_options(0.0);
  options.ddcr.theta_factor = 1.0;
  options.ddcr.max_empty_tts = 0;
  DdcrTestbed bed(2, options);
  EXPECT_THROW(bed.station(0).reset_for_rejoin(), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::core
