// Randomized fault campaigns: the protocol stack must survive assumption
// *violations*, not just operate inside them. Each campaign runs a full
// network under a seeded mixture of crash, symmetric-noise and asymmetric
// receive faults (fault::FaultPlan / fault::FaultInjector) and asserts the
// two invariants no fault pattern may break:
//
//   safety        — channel-level mutual exclusion of deliveries, checked
//                   from the ground-truth SlotRecords;
//   reconvergence — after the last injected fault every station is synced,
//                   all protocol digests agree, and every queue drains,
//                   within the campaign's bounded recovery budget.
//
// Plus a deterministic demonstration that a station which *would* silently
// diverge after an asymmetric receive fault is caught by the divergence
// watchdog and recovers through quarantine.
#include <gtest/gtest.h>

#include "core/ddcr_network.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_injector.hpp"
#include "traffic/message.hpp"
#include "util/check.hpp"

namespace hrtdm::fault {
namespace {

using core::DdcrRunOptions;
using core::DdcrTestbed;
using traffic::Message;
using util::Duration;
using util::SimTime;

std::string describe(const CampaignResult& r) {
  return "safety_violations=" + std::to_string(r.safety_violations) +
         " drained=" + std::to_string(r.drained) +
         " reconverged=" + std::to_string(r.reconverged) +
         " desyncs=" + std::to_string(r.desyncs_detected) +
         " quarantines=" + std::to_string(r.quarantines) +
         " rejoins=" + std::to_string(r.rejoins) +
         " rounds=" + std::to_string(r.recovery_rounds_used) +
         " reconv_obs=" + std::to_string(r.reconvergence_observations);
}

TEST(FaultCampaign, FiftySeededMixedCampaignsHoldBothInvariants) {
  // >= 50 campaigns mixing all three fault classes. Alternate the mixture
  // across seeds so crash-heavy, noise-heavy and asymmetric-heavy patterns
  // are all covered.
  std::int64_t total_desyncs = 0;
  std::int64_t total_quarantines = 0;
  std::int64_t total_crashes = 0;
  std::int64_t total_asym = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 3 + static_cast<int>(seed % 3);  // 3..5
    options.crashes = static_cast<int>(seed % 3);       // 0..2
    options.symmetric_bursts = static_cast<int>(seed % 2);
    options.asymmetric_bursts = 1 + static_cast<int>(seed % 3);  // 1..3
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.safety_ok) << "seed " << seed << ": "
                                  << describe(result);
    EXPECT_TRUE(result.drained) << "seed " << seed << ": "
                                << describe(result);
    EXPECT_TRUE(result.reconverged) << "seed " << seed << ": "
                                    << describe(result);
    EXPECT_LE(result.reconvergence_observations, options.recovery_slots_cap)
        << "seed " << seed;
    total_desyncs += result.desyncs_detected;
    total_quarantines += result.quarantines;
    total_crashes += result.faults.crashes_fired;
    total_asym += result.faults.asymmetric_corruptions +
                  result.faults.asymmetric_misses;
  }
  // The grid must actually have exercised the hard fault class and the
  // watchdog, not just quiet runs that trivially pass.
  EXPECT_GT(total_crashes, 0);
  EXPECT_GT(total_asym, 0);
  EXPECT_GT(total_desyncs, 0);
  EXPECT_GT(total_quarantines, 0);
}

TEST(FaultCampaign, AsymmetricOnlyCampaignsReconverge) {
  // The fault class the correctness proofs exclude, isolated: no crashes,
  // no symmetric noise — every divergence is a receiver-local lie.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 4;
    options.crashes = 0;
    options.symmetric_bursts = 0;
    options.asymmetric_bursts = 3;
    options.asymmetric_prob = 0.8;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.passed()) << "seed " << seed << ": "
                                 << describe(result);
  }
}

TEST(FaultCampaign, DeterministicPerSeed) {
  CampaignOptions options;
  options.seed = 7;
  options.crashes = 2;
  options.asymmetric_bursts = 2;
  const CampaignResult a = run_campaign(options);
  const CampaignResult b = run_campaign(options);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.desyncs_detected, b.desyncs_detected);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.reconvergence_observations, b.reconvergence_observations);
  EXPECT_EQ(a.faults.crashes_fired, b.faults.crashes_fired);
  EXPECT_EQ(a.faults.asymmetric_corruptions, b.faults.asymmetric_corruptions);
  EXPECT_EQ(a.faults.asymmetric_misses, b.faults.asymmetric_misses);
  EXPECT_EQ(a.faults.symmetric_corruptions, b.faults.symmetric_corruptions);
}

TEST(FaultCampaign, ParallelCampaignsMatchSerialLoop) {
  // run_campaigns on the worker pool must equal the serial per-seed loop
  // result-for-result (campaigns share nothing; slots are index-keyed).
  CampaignOptions base;
  base.stations = 4;
  base.crashes = 1;
  base.asymmetric_bursts = 2;
  const std::vector<std::uint64_t> seeds = {3, 5, 8, 13, 21};

  std::vector<CampaignResult> serial;
  for (const std::uint64_t seed : seeds) {
    CampaignOptions options = base;
    options.seed = seed;
    serial.push_back(run_campaign(options));
  }

  const auto parallel = run_campaigns(base, seeds, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].delivered, serial[i].delivered) << "seed idx " << i;
    EXPECT_EQ(parallel[i].generated, serial[i].generated) << i;
    EXPECT_EQ(parallel[i].misses, serial[i].misses) << i;
    EXPECT_EQ(parallel[i].desyncs_detected, serial[i].desyncs_detected) << i;
    EXPECT_EQ(parallel[i].quarantines, serial[i].quarantines) << i;
    EXPECT_EQ(parallel[i].reconvergence_observations,
              serial[i].reconvergence_observations)
        << i;
    EXPECT_EQ(parallel[i].faults.crashes_fired, serial[i].faults.crashes_fired)
        << i;
    EXPECT_EQ(parallel[i].faults.asymmetric_corruptions,
              serial[i].faults.asymmetric_corruptions)
        << i;
  }
}

TEST(FaultCampaign, RejectsRejoinImpossibleConfiguration) {
  // Satellite: a config whose quiet-period certificate is unsound must be
  // rejected at construction with an actionable error, not livelock later.
  CampaignOptions options;
  options.ddcr.theta_factor = 1.0;
  options.ddcr.max_empty_tts = 0;  // unbounded in-epoch silence streaks
  EXPECT_THROW(run_campaign(options), util::ContractViolation);
}

TEST(FaultPlanSuite, ValidatesDirectives) {
  FaultPlan plan;
  plan.crashes.push_back({-1, 0});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);
  plan.crashes.clear();
  plan.asymmetric.push_back({0, 10, 5, AsymmetricKind::kMissReceive, 1.0});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);
  plan.asymmetric.clear();
  plan.symmetric.push_back({10, 10, 0.5});
  EXPECT_THROW(plan.validate(2), util::ContractViolation);

  FaultPlan ok;
  ok.crashes.push_back({5, 1});
  ok.symmetric.push_back({0, 8, 0.25});
  ok.asymmetric.push_back({3, 9, 0, AsymmetricKind::kCorruptReceive, 1.0});
  ok.validate(2);
  EXPECT_EQ(ok.last_fault_observation(), 8);
  EXPECT_TRUE(ok.has_crashes());
}

// --- the watchdog demonstration -----------------------------------------
//
// Station 1 streams back-to-back CSMA-CD successes; a single scripted
// asymmetric fault makes station 0 hear one of them as a collision. Station
// 0 therefore starts a collision-resolution epoch nobody else is in — the
// silent-divergence scenario. The very next (true) success is protocol-
// impossible from inside that phantom epoch: its deadline class lies outside
// the probed subtree.

DdcrRunOptions demo_options() {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = 2;
  options.ddcr.F = 16;
  options.ddcr.m_static = 2;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.max_empty_tts = 2;
  return options;
}

Message demo_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = 100;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

FaultPlan demo_plan() {
  // Station 1's six messages arrive at t = 500 ns; with 100 ns slots the
  // first five observations are silence and successes follow back-to-back,
  // so observation 8 is deterministically one of the successes. Station 0
  // hears exactly that one as a collision.
  FaultPlan plan;
  plan.asymmetric.push_back(
      {8, 9, 0, AsymmetricKind::kCorruptReceive, 1.0});
  return plan;
}

void inject_demo_traffic(DdcrTestbed& bed) {
  for (int i = 0; i < 6; ++i) {
    bed.inject(1, demo_msg(10 + i, 1, 500, 12'000));
  }
}

TEST(Watchdog, WithoutItAnAsymmetricFaultSilentlyDiverges) {
  auto options = demo_options();
  options.ddcr.enable_divergence_watchdog = false;
  DdcrTestbed bed(2, options);
  FaultInjector injector(demo_plan(), 1);
  injector.install(bed.channel());
  inject_demo_traffic(bed);

  bed.run_until_delivered(6, SimTime::from_ns(1'000'000));
  ASSERT_EQ(bed.metrics().log().size(), 6u);
  ASSERT_EQ(injector.stats().asymmetric_corruptions, 1);

  // Station 0 ran a phantom epoch and now carries a diverged reft; both
  // stations report "synced" while their replicated state disagrees —
  // the silent divergence the watchdog exists to catch.
  EXPECT_TRUE(bed.station(0).synced());
  EXPECT_FALSE(bed.digests_agree());
  EXPECT_EQ(bed.station(0).counters().desyncs_detected, 0);
  EXPECT_EQ(bed.station(0).counters().quarantines, 0);
}

TEST(Watchdog, DetectsTheDivergenceAndRecoversViaQuarantine) {
  auto options = demo_options();  // watchdog on by default
  DdcrTestbed bed(2, options);
  FaultInjector injector(demo_plan(), 1);
  injector.install(bed.channel());
  inject_demo_traffic(bed);

  bed.run_until_delivered(6, SimTime::from_ns(1'000'000));
  ASSERT_EQ(injector.stats().asymmetric_corruptions, 1);

  // The first success observed from inside the phantom epoch is protocol-
  // impossible (deadline class outside the probed subtree): station 0
  // detects its own divergence and self-quarantines.
  EXPECT_EQ(bed.station(0).counters().desyncs_detected, 1);
  EXPECT_EQ(bed.station(0).counters().quarantines, 1);

  // Quarantine re-enters through the quiet-period certificate...
  const auto threshold = options.ddcr.resync_silence_threshold();
  bed.run(bed.simulator().now() + options.phy.slot_x * (threshold + 8));
  EXPECT_TRUE(bed.station(0).synced());
  EXPECT_EQ(bed.station(0).counters().rejoins, 1);

  // ...and the next contention epoch restores full digest agreement.
  const auto now = bed.simulator().now().ns();
  bed.inject(0, demo_msg(100, 0, now + 1'000, 12'000));
  bed.inject(1, demo_msg(101, 1, now + 1'000, 12'000));
  bed.run_until_delivered(8, SimTime::from_ns(now + 1'000'000));
  EXPECT_EQ(bed.metrics().log().size(), 8u);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(Watchdog, MissedCarrierSenseIsAlsoCaught) {
  // Same scenario, but the victim misses the slot entirely (hears silence)
  // during a static search it shares with the talkers: its engine prunes a
  // subtree everyone else saw resolve, and a later success lands outside
  // its (now diverged) probe interval.
  auto options = demo_options();
  DdcrTestbed bed(3, options);
  FaultPlan plan;
  // A window of missed receives for station 0 while an epoch resolves a
  // three-way same-class tie.
  plan.asymmetric.push_back({6, 10, 0, AsymmetricKind::kMissReceive, 1.0});
  FaultInjector injector(plan, 1);
  injector.install(bed.channel());
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, demo_msg(s, s, 500, 12'000));
  }
  bed.run_until_delivered(3, SimTime::from_ns(1'000'000));
  EXPECT_GT(injector.stats().asymmetric_misses, 0);

  // Whether the watchdog fired depends on where the misses landed in the
  // epoch; what must hold is: no silent divergence among synced stations.
  const auto quarantines = bed.station(0).counters().quarantines;
  if (bed.station(0).synced() && quarantines == 0) {
    EXPECT_TRUE(bed.digests_agree());
  } else {
    EXPECT_GT(bed.station(0).counters().desyncs_detected, 0);
  }
}

}  // namespace
}  // namespace hrtdm::fault
