#include "core/multi_channel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

TEST(ChannelPlan, CoversEveryClassExactlyOnce) {
  const auto wl = traffic::stock_exchange(6);
  const auto plan = plan_channels(wl, 3);
  ASSERT_EQ(plan.classes_per_channel.size(), 3u);
  std::set<int> seen;
  for (const auto& ids : plan.classes_per_channel) {
    for (const int id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "class on two channels";
    }
  }
  EXPECT_EQ(seen.size(), wl.all_classes().size());
}

TEST(ChannelPlan, LoadAccountingMatchesWorkload) {
  const auto wl = traffic::videoconference(4);
  const auto plan = plan_channels(wl, 2);
  double total = 0.0;
  for (const double load : plan.load_per_channel) {
    total += load;
  }
  EXPECT_NEAR(total, wl.offered_load_bits_per_second(), total * 1e-9);
}

TEST(ChannelPlan, GreedyBalancesIdenticalClasses) {
  // 8 identical classes over 4 channels: perfect balance.
  const auto wl = traffic::quickstart(4);  // 2 classes per source
  const auto plan = plan_channels(wl, 4);
  EXPECT_NEAR(plan.imbalance(), 1.0, 0.7);  // ctl/bulk mix: near-balanced
  const auto single = plan_channels(wl, 1);
  EXPECT_EQ(single.imbalance(), 1.0);
  EXPECT_EQ(single.classes_per_channel[0].size(), wl.all_classes().size());
}

TEST(ChannelPlan, DeterministicAcrossCalls) {
  const auto wl = traffic::stock_exchange(5);
  const auto a = plan_channels(wl, 3);
  const auto b = plan_channels(wl, 3);
  EXPECT_EQ(a.classes_per_channel, b.classes_per_channel);
}

TEST(ChannelWorkload, FiltersSourcesAndKeepsClassIds) {
  const auto wl = traffic::videoconference(4);
  const auto plan = plan_channels(wl, 2);
  for (int ch = 0; ch < 2; ++ch) {
    const auto sub = channel_workload(wl, plan, ch);
    sub.validate();
    for (const auto& src : sub.sources) {
      EXPECT_FALSE(src.classes.empty());
      for (const auto& cls : src.classes) {
        const auto& ids =
            plan.classes_per_channel[static_cast<std::size_t>(ch)];
        EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), cls.id));
      }
    }
  }
  EXPECT_THROW(channel_workload(wl, plan, 2), util::ContractViolation);
}

TEST(MultiChannel, AggregatesMatchPerChannelRuns) {
  const auto wl = traffic::quickstart(6);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  options.drain_cap = SimTime::from_ns(100'000'000);

  const auto result = run_multi_channel(wl, 2, options);
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  for (const auto& run : result.per_channel) {
    generated += run.generated;
    delivered += run.metrics.delivered;
  }
  EXPECT_EQ(result.generated, generated);
  EXPECT_EQ(result.delivered, delivered);
  EXPECT_GT(result.generated, 0);
  EXPECT_EQ(result.misses, 0);
  EXPECT_EQ(result.undelivered, 0);
}

TEST(MultiChannel, MoreChannelsNeverLoseMessages) {
  const auto wl = traffic::videoconference(6);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(30'000'000);
  options.drain_cap = SimTime::from_ns(150'000'000);
  for (const int channels : {1, 2, 4}) {
    const auto result = run_multi_channel(wl, channels, options);
    EXPECT_EQ(result.delivered, result.generated) << channels << " channels";
    EXPECT_EQ(result.misses, 0) << channels << " channels";
  }
}

TEST(MultiChannel, ChannelSeedsAreDecorrelatedAcrossBaseSeeds) {
  // Regression: channels used to be seeded `base + ch`, so run(seed=s)'s
  // channel 1 replayed run(seed=s+1)'s channel 0 stream — adjacent-seed
  // multi-channel runs were correlated by construction.
  EXPECT_NE(channel_seed(1, 1), channel_seed(2, 0));
  EXPECT_NE(channel_seed(41, 1), channel_seed(42, 0));
  // Distinct per-channel streams under one base seed.
  EXPECT_NE(channel_seed(1, 0), channel_seed(1, 1));
  EXPECT_NE(channel_seed(1, 1), channel_seed(1, 2));
  // And deterministic.
  EXPECT_EQ(channel_seed(7, 3), channel_seed(7, 3));
}

TEST(MultiChannel, ParallelRunBitIdenticalToSerial) {
  // The tentpole determinism requirement: the thread-pool run must produce
  // the same protocol digest and the same aggregate metrics as threads=1,
  // including with more workers than this host has cores.
  const auto wl = traffic::stock_exchange(8).scaled_load(4.0);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = SimTime::from_ns(10'000'000);
  options.drain_cap = SimTime::from_ns(50'000'000);

  const auto serial = run_multi_channel(wl, 4, options, 1);
  EXPECT_NE(serial.protocol_digest, 0u);
  for (const int threads : {2, 4, 8}) {
    const auto parallel = run_multi_channel(wl, 4, options, threads);
    EXPECT_EQ(parallel.protocol_digest, serial.protocol_digest)
        << threads << " threads";
    EXPECT_EQ(parallel.generated, serial.generated) << threads;
    EXPECT_EQ(parallel.delivered, serial.delivered) << threads;
    EXPECT_EQ(parallel.misses, serial.misses) << threads;
    EXPECT_EQ(parallel.undelivered, serial.undelivered) << threads;
    EXPECT_EQ(parallel.worst_latency_s, serial.worst_latency_s) << threads;
    EXPECT_EQ(parallel.mean_utilization, serial.mean_utilization) << threads;
    ASSERT_EQ(parallel.per_channel.size(), serial.per_channel.size());
    for (std::size_t ch = 0; ch < serial.per_channel.size(); ++ch) {
      EXPECT_EQ(parallel.per_channel[ch].protocol_digest,
                serial.per_channel[ch].protocol_digest)
          << threads << " threads, channel " << ch;
    }
  }
}

TEST(MultiChannel, RelievesAnOverloadedSegment) {
  // A load that backlogs one channel within the run window drains cleanly
  // over four.
  // 48x nominal: ~390k msgs/s against the ~244k msgs/s slot-bound capacity
  // of one segment (every frame holds the medium >= 4.096 us).
  const auto wl = traffic::stock_exchange(10).scaled_load(48.0);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  options.drain_cap = SimTime::from_ns(22'000'000);

  const auto one = run_multi_channel(wl, 1, options);
  const auto four = run_multi_channel(wl, 4, options);
  EXPECT_GT(one.undelivered + one.misses, four.undelivered + four.misses);
}

}  // namespace
}  // namespace hrtdm::core
