#include "core/multi_channel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

TEST(ChannelPlan, CoversEveryClassExactlyOnce) {
  const auto wl = traffic::stock_exchange(6);
  const auto plan = plan_channels(wl, 3);
  ASSERT_EQ(plan.classes_per_channel.size(), 3u);
  std::set<int> seen;
  for (const auto& ids : plan.classes_per_channel) {
    for (const int id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "class on two channels";
    }
  }
  EXPECT_EQ(seen.size(), wl.all_classes().size());
}

TEST(ChannelPlan, LoadAccountingMatchesWorkload) {
  const auto wl = traffic::videoconference(4);
  const auto plan = plan_channels(wl, 2);
  double total = 0.0;
  for (const double load : plan.load_per_channel) {
    total += load;
  }
  EXPECT_NEAR(total, wl.offered_load_bits_per_second(), total * 1e-9);
}

TEST(ChannelPlan, GreedyBalancesIdenticalClasses) {
  // 8 identical classes over 4 channels: perfect balance.
  const auto wl = traffic::quickstart(4);  // 2 classes per source
  const auto plan = plan_channels(wl, 4);
  EXPECT_NEAR(plan.imbalance(), 1.0, 0.7);  // ctl/bulk mix: near-balanced
  const auto single = plan_channels(wl, 1);
  EXPECT_EQ(single.imbalance(), 1.0);
  EXPECT_EQ(single.classes_per_channel[0].size(), wl.all_classes().size());
}

TEST(ChannelPlan, DeterministicAcrossCalls) {
  const auto wl = traffic::stock_exchange(5);
  const auto a = plan_channels(wl, 3);
  const auto b = plan_channels(wl, 3);
  EXPECT_EQ(a.classes_per_channel, b.classes_per_channel);
}

TEST(ChannelWorkload, FiltersSourcesAndKeepsClassIds) {
  const auto wl = traffic::videoconference(4);
  const auto plan = plan_channels(wl, 2);
  for (int ch = 0; ch < 2; ++ch) {
    const auto sub = channel_workload(wl, plan, ch);
    sub.validate();
    for (const auto& src : sub.sources) {
      EXPECT_FALSE(src.classes.empty());
      for (const auto& cls : src.classes) {
        const auto& ids =
            plan.classes_per_channel[static_cast<std::size_t>(ch)];
        EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), cls.id));
      }
    }
  }
  EXPECT_THROW(channel_workload(wl, plan, 2), util::ContractViolation);
}

TEST(MultiChannel, AggregatesMatchPerChannelRuns) {
  const auto wl = traffic::quickstart(6);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  options.drain_cap = SimTime::from_ns(100'000'000);

  const auto result = run_multi_channel(wl, 2, options);
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  for (const auto& run : result.per_channel) {
    generated += run.generated;
    delivered += run.metrics.delivered;
  }
  EXPECT_EQ(result.generated, generated);
  EXPECT_EQ(result.delivered, delivered);
  EXPECT_GT(result.generated, 0);
  EXPECT_EQ(result.misses, 0);
  EXPECT_EQ(result.undelivered, 0);
}

TEST(MultiChannel, MoreChannelsNeverLoseMessages) {
  const auto wl = traffic::videoconference(6);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(30'000'000);
  options.drain_cap = SimTime::from_ns(150'000'000);
  for (const int channels : {1, 2, 4}) {
    const auto result = run_multi_channel(wl, channels, options);
    EXPECT_EQ(result.delivered, result.generated) << channels << " channels";
    EXPECT_EQ(result.misses, 0) << channels << " channels";
  }
}

TEST(MultiChannel, RelievesAnOverloadedSegment) {
  // A load that backlogs one channel within the run window drains cleanly
  // over four.
  // 48x nominal: ~390k msgs/s against the ~244k msgs/s slot-bound capacity
  // of one segment (every frame holds the medium >= 4.096 us).
  const auto wl = traffic::stock_exchange(10).scaled_load(48.0);
  DdcrRunOptions options;
  options.ddcr.class_width_c =
      DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(20'000'000);
  options.drain_cap = SimTime::from_ns(22'000'000);

  const auto one = run_multi_channel(wl, 1, options);
  const auto four = run_multi_channel(wl, 4, options);
  EXPECT_GT(one.undelivered + one.misses, four.undelivered + four.misses);
}

}  // namespace
}  // namespace hrtdm::core
