// Feasibility conditions of section 4.3: r(M), u(M), v(M), B_DDCR and the
// FC predicate.
#include "analysis/feasibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/xi.hpp"
#include "util/check.hpp"

namespace hrtdm::analysis {
namespace {

FcSystem one_source_one_class() {
  FcSystem system;
  system.phy.psi_bps = 1e9;
  system.phy.slot_s = 4.096e-6;
  system.phy.overhead_bits = 0;
  system.trees = FcTreeParams{4, 64, 4, 64};
  FcSource src;
  src.name = "s0";
  src.nu = 1;
  FcMessageClass cls;
  cls.name = "only";
  cls.l_bits = 8000;
  cls.d_s = 10e-3;
  cls.a = 1;
  cls.w_s = 20e-3;
  src.classes.push_back(cls);
  system.sources.push_back(src);
  return system;
}

TEST(Feasibility, SingleClassHandComputation) {
  const FcSystem system = one_source_one_class();
  const FcClassReport report = evaluate_class(system, 0, 0);

  // r(M) = ceil(10ms / 20ms) * 1 - 1 = 0: nothing precedes M locally.
  EXPECT_EQ(report.r, 0);
  // u(M) = ceil((10ms + 10ms - 8us) / 20ms) * 1 = 1.
  EXPECT_EQ(report.u, 1);
  // v(M) = 1 + floor(0 / 1) = 1.
  EXPECT_EQ(report.v, 1);
  // tx component: 1 * 8000 bits / 1e9 = 8 us.
  EXPECT_NEAR(report.tx_time_s, 8e-6, 1e-12);
  // u/v = 1 < 2, so the S1 evaluation clamps to k = 2.
  EXPECT_TRUE(report.k_clamped);
  EXPECT_NEAR(report.s1_slots, xi_asymptotic(4, 64.0, 2.0), 1e-9);
  // S2 = ceil(1/2) * xi(2, F=64) = 11.
  EXPECT_NEAR(report.s2_slots, 11.0, 1e-12);
  EXPECT_NEAR(report.b_ddcr_s,
              8e-6 + 4.096e-6 * (report.s1_slots + report.s2_slots), 1e-12);
  EXPECT_TRUE(report.feasible);
}

TEST(Feasibility, TighteningDeadlineFlipsTheVerdict) {
  FcSystem system = one_source_one_class();
  const FcClassReport loose = evaluate_class(system, 0, 0);
  ASSERT_TRUE(loose.feasible);
  // Any deadline below the bound must be reported infeasible.
  system.sources[0].classes[0].d_s = loose.b_ddcr_s * 0.5;
  const FcClassReport tight = evaluate_class(system, 0, 0);
  EXPECT_FALSE(tight.feasible);
  const FcReport report = check_feasibility(system);
  EXPECT_FALSE(report.feasible);
  EXPECT_LT(report.worst_margin_s, 0.0);
}

TEST(Feasibility, RBoundCountsLocalInterferenceOnly) {
  FcSystem system = one_source_one_class();
  // Add a second source with heavy traffic: r(M) for source 0 must not
  // change, u(M) must.
  const FcClassReport before = evaluate_class(system, 0, 0);
  FcSource other;
  other.name = "s1";
  other.nu = 1;
  FcMessageClass noisy;
  noisy.name = "noisy";
  noisy.l_bits = 4000;
  noisy.d_s = 5e-3;
  noisy.a = 4;
  noisy.w_s = 10e-3;
  other.classes.push_back(noisy);
  system.sources.push_back(other);

  const FcClassReport after = evaluate_class(system, 0, 0);
  EXPECT_EQ(after.r, before.r);
  // u gains ceil((10ms + 5ms - 8us)/10ms)*4 = 2*4 = 8 messages.
  EXPECT_EQ(after.u, before.u + 8);
}

TEST(Feasibility, RBoundGrowsWithLocalClasses) {
  FcSystem system = one_source_one_class();
  FcMessageClass second;
  second.name = "second";
  second.l_bits = 2000;
  second.d_s = 50e-3;
  second.a = 2;
  second.w_s = 10e-3;
  system.sources[0].classes.push_back(second);

  // For M = class 0 (d = 10 ms): r = ceil(10/20)*1 + ceil(10/10)*2 - 1 = 2.
  const FcClassReport report = evaluate_class(system, 0, 0);
  EXPECT_EQ(report.r, 2);
  // With nu = 1: v = 1 + floor(2/1) = 3; S2 = ceil(3/2)*11 = 22.
  EXPECT_EQ(report.v, 3);
  EXPECT_NEAR(report.s2_slots, 22.0, 1e-12);
}

TEST(Feasibility, MoreStaticIndicesReduceV) {
  FcSystem system = one_source_one_class();
  FcMessageClass second;
  second.name = "second";
  second.l_bits = 2000;
  second.d_s = 50e-3;
  second.a = 6;
  second.w_s = 10e-3;
  system.sources[0].classes.push_back(second);

  system.sources[0].nu = 1;
  const FcClassReport nu1 = evaluate_class(system, 0, 0);
  system.sources[0].nu = 4;
  const FcClassReport nu4 = evaluate_class(system, 0, 0);
  EXPECT_GT(nu1.v, nu4.v);
  EXPECT_GE(nu1.b_ddcr_s, nu4.b_ddcr_s);
}

TEST(Feasibility, NegativeWindowArgumentContributesZero) {
  // A class whose deadline-window argument is negative cannot interfere:
  // ceil() is clamped at zero, never negative.
  FcSystem system = one_source_one_class();
  FcSource other;
  other.name = "s1";
  other.nu = 1;
  FcMessageClass tiny;
  tiny.name = "tiny";
  tiny.l_bits = 100;
  tiny.d_s = 1e-9;  // essentially zero deadline
  tiny.a = 1;
  tiny.w_s = 1.0;   // huge window
  other.classes.push_back(tiny);
  system.sources.push_back(other);
  // For M = tiny itself: d(M) + d(m) - l'(M)/psi can go negative for the
  // big class's window; count must clamp at 0, keeping u >= 1 (tiny itself).
  const FcClassReport report = evaluate_class(system, 1, 0);
  EXPECT_GE(report.u, 1);
}

TEST(Feasibility, OfferedLoadMatchesHandComputation) {
  FcSystem system = one_source_one_class();
  // 1 msg / 20 ms * 8000 bits / 1e9 bps = 0.0004.
  EXPECT_NEAR(system.offered_load(), 4e-4, 1e-12);
  system.phy.overhead_bits = 8000;  // doubles l'
  EXPECT_NEAR(system.offered_load(), 8e-4, 1e-12);
}

TEST(Feasibility, ValidateRejectsStructuralErrors) {
  FcSystem system = one_source_one_class();
  system.trees.q = 48;  // not a power of 4
  EXPECT_THROW(system.validate(), util::ContractViolation);

  system = one_source_one_class();
  system.trees.F = 63;
  EXPECT_THROW(system.validate(), util::ContractViolation);

  system = one_source_one_class();
  system.sources[0].nu = 65;  // nu > q
  EXPECT_THROW(system.validate(), util::ContractViolation);

  system = one_source_one_class();
  system.sources[0].classes[0].w_s = -1.0;
  EXPECT_THROW(system.validate(), util::ContractViolation);
}

TEST(Feasibility, ReportCoversEveryClass) {
  FcSystem system = one_source_one_class();
  FcMessageClass second;
  second.name = "second";
  second.l_bits = 1000;
  second.d_s = 30e-3;
  second.a = 1;
  second.w_s = 50e-3;
  system.sources[0].classes.push_back(second);
  const FcReport report = check_feasibility(system);
  EXPECT_EQ(report.classes.size(), 2u);
  EXPECT_TRUE(report.feasible);
  for (const auto& cls : report.classes) {
    EXPECT_GT(cls.b_ddcr_s, 0.0);
    EXPECT_LE(report.worst_margin_s, cls.d_s - cls.b_ddcr_s + 1e-12);
  }
}

TEST(Feasibility, BoundIsMonotoneInLoad) {
  // Scaling up the arrival density of an interfering class can only
  // increase B for everyone (the FC adversary gets stronger).
  FcSystem system = one_source_one_class();
  FcSource other;
  other.name = "s1";
  other.nu = 1;
  FcMessageClass noisy;
  noisy.name = "noisy";
  noisy.l_bits = 4000;
  noisy.d_s = 5e-3;
  noisy.a = 1;
  noisy.w_s = 10e-3;
  other.classes.push_back(noisy);
  system.sources.push_back(other);

  double previous = 0.0;
  for (int a = 1; a <= 16; a *= 2) {
    system.sources[1].classes[0].a = a;
    const FcClassReport report = evaluate_class(system, 0, 0);
    EXPECT_GE(report.b_ddcr_s, previous) << "a=" << a;
    previous = report.b_ddcr_s;
  }
}

}  // namespace
}  // namespace hrtdm::analysis
