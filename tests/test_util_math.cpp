#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace hrtdm::util {
namespace {

TEST(Ipow, SmallValues) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(10, 6), 1'000'000);
  EXPECT_EQ(ipow(1, 50), 1);
}

TEST(Ipow, RejectsNegativeExponent) {
  EXPECT_THROW(ipow(2, -1), ContractViolation);
}

TEST(Ipow, DetectsOverflow) {
  EXPECT_THROW(ipow(2, 64), ContractViolation);
  EXPECT_THROW(ipow(10, 19), ContractViolation);
}

TEST(IsPowerOf, Basics) {
  EXPECT_TRUE(is_power_of(2, 1));
  EXPECT_TRUE(is_power_of(2, 64));
  EXPECT_FALSE(is_power_of(2, 63));
  EXPECT_TRUE(is_power_of(3, 27));
  EXPECT_FALSE(is_power_of(3, 32));
  EXPECT_FALSE(is_power_of(4, 0));
  EXPECT_FALSE(is_power_of(4, -4));
  EXPECT_TRUE(is_power_of(4, 4096));
}

TEST(IlogFloor, MatchesFloatingPointOnSafeRange) {
  for (int m = 2; m <= 7; ++m) {
    for (std::int64_t x = 1; x <= 100'000; x += 7) {
      const auto expected = static_cast<std::int64_t>(
          std::floor(std::log(static_cast<double>(x)) /
                         std::log(static_cast<double>(m)) +
                     1e-12));
      EXPECT_EQ(ilog_floor(m, x), expected) << "m=" << m << " x=" << x;
    }
  }
}

TEST(IlogFloor, ExactAtPowers) {
  for (int m = 2; m <= 9; ++m) {
    for (int e = 0; e <= 12 && ipow(m, e) < (1LL << 40); ++e) {
      const std::int64_t p = ipow(m, e);
      EXPECT_EQ(ilog_floor(m, p), e);
      if (p > 1) {
        EXPECT_EQ(ilog_floor(m, p - 1), e - 1);
      }
      EXPECT_EQ(ilog_floor(m, p + 1), e + (p + 1 >= ipow(m, e + 1) ? 1 : 0));
    }
  }
}

TEST(IlogCeil, ExactAtPowersAndNeighbours) {
  for (int m = 2; m <= 9; ++m) {
    for (int e = 1; e <= 10 && ipow(m, e) < (1LL << 40); ++e) {
      const std::int64_t p = ipow(m, e);
      EXPECT_EQ(ilog_ceil(m, p), e);
      if (p - 1 > 1) {  // ceil(log_m 1) = 0 regardless of e
        EXPECT_EQ(ilog_ceil(m, p - 1), e);
      }
      EXPECT_EQ(ilog_ceil(m, p + 1), e + 1);
    }
  }
  EXPECT_EQ(ilog_ceil(2, 1), 0);
}

TEST(IlogFloorRational, PositiveExponent) {
  // floor(log_2(8/1)) = 3, floor(log_2(9/2)) = 2, floor(log_4(64/20)) = 0.
  EXPECT_EQ(ilog_floor_rational(2, 8, 1), 3);
  EXPECT_EQ(ilog_floor_rational(2, 9, 2), 2);
  EXPECT_EQ(ilog_floor_rational(4, 64, 20), 0);
  EXPECT_EQ(ilog_floor_rational(4, 64, 16), 1);
}

TEST(IlogFloorRational, NegativeExponent) {
  // floor(log_4(16/20)) = -1 (since 1/4 <= 16/20 < 1).
  EXPECT_EQ(ilog_floor_rational(4, 16, 20), -1);
  EXPECT_EQ(ilog_floor_rational(2, 1, 2), -1);
  EXPECT_EQ(ilog_floor_rational(2, 1, 3), -2);
  EXPECT_EQ(ilog_floor_rational(3, 1, 100), -5);
}

TEST(IlogFloorRational, AgreesWithFloatingPoint) {
  for (int m = 2; m <= 5; ++m) {
    for (std::int64_t num = 1; num <= 300; num += 3) {
      for (std::int64_t den = 1; den <= 300; den += 7) {
        const double ratio =
            static_cast<double>(num) / static_cast<double>(den);
        const double logv =
            std::log(ratio) / std::log(static_cast<double>(m));
        // Only check when comfortably away from an integer boundary.
        if (std::abs(logv - std::round(logv)) > 1e-9) {
          EXPECT_EQ(ilog_floor_rational(m, num, den),
                    static_cast<std::int64_t>(std::floor(logv)))
              << "m=" << m << " " << num << "/" << den;
        }
      }
    }
  }
}

TEST(CeilFloorDiv, NegativeNumerators) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(-6, 3), -2);
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(CeilFloorDiv, Identity) {
  for (std::int64_t a = -50; a <= 50; ++a) {
    for (std::int64_t b = 1; b <= 7; ++b) {
      EXPECT_EQ(ceil_div(a, b), -floor_div(-a, b));
      EXPECT_LE(floor_div(a, b) * b, a);
      EXPECT_GE(ceil_div(a, b) * b, a);
    }
  }
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1);
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(64, 1), 64);
  EXPECT_EQ(binomial(64, 63), 64);
  EXPECT_EQ(binomial(10, 11), 0);
  EXPECT_EQ(binomial(10, -1), 0);
  EXPECT_EQ(binomial(52, 5), 2'598'960);
}

TEST(Binomial, PascalIdentity) {
  for (std::int64_t n = 1; n <= 30; ++n) {
    for (std::int64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

}  // namespace
}  // namespace hrtdm::util
