// Scenario tests for the CSMA/DDCR state machine, driven through the real
// channel + simulator via DdcrTestbed. Timings are hand-computed with
// slot x = 100 ns, psi = 1 Gbit/s, c = 1 us, alpha = 0.
#include "core/ddcr_station.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ddcr_network.hpp"
#include "util/check.hpp"

namespace hrtdm::core {
namespace {

using traffic::Message;
using util::Duration;

net::PhyConfig fast_phy() {
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  return phy;
}

DdcrRunOptions small_options(int m = 2) {
  DdcrRunOptions options;
  options.phy = fast_phy();
  options.ddcr.m_time = m;
  options.ddcr.F = m == 2 ? 16 : 16;  // 2^4 or 4^2
  options.ddcr.m_static = m;
  options.ddcr.q = 16;
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.theta_factor = 1.0;
  return options;
}

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns, std::int64_t bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

std::vector<std::int64_t> delivered_uids(const MetricsCollector& metrics) {
  std::vector<std::int64_t> uids;
  for (const auto& tx : metrics.log()) {
    uids.push_back(tx.uid);
  }
  return uids;
}

TEST(DdcrStation, LoneMessageGoesOutViaPlainCsmaCd) {
  DdcrTestbed bed(2, small_options());
  bed.inject(0, make_msg(1, 0, 0, 5'000));
  bed.run(SimTime::from_ns(50'000));
  EXPECT_EQ(delivered_uids(bed.metrics()), (std::vector<std::int64_t>{1}));
  // No collision ever happened: no epoch, no tree search.
  EXPECT_EQ(bed.station(0).counters().epochs, 0);
  EXPECT_EQ(bed.station(0).counters().tts_runs, 0);
  EXPECT_EQ(bed.station(0).mode(), DdcrStation::Mode::kCsmaCd);
}

TEST(DdcrStation, CollisionStartsAnEpochAndResolvesInEdfOrder) {
  // Distinct deadline classes: raw indices 4 and 11 within F = 16, so the
  // time tree alone separates them — no static tie-break needed.
  DdcrTestbed bed(2, small_options());
  bed.inject(0, make_msg(1, 0, 0, 12'000));  // later deadline
  bed.inject(1, make_msg(2, 1, 0, 5'000));   // earlier deadline
  bed.run(SimTime::from_ns(100'000));
  EXPECT_EQ(delivered_uids(bed.metrics()), (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(bed.station(0).counters().epochs, 1);
  EXPECT_EQ(bed.station(0).counters().tts_runs, 1);
  EXPECT_EQ(bed.station(0).counters().sts_runs, 0);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(DdcrStation, SameDeadlineClassTriggersStaticTieBreak) {
  DdcrTestbed bed(2, small_options());
  bed.inject(0, make_msg(1, 0, 0, 5'000));
  bed.inject(1, make_msg(2, 1, 0, 5'000));  // same 1 us class
  bed.run(SimTime::from_ns(100'000));
  const auto uids = delivered_uids(bed.metrics());
  EXPECT_EQ(uids.size(), 2u);
  EXPECT_EQ(bed.station(0).counters().sts_runs, 1);
  EXPECT_EQ(bed.station(1).counters().sts_runs, 1);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(DdcrStation, LateTightMessageJumpsTheQueue) {
  // Two far-deadline messages collide; a tight message arriving just after
  // the epoch starts must be served first (the max(f, f*+1) rule).
  DdcrTestbed bed(3, small_options());
  bed.inject(0, make_msg(1, 0, 0, 10'000));
  bed.inject(1, make_msg(2, 1, 0, 13'000));
  bed.inject(2, make_msg(3, 2, 150, 2'000));  // arrives mid-epoch, tight
  bed.run(SimTime::from_ns(100'000));
  const auto uids = delivered_uids(bed.metrics());
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_EQ(uids.front(), 3);  // the tight latecomer went first
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TEST(DdcrStation, NuBudgetForcesSecondStaticSearch) {
  // Three sources, two same-class messages each, one static index each:
  // the first STs delivers one message per source, the leftovers collide
  // again on the next time leaf and require a second STs.
  DdcrTestbed bed(3, small_options());
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(10 + s, s, 0, 5'000));
    bed.inject(s, make_msg(20 + s, s, 0, 5'050));  // same 1 us class
  }
  bed.run(SimTime::from_ns(200'000));
  EXPECT_EQ(delivered_uids(bed.metrics()).size(), 6u);
  EXPECT_GE(bed.station(0).counters().sts_runs, 2);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(DdcrStation, BeyondHorizonMessagesNeedCompressedTime) {
  // Deadlines at 50 us sit beyond the cF = 16 us horizon: the first time
  // tree search finds nothing (out = false) and compressed time must pull
  // reft forward until the messages fit.
  DdcrTestbed bed(2, small_options());
  bed.inject(0, make_msg(1, 0, 0, 50'000));
  bed.inject(1, make_msg(2, 1, 0, 52'000));
  bed.run(SimTime::from_ns(1'000'000));
  EXPECT_EQ(delivered_uids(bed.metrics()).size(), 2u);
  EXPECT_GE(bed.station(0).counters().compressions, 1);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TEST(DdcrStation, BeyondHorizonWithoutCompressedTimeStillDelivers) {
  // theta = 0: the epoch closes on out = false; repeated collisions with a
  // fresh reft let physical time pull the messages into the horizon. The
  // paper's "lengthy channel idleness" trade-off, visible as extra epochs.
  auto options = small_options();
  options.ddcr.theta_factor = 0.0;
  DdcrTestbed bed(2, options);
  bed.inject(0, make_msg(1, 0, 0, 50'000));
  bed.inject(1, make_msg(2, 1, 0, 52'000));
  bed.run(SimTime::from_ns(1'000'000));
  EXPECT_EQ(delivered_uids(bed.metrics()).size(), 2u);
  EXPECT_EQ(bed.station(0).counters().compressions, 0);
  EXPECT_GT(bed.station(0).counters().epochs, 1);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
}

TEST(DdcrStation, StrictEdfOrderAcrossDistinctClasses) {
  // Eight stations, one message each, all present at the initial
  // collision. Deadlines are spaced 10 classes apart — far more than the
  // class drift caused by reft advancing on every in-search success (the
  // paper's source of bounded deadline inversions) — so delivery must be
  // exactly EDF.
  auto options = small_options();
  options.ddcr.F = 128;  // horizon 128 us covers deadlines up to 100 us
  DdcrTestbed bed(8, options);
  for (int s = 0; s < 8; ++s) {
    // Deadlines 30, 40, ..., 100 us in reverse station order.
    bed.inject(s, make_msg(s, s, 0, (10 - s) * 10'000));
  }
  bed.run(SimTime::from_ns(2'000'000));
  const auto uids = delivered_uids(bed.metrics());
  ASSERT_EQ(uids.size(), 8u);
  for (std::size_t i = 1; i < uids.size(); ++i) {
    EXPECT_GT(uids[i - 1], uids[i]) << "EDF order violated at " << i;
  }
  EXPECT_EQ(count_deadline_inversions(bed.metrics().log()), 0);
}

TEST(DdcrStation, QuaternaryTreesWork) {
  auto options = small_options(4);
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 4; ++s) {
    bed.inject(s, make_msg(s, s, 0, 4'000 + s * 1'000));
  }
  bed.run(SimTime::from_ns(200'000));
  EXPECT_EQ(delivered_uids(bed.metrics()).size(), 4u);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
  EXPECT_TRUE(bed.digests_agree());
}

TEST(DdcrStation, PerpetualModeDeliversAndStaysConsistent) {
  auto options = small_options();
  options.ddcr.epoch_mode = EpochMode::kPerpetual;
  DdcrTestbed bed(3, options);
  for (int s = 0; s < 3; ++s) {
    bed.inject(s, make_msg(s, s, 0, 5'000 + s * 2'000));
    bed.inject(s, make_msg(10 + s, s, 30'000, 6'000 + s * 2'000));
  }
  bed.run(SimTime::from_ns(300'000));
  EXPECT_EQ(delivered_uids(bed.metrics()).size(), 6u);
  EXPECT_EQ(bed.metrics().summarize().misses, 0);
  EXPECT_TRUE(bed.digests_agree());
  // Perpetual mode keeps running tree searches after the queues drain.
  EXPECT_GT(bed.station(0).counters().tts_runs, 2);
}

TEST(DdcrStation, PerpetualModeRequiresCompressedTime) {
  auto options = small_options();
  options.ddcr.epoch_mode = EpochMode::kPerpetual;
  options.ddcr.theta_factor = 0.0;
  EXPECT_THROW(DdcrTestbed(2, options), util::ContractViolation);
}

TEST(DdcrStation, RejectsForeignAndDuplicateMessages) {
  DdcrTestbed bed(2, small_options());
  EXPECT_THROW(bed.station(0).enqueue(make_msg(1, 1, 0, 1'000)),
               util::ContractViolation);
  bed.station(0).enqueue(make_msg(1, 0, 0, 1'000));
  EXPECT_THROW(bed.station(0).enqueue(make_msg(1, 0, 0, 1'000)),
               util::ContractViolation);
}

TEST(DdcrStation, ArbitrationModeDeliversEdfWithoutEpochs) {
  // On an ATM-style bus (non-destructive collisions), the deadline-keyed
  // arbitration delivers EDF order with no tree searches at all.
  auto options = small_options();
  options.collision_mode = net::CollisionMode::kArbitration;
  DdcrTestbed bed(4, options);
  for (int s = 0; s < 4; ++s) {
    bed.inject(s, make_msg(s, s, 0, 8'000 - s * 1'000));
  }
  bed.run(SimTime::from_ns(100'000));
  const auto uids = delivered_uids(bed.metrics());
  ASSERT_EQ(uids.size(), 4u);
  for (std::size_t i = 1; i < uids.size(); ++i) {
    EXPECT_LT(uids[i], uids[i - 1]);  // deadline order = reverse uid order
  }
  EXPECT_EQ(bed.station(0).counters().epochs, 0);
  EXPECT_EQ(count_deadline_inversions(bed.metrics().log()), 0);
}

}  // namespace
}  // namespace hrtdm::core
