// Cross-validation of every characterisation of the worst-case tree-search
// cost xi(k, t) given in section 4.1 of the paper.
#include "analysis/xi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {
namespace {

using util::ipow;

TEST(XiExactTable, TinyTreesByHand) {
  // Binary, t = 2 (Eq. 4): xi = [1, 0, 1].
  XiExactTable t2(2, 1);
  EXPECT_EQ(t2.xi(0), 1);
  EXPECT_EQ(t2.xi(1), 0);
  EXPECT_EQ(t2.xi(2), 1);

  // Binary, t = 4: worked out by hand in DESIGN review: [1, 0, 3, 2, 3].
  XiExactTable t4(2, 2);
  EXPECT_EQ(t4.xi(0), 1);
  EXPECT_EQ(t4.xi(1), 0);
  EXPECT_EQ(t4.xi(2), 3);
  EXPECT_EQ(t4.xi(3), 2);
  EXPECT_EQ(t4.xi(4), 3);

  // Quaternary, t = 4 (Eq. 4): xi(2p) = 1 + 4 - 2p.
  XiExactTable q4(4, 1);
  EXPECT_EQ(q4.xi(0), 1);
  EXPECT_EQ(q4.xi(1), 0);
  EXPECT_EQ(q4.xi(2), 3);
  EXPECT_EQ(q4.xi(3), 2);
  EXPECT_EQ(q4.xi(4), 1);
}

TEST(XiExactTable, MatchesExhaustiveSubsetOracle) {
  // Fully independent ground truth: enumerate all binomial(t, k) leaf
  // placements and take the max DFS cost.
  for (const auto& [m, n] : {std::pair{2, 3}, {2, 4}, {3, 2}, {4, 2}}) {
    XiExactTable table(m, n);
    for (std::int64_t k = 0; k <= table.t(); ++k) {
      EXPECT_EQ(table.xi(k), xi_exhaustive_subsets(m, table.t(), k))
          << "m=" << m << " t=" << table.t() << " k=" << k;
    }
  }
}

TEST(XiExactTable, ConcaveKernelMatchesDenseConvolution) {
  // The table builds each level with the concave slope-merge kernel
  // (Eq. 3/8 structure); re-derive each level here with the defining dense
  // max-plus convolution (Eq. 1) and demand bit-identical rows. This runs
  // the same comparison the NDEBUG-gated cross-check inside the builder
  // does, but in every build type.
  for (const auto& [m, n] : {std::pair{2, 8}, {3, 5}, {4, 4}, {5, 3},
                             {7, 2}, {9, 2}}) {
    XiExactTable table(m, n);
    for (int level = 1; level <= n; ++level) {
      const std::int64_t child = ipow(m, level - 1);
      std::vector<std::int64_t> conv{0};  // max-plus identity: {0} at k = 0
      for (int r = 0; r < m; ++r) {
        std::vector<std::int64_t> next(
            conv.size() + static_cast<std::size_t>(child),
            std::numeric_limits<std::int64_t>::min() / 4);
        for (std::size_t i = 0; i < conv.size(); ++i) {
          for (std::int64_t j = 0; j <= child; ++j) {
            next[i + static_cast<std::size_t>(j)] =
                std::max(next[i + static_cast<std::size_t>(j)],
                         conv[i] + table.xi_at_level(level - 1, j));
          }
        }
        conv = std::move(next);
      }
      const std::int64_t width = ipow(m, level);
      ASSERT_EQ(static_cast<std::int64_t>(conv.size()), width + 1);
      EXPECT_EQ(table.xi_at_level(level, 0), 1);
      EXPECT_EQ(table.xi_at_level(level, 1), 0);
      for (std::int64_t k = 2; k <= width; ++k) {
        ASSERT_EQ(table.xi_at_level(level, k),
                  1 + conv[static_cast<std::size_t>(k)])
            << "m=" << m << " level=" << level << " k=" << k;
      }
    }
  }
}

TEST(XiExactTable, MillionLeafQuaternaryTree) {
  // t = 4^10 = 1048576 — intractable for the dense kernel, routine for the
  // concave one. Check the closed form at a spread of k and the anchor
  // equations at the special points.
  XiExactTable table(4, 10);
  const std::int64_t t = table.t();
  ASSERT_EQ(t, 1048576);
  EXPECT_EQ(table.xi(2), xi_two(4, t));
  EXPECT_EQ(table.xi(2 * t / 4), xi_two_t_over_m(4, t));
  EXPECT_EQ(table.xi(t), xi_full(4, t));
  for (std::int64_t k = 0; k <= t; k += 4099) {  // coprime stride
    ASSERT_EQ(table.xi(k), xi_closed(4, t, k)) << "k=" << k;
  }
  for (std::int64_t k = 2 * t / 4; k <= t; k += 8191) {
    ASSERT_EQ(table.xi(k), xi_linear_tail(4, t, k)) << "k=" << k;
  }
}

TEST(XiDnc, ConcurrentReadersAgreeWithTable) {
  // The xi_dnc memo is shared across threads behind a shared_mutex; hammer
  // it from several readers (all overlapping on the same (m, t) subproblems)
  // and check every result against the exact table.
  constexpr int kThreads = 8;
  XiExactTable table(3, 5);
  const std::int64_t t = table.t();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&table, t, w, &mismatches] {
      for (std::int64_t k = (w % 2 == 0) ? 0 : t; k >= 0 && k <= t;
           k += (w % 2 == 0) ? 1 : -1) {
        if (xi_dnc(3, t, k) != table.xi(k)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

struct ShapeParam {
  int m;
  int n;
};

class XiCrossValidation : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(XiCrossValidation, DncMatchesExactForAllK) {
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  for (std::int64_t k = 0; k <= table.t(); ++k) {
    EXPECT_EQ(xi_dnc(m, table.t(), k), table.xi(k))
        << "m=" << m << " t=" << table.t() << " k=" << k;
  }
}

TEST_P(XiCrossValidation, ClosedFormMatchesExactForAllK) {
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  for (std::int64_t k = 0; k <= table.t(); ++k) {
    EXPECT_EQ(xi_closed(m, table.t(), k), table.xi(k))
        << "m=" << m << " t=" << table.t() << " k=" << k;
  }
}

TEST_P(XiCrossValidation, OddEqualsEvenMinusOne) {
  // Eq. 3.
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  for (std::int64_t p = 0; 2 * p + 1 <= table.t(); ++p) {
    EXPECT_EQ(table.xi(2 * p + 1), table.xi(2 * p) - 1);
  }
}

TEST_P(XiCrossValidation, SpecialValues) {
  // Eq. 5, 6, 7.
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  EXPECT_EQ(table.xi(2), xi_two(m, t));
  EXPECT_EQ(table.xi(2 * t / m), xi_two_t_over_m(m, t));
  EXPECT_EQ(table.xi(t), xi_full(m, t));
}

TEST_P(XiCrossValidation, EvenDerivative) {
  // Eq. 8 on its stated domain p in [1, t/2 - 1] (requires n >= 2).
  const auto [m, n] = GetParam();
  if (n < 2) {
    GTEST_SKIP() << "Eq. 8 requires t = m^n with n >= 2";
  }
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t p = 1; p <= t / 2 - 1; ++p) {
    EXPECT_EQ(table.xi(2 * p + 2) - table.xi(2 * p),
              xi_even_derivative(m, t, p))
        << "m=" << m << " t=" << t << " p=" << p;
  }
}

TEST_P(XiCrossValidation, LinearTail) {
  // Eq. 15 on [2t/m, t].
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t k = 2 * t / m; k <= t; ++k) {
    EXPECT_EQ(table.xi(k), xi_linear_tail(m, t, k))
        << "m=" << m << " t=" << t << " k=" << k;
  }
}

TEST_P(XiCrossValidation, AsymptoteDominatesAndTouches) {
  // Eq. 11: xi~ >= xi on [2, 2t/m], with equality at k = 2 m^i.
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t k = 2; k <= 2 * t / m; ++k) {
    const double asym =
        xi_asymptotic(m, static_cast<double>(t), static_cast<double>(k));
    EXPECT_GE(asym, static_cast<double>(table.xi(k)) - 1e-9)
        << "m=" << m << " t=" << t << " k=" << k;
  }
  for (std::int64_t k = 2; k <= 2 * t / m; k *= m) {
    const double asym =
        xi_asymptotic(m, static_cast<double>(t), static_cast<double>(k));
    EXPECT_NEAR(asym, static_cast<double>(table.xi(k)), 1e-6)
        << "touch point m=" << m << " t=" << t << " k=" << k;
  }
}

TEST_P(XiCrossValidation, AsymptoteDominatesOnTailToo) {
  // The FCs evaluate xi~ at u/v which may exceed 2t/m; confirm it still
  // upper-bounds the exact (linear) tail there.
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  const std::int64_t t = table.t();
  for (std::int64_t k = 2 * t / m; k <= t; ++k) {
    const double asym =
        xi_asymptotic(m, static_cast<double>(t), static_cast<double>(k));
    EXPECT_GE(asym, static_cast<double>(table.xi(k)) - 1e-9)
        << "m=" << m << " t=" << t << " k=" << k;
  }
}

TEST_P(XiCrossValidation, GapWithinEq13Bound) {
  // Eq. 13 holds verbatim over even k (the parity of the Eq. 9/11
  // derivation); over all k the odd values exceed it by an additive term
  // that converges to m/2 from above as t grows (reproduction finding —
  // see GapReport). Eq. 12: the even-k argmax lies in [2t/m^2, 2t/m].
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  const auto report = max_asymptote_gap(table);
  EXPECT_LE(report.max_gap_even, report.bound + 1e-9);
  if (table.t() >= 128) {
    EXPECT_LE(report.max_gap,
              report.bound + static_cast<double>(m) / 2.0 + 0.1);
  }
  if (table.t() >= m * m && report.max_gap_even > 0.0) {
    EXPECT_GE(report.argmax_k_even, 2 * table.t() / (m * m));
    EXPECT_LE(report.argmax_k_even, 2 * table.t() / m);
  }
}

TEST_P(XiCrossValidation, WorstCasePlacementAchievesXi) {
  const auto [m, n] = GetParam();
  XiExactTable table(m, n);
  for (std::int64_t k = 0; k <= table.t();
       k += std::max<std::int64_t>(1, table.t() / 16)) {
    const auto leaves = worst_case_leaves(table, k);
    ASSERT_EQ(static_cast<std::int64_t>(leaves.size()), k);
    EXPECT_EQ(search_cost_for_leaves(m, table.t(), leaves), table.xi(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XiCrossValidation,
    ::testing::Values(ShapeParam{2, 1}, ShapeParam{2, 2}, ShapeParam{2, 3},
                      ShapeParam{2, 6}, ShapeParam{2, 9}, ShapeParam{2, 10},
                      ShapeParam{3, 1}, ShapeParam{3, 2}, ShapeParam{3, 4},
                      ShapeParam{3, 6}, ShapeParam{4, 1}, ShapeParam{4, 2},
                      ShapeParam{4, 3}, ShapeParam{4, 5}, ShapeParam{5, 2},
                      ShapeParam{5, 3}, ShapeParam{6, 2}, ShapeParam{6, 3},
                      ShapeParam{7, 2}, ShapeParam{8, 2}, ShapeParam{9, 2}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n);
    });

TEST(XiPaperFigures, Fig2QuaternaryDominatesBinaryAt64Leaves) {
  // The paper's Fig. 2 claim: xi(k, 64, m=4) <= xi(k, 64, m=2) on [2, 64].
  XiExactTable binary(2, 6);
  XiExactTable quaternary(4, 3);
  bool strictly_somewhere = false;
  for (std::int64_t k = 2; k <= 64; ++k) {
    EXPECT_LE(quaternary.xi(k), binary.xi(k)) << "k=" << k;
    strictly_somewhere = strictly_somewhere || quaternary.xi(k) < binary.xi(k);
  }
  EXPECT_TRUE(strictly_somewhere);
}

TEST(XiPaperFigures, Fig1EndpointsFor64LeafQuaternary) {
  // Sanity anchors for Fig. 1: xi(2, 64) = 4*3 - 1 = 11 and
  // xi(64, 64) = 63/3 = 21 for the quaternary 64-leaf tree.
  XiExactTable table(4, 3);
  EXPECT_EQ(table.xi(2), 11);
  EXPECT_EQ(table.xi(64), 21);
  // Eq. 6: xi(2t/m = 32, 64) = 21 + (64 - 32) = 53.
  EXPECT_EQ(table.xi(32), 53);
}

TEST(XiTightness, UniversalConstantIsNinePointFivePercent) {
  // Eq. 14: sup_m g(m) = g(9) ~ 0.09537 ("9.54% t").
  EXPECT_NEAR(tightness_bound_universal(), 0.09537, 5e-5);
  for (int m = 2; m <= 64; ++m) {
    EXPECT_LE(tightness_bound_factor(m), tightness_bound_universal() + 1e-12)
        << "m=" << m;
  }
  // And the explicit closed form of Eq. 14.
  const double expected = std::sqrt(std::sqrt(3.0)) /
                              (2.0 * std::exp(1.0) * std::log(3.0)) -
                          1.0 / 8.0;
  EXPECT_NEAR(tightness_bound_universal(), expected, 1e-12);
}

TEST(XiContracts, RejectsMalformedShapes) {
  EXPECT_THROW(xi_closed(2, 48, 3), util::ContractViolation);   // t not m^n
  EXPECT_THROW(xi_closed(1, 1, 0), util::ContractViolation);    // m < 2
  EXPECT_THROW(xi_closed(2, 8, 9), util::ContractViolation);    // k > t
  EXPECT_THROW(xi_closed(2, 8, -1), util::ContractViolation);   // k < 0
  EXPECT_THROW(xi_dnc(3, 10, 2), util::ContractViolation);      // t not 3^n
  EXPECT_THROW(xi_asymptotic(2, 8.0, 0.0), util::ContractViolation);
  EXPECT_THROW(xi_linear_tail(2, 8, 2), util::ContractViolation);  // below 2t/m
}

TEST(XiSearchCost, SingleLeafPlacements) {
  // k = 1 anywhere costs 0; empty tree costs 1.
  const std::int64_t t = 64;
  for (std::int64_t leaf = 0; leaf < t; leaf += 5) {
    const std::int64_t leaves[] = {leaf};
    EXPECT_EQ(search_cost_for_leaves(4, t, leaves), 0);
  }
  EXPECT_EQ(search_cost_for_leaves(4, t, {}), 1);
}

TEST(XiSearchCost, AdjacentVersusSpreadPair) {
  // Two adjacent leaves in one deepest subtree need the full descent; two
  // leaves in different root subtrees resolve after one root collision.
  // m=2, t=8: adjacent {0,1} -> collision at root, [0,4), [0,2) then two
  // successes, then silences for [2,4) and [4,8): cost 3+2 = 5 = xi(2,8).
  const std::int64_t adjacent[] = {0, 1};
  EXPECT_EQ(search_cost_for_leaves(2, 8, adjacent), 5);
  const std::int64_t spread[] = {0, 4};
  EXPECT_EQ(search_cost_for_leaves(2, 8, spread), 1);
}

TEST(XiSearchCost, RejectsUnsortedOrDuplicateLeaves) {
  const std::int64_t unsorted[] = {3, 1};
  EXPECT_THROW(search_cost_for_leaves(2, 8, unsorted),
               util::ContractViolation);
  const std::int64_t dup[] = {3, 3};
  EXPECT_THROW(search_cost_for_leaves(2, 8, dup), util::ContractViolation);
  const std::int64_t oob[] = {8};
  EXPECT_THROW(search_cost_for_leaves(2, 8, oob), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::analysis
