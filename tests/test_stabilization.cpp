// Self-stabilization: the network must reconverge from *randomly corrupted
// joint state* — scrambled tree positions, modes, reft references, watchdog
// streaks and garbage EDF queues — within the stated observation bound, and
// the post-convergence suffix must pass the full differential conformance
// check (clean-suffix judging). Plus unit coverage for the
// ConformanceRecorder::clean_suffix clipping itself.
#include <gtest/gtest.h>

#include <string>

#include "check/conformance.hpp"
#include "fault/campaign.hpp"
#include "fault/stabilization.hpp"
#include "util/check.hpp"

namespace hrtdm::fault {
namespace {

using util::Duration;
using util::SimTime;

std::string describe(const StabilizationResult& r) {
  return "reconverged=" + std::to_string(r.reconverged) +
         " conv_obs=" + std::to_string(r.convergence_observations) +
         " bound=" + std::to_string(r.bound_observations) +
         " scrambled=" + std::to_string(r.scrambled_observations) +
         " garbage=" + std::to_string(r.garbage_messages) +
         " desyncs=" + std::to_string(r.desyncs_detected) +
         " quarantines=" + std::to_string(r.quarantines) +
         " rounds=" + std::to_string(r.recovery_rounds_used) +
         " suffix_ok=" + std::to_string(r.suffix_ok);
}

StabilizationOptions options_for_m(int m) {
  StabilizationOptions options;
  switch (m) {
    case 2:
      break;  // defaults: F = 16, q = 16
    case 3:
      options.ddcr.m_time = 3;
      options.ddcr.F = 27;
      options.ddcr.m_static = 3;
      options.ddcr.q = 27;
      break;
    case 4:
      options.ddcr.m_time = 4;
      options.ddcr.F = 16;
      options.ddcr.m_static = 4;
      options.ddcr.q = 16;
      break;
    default:
      ADD_FAILURE() << "unsupported arity " << m;
  }
  return options;
}

TEST(Stabilization, ScrambledStartsReconvergeWithinTheBoundForEveryArity) {
  // The acceptance grid in miniature (the full >= 500-seed sweep runs in
  // bench_stabilization): every seeded corrupted start must reconverge,
  // stay within the stated bound, and pass the clean-suffix conformance
  // check over the verification workload.
  std::int64_t total_scrambled = 0;
  std::int64_t total_garbage = 0;
  std::int64_t total_watchdog = 0;
  for (const int m : {2, 3, 4}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      StabilizationOptions options = options_for_m(m);
      options.seed = seed;
      options.stations = 3 + static_cast<int>(seed % 2);
      const StabilizationResult result = run_stabilization(options);
      EXPECT_TRUE(result.reconverged)
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      EXPECT_TRUE(result.safety_ok)
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      EXPECT_TRUE(result.within_bound)
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      EXPECT_TRUE(result.suffix_checked)
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      EXPECT_TRUE(result.suffix_ok)
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      EXPECT_GT(result.conformance.slots_checked, 0)
          << "m=" << m << " seed=" << seed;
      EXPECT_TRUE(result.passed())
          << "m=" << m << " seed=" << seed << ": " << describe(result);
      total_scrambled += result.scrambled_observations;
      total_garbage += result.garbage_messages;
      total_watchdog += result.desyncs_detected + result.quarantines;
    }
  }
  // The grid must actually have started from corrupted states — fabricated
  // histories, garbage queues, and at least some scrambles severe enough to
  // trip the watchdog — not from quiet starts that trivially pass.
  EXPECT_GT(total_scrambled, 100);
  EXPECT_GT(total_garbage, 20);
  EXPECT_GT(total_watchdog, 0);
}

TEST(Stabilization, DeterministicPerSeed) {
  StabilizationOptions options;
  options.seed = 9;
  const StabilizationResult a = run_stabilization(options);
  const StabilizationResult b = run_stabilization(options);
  EXPECT_EQ(a.convergence_observations, b.convergence_observations);
  EXPECT_EQ(a.scrambled_observations, b.scrambled_observations);
  EXPECT_EQ(a.garbage_messages, b.garbage_messages);
  EXPECT_EQ(a.desyncs_detected, b.desyncs_detected);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.recovery_rounds_used, b.recovery_rounds_used);
}

TEST(Stabilization, BoundIsPositiveAndGrowsWithScrambleStrength) {
  StabilizationOptions base;
  const std::int64_t bound = stabilization_bound_observations(base);
  EXPECT_GT(bound, 0);
  StabilizationOptions stronger = base;
  stronger.max_garbage_messages = base.max_garbage_messages * 4;
  EXPECT_GT(stabilization_bound_observations(stronger), bound);
  // The stated bound must be reachable inside the recovery budget, or the
  // contract could never be met.
  EXPECT_LT(bound, base.recovery_slots_cap);
}

TEST(Stabilization, ConvergenceIsMeasuredInFramesToo) {
  StabilizationOptions options;
  options.seed = 3;
  const StabilizationResult result = run_stabilization(options);
  ASSERT_TRUE(result.reconverged);
  const std::int64_t frame_slots =
      options.ddcr.horizon().ceil_div(options.phy.slot_x);
  EXPECT_EQ(result.convergence_frames,
            (result.convergence_observations + frame_slots - 1) / frame_slots);
}

TEST(Stabilization, RejectsRejoinImpossibleConfiguration) {
  StabilizationOptions options;
  options.ddcr.theta_factor = 1.0;
  options.ddcr.max_empty_tts = 0;  // unbounded in-epoch silence streaks
  EXPECT_THROW(run_stabilization(options), util::ContractViolation);
}

// --- clean_suffix clipping ------------------------------------------------

TEST(CleanSuffix, KeepsEntriesAtOrAfterTheCut) {
  check::ConformanceRecorder recorder;
  const Duration x = Duration::nanoseconds(100);
  net::SlotRecord record;
  record.kind = net::SlotKind::kSilence;
  for (int i = 0; i < 6; ++i) {
    record.start = SimTime::from_ns(100 * i);
    record.end = record.start + x;
    recorder.on_slot(record);
  }
  const auto suffix = recorder.clean_suffix(4);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix.front().obs_index, 4);
  EXPECT_EQ(suffix.back().obs_index, 5);
  EXPECT_TRUE(recorder.clean_suffix(6).empty());
  EXPECT_EQ(recorder.clean_suffix(0).size(), 6u);
}

TEST(CleanSuffix, ClipsAStraddlingIdleGapToItsTail) {
  check::ConformanceRecorder recorder;
  const Duration x = Duration::nanoseconds(100);
  net::SlotRecord record;
  record.kind = net::SlotKind::kSilence;
  record.start = SimTime::from_ns(0);
  record.end = record.start + x;
  recorder.on_slot(record);  // obs 0
  // A 10-slot aggregated gap spanning observations 1..10.
  recorder.on_idle_gap(10, SimTime::from_ns(100), x);
  ASSERT_EQ(recorder.observations(), 11);

  // Cut inside the gap: the suffix keeps the tail (observations 5..10 =
  // 6 slots) and re-anchors the record to the cut.
  const auto suffix = recorder.clean_suffix(5);
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix.front().obs_index, 5);
  EXPECT_EQ(suffix.front().gap_slots, 6);
  EXPECT_EQ(suffix.front().record.start.ns(), 500);
  EXPECT_EQ(suffix.front().record.end.ns(), 1100);
}

TEST(CleanSuffix, ComparatorJudgesOnlyTheSuffix) {
  // Forge a stream whose prefix violates the slot grid (overlapping slots)
  // but whose suffix is clean: suffix judging must pass, whole-stream
  // judging must fail.
  const Duration x = Duration::nanoseconds(100);
  check::ConformanceRecorder recorder;
  net::SlotRecord bad;
  bad.kind = net::SlotKind::kSilence;
  bad.start = SimTime::from_ns(0);
  bad.end = SimTime::from_ns(150);  // wrong duration: grid violation
  recorder.on_slot(bad);
  net::SlotRecord good;
  good.kind = net::SlotKind::kSilence;
  for (int i = 0; i < 4; ++i) {
    good.start = SimTime::from_ns(200 + 100 * i);
    good.end = good.start + x;
    recorder.on_slot(good);
  }

  check::ConformanceInput input;
  input.phy.slot_x = x;
  input.phy.psi_bps = 1e9;
  input.phy.overhead_bits = 0;
  input.ddcr.m_time = 2;
  input.ddcr.F = 16;
  input.ddcr.m_static = 2;
  input.ddcr.q = 16;
  input.ddcr.class_width_c = Duration::microseconds(1);
  input.ddcr.static_indices = core::DdcrConfig::one_index_per_source(2, 16);

  const check::ConformanceComparator comparator;
  const auto whole = comparator.check(input, recorder);
  EXPECT_FALSE(whole.ok);

  input.clean_suffix_begin = 1;
  const auto suffix = comparator.check(input, recorder);
  EXPECT_TRUE(suffix.ok) << suffix.summary();
  EXPECT_GT(suffix.slots_checked, 0);
}

}  // namespace
}  // namespace hrtdm::fault
