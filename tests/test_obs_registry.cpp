#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace hrtdm::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Registry, FindOrCreateReturnsStableInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  // Distinct names are distinct instruments.
  EXPECT_NE(&reg.counter("y"), &a);
}

TEST(Registry, SnapshotSortedByName) {
  Registry reg;
  reg.counter("zeta").inc(1);
  reg.counter("alpha").inc(2);
  reg.gauge("mid").set(5);
  reg.histogram("h").observe(9);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].sum, 9);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("keep");
  c.inc(10);
  reg.histogram("h").observe(3);
  reg.reset();
  // The cached reference stays valid (macro static caches rely on this).
  EXPECT_EQ(c.value(), 0);
  c.inc();
  EXPECT_EQ(reg.counter("keep").value(), 1);
  EXPECT_EQ(reg.histogram("h").count(), 0);
}

TEST(Histogram, Exp2BoundsArePlatformStableIntegers) {
  const auto bounds = Histogram::exp2_bounds();
  ASSERT_EQ(bounds.size(),
            static_cast<std::size_t>(Histogram::kDefaultBuckets));
  EXPECT_EQ(bounds[0], 0);
  EXPECT_EQ(bounds[1], 1);
  EXPECT_EQ(bounds[2], 2);
  EXPECT_EQ(bounds[3], 4);
  // Bound i (i >= 1) is exactly 2^(i-1): no floating point anywhere.
  for (std::size_t i = 2; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], 2 * bounds[i - 1]);
  }
}

TEST(Histogram, BucketPlacementAndStats) {
  // Bucket i counts v <= bounds[i] (and > bounds[i-1]); last is overflow.
  Histogram h({0, 10, 100});
  h.observe(0);    // bucket 0 (v <= 0)
  h.observe(5);    // bucket 1 (0 < v <= 10)
  h.observe(10);   // bucket 1 (inclusive upper bound)
  h.observe(11);   // bucket 2
  h.observe(500);  // overflow bucket
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 526);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 500);
}

TEST(Histogram, EmptyMinMaxSentinels) {
  Histogram h({1});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), INT64_MAX);
  EXPECT_EQ(h.max(), INT64_MIN);
  // ...but the registry snapshot reports 0/0 for an empty histogram.
  Registry reg;
  reg.histogram("empty");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].min, 0);
  EXPECT_EQ(snap.histograms[0].max, 0);
}

// Macro behaviour: only meaningful when instrumentation is compiled in
// (a global -DHRTDM_OBS_OFF=ON build turns the macros into no-ops, and
// tests/test_obs_off.cpp covers that contract).
#ifndef HRTDM_OBS_OFF

TEST(Macros, ConcurrentCountSumsExactly) {
  Registry::global().counter("test.concurrent").reset();
  util::ThreadPool pool(4);
  constexpr std::int64_t kTasks = 10'000;
  pool.for_index(kTasks, [](std::int64_t i) {
    HRTDM_COUNT("test.concurrent");
    HRTDM_COUNT_N("test.concurrent", i % 3);
  });
  // Relaxed increments commute: the total is exact, not approximate.
  std::int64_t expected = kTasks;
  for (std::int64_t i = 0; i < kTasks; ++i) {
    expected += i % 3;
  }
  EXPECT_EQ(Registry::global().counter("test.concurrent").value(), expected);
}

TEST(Macros, ConcurrentObserveCountsEverySample) {
  Registry::global().histogram("test.concurrent_hist").reset();
  util::ThreadPool pool(4);
  constexpr std::int64_t kTasks = 5'000;
  pool.for_index(kTasks, [](std::int64_t i) {
    HRTDM_OBSERVE("test.concurrent_hist", i);
  });
  Histogram& h = Registry::global().histogram("test.concurrent_hist");
  EXPECT_EQ(h.count(), kTasks);
  EXPECT_EQ(h.sum(), kTasks * (kTasks - 1) / 2);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), kTasks - 1);
}

TEST(Macros, GaugeSetWritesGlobal) {
  HRTDM_GAUGE_SET("test.gauge", 123);
  EXPECT_EQ(Registry::global().gauge("test.gauge").value(), 123);
}

#endif  // HRTDM_OBS_OFF

}  // namespace
}  // namespace hrtdm::obs
