// The umbrella header must compile standalone and expose the whole API.
#include "hrtdm.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesTheFullApi) {
  // One symbol from each layer proves the includes resolve.
  EXPECT_EQ(hrtdm::util::ipow(2, 6), 64);
  EXPECT_EQ(hrtdm::analysis::xi_closed(4, 64, 2), 11);
  const auto wl = hrtdm::traffic::quickstart(2);
  EXPECT_EQ(wl.z(), 2);
  hrtdm::sim::Simulator sim;
  EXPECT_EQ(sim.now(), hrtdm::sim::SimTime::zero());
  hrtdm::core::EdfQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(hrtdm::baseline::protocol_name(hrtdm::baseline::Protocol::kDdcr),
            "CSMA/DDCR");
}

TEST(Umbrella, LogLevelGateWorks) {
  using hrtdm::util::LogLevel;
  const LogLevel original = hrtdm::util::log_level();
  hrtdm::util::set_log_level(LogLevel::kError);
  EXPECT_EQ(hrtdm::util::log_level(), LogLevel::kError);
  // Below-threshold messages are discarded without formatting cost; this
  // just exercises the macro path.
  HRTDM_LOG(kDebug) << "discarded " << 42;
  HRTDM_LOG(kError) << "";  // emitted (empty) — no crash
  hrtdm::util::set_log_level(original);
}

}  // namespace
