// Property-based sweeps tying the simulator to the analysis:
//  - measured time-tree search slots equal the analytic DFS cost and are
//    bounded by xi(k, F) for adversarial placements;
//  - the inversion counter matches a brute-force oracle;
//  - transmissions never overlap (HRTDM safety) on heavy runs;
//  - FC-feasible workloads never miss deadlines under the saturating
//    adversary.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/feasibility.hpp"
#include "analysis/xi.hpp"
#include "check/conformance.hpp"
#include "core/ddcr_network.hpp"
#include "core/metrics.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrtdm {
namespace {

const bool kConformanceInstalled = check::install_conformance_auditor();

using core::DdcrRunOptions;
using core::DdcrTestbed;
using traffic::Message;
using util::Duration;
using util::SimTime;

struct TreeShapeParam {
  int m;
  std::int64_t leaves;
};

class SimVersusXi : public ::testing::TestWithParam<TreeShapeParam> {};

/// Builds a testbed whose initial collision puts one message per chosen
/// time-tree leaf, then checks the measured search cost against analysis.
void run_placement(int m, std::int64_t F,
                   const std::vector<std::int64_t>& leaves) {
  const auto k = static_cast<int>(leaves.size());
  ASSERT_GE(k, 2);

  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = m;
  options.ddcr.F = F;
  options.ddcr.m_static = m;
  // q: smallest power of m holding k stations.
  std::int64_t q = m;
  while (q < k) {
    q *= m;
  }
  options.ddcr.q = q;
  // A wide class (1 ms) freezes the class mapping across the epoch: reft
  // advances by at most a few microseconds per search, far less than c/2,
  // so the floor((DM - reft)/c) of each message never moves.
  options.ddcr.class_width_c = Duration::milliseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  options.ddcr.theta_factor = 1.0;

  DdcrTestbed bed(k, options);
  // The initial collision is delivered at t = 100 ns; reft = 100 ns. A
  // message lands on leaf j when DM = reft + j*c + c/2.
  const std::int64_t reft = 100;
  const std::int64_t c = options.ddcr.class_width_c.ns();
  for (int s = 0; s < k; ++s) {
    Message msg;
    msg.uid = s;
    msg.class_id = s;
    msg.source = s;
    msg.l_bits = 100;
    msg.arrival = SimTime::zero();
    msg.absolute_deadline = SimTime::from_ns(
        reft + leaves[static_cast<std::size_t>(s)] * c + c / 2);
    bed.inject(s, msg);
  }
  bed.run_until_delivered(k, SimTime::from_ns(200'000'000));

  ASSERT_EQ(bed.metrics().log().size(), static_cast<std::size_t>(k));
  ASSERT_EQ(bed.metrics().summarize().misses, 0)
      << "placement deadlines must be generous enough";

  // Every station heard the same slots; station 0's counters stand for all.
  const auto& counters = bed.station(0).counters();
  const std::int64_t expected =
      analysis::search_cost_for_leaves(m, F, leaves) - 1;  // root = the
                                                           // initial collision
  EXPECT_EQ(counters.search_slots_time, expected);
  EXPECT_EQ(counters.sts_runs, 0);  // distinct leaves: no tie-break
  EXPECT_TRUE(bed.digests_agree());
}

TEST_P(SimVersusXi, RandomPlacementsMatchAnalyticCost) {
  const auto [m, F] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 1000 + F));
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t k =
        rng.uniform_i64(2, std::min<std::int64_t>(F, 10));
    const auto perm = rng.permutation(F);
    std::vector<std::int64_t> leaves(perm.begin(), perm.begin() + k);
    std::sort(leaves.begin(), leaves.end());
    run_placement(m, F, leaves);
  }
}

TEST_P(SimVersusXi, WorstCasePlacementRealisesXiExactly) {
  const auto [m, F] = GetParam();
  const int n = static_cast<int>(util::ilog_floor(m, F));
  analysis::XiExactTable table(m, n);
  for (std::int64_t k = 2; k <= std::min<std::int64_t>(F, 8); ++k) {
    const auto leaves = analysis::worst_case_leaves(table, k);
    run_placement(m, F, leaves);
    // run_placement checked equality with search_cost_for_leaves, which
    // equals xi(k) for this placement; spell the bound out regardless:
    EXPECT_EQ(analysis::search_cost_for_leaves(m, F, leaves), table.xi(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimVersusXi,
    ::testing::Values(TreeShapeParam{2, 16}, TreeShapeParam{2, 32},
                      TreeShapeParam{4, 16}, TreeShapeParam{4, 64},
                      TreeShapeParam{8, 64}),
    [](const ::testing::TestParamInfo<TreeShapeParam>& info) {
      return "m" + std::to_string(info.param.m) + "F" +
             std::to_string(info.param.leaves);
    });

TEST(InversionCounter, MatchesBruteForceOracle) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = rng.uniform_i64(0, 60);
    std::vector<core::TxRecord> log;
    SimTime clock = SimTime::zero();
    for (std::int64_t i = 0; i < n; ++i) {
      core::TxRecord tx;
      tx.uid = i;
      tx.arrival = clock - Duration::nanoseconds(rng.uniform_i64(0, 500));
      tx.tx_start = clock;
      clock += Duration::nanoseconds(rng.uniform_i64(1, 100));
      tx.completed = clock;
      tx.deadline = tx.arrival + Duration::nanoseconds(rng.uniform_i64(1, 400));
      log.push_back(tx);
    }
    std::int64_t brute = 0;
    for (std::size_t j = 0; j < log.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (log[i].deadline > log[j].deadline &&
            log[i].tx_start >= log[j].arrival) {
          ++brute;
        }
      }
    }
    EXPECT_EQ(core::count_deadline_inversions(log), brute)
        << "trial " << trial << " n=" << n;
  }
}

TEST(Safety, TransmissionsNeverOverlap) {
  // Mutual exclusion (the <p.HRTDM> safety property) on a heavy run.
  const auto wl = traffic::stock_exchange(10);
  DdcrRunOptions options;
  options.arrival_horizon = SimTime::from_ns(30'000'000);
  options.drain_cap = SimTime::from_ns(200'000'000);
  options.conformance_check = kConformanceInstalled;

  const auto result = core::run_ddcr(wl, options);
  EXPECT_GT(result.metrics.delivered, 0);
  // Mutual exclusion, slot grid and frame integrity on the recorded
  // ground-truth stream — the direct form of the safety property.
  EXPECT_TRUE(result.conformance.checked);
  EXPECT_TRUE(result.conformance.ok) << result.conformance.summary();

  // Re-run through a testbed to get the raw log (run_ddcr summarises).
  // Instead assert on the summary invariants: delivered + undelivered =
  // generated, and the busy time never exceeds elapsed time.
  EXPECT_EQ(result.metrics.delivered + result.undelivered, result.generated);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

TEST(Safety, LogIsSerialisedOnTestbedRun) {
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.ddcr.class_width_c = Duration::microseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);
  DdcrTestbed bed(6, options);
  util::Rng rng(7);
  for (int s = 0; s < 6; ++s) {
    for (int i = 0; i < 20; ++i) {
      Message msg;
      msg.uid = s * 100 + i;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = 400;
      msg.arrival = SimTime::from_ns(rng.uniform_i64(0, 200'000));
      msg.absolute_deadline = msg.arrival + Duration::microseconds(500);
      bed.inject(s, msg);
    }
  }
  bed.run(SimTime::from_ns(2'000'000));
  const auto& log = bed.metrics().log();
  ASSERT_EQ(log.size(), 120u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].completed, log[i].tx_start)
        << "overlapping transmissions at " << i;
  }
  EXPECT_TRUE(bed.digests_agree());
}

struct FcWorkloadParam {
  const char* name;
  int z;
};

class FcSoundness : public ::testing::TestWithParam<FcWorkloadParam> {};

TEST_P(FcSoundness, FeasibleVerdictImpliesNoMissesUnderAdversary) {
  const auto& param = GetParam();
  traffic::Workload wl = std::string(param.name) == "quickstart"
                             ? traffic::quickstart(param.z)
                             : std::string(param.name) == "videoconference"
                                   ? traffic::videoconference(param.z)
                                   : traffic::air_traffic_control(param.z);

  DdcrRunOptions options;
  // Dimension the scheduling horizon over the deadline range (the FCs
  // assume pending messages can enter the current time tree).
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = SimTime::from_ns(50'000'000);
  options.drain_cap = SimTime::from_ns(400'000'000);
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;

  traffic::FcAdapterOptions fc_options;
  fc_options.psi_bps = options.phy.psi_bps;
  fc_options.slot_s = options.phy.slot_x.to_seconds();
  fc_options.overhead_bits = options.phy.overhead_bits;
  fc_options.trees = analysis::FcTreeParams{
      options.ddcr.m_static, options.ddcr.q, options.ddcr.m_time,
      options.ddcr.F};
  const auto fc = analysis::check_feasibility(
      traffic::to_fc_system(wl, fc_options));
  if (!fc.feasible) {
    GTEST_SKIP() << "workload not FC-feasible at these parameters";
  }

  options.conformance_check = kConformanceInstalled;
  const auto result = core::run_ddcr(wl, options);
  EXPECT_EQ(result.metrics.misses, 0);
  EXPECT_EQ(result.undelivered, 0);
  EXPECT_TRUE(result.conformance.ok) << result.conformance.summary();
  // Global worst latency below the loosest class bound would be too weak;
  // check the global worst against the max per-class bound instead.
  double max_bound = 0.0;
  for (const auto& cls : fc.classes) {
    max_bound = std::max(max_bound, cls.b_ddcr_s);
  }
  EXPECT_LE(result.metrics.worst_latency_s, max_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FcSoundness,
    ::testing::Values(FcWorkloadParam{"quickstart", 2},
                      FcWorkloadParam{"quickstart", 4},
                      FcWorkloadParam{"quickstart", 8},
                      FcWorkloadParam{"videoconference", 3},
                      FcWorkloadParam{"videoconference", 6},
                      FcWorkloadParam{"atc", 3},
                      FcWorkloadParam{"atc", 5}),
    [](const ::testing::TestParamInfo<FcWorkloadParam>& info) {
      return std::string(info.param.name) + "z" + std::to_string(info.param.z);
    });

}  // namespace
}  // namespace hrtdm
