#include "analysis/optimal_m.hpp"

#include <gtest/gtest.h>

#include "analysis/xi.hpp"
#include "util/check.hpp"

namespace hrtdm::analysis {
namespace {

TEST(OptimalM, SixtyFourLeavesReproducesFig2Dominance) {
  // The paper's Fig. 2 observation: at 64 leaves, quaternary dominates
  // binary everywhere on [2, 64].
  const BranchingStudy study = compare_branching_degrees(64, 4);
  ASSERT_EQ(study.candidates.size(), 3u);  // m = 2, 3, 4
  const auto& binary = study.candidates[0];
  const auto& quaternary = study.candidates[2];
  EXPECT_EQ(binary.m, 2);
  EXPECT_EQ(quaternary.m, 4);
  EXPECT_EQ(binary.t, 64);
  EXPECT_EQ(quaternary.t, 64);
  EXPECT_TRUE(binary.dominated);
  EXPECT_LE(quaternary.worst_xi, binary.worst_xi);
  EXPECT_LT(quaternary.mean_xi, binary.mean_xi);
}

TEST(OptimalM, CandidateTreesCoverRequiredLeaves) {
  const BranchingStudy study = compare_branching_degrees(40, 7);
  for (const auto& cand : study.candidates) {
    EXPECT_GE(cand.t, 40) << "m=" << cand.m;
    EXPECT_LT(cand.t / cand.m, 40) << "m=" << cand.m;  // smallest power
  }
}

TEST(OptimalM, WorstCaseValuesMatchClosedForm) {
  const BranchingStudy study = compare_branching_degrees(64, 4, 16);
  for (const auto& cand : study.candidates) {
    std::int64_t worst = 0;
    for (std::int64_t k = 2; k <= study.k_max; ++k) {
      worst = std::max(worst, xi_closed(cand.m, cand.t, k));
    }
    EXPECT_EQ(cand.worst_xi, worst) << "m=" << cand.m;
  }
}

TEST(OptimalM, BestPicksAreConsistent) {
  const BranchingStudy study = compare_branching_degrees(256, 6);
  std::int64_t best_worst = INT64_MAX;
  for (const auto& cand : study.candidates) {
    best_worst = std::min(best_worst, cand.worst_xi);
  }
  for (const auto& cand : study.candidates) {
    if (cand.m == study.best_m_worst_case) {
      EXPECT_EQ(cand.worst_xi, best_worst);
    }
  }
}

TEST(OptimalM, RejectsDegenerateInputs) {
  EXPECT_THROW(compare_branching_degrees(1, 4), util::ContractViolation);
  EXPECT_THROW(compare_branching_degrees(64, 1), util::ContractViolation);
}

}  // namespace
}  // namespace hrtdm::analysis
