// Baseline MAC protocols (BEB, DCR, TDMA) and the comparative runner.
#include <gtest/gtest.h>

#include "analysis/xi.hpp"
#include "baseline/beb_station.hpp"
#include "baseline/dcr_station.hpp"
#include "baseline/runner.hpp"
#include "baseline/tdma_station.hpp"
#include "core/ddcr_config.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::baseline {
namespace {

using core::MetricsCollector;
using sim::Simulator;
using traffic::Message;
using util::Duration;
using util::SimTime;

Message make_msg(std::int64_t uid, int source, std::int64_t arrival_ns,
                 std::int64_t deadline_rel_ns, std::int64_t bits = 100) {
  Message msg;
  msg.uid = uid;
  msg.class_id = source;
  msg.source = source;
  msg.l_bits = bits;
  msg.arrival = SimTime::from_ns(arrival_ns);
  msg.absolute_deadline = SimTime::from_ns(arrival_ns + deadline_rel_ns);
  return msg;
}

net::PhyConfig fast_phy() {
  net::PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  return phy;
}

TEST(BebStation, ResolvesContentionEventually) {
  Simulator sim;
  net::BroadcastChannel channel(sim, fast_phy());
  BebStation a(0, {}, 1);
  BebStation b(1, {}, 2);
  channel.attach(a);
  channel.attach(b);
  MetricsCollector metrics;
  channel.add_observer(metrics);
  a.enqueue(make_msg(1, 0, 0, 1'000'000));
  b.enqueue(make_msg(2, 1, 0, 1'000'000));
  channel.start();
  sim.run_until(SimTime::from_ns(1'000'000));
  EXPECT_EQ(metrics.log().size(), 2u);
  EXPECT_TRUE(a.queue().empty());
  EXPECT_TRUE(b.queue().empty());
  EXPECT_GE(channel.stats().collision_slots, 1);
}

TEST(BebStation, DropsAfterMaxAttempts) {
  Simulator sim;
  net::BroadcastChannel channel(sim, fast_phy());
  BebStation::Config config;
  config.backoff_cap = 1;  // window stays {0, 1}: collisions keep happening
  config.max_attempts = 4;
  BebStation a(0, config, 7);
  BebStation b(1, config, 7);  // same seed -> identical backoff draws
  channel.attach(a);
  channel.attach(b);
  a.enqueue(make_msg(1, 0, 0, 1'000'000));
  b.enqueue(make_msg(2, 1, 0, 1'000'000));
  channel.start();
  sim.run_until(SimTime::from_ns(1'000'000));
  // Identical seeds force identical backoffs, so every retry collides and
  // both stations eventually give up.
  EXPECT_EQ(a.dropped() + b.dropped(), 2);
  EXPECT_TRUE(a.queue().empty());
  EXPECT_TRUE(b.queue().empty());
}

TEST(DcrStation, ResolvesDeterministicallyInIndexOrder) {
  Simulator sim;
  net::BroadcastChannel channel(sim, fast_phy());
  DcrStation::Config config;
  config.m = 2;
  config.q = 8;
  DcrStation a(0, config, {1});
  DcrStation b(1, config, {6});
  channel.attach(a);
  channel.attach(b);
  MetricsCollector metrics;
  channel.add_observer(metrics);
  // b has the earlier deadline but the higher static index: DCR (no time
  // tree) serves index order, deliberately ignoring deadlines.
  a.enqueue(make_msg(1, 0, 0, 500'000));
  b.enqueue(make_msg(2, 1, 0, 5'000));
  channel.start();
  sim.run_until(SimTime::from_ns(100'000));
  ASSERT_EQ(metrics.log().size(), 2u);
  EXPECT_EQ(metrics.log()[0].uid, 1);  // index 1 before index 6
  EXPECT_EQ(metrics.log()[1].uid, 2);
}

TEST(DcrStation, SearchCostBoundedByXi) {
  // A z-way collision resolves within xi(z, q) search slots.
  Simulator sim;
  net::BroadcastChannel channel(sim, fast_phy());
  DcrStation::Config config;
  config.m = 2;
  config.q = 16;
  const auto indices = core::DdcrConfig::one_index_per_source(4, 16);
  std::vector<std::unique_ptr<DcrStation>> stations;
  for (int s = 0; s < 4; ++s) {
    stations.push_back(std::make_unique<DcrStation>(
        s, config, indices[static_cast<std::size_t>(s)]));
    channel.attach(*stations.back());
    stations.back()->enqueue(make_msg(s, s, 0, 1'000'000));
  }
  MetricsCollector metrics;
  channel.add_observer(metrics);
  channel.start();
  sim.run_until(SimTime::from_ns(1'000'000));
  EXPECT_EQ(metrics.log().size(), 4u);
  const auto summary = metrics.summarize();
  // xi(4, 16) with m=2 bounds the search overhead of the resolution; the
  // collision-slot count (which contains no trailing idle) must obey it.
  const std::int64_t xi_bound = hrtdm::analysis::xi_closed(2, 16, 4);
  EXPECT_LE(summary.collision_slots, xi_bound);
}

TEST(TdmaStation, OwnersTransmitInTheirSlotsOnly) {
  Simulator sim;
  net::BroadcastChannel channel(sim, fast_phy());
  TdmaStation a(0, 3);
  TdmaStation b(1, 3);
  TdmaStation c(2, 3);
  channel.attach(a);
  channel.attach(b);
  channel.attach(c);
  MetricsCollector metrics;
  channel.add_observer(metrics);
  b.enqueue(make_msg(1, 1, 0, 1'000'000));
  c.enqueue(make_msg(2, 2, 0, 1'000'000));
  channel.start();
  sim.run_until(SimTime::from_ns(10'000));
  ASSERT_GE(metrics.log().size(), 2u);
  EXPECT_EQ(metrics.log()[0].uid, 1);  // slot 1 belongs to station 1
  EXPECT_EQ(metrics.log()[1].uid, 2);
  EXPECT_EQ(channel.stats().collision_slots, 0);
}

TEST(Runner, AllProtocolsDeliverALightWorkload) {
  const traffic::Workload wl = traffic::quickstart(4);
  ProtocolRunOptions options;
  options.base.arrival_horizon = SimTime::from_ns(20'000'000);
  options.base.drain_cap = SimTime::from_ns(100'000'000);
  for (const Protocol protocol :
       {Protocol::kDdcr, Protocol::kBeb, Protocol::kDcr, Protocol::kTdma}) {
    const ProtocolRunResult result = run_protocol(protocol, wl, options);
    EXPECT_EQ(result.undelivered, 0) << protocol_name(protocol);
    EXPECT_GT(result.generated, 0) << protocol_name(protocol);
    EXPECT_EQ(result.metrics.delivered, result.generated)
        << protocol_name(protocol);
    EXPECT_EQ(result.miss_ratio(), 0.0) << protocol_name(protocol);
  }
}

TEST(Runner, DdcrBeatsBebOnDeadlineMissesUnderStress) {
  // The paper's motivation: deterministic deadline-driven resolution keeps
  // hard deadlines where randomized backoff cannot. Stress with bursty
  // tight-deadline traffic and compare miss ratios.
  traffic::Workload wl = traffic::stock_exchange(12).scaled_load(1.5);
  ProtocolRunOptions options;
  options.base.arrival_horizon = SimTime::from_ns(50'000'000);
  options.base.drain_cap = SimTime::from_ns(300'000'000);
  options.base.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  const auto ddcr = run_protocol(Protocol::kDdcr, wl, options);
  const auto beb = run_protocol(Protocol::kBeb, wl, options);
  EXPECT_LE(ddcr.miss_ratio(), beb.miss_ratio());
}

TEST(Runner, MissRatioAccountsUndelivered) {
  ProtocolRunResult result;
  result.generated = 10;
  result.metrics.misses = 1;
  result.undelivered = 2;
  result.dropped = 1;
  EXPECT_NEAR(result.miss_ratio(), 0.4, 1e-12);
}

TEST(Runner, ProtocolNames) {
  EXPECT_EQ(protocol_name(Protocol::kDdcr), "CSMA/DDCR");
  EXPECT_EQ(protocol_name(Protocol::kBeb), "CSMA-CD/BEB");
  EXPECT_EQ(protocol_name(Protocol::kDcr), "CSMA/DCR");
  EXPECT_EQ(protocol_name(Protocol::kTdma), "TDMA");
}

}  // namespace
}  // namespace hrtdm::baseline
