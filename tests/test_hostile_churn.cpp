// Membership churn: stations mass-join and mass-leave mid-run
// (fault::ChurnPlan driving DdcrStation::go_offline / bring_online), with
// every join re-entering through the PR 1 quiet-period rejoin path. Also
// covers the construction-time DdcrRunOptions validation (churn requires
// require_rejoinable) and the RNG axis-splitting contract: enabling the
// churn/drift axes must not perturb the legacy fault streams of pinned
// campaigns.
#include <gtest/gtest.h>

#include <set>

#include "core/ddcr_network.hpp"
#include "fault/campaign.hpp"
#include "fault/churn_plan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {
namespace {

using core::DdcrRunOptions;
using core::DdcrTestbed;
using util::Duration;

// --- ChurnPlan units ------------------------------------------------------

TEST(ChurnPlanSuite, ValidatesPairingAndOrder) {
  ChurnPlan plan;
  plan.events.push_back({10, 0, ChurnKind::kLeave});
  // Leave without a matching join: the plan would strand the station
  // offline forever, making reconvergence unreachable.
  EXPECT_THROW(plan.validate(2), util::ContractViolation);

  plan.events.push_back({20, 0, ChurnKind::kJoin});
  plan.validate(2);
  EXPECT_EQ(plan.first_observation(), 10);
  EXPECT_EQ(plan.last_observation(), 20);

  ChurnPlan unsorted;
  unsorted.events.push_back({20, 0, ChurnKind::kLeave});
  unsorted.events.push_back({10, 1, ChurnKind::kLeave});
  EXPECT_THROW(unsorted.validate(2), util::ContractViolation);

  ChurnPlan join_first;
  join_first.events.push_back({5, 1, ChurnKind::kJoin});
  EXPECT_THROW(join_first.validate(2), util::ContractViolation);

  ChurnPlan out_of_range;
  out_of_range.events.push_back({5, 7, ChurnKind::kLeave});
  out_of_range.events.push_back({9, 7, ChurnKind::kJoin});
  EXPECT_THROW(out_of_range.validate(2), util::ContractViolation);
}

TEST(ChurnPlanSuite, PoissonPlansAreValidAndDeterministic) {
  const auto a = ChurnPlan::poisson(5, 300, 12, 0xC0FFEEULL);
  const auto b = ChurnPlan::poisson(5, 300, 12, 0xC0FFEEULL);
  a.validate(5);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at_observation, b.events[i].at_observation);
    EXPECT_EQ(a.events[i].station, b.events[i].station);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }
  // A different seed reshuffles the plan.
  const auto c = ChurnPlan::poisson(5, 300, 12, 0xBEEFULL);
  c.validate(5);
  EXPECT_TRUE(a.events.size() != c.events.size() ||
              a.events.front().at_observation !=
                  c.events.front().at_observation ||
              a.events.front().station != c.events.front().station);
}

TEST(ChurnPlanSuite, AdversarialBurstLeavesAllButSurvivors) {
  const auto plan = ChurnPlan::adversarial_burst(5, 100, 64, /*survivors=*/2);
  plan.validate(5);
  std::set<int> leavers;
  std::int64_t joins = 0;
  for (const ChurnEvent& e : plan.events) {
    if (e.kind == ChurnKind::kLeave) {
      EXPECT_EQ(e.at_observation, 100);
      EXPECT_GE(e.station, 2);  // survivors are the lowest ids
      leavers.insert(e.station);
    } else {
      EXPECT_EQ(e.at_observation, 164);
      ++joins;
    }
  }
  EXPECT_EQ(leavers.size(), 3u);
  EXPECT_EQ(joins, 3);
}

// --- construction-time validation (satellite 2) ---------------------------

TEST(ChurnOptions, ChurnWithoutRejoinableIsRejectedAtConstruction) {
  DdcrRunOptions options;
  options.churn_events = 4;
  options.require_rejoinable = false;
  EXPECT_THROW(DdcrTestbed(3, options), util::ContractViolation);

  options.require_rejoinable = true;
  options.ddcr.max_empty_tts = 2;  // bounded silence streaks: rejoinable
  DdcrTestbed bed(3, options);     // now constructs fine
  EXPECT_EQ(bed.station_count(), 3);

  DdcrRunOptions negative;
  negative.churn_events = -1;
  EXPECT_THROW(DdcrTestbed(3, negative), util::ContractViolation);
}

// --- churn campaigns ------------------------------------------------------

TEST(ChurnCampaign, PoissonChurnCampaignsSurviveAndReconverge) {
  std::int64_t total_leaves = 0;
  std::int64_t total_joins = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 4;
    options.churn_events = 6;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << " safety=" << result.safety_ok
        << " drained=" << result.drained
        << " reconverged=" << result.reconverged
        << " leaves=" << result.faults.churn_leaves
        << " joins=" << result.faults.churn_joins;
    EXPECT_EQ(result.faults.churn_leaves, result.faults.churn_joins)
        << "seed " << seed << ": plans are fully paired";
    total_leaves += result.faults.churn_leaves;
    total_joins += result.faults.churn_joins;
  }
  EXPECT_GT(total_leaves, 0);
  EXPECT_EQ(total_leaves, total_joins);
}

TEST(ChurnCampaign, AdversarialMassDepartureAndThunderingRejoin) {
  // All stations but one leave at once and rejoin at once — the worst case
  // for the quiet-period certificate (every joiner needs the same quiet
  // streak simultaneously).
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 5;
    options.churn_events = 1;  // enables the axis
    options.churn_adversarial = true;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << " safety=" << result.safety_ok
        << " drained=" << result.drained
        << " reconverged=" << result.reconverged;
    EXPECT_EQ(result.faults.churn_leaves, 4) << "seed " << seed;
    EXPECT_EQ(result.faults.churn_joins, 4) << "seed " << seed;
  }
}

TEST(ChurnCampaign, ChurnPlusCrashAndNoiseMixtures) {
  // The axes compose: scripted crashes and receive faults keep firing while
  // membership churns underneath them (a crash directive aimed at an
  // offline station is skipped — a powered-off station cannot crash).
  for (std::uint64_t seed = 60; seed < 66; ++seed) {
    CampaignOptions options;
    options.seed = seed;
    options.stations = 5;
    options.crashes = 1;
    options.asymmetric_bursts = 2;
    options.churn_events = 5;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << " safety=" << result.safety_ok
        << " drained=" << result.drained
        << " reconverged=" << result.reconverged;
  }
}

// --- RNG axis isolation (satellite 1) -------------------------------------

TEST(AxisSeeds, AxesAreDistinctAndDecorrelatedFromTheLegacyStream) {
  for (const std::uint64_t base : {1ULL, 7ULL, 0xDEADBEEFULL}) {
    const std::uint64_t churn = axis_seed(base, CampaignAxis::kChurn);
    const std::uint64_t drift = axis_seed(base, CampaignAxis::kDrift);
    const std::uint64_t scramble = axis_seed(base, CampaignAxis::kScramble);
    EXPECT_NE(churn, drift);
    EXPECT_NE(churn, scramble);
    EXPECT_NE(drift, scramble);
    // The legacy campaign stream (plan seed = draw 1, injector seed =
    // draw 2 of SplitMix64(seed ^ 0xFA17)) must not collide with any axis.
    util::SplitMix64 legacy(base ^ 0xFA17ULL);
    const std::uint64_t plan_seed = legacy.next();
    const std::uint64_t injector_seed = legacy.next();
    for (const std::uint64_t axis : {churn, drift, scramble}) {
      EXPECT_NE(axis, plan_seed);
      EXPECT_NE(axis, injector_seed);
    }
  }
}

TEST(AxisSeeds, EnablingChurnDoesNotPerturbTheScriptedFaultSchedule) {
  // The regression satellite 1 exists for: a campaign's scripted fault plan
  // (crash directives, fault windows) derives from the legacy stream only.
  // Turning a new axis on must leave that schedule bit-identical — every
  // scripted crash still fires, whether or not churn runs underneath.
  CampaignOptions base;
  base.seed = 11;
  base.stations = 4;
  base.crashes = 2;
  base.symmetric_bursts = 1;
  base.asymmetric_bursts = 2;
  const CampaignResult plain = run_campaign(base);

  CampaignOptions churned = base;
  churned.churn_events = 5;
  const CampaignResult with_churn = run_campaign(churned);

  EXPECT_EQ(plain.faults.crashes_fired, with_churn.faults.crashes_fired);
  EXPECT_GT(with_churn.faults.churn_leaves, 0);
  EXPECT_EQ(plain.faults.churn_leaves, 0);
  EXPECT_TRUE(plain.passed());
  EXPECT_TRUE(with_churn.passed());
}

}  // namespace
}  // namespace hrtdm::fault
