#!/usr/bin/env python3
"""Compare a BENCH_micro.json run against a committed baseline.

Warn-only by default: regressions are reported (and annotated in GitHub
Actions logs via ::warning::) but the exit code stays 0, because shared CI
runners are far too noisy to gate merges on wall-clock numbers. Pass
--strict to turn regressions into a non-zero exit for local A/B runs on a
quiet machine.

Rows are matched by benchmark name; times are normalized to nanoseconds
using each row's time_unit. A row is flagged when

    current_real_time > baseline_real_time * tolerance

with --tolerance defaulting to 1.5 (50% headroom). New and vanished
benchmarks are listed informationally and never flagged.

Usage:
    scripts/bench_compare.py bench/baselines/micro.json BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path: str) -> dict[str, float]:
    """Maps benchmark name -> real_time in nanoseconds."""
    with open(path, "r", encoding="utf-8") as fh:
        artifact = json.load(fh)
    rows = {}
    for row in artifact.get("rows", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        name = row.get("name")
        if name is None or "real_time" not in row:
            continue
        scale = _UNIT_NS.get(row.get("time_unit", "ns"))
        if scale is None:
            continue
        rows[name] = float(row["real_time"]) * scale
    return rows


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument("current", help="freshly produced artifact")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="flag when current > baseline * TOLERANCE "
                             "(default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warn-only")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    in_actions = os.environ.get("GITHUB_ACTIONS") == "true"

    regressions = []
    width = max((len(name) for name in baseline | current), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<{width}}  {fmt_ns(baseline[name]):>12}  "
                  f"{'(missing)':>12}")
            continue
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        flag = ""
        if ratio > args.tolerance:
            flag = "  <-- slower than tolerance"
            regressions.append((name, ratio))
        print(f"{name:<{width}}  {fmt_ns(baseline[name]):>12}  "
              f"{fmt_ns(current[name]):>12}  {ratio:5.2f}x{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  {fmt_ns(current[name]):>12}")

    if regressions:
        summary = ", ".join(f"{name} ({ratio:.2f}x)"
                            for name, ratio in regressions)
        message = (f"{len(regressions)} benchmark(s) exceeded the "
                   f"{args.tolerance:.2f}x tolerance: {summary}")
        if in_actions:
            print(f"::warning title=bench_compare::{message}")
        else:
            print(f"WARNING: {message}", file=sys.stderr)
        if args.strict:
            return 1
    else:
        print(f"all {len(baseline)} baseline benchmarks within "
              f"{args.tolerance:.2f}x tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
