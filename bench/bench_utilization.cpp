// E16 — Channel utilisation of tree collision resolution (section 3.1's
// motivation: "tree protocols achieve channel utilization ratios that are
// very close to theoretical upper bounds").
//
// Part 1: worst-case efficiency eta(k) = k T_tx / (k T_tx + (xi+1) x) per
// branching degree and frame size on Gigabit Ethernet; the per-message
// overhead falls toward its saturation floor 1/(m-1) slots.
// Part 2: simulated utilisation of a saturated CSMA/DDCR network against
// the analytic worst case (the simulation can only do better).
#include <cstdio>

#include "analysis/efficiency.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;

double simulated_saturated_utilization(int z, std::int64_t l_bits) {
  // Every source constantly backlogged over the run.
  traffic::Workload wl;
  wl.name = "saturated";
  for (int s = 0; s < z; ++s) {
    traffic::SourceSpec src;
    src.id = s;
    src.name = "s" + std::to_string(s);
    traffic::MessageClass cls;
    cls.id = s;
    cls.name = "flood-" + std::to_string(s);
    cls.source = s;
    cls.l_bits = l_bits;
    cls.d = util::Duration::milliseconds(400);
    cls.a = 4;
    // Window sized so offered load ~2x what the channel can carry.
    cls.w = util::Duration::nanoseconds(
        static_cast<std::int64_t>(4.0 * static_cast<double>(l_bits) /
                                  2.0 * static_cast<double>(z)));
    src.classes.push_back(cls);
    wl.sources.push_back(src);
  }

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(20'000'000);
  options.drain_cap = sim::SimTime::from_ns(20'000'000);  // stay saturated
  options.conformance_check = bench::conformance_requested();
  const auto result = core::run_ddcr(wl, options);
  bench::require_conformance(result.conformance, "utilization");
  return result.utilization;
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("utilization");
  std::printf("%s", util::banner(
      "E16: worst-case channel efficiency eta(k) on Gigabit Ethernet "
      "(x = 4.096 us)").c_str());
  {
    util::TextTable out({"k", "overhead m=2 (slots/msg)", "overhead m=4",
                         "eta m=2, 1500B", "eta m=4, 1500B",
                         "eta m=4, 64B"});
    const double slot = 4.096e-6;
    const double tx_1500 = 1500 * 8 / 1e9;
    const double tx_64 = 64 * 8 / 1e9;
    for (const std::int64_t k : {2LL, 4LL, 8LL, 16LL, 32LL, 64LL}) {
      out.add_row(
          {util::TextTable::cell(k),
           util::TextTable::cell(
               analysis::per_message_overhead_slots(2, 64, k), 2),
           util::TextTable::cell(
               analysis::per_message_overhead_slots(4, 64, k), 2),
           util::TextTable::cell(
               analysis::worst_case_efficiency(2, 64, k, tx_1500, slot), 3),
           util::TextTable::cell(
               analysis::worst_case_efficiency(4, 64, k, tx_1500, slot), 3),
           util::TextTable::cell(
               analysis::worst_case_efficiency(4, 64, k, tx_64, slot), 3)});
    }
    std::printf("%s", out.str().c_str());
    std::printf("saturation floor: 1/(m-1) slots/msg = %.3f (m=2), %.3f "
                "(m=4)\n",
                analysis::saturated_overhead_slots(2),
                analysis::saturated_overhead_slots(4));
  }

  std::printf("%s", util::banner(
      "E16: simulated utilisation of a saturated CSMA/DDCR segment").c_str());
  {
    util::TextTable out({"z", "frame", "measured utilisation",
                         "analytic worst case"});
    for (const int z : {4, 16}) {
      for (const std::int64_t bytes : {64LL, 1500LL}) {
        const double measured =
            simulated_saturated_utilization(z, bytes * 8);
        // The channel pads short frames to one slot, so the effective
        // transmission time is max(l'/psi, x).
        const double overhead_bits = 160.0;
        const double tx = std::max(
            (static_cast<double>(bytes) * 8 + overhead_bits) / 1e9,
            4.096e-6);
        const double analytic = analysis::worst_case_efficiency(
            4, 64, z, tx, 4.096e-6);
        out.add_row({util::TextTable::cell(static_cast<std::int64_t>(z)),
                     std::to_string(bytes) + "B",
                     util::TextTable::cell(measured, 3),
                     util::TextTable::cell(analytic, 3)});
        auto& row = report.add_row();
        row["z"] = bench::Json(z);
        row["frame_bytes"] = bench::Json(bytes);
        row["measured_utilization"] = bench::Json(measured);
        row["analytic_worst_case"] = bench::Json(analytic);
      }
    }
    std::printf("%s", out.str().c_str());
    std::printf("\n(measured >= analytic is expected: the worst case "
                "assumes maximally adversarial leaf placements on every "
                "epoch)\n");
  }
  report.write();
  return 0;
}
