// E4 — The paper's special values and structural identities:
//   Eq. 5: xi(2, t)      = m log_m t - 1
//   Eq. 6: xi(2t/m, t)   = (t-1)/(m-1) + (t - 2t/m)
//   Eq. 7: xi(t, t)      = (t-1)/(m-1)
//   Eq. 8: xi(2p+2, t) - xi(2p, t) = m(log_m t - floor(log_m m p)) - 2
//   Eq. 15: xi(k, t)     = (mt-1)/(m-1) - k     on [2t/m, t]
// Each block prints formula vs exact DP values.
#include <cstdio>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("eq_specials");
  bool identities_ok = true;

  std::printf("%s",
              util::banner("E4: special values Eq.5/6/7 per shape").c_str());
  {
    util::TextTable out({"m", "t", "xi(2,t)", "Eq.5", "xi(2t/m,t)", "Eq.6",
                         "xi(t,t)", "Eq.7"});
    struct Shape { int m; int n; };
    for (const auto& [m, n] :
         {Shape{2, 6}, {2, 10}, {3, 4}, {4, 3}, {4, 5}, {5, 3}, {8, 2}}) {
      analysis::XiExactTable table(m, n);
      const std::int64_t t = table.t();
      identities_ok = identities_ok &&
                      table.xi(2) == analysis::xi_two(m, t) &&
                      table.xi(2 * t / m) ==
                          analysis::xi_two_t_over_m(m, t) &&
                      table.xi(t) == analysis::xi_full(m, t);
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(t),
                   util::TextTable::cell(table.xi(2)),
                   util::TextTable::cell(analysis::xi_two(m, t)),
                   util::TextTable::cell(table.xi(2 * t / m)),
                   util::TextTable::cell(analysis::xi_two_t_over_m(m, t)),
                   util::TextTable::cell(table.xi(t)),
                   util::TextTable::cell(analysis::xi_full(m, t))});
      auto& row = report.add_row();
      row["m"] = bench::Json(m);
      row["t"] = bench::Json(t);
      row["xi_2"] = bench::Json(table.xi(2));
      row["xi_2t_over_m"] = bench::Json(table.xi(2 * t / m));
      row["xi_t"] = bench::Json(table.xi(t));
    }
    std::printf("%s", out.str().c_str());
  }

  std::printf("%s", util::banner(
      "E4: discrete derivative Eq.8, m = 4, t = 256 (sampled p)").c_str());
  {
    analysis::XiExactTable table(4, 4);
    const std::int64_t t = table.t();
    util::TextTable out({"p", "xi(2p+2)-xi(2p) measured", "Eq.8"});
    for (std::int64_t p = 1; p <= t / 2 - 1; p = p < 8 ? p + 1 : p * 2) {
      out.add_row({util::TextTable::cell(p),
                   util::TextTable::cell(table.xi(2 * p + 2) -
                                         table.xi(2 * p)),
                   util::TextTable::cell(
                       analysis::xi_even_derivative(4, t, p))});
    }
    std::printf("%s", out.str().c_str());
  }

  std::printf("%s", util::banner(
      "E4: linear tail Eq.15, m = 4, t = 64, k in [32, 64]").c_str());
  {
    analysis::XiExactTable table(4, 3);
    util::TextTable out({"k", "xi exact", "Eq.15 line"});
    for (std::int64_t k = 32; k <= 64; k += 4) {
      out.add_row({util::TextTable::cell(k),
                   util::TextTable::cell(table.xi(k)),
                   util::TextTable::cell(
                       analysis::xi_linear_tail(4, 64, k))});
    }
    std::printf("%s", out.str().c_str());
  }
  report.metric("eq567_identities_ok", identities_ok);
  report.write();
  return 0;
}
