// E2 — Paper Fig. 2: "Worst-case search times for 64-leaf balanced binary
// and quaternary trees".
//
// Regenerates both series and verifies the figure's headline observation:
// the quaternary tree's xi(k, 64) is <= the binary tree's for every k in
// [2, 64] (strictly smaller somewhere), i.e. better algorithmic efficiency
// at equal leaf count.
#include <cstdio>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("fig2_binary_vs_quaternary");
  analysis::XiExactTable binary(2, 6);      // 2^6  = 64 leaves
  analysis::XiExactTable quaternary(4, 3);  // 4^3  = 64 leaves
  report.config("leaves", static_cast<std::int64_t>(64));

  std::printf("%s", util::banner(
      "E2 / Fig. 2: 64-leaf binary vs quaternary worst-case search times")
      .c_str());
  util::TextTable out({"k", "xi m=2", "xi m=4", "m=4 advantage"});
  bool dominated_everywhere = true;
  bool strict_somewhere = false;
  for (std::int64_t k = 0; k <= 64; ++k) {
    const std::int64_t b = binary.xi(k);
    const std::int64_t q = quaternary.xi(k);
    out.add_row({util::TextTable::cell(k), util::TextTable::cell(b),
                 util::TextTable::cell(q), util::TextTable::cell(b - q)});
    if (k >= 2) {
      dominated_everywhere = dominated_everywhere && q <= b;
      strict_somewhere = strict_somewhere || q < b;
    }
  }
  std::printf("%s", out.str().c_str());
  std::printf("\npaper claim `4^3-ary <= 2^6-ary for all k in [2,64]`: %s "
              "(strict somewhere: %s)\n",
              dominated_everywhere ? "CONFIRMED" : "VIOLATED",
              strict_somewhere ? "yes" : "no");
  report.metric("quaternary_dominates", dominated_everywhere);
  report.metric("strict_somewhere", strict_somewhere);
  report.write();
  return dominated_everywhere ? 0 : 1;
}
