// E11 — The compressed-time trade-off (section 3.2): "theta(c) determines a
// tradeoff between reducing potential channel idleness and potentially
// increasing the number of deadline inversions (or vice-versa)".
//
// Sweep theta_factor with a workload whose deadlines straddle the
// scheduling horizon, and report channel idleness, compressions, deadline
// inversions and latency.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("compressed_time");
  const bool smoke = bench::BenchReport::smoke();

  // Deliberately under-dimensioned horizon: F * c = 64 * 100 us = 6.4 ms
  // while bulk deadlines reach 20 ms, so compressed time has real work.
  const traffic::Workload wl = traffic::quickstart(6);

  std::printf("%s", util::banner(
      "E11: compressed-time ablation (horizon 6.4 ms < max deadline 20 ms)")
      .c_str());
  util::TextTable out({"theta/c", "delivered", "misses", "idle slots",
                       "compressions", "epochs", "inversions",
                       "mean lat us", "worst lat us"});
  for (const double theta : {0.0, 0.25, 1.0, 4.0, 16.0, 64.0}) {
    core::DdcrRunOptions options;
    options.ddcr.class_width_c = util::Duration::microseconds(100);
    options.ddcr.alpha = util::Duration::microseconds(200);
    options.ddcr.theta_factor = theta;
    options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
    options.arrival_horizon =
        sim::SimTime::from_ns(smoke ? 10'000'000 : 60'000'000);
    options.drain_cap =
        sim::SimTime::from_ns(smoke ? 60'000'000 : 400'000'000);
    options.conformance_check = bench::conformance_requested();
    const auto result = core::run_ddcr(wl, options);
    bench::require_conformance(result.conformance, "compressed_time");
    std::int64_t compressions = 0;
    std::int64_t epochs = 0;
    for (const auto& station : result.per_station) {
      compressions += station.compressions;
      epochs += station.epochs;
    }
    out.add_row({util::TextTable::cell(theta, 2),
                 util::TextTable::cell(result.metrics.delivered),
                 util::TextTable::cell(result.metrics.misses),
                 util::TextTable::cell(result.channel.silence_slots),
                 util::TextTable::cell(compressions /
                                       static_cast<std::int64_t>(
                                           result.per_station.size())),
                 util::TextTable::cell(epochs /
                                       static_cast<std::int64_t>(
                                           result.per_station.size())),
                 util::TextTable::cell(result.metrics.deadline_inversions),
                 util::TextTable::cell(result.metrics.mean_latency_s * 1e6, 1),
                 util::TextTable::cell(result.metrics.worst_latency_s * 1e6,
                                       1)});
    auto& row = report.add_row();
    row["theta_factor"] = bench::Json(theta);
    row["delivered"] = bench::Json(result.metrics.delivered);
    row["misses"] = bench::Json(result.metrics.misses);
    row["idle_slots"] = bench::Json(result.channel.silence_slots);
    row["inversions"] = bench::Json(result.metrics.deadline_inversions);
    row["worst_latency_us"] =
        bench::Json(result.metrics.worst_latency_s * 1e6);
  }
  std::printf("%s", out.str().c_str());
  std::printf(
      "\nreading: theta = 0 leaves far-deadline messages waiting on "
      "physical time (idle slots, high worst latency); large theta pulls "
      "them in early (fewer idle slots, more inversions as classes "
      "compress).\n");
  report.write();
  return 0;
}
