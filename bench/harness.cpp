#include "bench/harness.hpp"

#include <sys/stat.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "check/conformance.hpp"
#include "core/ddcr_network.hpp"
#include "core/ddcr_station.hpp"
#include "net/channel.hpp"
#include "obs/event_tracer.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hrtdm::bench {

// --- Json accessors ------------------------------------------------------

bool Json::as_bool() const {
  HRTDM_EXPECT(kind_ == Kind::kBool, "Json value is not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  HRTDM_EXPECT(kind_ == Kind::kInt, "Json value is not an integer");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  HRTDM_EXPECT(kind_ == Kind::kDouble, "Json value is not numeric");
  return double_;
}

const std::string& Json::as_string() const {
  HRTDM_EXPECT(kind_ == Kind::kString, "Json value is not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  HRTDM_EXPECT(kind_ == Kind::kArray, "Json value is not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  HRTDM_EXPECT(kind_ == Kind::kObject, "Json value is not an object");
  return object_;
}

Json::Array& Json::as_array() {
  HRTDM_EXPECT(kind_ == Kind::kArray, "Json value is not an array");
  return array_;
}

Json::Object& Json::as_object() {
  HRTDM_EXPECT(kind_ == Kind::kObject, "Json value is not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  HRTDM_EXPECT(it != obj.end(), "Json object has no member '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  const Object& obj = as_object();
  return obj.find(key) != obj.end();
}

// --- Json writer ---------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kInt: {
      out += std::to_string(value.as_int());
      return;
    }
    case Json::Kind::kDouble: {
      const double d = value.as_double();
      HRTDM_EXPECT(d == d, "cannot serialize NaN to JSON");
      char buf[40];
      // %.17g round-trips every finite double exactly.
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      std::string text = buf;
      // Keep the value typed as a number on re-parse: ensure a decimal
      // point or exponent survives formatting of integral doubles.
      if (text.find_first_of(".eE") == std::string::npos &&
          text.find_first_of("0123456789") != std::string::npos) {
        text += ".0";
      }
      HRTDM_EXPECT(text.find("inf") == std::string::npos,
                   "cannot serialize infinity to JSON");
      out += text;
      return;
    }
    case Json::Kind::kString:
      dump_string(value.as_string(), out);
      return;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : value.as_array()) {
        if (!first) {
          out += ',';
        }
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : value.as_object()) {
        if (!first) {
          out += ',';
        }
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(item, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// --- Json parser ---------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    const Json value = parse_value();
    skip_ws();
    expect(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void expect(bool cond, const std::string& message) {
    HRTDM_EXPECT(cond, "JSON parse error at offset " + std::to_string(pos_) +
                           ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    expect(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      return Json(parse_string());
    }
    if (consume_word("true")) {
      return Json(true);
    }
    if (consume_word("false")) {
      return Json(false);
    }
    if (consume_word("null")) {
      return Json();
    }
    return parse_number();
  }

  Json parse_object() {
    consume('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) {
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      expect(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(consume(':'), "expected ':' after object key");
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) {
        continue;
      }
      expect(consume('}'), "expected ',' or '}' in object");
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) {
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) {
        continue;
      }
      expect(consume(']'), "expected ',' or ']' in array");
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect(consume('"'), "expected string");
    std::string out;
    for (;;) {
      expect(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      expect(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          expect(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              expect(false, "bad hex digit in \\u escape");
            }
          }
          expect(code < 0x80, "\\u escape beyond ASCII is not supported");
          out += static_cast<char>(code);
          break;
        }
        default:
          expect(false, "unknown escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    expect(!token.empty() && token != "-", "expected a number");
    try {
      if (is_double) {
        return Json(std::stod(token));
      }
      return Json(static_cast<std::int64_t>(std::stoll(token)));
    } catch (const std::exception&) {
      expect(false, "unparseable number '" + token + "'");
    }
    return Json();  // unreachable
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

// --- BenchReport ---------------------------------------------------------

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  HRTDM_EXPECT(!name_.empty(), "bench report needs a name");
}

void BenchReport::config(const std::string& key, Json value) {
  config_[key] = std::move(value);
}

void BenchReport::metric(const std::string& key, Json value) {
  metrics_[key] = std::move(value);
}

Json::Object& BenchReport::add_row() {
  rows_.emplace_back(Json::Object{});
  return rows_.back().as_object();
}

void BenchReport::set_threads(int threads) {
  HRTDM_EXPECT(threads >= 1, "thread count must be >= 1");
  threads_ = threads;
}

Json BenchReport::to_json() const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Json::Object root;
  root["schema"] = Json(kSchema);
  root["name"] = Json(name_);
  root["threads"] = Json(threads_);
  root["smoke"] = Json(smoke());
  root["wall_clock_s"] = Json(wall);
  root["config"] = Json(config_);
  root["metrics"] = Json(metrics_);
  root["rows"] = Json(rows_);
  root["obs"] = obs_section();
  return Json(std::move(root));
}

std::string BenchReport::write() const {
  const std::string path = output_dir() + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  HRTDM_EXPECT(out.good(), "cannot open bench artifact '" + path + "'");
  out << to_json().dump() << "\n";
  out.close();
  HRTDM_EXPECT(out.good(), "failed writing bench artifact '" + path + "'");
  std::printf("[bench] wrote %s\n", path.c_str());
  // Flush the Perfetto trace alongside the artifact whenever tracing was
  // requested (HRTDM_TRACE_OUT / --trace-out): the report write marks the
  // natural end of a bench's instrumented work.
  const std::string trace = obs::write_global_trace();
  if (!trace.empty()) {
    std::printf("[bench] wrote %s (open at https://ui.perfetto.dev)\n",
                trace.c_str());
  }
  return path;
}

bool BenchReport::smoke() {
  const char* env = std::getenv("HRTDM_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

namespace {

bool exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string BenchReport::output_dir() {
  if (const char* env = std::getenv("HRTDM_BENCH_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  // Walk up from the working directory to the repo root, recognised by the
  // markers a build tree never contains.
  std::string dir = ".";
  for (int depth = 0; depth < 12; ++depth) {
    if (exists(dir + "/ROADMAP.md") || exists(dir + "/.git")) {
      return dir;
    }
    dir += "/..";
    if (!exists(dir)) {
      break;
    }
  }
  return ".";
}

// --- observability bridge -------------------------------------------------

namespace {

Json::Array int_array(const std::vector<std::int64_t>& values) {
  Json::Array out;
  out.reserve(values.size());
  for (const std::int64_t v : values) {
    out.emplace_back(v);
  }
  return out;
}

}  // namespace

Json obs_section() {
  const auto snap = obs::Registry::global().snapshot();
  Json::Object counters;
  for (const auto& c : snap.counters) {
    counters[c.name] = Json(c.value);
  }
  Json::Object gauges;
  for (const auto& g : snap.gauges) {
    gauges[g.name] = Json(g.value);
  }
  Json::Object histograms;
  for (const auto& h : snap.histograms) {
    Json::Object hist;
    hist["count"] = Json(h.count);
    hist["sum"] = Json(h.sum);
    hist["min"] = Json(h.min);
    hist["max"] = Json(h.max);
    hist["bounds"] = Json(int_array(h.bounds));
    hist["buckets"] = Json(int_array(h.buckets));
    histograms[h.name] = Json(std::move(hist));
  }
  auto& tracer = obs::EventTracer::global();
  Json::Object trace;
  trace["enabled"] = Json(tracer.enabled());
  trace["out"] = Json(obs::trace_out_path());
  trace["events"] = Json(static_cast<std::int64_t>(tracer.size()));
  trace["dropped"] = Json(tracer.dropped());
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  root["trace"] = Json(std::move(trace));
  return Json(std::move(root));
}

Json snapshot_json(const core::StationSnapshot& snap) {
  Json::Object out;
  out["id"] = Json(snap.id);
  out["mode"] = Json(snap.mode);
  out["synced"] = Json(snap.synced);
  out["queue_depth"] = Json(static_cast<std::int64_t>(snap.queue_depth));
  out["has_head"] = Json(snap.has_head);
  out["head_uid"] = Json(snap.head_uid);
  out["head_deadline_ns"] = Json(snap.head_deadline_ns);
  out["reft_ns"] = Json(snap.reft_ns);
  out["tts_active"] = Json(snap.tts_active);
  out["tts_lo"] = Json(snap.tts_lo);
  out["tts_size"] = Json(snap.tts_size);
  out["tts_resolved"] = Json(snap.tts_resolved);
  out["sts_active"] = Json(snap.sts_active);
  out["sts_lo"] = Json(snap.sts_lo);
  out["sts_size"] = Json(snap.sts_size);
  out["sts_leaf"] = Json(snap.sts_leaf);
  out["resync_silences"] = Json(snap.resync_silences);
  return Json(std::move(out));
}

Json snapshot_json(const net::ChannelSnapshot& snap) {
  Json::Object out;
  out["stations"] = Json(static_cast<std::int64_t>(snap.stations));
  out["running"] = Json(snap.running);
  out["observations_delivered"] = Json(snap.observations_delivered);
  out["utilization"] = Json(snap.utilization);
  out["silence_slots"] = Json(snap.stats.silence_slots);
  out["collision_slots"] = Json(snap.stats.collision_slots);
  out["successes"] = Json(snap.stats.successes);
  out["burst_continuations"] = Json(snap.stats.burst_continuations);
  out["arbitration_wins"] = Json(snap.stats.arbitration_wins);
  out["corrupted_frames"] = Json(snap.stats.corrupted_frames);
  out["bits_delivered"] = Json(snap.stats.bits_delivered);
  out["busy_ns"] = Json(snap.stats.busy_time.ns());
  out["idle_ns"] = Json(snap.stats.idle_time.ns());
  out["contention_ns"] = Json(snap.stats.contention_time.ns());
  return Json(std::move(out));
}

namespace {
bool g_conformance_requested = false;
}  // namespace

void apply_check_flag(int argc, char** argv) {
  bool requested = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      requested = true;
    }
  }
  if (const char* env = std::getenv("HRTDM_BENCH_CHECK");
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    requested = true;
  }
  if (requested) {
    check::install_conformance_auditor();
    g_conformance_requested = true;
  }
}

bool conformance_requested() { return g_conformance_requested; }

void require_conformance(const core::ConformanceReport& report,
                         const std::string& context) {
  if (!g_conformance_requested) {
    return;
  }
  HRTDM_EXPECT(report.checked,
               context + ": --check was requested but the run was not "
                         "conformance-checked (conformance_check unset?)");
  HRTDM_EXPECT(report.ok, context + ": " + report.summary());
  std::printf("[check] %s: %s\n", context.c_str(),
              report.summary().c_str());
}

void apply_trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      obs::set_trace_out(argv[i + 1]);
      return;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0 && arg[12] != '\0') {
      obs::set_trace_out(arg + 12);
      return;
    }
  }
}

}  // namespace hrtdm::bench
