// E6 — Problem P2 (Eq. 16-19): worst-case searches over v consecutive
// t-leaf trees.
//
// For sampled (m, t, v, u): the exhaustive maximum of sum_i xi(k_i, t) over
// compositions (DP over the exact table), the paper's bound
// v xi~(u/v, t) = xi~(u, tv) - (v-1)/(m-1), the dominance check, and one
// worst composition (note how the adversary splits as evenly as integer
// parts allow — the concavity argument behind Eq. 18).
#include <cstdio>
#include <sstream>

#include "analysis/p2.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("p2_multitree");

  std::printf("%s", util::banner(
      "E6: multi-tree worst case vs P2 bound (Eq. 19)").c_str());
  util::TextTable out({"m", "t", "v", "u", "exhaustive max", "P2 bound",
                       "bound ok", "slack", "worst composition"});
  struct Case { int m; int n; int v; };
  const Case cases[] = {{2, 4, 2}, {2, 4, 4}, {2, 5, 3}, {3, 3, 2},
                        {3, 3, 4}, {4, 2, 3}, {4, 3, 2}, {4, 3, 4},
                        {4, 3, 6}, {5, 2, 5}};
  bool all_ok = true;
  for (const auto& [m, n, v] : cases) {
    analysis::XiExactTable table(m, n);
    const std::int64_t t = table.t();
    const std::int64_t vt = static_cast<std::int64_t>(v) * t;
    for (std::int64_t u : {std::int64_t{2} * v, (2 * v + vt) / 2,
                           vt - v / 2, vt}) {
      if (u < 2 * v || u > v * t) {
        continue;
      }
      const std::int64_t exact = analysis::p2_exhaustive(table, u, v);
      const double bound = analysis::p2_bound(
          m, static_cast<double>(t), static_cast<double>(u),
          static_cast<double>(v));
      const bool ok = static_cast<double>(exact) <= bound + 1e-9;
      all_ok = all_ok && ok;
      std::ostringstream comp;
      for (const std::int64_t part :
           analysis::p2_worst_composition(table, u, v)) {
        comp << part << " ";
      }
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(t),
                   util::TextTable::cell(static_cast<std::int64_t>(v)),
                   util::TextTable::cell(u), util::TextTable::cell(exact),
                   util::TextTable::cell(bound, 2), ok ? "yes" : "NO",
                   util::TextTable::cell(bound - static_cast<double>(exact), 2),
                   comp.str()});
      auto& row = report.add_row();
      row["m"] = bench::Json(m);
      row["t"] = bench::Json(t);
      row["v"] = bench::Json(v);
      row["u"] = bench::Json(u);
      row["exhaustive_max"] = bench::Json(exact);
      row["p2_bound"] = bench::Json(bound);
      row["bound_ok"] = bench::Json(ok);
    }
  }
  std::printf("%s", out.str().c_str());
  std::printf("\nEq. 18 identity check: v xi~(u/v, t) - (xi~(u, tv) - (v-1)/(m-1)) "
              "= %.2e (m=4, t=64, u=80, v=4)\n",
              analysis::p2_bound(4, 64, 80, 4) -
                  analysis::p2_bound_alt(4, 64, 80, 4));
  std::printf("bound dominates exhaustive maximum everywhere: %s\n",
              all_ok ? "YES" : "NO");
  report.metric("bound_dominates", all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
