// E1 — Paper Fig. 1: "Worst-case search times for a 64-leaf balanced
// quaternary tree".
//
// Regenerates the figure's two series for k in [0, 64]:
//   xi(k, 64)   — exact worst-case search time (staircase), Eq. 10
//   xi~(k, 64)  — the concave asymptote, Eq. 11 (defined on [2, 2t/m];
//                 beyond 2t/m the exact function is the Eq. 15 line, so the
//                 asymptote column is still printed for comparison)
// Expected shape (paper): the staircase rises to a single maximum around
// k = 2t/m = 32 and then decreases linearly; the asymptote hugs it from
// above and touches at k = 2 * 4^i.
#include <cstdio>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("fig1_quaternary");
  const int m = 4;
  const int n = 3;  // t = 64
  analysis::XiExactTable table(m, n);
  const std::int64_t t = table.t();
  report.config("m", m);
  report.config("n", n);
  report.config("t", t);

  std::printf("%s", util::banner(
      "E1 / Fig. 1: worst-case search times, 64-leaf quaternary tree").c_str());
  util::TextTable out({"k", "xi(k,64) exact", "xi~(k,64) asymptote",
                       "gap", "touch"});
  for (std::int64_t k = 0; k <= t; ++k) {
    std::string asym = "-";
    std::string gap = "-";
    std::string touch = "";
    if (k >= 2) {
      const double a = analysis::xi_asymptotic(m, static_cast<double>(t),
                                               static_cast<double>(k));
      asym = util::TextTable::cell(a, 2);
      gap = util::TextTable::cell(a - static_cast<double>(table.xi(k)), 2);
      // Touch points k = 2 m^i.
      for (std::int64_t touch_k = 2; touch_k <= t; touch_k *= m) {
        if (k == touch_k) {
          touch = "*";
        }
      }
    }
    out.add_row({util::TextTable::cell(k), util::TextTable::cell(table.xi(k)),
                 asym, gap, touch});
  }
  std::printf("%s", out.str().c_str());

  std::printf("\nanchors: xi(2,64) = %lld (paper: m log_m t - 1 = 11), "
              "xi(32,64) = %lld (Eq. 6: 53), xi(64,64) = %lld (Eq. 7: 21)\n",
              static_cast<long long>(table.xi(2)),
              static_cast<long long>(table.xi(32)),
              static_cast<long long>(table.xi(64)));
  std::printf("peak of the staircase: k = 2t/m = %lld, xi = %lld\n",
              static_cast<long long>(2 * t / m),
              static_cast<long long>(table.xi(2 * t / m)));

  report.metric("xi_2", table.xi(2));
  report.metric("xi_32", table.xi(32));
  report.metric("xi_64", table.xi(64));
  report.metric("peak_k", 2 * t / m);
  report.metric("peak_xi", table.xi(2 * t / m));
  report.write();
  return 0;
}
