// E14 — Optimal branching degree (end of section 4.1): "optimal m is
// derived from the general expression of xi".
//
// Part 1: analytic study — for required leaf counts, xi over candidate m,
// dominance, and the argmin by worst-case and by mean.
// Part 2: simulation confirmation — the same adversarial collision run
// through CSMA/DDCR networks with different branching degrees; epoch
// length in slots should rank the same way as the analysis.
#include <cstdio>
#include <vector>

#include "analysis/optimal_m.hpp"
#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;

std::int64_t measured_epoch_slots(int m, std::int64_t F, std::int64_t k) {
  core::DdcrRunOptions options;
  options.phy.slot_x = util::Duration::nanoseconds(100);
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = m;
  options.ddcr.F = F;
  options.ddcr.m_static = m;
  std::int64_t q = m;
  while (q < k) {
    q *= m;
  }
  options.ddcr.q = q;
  options.ddcr.class_width_c = util::Duration::milliseconds(1);
  options.ddcr.alpha = util::Duration::nanoseconds(0);

  analysis::XiExactTable table(m, static_cast<int>(util::ilog_floor(m, F)));
  const auto leaves = analysis::worst_case_leaves(table, k);

  core::DdcrTestbed bed(static_cast<int>(k), options);
  const std::int64_t c = options.ddcr.class_width_c.ns();
  for (std::int64_t s = 0; s < k; ++s) {
    traffic::Message msg;
    msg.uid = s;
    msg.class_id = static_cast<int>(s);
    msg.source = static_cast<int>(s);
    msg.l_bits = 100;
    msg.arrival = sim::SimTime::zero();
    msg.absolute_deadline = sim::SimTime::from_ns(
        100 + leaves[static_cast<std::size_t>(s)] * c + c / 2);
    bed.inject(static_cast<int>(s), msg);
  }
  bed.run_until_delivered(k, sim::SimTime::from_ns(400'000'000));
  return bed.station(0).counters().search_slots_time + 1;  // + root probe
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  hrtdm::bench::BenchReport report("optimal_m");
  std::printf("%s", util::banner(
      "E14: branching-degree study, 64 leaves required (cf. Fig. 2)")
      .c_str());
  {
    const auto study = analysis::compare_branching_degrees(64, 8);
    report.metric("best_m_worst_case_64", study.best_m_worst_case);
    report.metric("best_m_mean_64", study.best_m_mean);
    util::TextTable out({"m", "t", "worst xi", "mean xi", "dominated"});
    for (const auto& cand : study.candidates) {
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(cand.m)),
                   util::TextTable::cell(cand.t),
                   util::TextTable::cell(cand.worst_xi),
                   util::TextTable::cell(cand.mean_xi, 2),
                   cand.dominated ? "yes" : "no"});
    }
    std::printf("%s", out.str().c_str());
    std::printf("best m by worst case: %d, by mean: %d (k range [2, %lld])\n",
                study.best_m_worst_case, study.best_m_mean,
                static_cast<long long>(study.k_max));
  }

  std::printf("%s", util::banner(
      "E14: branching-degree study, 4096 leaves required").c_str());
  {
    const auto study = analysis::compare_branching_degrees(4096, 8, 256);
    report.metric("best_m_worst_case_4096", study.best_m_worst_case);
    report.metric("best_m_mean_4096", study.best_m_mean);
    util::TextTable out({"m", "t", "worst xi", "mean xi", "dominated"});
    for (const auto& cand : study.candidates) {
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(cand.m)),
                   util::TextTable::cell(cand.t),
                   util::TextTable::cell(cand.worst_xi),
                   util::TextTable::cell(cand.mean_xi, 2),
                   cand.dominated ? "yes" : "no"});
    }
    std::printf("%s", out.str().c_str());
    std::printf("best m by worst case: %d, by mean: %d (k range [2, %lld])\n",
                study.best_m_worst_case, study.best_m_mean,
                static_cast<long long>(study.k_max));
  }

  std::printf("%s", util::banner(
      "E14: simulated adversarial epoch length, 64-leaf time trees").c_str());
  {
    util::TextTable out({"k", "slots m=2", "slots m=4", "slots m=8",
                         "xi m=2", "xi m=4", "xi m=8"});
    analysis::XiExactTable t2(2, 6);
    analysis::XiExactTable t4(4, 3);
    analysis::XiExactTable t8(8, 2);
    for (const std::int64_t k : {2LL, 4LL, 6LL, 8LL, 12LL}) {
      const std::int64_t s2 = measured_epoch_slots(2, 64, k);
      const std::int64_t s4 = measured_epoch_slots(4, 64, k);
      const std::int64_t s8 = measured_epoch_slots(8, 64, k);
      out.add_row({util::TextTable::cell(k),
                   util::TextTable::cell(s2),
                   util::TextTable::cell(s4),
                   util::TextTable::cell(s8),
                   util::TextTable::cell(t2.xi(k)),
                   util::TextTable::cell(t4.xi(k)),
                   util::TextTable::cell(t8.xi(k))});
      auto& row = report.add_row();
      row["k"] = hrtdm::bench::Json(k);
      row["slots_m2"] = hrtdm::bench::Json(s2);
      row["slots_m4"] = hrtdm::bench::Json(s4);
      row["slots_m8"] = hrtdm::bench::Json(s8);
    }
    std::printf("%s", out.str().c_str());
  }
  report.write();
  return 0;
}
