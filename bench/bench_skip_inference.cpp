// E20 — Ablation: the last-child inference (classic CRA optimisation the
// paper's Eq. 1 recursion deliberately excludes).
//
// Part 1: adversarial placements — total search slots with and without the
// inference against xi(k, t); the savings are exactly the inferred skips.
// Part 2: full-protocol runs — collision-slot and latency impact on a
// saturated workload, with replica consistency checked throughout.
#include <cstdio>
#include <vector>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "core/tree_search.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;

std::int64_t drive_slots(core::TreeSearchEngine& engine,
                         std::vector<std::int64_t> active) {
  engine.begin();
  while (engine.active()) {
    const auto interval = engine.current();
    int inside = 0;
    std::int64_t lone = -1;
    for (const std::int64_t leaf : active) {
      if (interval.contains(leaf)) {
        ++inside;
        lone = leaf;
      }
    }
    if (inside == 0) {
      engine.feedback(core::TreeSearchEngine::Feedback::kSilence);
    } else if (inside == 1) {
      std::erase(active, lone);
      engine.feedback(core::TreeSearchEngine::Feedback::kSuccess);
    } else {
      engine.feedback(core::TreeSearchEngine::Feedback::kCollision);
    }
  }
  return engine.search_slots();
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  hrtdm::bench::BenchReport report("skip_inference");
  const bool smoke = hrtdm::bench::BenchReport::smoke();
  std::printf("%s", util::banner(
      "E20: last-child inference vs Eq. 1 on adversarial placements "
      "(binary 64-leaf tree)").c_str());
  {
    analysis::XiExactTable table(2, 6);
    util::TextTable out({"k", "xi(k,64)", "plain slots+root",
                         "inferred slots+root", "saved", "saved %"});
    for (const std::int64_t k : {2LL, 4LL, 8LL, 16LL, 32LL, 64LL}) {
      const auto leaves = analysis::worst_case_leaves(table, k);
      core::TreeSearchEngine plain(2, 64, false);
      core::TreeSearchEngine inferring(2, 64, true);
      const std::int64_t base =
          drive_slots(plain, {leaves.begin(), leaves.end()}) + 1;
      const std::int64_t opt =
          drive_slots(inferring, {leaves.begin(), leaves.end()}) + 1;
      out.add_row({util::TextTable::cell(k),
                   util::TextTable::cell(table.xi(k)),
                   util::TextTable::cell(base), util::TextTable::cell(opt),
                   util::TextTable::cell(base - opt),
                   util::TextTable::cell(
                       100.0 * static_cast<double>(base - opt) /
                           static_cast<double>(base),
                       1)});
      auto& row = report.add_row();
      row["k"] = hrtdm::bench::Json(k);
      row["plain_slots"] = hrtdm::bench::Json(base);
      row["inferred_slots"] = hrtdm::bench::Json(opt);
      row["saved"] = hrtdm::bench::Json(base - opt);
    }
    std::printf("%s", out.str().c_str());
    std::printf("(plain realises xi exactly; the saving is one collision "
                "slot per inferable last child)\n");
  }

  std::printf("%s", util::banner(
      "E20: full-protocol ablation (stock exchange, z = 12, saturating "
      "adversary)").c_str());
  {
    const traffic::Workload wl = traffic::stock_exchange(12);
    util::TextTable out({"inference", "delivered", "collision slots",
                         "silent slots", "mean lat us", "p99 lat us",
                         "consistent"});
    for (const bool infer : {false, true}) {
      core::DdcrRunOptions options;
      options.ddcr.infer_last_child = infer;
      options.ddcr.class_width_c = core::DdcrConfig::class_width_for(
          wl.max_deadline(), options.ddcr.F);
      options.ddcr.alpha = options.ddcr.class_width_c * 2;
      options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
      options.arrival_horizon =
          sim::SimTime::from_ns(smoke ? 10'000'000 : 60'000'000);
      options.drain_cap =
          sim::SimTime::from_ns(smoke ? 60'000'000 : 300'000'000);
      options.check_consistency = true;
      options.conformance_check = bench::conformance_requested();
      const auto result = core::run_ddcr(wl, options);
      bench::require_conformance(result.conformance, "skip_inference");
      out.add_row({infer ? "on" : "off",
                   util::TextTable::cell(result.metrics.delivered),
                   util::TextTable::cell(result.channel.collision_slots),
                   util::TextTable::cell(result.channel.silence_slots),
                   util::TextTable::cell(result.metrics.mean_latency_s * 1e6,
                                         1),
                   util::TextTable::cell(result.metrics.p99_latency_s * 1e6,
                                         1),
                   result.consistency_ok ? "yes" : "NO"});
      auto& row = report.add_row();
      row["inference"] = hrtdm::bench::Json(infer);
      row["delivered"] = hrtdm::bench::Json(result.metrics.delivered);
      row["collision_slots"] =
          hrtdm::bench::Json(result.channel.collision_slots);
      row["consistent"] = hrtdm::bench::Json(result.consistency_ok);
    }
    std::printf("%s", out.str().c_str());
  }
  report.write();
  return 0;
}
