// E19 — The price of determinism: exact average-case search cost (uniform
// random placements, closed hypergeometric form) against the adversarial
// worst case xi(k, t) the feasibility conditions charge, plus Monte-Carlo
// cross-checks and a simulated confirmation on random DDCR epochs.
//
// The paper's FCs must price the worst case; this table shows how much of
// that is adversarial slack on average — context for the measured/bound
// ratios of E9.
#include <cstdio>

#include "analysis/xi.hpp"
#include "analysis/xi_expected.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("average_vs_worst");

  std::printf("%s", util::banner(
      "E19: expected vs worst-case search cost, 64-leaf quaternary tree")
      .c_str());
  {
    util::TextTable out({"k", "E[cost]", "xi worst", "ratio",
                         "monte carlo (2k trials)"});
    analysis::XiExactTable table(4, 3);
    for (const std::int64_t k : {2LL, 4LL, 8LL, 16LL, 24LL, 32LL, 48LL,
                                 64LL}) {
      const double expected = analysis::xi_expected(4, 64, k);
      const double mc =
          analysis::xi_expected_monte_carlo(4, 64, k, 2000, 42);
      out.add_row({util::TextTable::cell(k),
                   util::TextTable::cell(expected, 2),
                   util::TextTable::cell(table.xi(k)),
                   util::TextTable::cell(
                       expected / static_cast<double>(table.xi(k)), 3),
                   util::TextTable::cell(mc, 2)});
      auto& row = report.add_row();
      row["k"] = bench::Json(k);
      row["expected_cost"] = bench::Json(expected);
      row["worst_xi"] = bench::Json(table.xi(k));
      row["monte_carlo"] = bench::Json(mc);
    }
    std::printf("%s", out.str().c_str());
  }

  std::printf("%s", util::banner(
      "E19: average-case advantage across branching degrees (t ~ 4096, "
      "k = 64)").c_str());
  {
    util::TextTable out({"m", "t", "E[cost]", "xi worst", "ratio"});
    for (const auto& [m, n] : {std::pair{2, 12}, {4, 6}, {8, 4}, {16, 3}}) {
      analysis::XiExactTable table(m, n);
      const double expected = analysis::xi_expected(m, table.t(), 64);
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(table.t()),
                   util::TextTable::cell(expected, 2),
                   util::TextTable::cell(table.xi(64)),
                   util::TextTable::cell(
                       expected / static_cast<double>(table.xi(64)), 3)});
    }
    std::printf("%s", out.str().c_str());
    std::printf("\nreading: random placements resolve well below the "
                "adversarial bound; the FCs' margin in E9 is exactly this "
                "slack compounded with peak-density pessimism.\n");
  }
  report.write();
  return 0;
}
