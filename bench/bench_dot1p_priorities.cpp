// E21 — Section 5's standards story: "Classes-of-Service are naturally
// defined via task deadlines D, transformed into message deadlines d,
// which can be passed on to the CSMA/DDCR layer via the standard
// conformant priority field" (IEEE 802.1Q/802.1p).
//
// The 802.1p field has 3 bits, so deadline arbitration through it is
// quantised to 8 classes. Sweep the arbitration quantum on a wired-OR
// bus (exact EDF keys -> coarse priority classes) and measure the
// deadline inversions and latency the quantisation introduces — the same
// trade-off the time tree's class width c embodies on the Ethernet side.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("dot1p_priorities");
  const bool smoke = bench::BenchReport::smoke();
  const traffic::Workload wl = traffic::stock_exchange(10);

  std::printf("%s", util::banner(
      "E21: deadline arbitration granularity on a wired-OR bus "
      "(stock exchange, z = 10)").c_str());
  util::TextTable out({"arb quantum", "delivered", "misses", "inversions",
                       "mean lat us", "p99 lat us", "worst lat us"});
  // Quantum 0 = exact EDF keys; the others mimic priority fields of
  // decreasing resolution (the 12.5 ms quantum leaves ~8 usable classes
  // over this workload's 100 ms deadline range — the 802.1p regime).
  const struct {
    const char* label;
    std::int64_t quantum_ns;
  } sweeps[] = {{"exact (ns)", 0},
                {"100 us", 100'000},
                {"1 ms", 1'000'000},
                {"12.5 ms (3-bit)", 12'500'000},
                {"50 ms (1-bit)", 50'000'000}};
  for (const auto& sweep : sweeps) {
    core::DdcrRunOptions options;
    options.phy = net::PhyConfig::atm_internal_bus();
    options.collision_mode = net::CollisionMode::kArbitration;
    options.ddcr.m_time = 2;
    options.ddcr.m_static = 2;
    options.ddcr.class_width_c =
        core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
    options.ddcr.alpha = options.ddcr.class_width_c * 2;
    options.ddcr.arb_priority_quantum =
        util::Duration::nanoseconds(sweep.quantum_ns);
    options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
    options.arrival_horizon =
        sim::SimTime::from_ns(smoke ? 5'000'000 : 30'000'000);
    options.drain_cap =
        sim::SimTime::from_ns(smoke ? 30'000'000 : 120'000'000);
    options.conformance_check = bench::conformance_requested();
    const auto result = core::run_ddcr(wl, options);
    bench::require_conformance(result.conformance, "dot1p_priorities");
    out.add_row({sweep.label,
                 util::TextTable::cell(result.metrics.delivered),
                 util::TextTable::cell(result.metrics.misses),
                 util::TextTable::cell(result.metrics.deadline_inversions),
                 util::TextTable::cell(result.metrics.mean_latency_s * 1e6,
                                       1),
                 util::TextTable::cell(result.metrics.p99_latency_s * 1e6,
                                       1),
                 util::TextTable::cell(result.metrics.worst_latency_s * 1e6,
                                       1)});
    auto& row = report.add_row();
    row["quantum_label"] = bench::Json(sweep.label);
    row["quantum_ns"] = bench::Json(sweep.quantum_ns);
    row["delivered"] = bench::Json(result.metrics.delivered);
    row["misses"] = bench::Json(result.metrics.misses);
    row["inversions"] = bench::Json(result.metrics.deadline_inversions);
    row["p99_latency_us"] = bench::Json(result.metrics.p99_latency_s * 1e6);
  }
  std::printf("%s", out.str().c_str());
  std::printf("\nreading: coarser priority fields trade EDF fidelity "
              "(inversions grow) for standards compatibility; misses stay "
              "at zero while the workload's slack absorbs the "
              "quantisation.\n");
  report.write();
  return 0;
}
