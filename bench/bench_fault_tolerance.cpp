// E17 — Fault tolerance: frame-corruption sweep and crash/rejoin.
//
// Section 3.1 motivates broadcast media partly by "interesting fault-
// tolerant properties" of the protocols that share them. Two experiments:
//
// 1. Symmetric corruption sweep: every destroyed frame costs one
//    tx-length collision plus the (xi-bounded) re-resolution; the protocol
//    never loses a message and the replicated state never diverges.
// 2. Crash/rejoin: a station resets mid-run and recovers through the
//    listen-only quiet-period certificate, then participates again.
// 3. Asymmetric-fault-rate sweep: receiver-local observation faults (the
//    class the paper's broadcast assumption excludes, docs/FAULTS.md) at
//    increasing per-station probability; reports the deadline-miss ratio
//    and the desync-recovery latency of the watchdog + quarantine path.
//    Campaigns for each rate run per-seed on the deterministic thread
//    pool. Results land in BENCH_fault_tolerance.json via the shared
//    harness.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "fault/campaign.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hrtdm;
using core::DdcrRunOptions;

DdcrRunOptions base_options(const traffic::Workload& wl) {
  DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(50'000'000);
  options.drain_cap = sim::SimTime::from_ns(400'000'000);
  options.check_consistency = true;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("fault_tolerance");
  const bool smoke = bench::BenchReport::smoke();
  const traffic::Workload wl = traffic::videoconference(8);

  std::printf("%s", util::banner(
      "E17: frame-corruption sweep (videoconference, z = 8, consistency "
      "checked every slot)").c_str());
  {
    util::TextTable out({"corruption %", "generated", "delivered",
                         "corrupted frames", "misses", "mean lat us",
                         "worst lat us", "consistent"});
    for (const double p : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
      auto options = base_options(wl);
      if (smoke) {
        options.arrival_horizon = sim::SimTime::from_ns(10'000'000);
      }
      options.phy.corruption_prob = p;
      options.conformance_check = bench::conformance_requested();
      const auto result = core::run_ddcr(wl, options);
      bench::require_conformance(result.conformance, "fault_tolerance");
      out.add_row({util::TextTable::cell(p * 100.0, 1),
                   util::TextTable::cell(result.generated),
                   util::TextTable::cell(result.metrics.delivered),
                   util::TextTable::cell(result.channel.corrupted_frames),
                   util::TextTable::cell(result.metrics.misses),
                   util::TextTable::cell(result.metrics.mean_latency_s * 1e6,
                                         1),
                   util::TextTable::cell(
                       result.metrics.worst_latency_s * 1e6, 1),
                   result.consistency_ok ? "yes" : "NO"});
    }
    std::printf("%s", out.str().c_str());
  }

  std::printf("%s", util::banner(
      "E17: crash / quiet-period rejoin").c_str());
  {
    core::DdcrRunOptions options;
    options.phy.slot_x = util::Duration::nanoseconds(100);
    options.phy.overhead_bits = 0;
    options.ddcr.m_time = 2;
    options.ddcr.F = 16;
    options.ddcr.m_static = 2;
    options.ddcr.q = 16;
    options.ddcr.class_width_c = util::Duration::microseconds(1);
    options.ddcr.alpha = util::Duration::nanoseconds(0);
    options.ddcr.max_empty_tts = 2;

    core::DdcrTestbed bed(3, options);
    auto make = [](std::int64_t uid, int s, std::int64_t at) {
      traffic::Message msg;
      msg.uid = uid;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = 100;
      msg.arrival = sim::SimTime::from_ns(at);
      msg.absolute_deadline = msg.arrival + util::Duration::microseconds(12);
      return msg;
    };
    for (int s = 0; s < 3; ++s) {
      bed.inject(s, make(s, s, 0));
    }
    bed.run_until_delivered(3, sim::SimTime::from_ns(1'000'000));
    std::printf("phase 1: %zu delivered through one epoch\n",
                bed.metrics().log().size());

    bed.station(2).reset_for_rejoin();
    std::printf("station 2 crashed: synced=%s, resync threshold = %lld "
                "silent slots\n",
                bed.station(2).synced() ? "yes" : "no",
                static_cast<long long>(
                    options.ddcr.resync_silence_threshold()));

    bed.run(bed.simulator().now() +
            options.phy.slot_x *
                (options.ddcr.resync_silence_threshold() + 4));
    std::printf("after quiet period: synced=%s (rejoins counter = %lld)\n",
                bed.station(2).synced() ? "yes" : "no",
                static_cast<long long>(bed.station(2).counters().rejoins));

    const auto now = bed.simulator().now().ns();
    for (int s = 0; s < 3; ++s) {
      bed.inject(s, make(100 + s, s, now + 1'000));
    }
    bed.run_until_delivered(6, sim::SimTime::from_ns(now + 5'000'000));
    std::printf("phase 2: %zu total delivered, replicas agree: %s, "
                "misses: %lld\n",
                bed.metrics().log().size(),
                bed.digests_agree() ? "yes" : "NO",
                static_cast<long long>(bed.metrics().summarize().misses));
  }

  std::printf("%s", util::banner(
      "E17: asymmetric receive-fault sweep (z = 4, watchdog on; per-station "
      "fault probability inside three scripted fault windows)").c_str());
  {
    const int kSeeds = smoke ? 2 : 4;
    const int threads = kSeeds;  // per-seed campaigns on the worker pool
    std::vector<std::uint64_t> seeds;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      seeds.push_back(static_cast<std::uint64_t>(seed));
    }
    report.set_threads(threads);
    report.config("sweep_seeds", kSeeds);
    report.config("sweep_stations", 4);
    report.config("hardware_threads", util::ThreadPool::hardware_threads());

    util::TextTable out({"fault prob", "campaigns", "all passed",
                         "miss ratio", "desyncs", "quarantines",
                         "mean reconv obs", "max reconv obs"});
    bool sweep_passed = true;
    for (const double p : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
      fault::CampaignOptions base;
      base.stations = 4;
      base.crashes = 0;
      base.symmetric_bursts = 0;
      base.asymmetric_bursts = 3;
      base.asymmetric_prob = p;
      const auto results = fault::run_campaigns(base, seeds, threads);

      std::int64_t generated = 0;
      std::int64_t misses = 0;
      std::int64_t desyncs = 0;
      std::int64_t quarantines = 0;
      std::int64_t reconv_sum = 0;
      std::int64_t reconv_max = 0;
      bool all_passed = true;
      for (const auto& result : results) {
        all_passed = all_passed && result.passed();
        generated += result.generated;
        misses += result.misses;
        desyncs += result.desyncs_detected;
        quarantines += result.quarantines;
        reconv_sum += result.reconvergence_observations;
        reconv_max = std::max(reconv_max, result.reconvergence_observations);
      }
      sweep_passed = sweep_passed && all_passed;
      const double miss_ratio =
          generated > 0 ? static_cast<double>(misses) /
                              static_cast<double>(generated)
                        : 0.0;
      const double reconv_mean =
          static_cast<double>(reconv_sum) / static_cast<double>(kSeeds);
      out.add_row({util::TextTable::cell(p, 3),
                   util::TextTable::cell(static_cast<std::int64_t>(kSeeds)),
                   all_passed ? "yes" : "NO",
                   util::TextTable::cell(miss_ratio, 4),
                   util::TextTable::cell(desyncs),
                   util::TextTable::cell(quarantines),
                   util::TextTable::cell(reconv_mean, 1),
                   util::TextTable::cell(reconv_max)});
      auto& row = report.add_row();
      row["p"] = bench::Json(p);
      row["all_passed"] = bench::Json(all_passed);
      row["miss_ratio"] = bench::Json(miss_ratio);
      row["desyncs"] = bench::Json(desyncs);
      row["quarantines"] = bench::Json(quarantines);
      row["mean_reconv_obs"] = bench::Json(reconv_mean);
      row["max_reconv_obs"] = bench::Json(reconv_max);
    }
    std::printf("%s", out.str().c_str());
    report.metric("sweep_all_passed", sweep_passed);
  }
  report.write();
  return 0;
}
