// Shared bench harness: every bench_* binary routes its results through a
// BenchReport, which emits a schema-versioned machine-readable artifact at
// a stable path — `BENCH_<name>.json` in the repo root (or $HRTDM_BENCH_DIR)
// — so successive PRs accumulate a comparable perf trajectory instead of
// scrollback tables.
//
// Artifact schema (kSchema = "hrtdm-bench-v1"):
//
//   {
//     "schema":       "hrtdm-bench-v1",
//     "name":         "<bench name>",
//     "threads":      <worker threads the bench used>,
//     "smoke":        <true when HRTDM_BENCH_SMOKE trimmed the config>,
//     "wall_clock_s": <whole-bench wall clock, seconds>,
//     "config":       { flat key -> scalar map },
//     "metrics":      { flat key -> scalar map },
//     "rows":         [ per-sweep-point objects, possibly empty ]
//   }
//
// The harness also owns the two environment knobs the bench ctest wiring
// uses: HRTDM_BENCH_SMOKE=1 asks benches to shrink their configuration to
// a seconds-scale smoke run (ctest target: bench_smoke), HRTDM_BENCH_DIR
// redirects the artifact directory.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hrtdm::core {
struct ConformanceReport;
struct StationSnapshot;
}
namespace hrtdm::net {
struct ChannelSnapshot;
}

namespace hrtdm::bench {

/// Minimal JSON value — just enough to write and re-read the artifact
/// schema above (objects, arrays, strings, int64/double numbers, bools,
/// null). Object keys serialize in sorted order, so dumps are
/// deterministic.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each contract-fails when the kind does not match.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric accessor: accepts kInt and kDouble.
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member access; contract-fails when absent or not an object.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Compact single-line rendering. Doubles print with enough digits to
  /// round-trip exactly through parse().
  std::string dump() const;

  /// Strict parser for the dump() dialect (standard JSON minus exotic
  /// escapes: \uXXXX is accepted for ASCII code points only).
  /// Contract-fails with an offset-tagged message on malformed input.
  static Json parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

class BenchReport {
 public:
  static constexpr const char* kSchema = "hrtdm-bench-v1";

  /// `name` is the artifact key: the report writes BENCH_<name>.json.
  /// The wall clock starts here.
  explicit BenchReport(std::string name);

  /// Flat config / metric scalars (config = inputs, metrics = outcomes).
  void config(const std::string& key, Json value);
  void metric(const std::string& key, Json value);

  /// Appends an entry to "rows" (one per sweep point) and returns it for
  /// in-place population.
  Json::Object& add_row();

  /// Worker threads the bench used (recorded in the artifact; default 1).
  void set_threads(int threads);

  /// The full artifact, with wall_clock_s as of now.
  Json to_json() const;

  /// Writes BENCH_<name>.json into output_dir() and returns the path.
  /// Also prints a one-line pointer to stdout so interactive runs see
  /// where the artifact went.
  std::string write() const;

  /// True when HRTDM_BENCH_SMOKE is set to a non-empty, non-"0" value:
  /// benches should shrink sweeps/horizons to a seconds-scale sanity run.
  static bool smoke();

  /// Artifact directory: $HRTDM_BENCH_DIR when set; otherwise the nearest
  /// ancestor of the current directory containing ROADMAP.md or .git (the
  /// repo root, however deep the build tree the bench runs from);
  /// otherwise the current directory.
  static std::string output_dir();

 private:
  std::string name_;
  int threads_ = 1;
  Json::Object config_;
  Json::Object metrics_;
  Json::Array rows_;
  std::chrono::steady_clock::time_point start_;
};

// --- observability bridge (docs/OBSERVABILITY.md) ------------------------

/// The artifact's "obs" section: the global metrics registry rendered as
/// {"counters": {name: value}, "gauges": {name: value},
///  "histograms": {name: {count,sum,min,max,bounds,buckets}},
///  "trace": {enabled, out, events, dropped}}.
/// Every BenchReport embeds it automatically (to_json()).
Json obs_section();

/// Introspection snapshots rendered through the same JSON dialect.
Json snapshot_json(const core::StationSnapshot& snap);
Json snapshot_json(const net::ChannelSnapshot& snap);

/// CLI wiring for --trace-out <path> / --trace-out=<path>: routes the path
/// into obs::set_trace_out (equivalent to HRTDM_TRACE_OUT, which it
/// overrides). Unknown flags are left untouched for the caller.
void apply_trace_flag(int argc, char** argv);

/// CLI wiring for --check (equivalent to HRTDM_BENCH_CHECK=1): turns on
/// differential conformance checking for the bench's protocol runs and
/// installs the run_ddcr auditor seam. Benches that simulate the protocol
/// set DdcrRunOptions::conformance_check = conformance_requested() and pass
/// each result through require_conformance(); analysis-only benches accept
/// the flag as a no-op.
void apply_check_flag(int argc, char** argv);
bool conformance_requested();

/// Contract-fails (with the report's violation summary) when a requested
/// conformance check did not run or found violations; prints the one-line
/// summary for the first call per context otherwise. No-op when --check is
/// off.
void require_conformance(const core::ConformanceReport& report,
                         const std::string& context);

}  // namespace hrtdm::bench
