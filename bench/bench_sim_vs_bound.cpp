// E9 — Feasibility-condition soundness: measured worst-case latencies under
// the density-saturating adversary versus the analytic bound B_DDCR, per
// class, across the reference workloads and a load sweep.
//
// The paper's claim is one-sided: B_DDCR is an upper bound. The table
// reports the measured/bound ratio — values <= 1 everywhere confirm
// soundness; the margin shows how conservative the peak-load adversary
// composition (r/u/v + P2) is in practice.
#include <cstdio>

#include "analysis/feasibility.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;

void sweep_workload(const traffic::Workload& wl, util::TextTable& out,
                    bool& all_sound, bench::BenchReport& report) {
  core::DdcrRunOptions options;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(100'000'000);
  options.drain_cap = sim::SimTime::from_ns(500'000'000);

  traffic::FcAdapterOptions fc_options;
  fc_options.psi_bps = options.phy.psi_bps;
  fc_options.slot_s = options.phy.slot_x.to_seconds();
  fc_options.overhead_bits = options.phy.overhead_bits;
  fc_options.trees = analysis::FcTreeParams{
      options.ddcr.m_static, options.ddcr.q, options.ddcr.m_time,
      options.ddcr.F};

  const auto fc =
      analysis::check_feasibility(traffic::to_fc_system(wl, fc_options));
  options.conformance_check = bench::conformance_requested();
  const auto result = core::run_ddcr(wl, options);
  bench::require_conformance(result.conformance, "sim_vs_bound");

  std::size_t fc_idx = 0;
  for (const auto& src : wl.sources) {
    for (const auto& cls : src.classes) {
      const auto& bound = fc.classes[fc_idx++];
      if (src.id != 0) {
        continue;  // classes repeat across sources; report source 0
      }
      const auto it = result.metrics.per_class.find(cls.id);
      const double measured =
          it == result.metrics.per_class.end() ? 0.0
                                               : it->second.worst_latency_s;
      const bool sound = !bound.feasible || measured <= bound.b_ddcr_s;
      all_sound = all_sound && sound;
      out.add_row({wl.name, cls.name,
                   util::TextTable::cell(measured * 1e6, 1),
                   util::TextTable::cell(bound.b_ddcr_s * 1e6, 1),
                   util::TextTable::cell(
                       bound.b_ddcr_s > 0 ? measured / bound.b_ddcr_s : 0.0,
                       3),
                   bound.feasible ? "yes" : "no", sound ? "yes" : "NO"});
      auto& row = report.add_row();
      row["workload"] = bench::Json(wl.name);
      row["class"] = bench::Json(cls.name);
      row["measured_worst_us"] = bench::Json(measured * 1e6);
      row["b_ddcr_us"] = bench::Json(bound.b_ddcr_s * 1e6);
      row["fc_feasible"] = bench::Json(bound.feasible);
      row["sound"] = bench::Json(sound);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("sim_vs_bound");
  std::printf("%s", util::banner(
      "E9: measured worst latency vs B_DDCR under the saturating adversary")
      .c_str());
  util::TextTable out({"workload", "class", "measured worst (us)",
                       "B_DDCR (us)", "ratio", "FC feasible", "sound"});
  bool all_sound = true;
  sweep_workload(traffic::quickstart(4), out, all_sound, report);
  sweep_workload(traffic::quickstart(8), out, all_sound, report);
  sweep_workload(traffic::videoconference(6), out, all_sound, report);
  sweep_workload(traffic::air_traffic_control(4), out, all_sound, report);
  std::printf("%s", out.str().c_str());
  std::printf("\nbound dominates every measured worst case: %s\n",
              all_sound ? "YES" : "NO");
  report.metric("all_sound", all_sound);
  report.write();
  return all_sound ? 0 : 1;
}
