// E18 — Self-stabilization soak: reconvergence from randomly corrupted
// joint state.
//
// The paper's correctness proofs assume every replica starts from the
// initial (empty) protocol state. This bench drops that assumption the way
// Petig/Schiller/Tsigas treat transient faults: for every arity
// m in {2, 3, 4} and station count z in {3, 4} it starts hundreds of
// seeded runs from *scrambled* joint state — fabricated slot histories,
// garbage EDF queues, mid-quarantine replicas — then measures how many
// observations the network needs to reconverge (all replicas synced,
// digests equal, queues drained) and judges the post-convergence suffix
// with the full differential conformance check (clean-suffix clipping).
//
// The artifact (BENCH_stabilization.json) records, per configuration, the
// convergence distribution (min / mean / p50 / p90 / max observations and
// frames) against the stated analytic-shape bound from
// stabilization_bound_observations(); `within_bound` must hold for every
// run — the empirical self-stabilization contract — and the bench aborts
// loudly if any seed fails to reconverge, violates safety or fails the
// suffix check. Seeds run in parallel on the deterministic worker pool
// (results are written into index-keyed slots, so parallel == serial).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "fault/stabilization.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hrtdm;
using fault::StabilizationOptions;
using fault::StabilizationResult;

StabilizationOptions options_for(int m, int stations, std::uint64_t seed) {
  StabilizationOptions options;  // defaults: m = 2, F = 16, q = 16
  if (m == 3) {
    options.ddcr.m_time = 3;
    options.ddcr.F = 27;
    options.ddcr.m_static = 3;
    options.ddcr.q = 27;
  } else if (m == 4) {
    options.ddcr.m_time = 4;
    options.ddcr.F = 16;
    options.ddcr.m_static = 4;
    options.ddcr.q = 16;
  }
  options.stations = stations;
  options.seed = seed;
  options.conformance_check = true;  // the claim needs the suffix judged
  return options;
}

std::int64_t percentile(std::vector<std::int64_t> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("stabilization");
  const bool smoke = bench::BenchReport::smoke();

  // >= 500 corrupted joint states per arity in the full run (250 seeds for
  // each of z = 3 and z = 4); a seconds-scale slice in smoke mode.
  const int seeds_per_config = smoke ? 4 : 250;
  const int threads = smoke ? 2 : util::ThreadPool::hardware_threads();
  report.set_threads(threads);
  report.config("seeds_per_config", static_cast<std::int64_t>(
                                        seeds_per_config));
  report.config("smoke", smoke);
  report.config("hardware_threads", util::ThreadPool::hardware_threads());

  std::printf("%s",
              util::banner("E18: self-stabilization from corrupted joint "
                           "state (clean-suffix conformance judged)")
                  .c_str());
  util::TextTable out({"m", "z", "runs", "reconv", "bound obs", "max obs",
                       "p90 obs", "mean obs", "max frames", "suffix ok"});

  std::int64_t total_runs = 0;
  std::int64_t total_reconverged = 0;
  std::int64_t total_within_bound = 0;
  std::int64_t total_suffix_ok = 0;
  std::int64_t total_watchdog = 0;
  for (const int m : {2, 3, 4}) {
    for (const int stations : {3, 4}) {
      std::vector<StabilizationResult> results(
          static_cast<std::size_t>(seeds_per_config));
      util::parallel_for_index(
          threads, seeds_per_config, [&](std::int64_t i) {
            results[static_cast<std::size_t>(i)] = fault::run_stabilization(
                options_for(m, stations,
                            static_cast<std::uint64_t>(i) + 1));
          });

      std::vector<std::int64_t> conv;
      std::int64_t reconverged = 0;
      std::int64_t within = 0;
      std::int64_t suffix_ok = 0;
      std::int64_t max_frames = 0;
      std::int64_t bound = 0;
      double mean = 0.0;
      for (const StabilizationResult& r : results) {
        reconverged += r.reconverged ? 1 : 0;
        within += r.within_bound ? 1 : 0;
        suffix_ok += (r.suffix_checked && r.suffix_ok) ? 1 : 0;
        conv.push_back(r.convergence_observations);
        max_frames = std::max(max_frames, r.convergence_frames);
        bound = std::max(bound, r.bound_observations);
        mean += static_cast<double>(r.convergence_observations);
        total_watchdog += r.desyncs_detected + r.quarantines;
        HRTDM_ENSURE(r.passed(),
                     "stabilization run failed: m=" + std::to_string(m) +
                         " z=" + std::to_string(stations) + " " +
                         r.conformance.summary());
      }
      std::sort(conv.begin(), conv.end());
      mean /= static_cast<double>(results.size());
      total_runs += seeds_per_config;
      total_reconverged += reconverged;
      total_within_bound += within;
      total_suffix_ok += suffix_ok;

      auto& row = report.add_row();
      row["m"] = static_cast<std::int64_t>(m);
      row["stations"] = static_cast<std::int64_t>(stations);
      row["runs"] = static_cast<std::int64_t>(seeds_per_config);
      row["reconverged"] = reconverged;
      row["within_bound"] = within;
      row["suffix_ok"] = suffix_ok;
      row["bound_observations"] = bound;
      row["convergence_obs_min"] = conv.front();
      row["convergence_obs_p50"] = percentile(conv, 0.50);
      row["convergence_obs_p90"] = percentile(conv, 0.90);
      row["convergence_obs_max"] = conv.back();
      row["convergence_obs_mean"] = mean;
      row["convergence_frames_max"] = max_frames;

      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(static_cast<std::int64_t>(stations)),
                   util::TextTable::cell(
                       static_cast<std::int64_t>(seeds_per_config)),
                   util::TextTable::cell(reconverged),
                   util::TextTable::cell(bound),
                   util::TextTable::cell(conv.back()),
                   util::TextTable::cell(percentile(conv, 0.90)),
                   util::TextTable::cell(mean, 1),
                   util::TextTable::cell(max_frames),
                   suffix_ok == seeds_per_config ? "yes" : "NO"});
    }
  }
  std::printf("%s", out.str().c_str());

  report.metric("total_runs", total_runs);
  report.metric("total_reconverged", total_reconverged);
  report.metric("total_within_bound", total_within_bound);
  report.metric("total_suffix_ok", total_suffix_ok);
  report.metric("watchdog_firings", total_watchdog);
  report.metric("all_reconverged", total_reconverged == total_runs);
  // The empirical self-stabilization contract, enforced: every corrupted
  // start reconverged, within the stated bound, with a conformant suffix.
  HRTDM_ENSURE(total_reconverged == total_runs &&
                   total_within_bound == total_runs &&
                   total_suffix_ok == total_runs,
               "self-stabilization contract violated");
  // Corrupted starts must actually have been hostile, not quiet no-ops.
  HRTDM_ENSURE(total_watchdog > 0,
               "no scramble ever tripped the watchdog: the corrupted-state "
               "generator has gone soft");
  report.write();
  return 0;
}
