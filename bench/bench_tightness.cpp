// E5 — Tightness of the asymptote (Eq. 12/13/14).
//
// For each (m, t): the measured max gap xi~ - xi over [2, 2t/m], its even-k
// restriction, the argmax location (Eq. 12 predicts [2t/m^2, 2t/m]), and
// the Eq. 13 bound g(m) t. Also prints the g(m) curve, whose supremum is
// attained at m = 9 with value 3^(1/4)/(2e ln 3) - 1/8 ~ 9.54% (Eq. 14).
//
// Reproduction finding (recorded in EXPERIMENTS.md): Eq. 13 holds verbatim
// for even k — the parity in which Eq. 9/11 are derived (touch points
// k = 2 m^i). Over all integer k the odd values, one slot below their even
// neighbour (Eq. 3), exceed g(m) t by an additive term converging to m/2.
#include <cstdio>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport artifact("tightness");
  bool even_bound_ok = true;

  std::printf("%s", util::banner(
      "E5: asymptote tightness per shape (Eq. 12/13)").c_str());
  {
    util::TextTable out({"m", "t", "max gap (even k)", "g(m)t (Eq.13)",
                         "even<=bound", "argmax even k", "Eq.12 window",
                         "max gap (all k)", "excess over bound"});
    struct Shape { int m; int n; };
    for (const auto& [m, n] : {Shape{2, 6}, {2, 8}, {2, 10}, {2, 12},
                               {3, 4},      {3, 6}, {3, 7},  {4, 3},
                               {4, 5},      {4, 6}, {5, 4},  {5, 5},
                               {6, 4},      {8, 4}, {9, 3}}) {
      analysis::XiExactTable table(m, n);
      const auto report = analysis::max_asymptote_gap(table);
      even_bound_ok =
          even_bound_ok && report.max_gap_even <= report.bound + 1e-9;
      const std::int64_t lo = 2 * table.t() / (m * m);
      const std::int64_t hi = 2 * table.t() / m;
      auto& row = artifact.add_row();
      row["m"] = bench::Json(m);
      row["t"] = bench::Json(table.t());
      row["max_gap_even"] = bench::Json(report.max_gap_even);
      row["bound"] = bench::Json(report.bound);
      row["max_gap_all"] = bench::Json(report.max_gap);
      out.add_row(
          {util::TextTable::cell(static_cast<std::int64_t>(m)),
           util::TextTable::cell(table.t()),
           util::TextTable::cell(report.max_gap_even, 3),
           util::TextTable::cell(report.bound, 3),
           report.max_gap_even <= report.bound + 1e-9 ? "yes" : "NO",
           util::TextTable::cell(report.argmax_k_even),
           "[" + std::to_string(lo) + "," + std::to_string(hi) + "]",
           util::TextTable::cell(report.max_gap, 3),
           util::TextTable::cell(report.max_gap - report.bound, 3)});
    }
    std::printf("%s", out.str().c_str());
  }

  std::printf("%s", util::banner(
      "E5: the g(m) coefficient of Eq. 13 and the Eq. 14 supremum").c_str());
  {
    util::TextTable out({"m", "g(m)", "percent of t"});
    for (int m = 2; m <= 16; ++m) {
      const double g = analysis::tightness_bound_factor(m);
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(g, 5),
                   util::TextTable::cell(g * 100.0, 2)});
    }
    std::printf("%s", out.str().c_str());
    std::printf("\nEq. 14: sup_m g(m) = g(9) = %.5f  (paper: <= 9.54%% t)\n",
                analysis::tightness_bound_universal());
  }
  artifact.metric("even_bound_ok", even_bound_ok);
  artifact.metric("g_supremum", analysis::tightness_bound_universal());
  artifact.write();
  return 0;
}
