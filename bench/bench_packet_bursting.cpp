// E12 — IEEE 802.3z packet bursting (section 5): burst-budget sweep on the
// videoconference workload. The paper argues bursting "will entail much
// less deadline inversions than those resulting from using deadline
// equivalence classes"; the sweep shows inversions and contention overhead
// falling as the budget grows.
#include <cstdio>

#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("packet_bursting");
  const bool smoke = bench::BenchReport::smoke();
  const traffic::Workload wl = traffic::videoconference(10);

  std::printf("%s", util::banner(
      "E12: packet-bursting budget sweep (videoconference, z = 10)").c_str());
  util::TextTable out({"burst bytes", "delivered", "misses", "bursts",
                       "collisions", "epochs", "inversions", "mean lat us",
                       "p99 lat us", "util %"});
  for (const std::int64_t burst_bytes : {0, 128, 256, 512, 1024, 4096}) {
    core::DdcrRunOptions options;
    options.phy = net::PhyConfig::gigabit_ethernet();
    options.phy.burst_budget_bits = burst_bytes * 8;
    options.ddcr.class_width_c =
        core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
    options.ddcr.alpha = options.ddcr.class_width_c * 2;
    options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
    options.arrival_horizon =
        sim::SimTime::from_ns(smoke ? 10'000'000 : 100'000'000);
    options.drain_cap =
        sim::SimTime::from_ns(smoke ? 60'000'000 : 400'000'000);
    options.conformance_check = bench::conformance_requested();
    const auto result = core::run_ddcr(wl, options);
    bench::require_conformance(result.conformance, "packet_bursting");
    std::int64_t epochs = 0;
    for (const auto& station : result.per_station) {
      epochs += station.epochs;
    }
    out.add_row({util::TextTable::cell(burst_bytes),
                 util::TextTable::cell(result.metrics.delivered),
                 util::TextTable::cell(result.metrics.misses),
                 util::TextTable::cell(result.channel.burst_continuations),
                 util::TextTable::cell(result.channel.collision_slots),
                 util::TextTable::cell(
                     epochs / static_cast<std::int64_t>(
                                  result.per_station.size())),
                 util::TextTable::cell(result.metrics.deadline_inversions),
                 util::TextTable::cell(result.metrics.mean_latency_s * 1e6, 1),
                 util::TextTable::cell(result.metrics.p99_latency_s * 1e6, 1),
                 util::TextTable::cell(result.utilization * 100.0, 2)});
    auto& row = report.add_row();
    row["burst_bytes"] = bench::Json(burst_bytes);
    row["delivered"] = bench::Json(result.metrics.delivered);
    row["misses"] = bench::Json(result.metrics.misses);
    row["bursts"] = bench::Json(result.channel.burst_continuations);
    row["inversions"] = bench::Json(result.metrics.deadline_inversions);
    row["utilization"] = bench::Json(result.utilization);
  }
  std::printf("%s", out.str().c_str());
  report.write();
  return 0;
}
