// E13 — ATM internal busses (sections 3.2 and 5): destructive Ethernet
// collisions versus non-destructive wired-OR arbitration with deadlines as
// priorities, on the same PHY and workload.
//
// Expected shape: arbitration removes every tree-search epoch (a collision
// slot resolves directly to the earliest-deadline message), cutting
// contention overhead and inversions to zero while destructive mode pays
// xi-bounded search slots per epoch.
#include <cstdio>

#include "analysis/feasibility.hpp"
#include "analysis/feasibility_atm.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("atm_arbitration");
  const bool smoke = bench::BenchReport::smoke();

  std::printf("%s", util::banner(
      "E13: destructive collisions vs ATM wired-OR arbitration "
      "(air traffic control)").c_str());
  util::TextTable out({"z", "mode", "delivered", "misses", "collisions",
                       "arb wins", "epochs", "inversions", "mean lat us",
                       "worst lat us", "util %"});
  for (const int z : {4, 8, 16}) {
    const traffic::Workload wl = traffic::air_traffic_control(z);
    for (const auto mode : {net::CollisionMode::kDestructive,
                            net::CollisionMode::kArbitration}) {
      core::DdcrRunOptions options;
      options.phy = net::PhyConfig::atm_internal_bus();
      options.collision_mode = mode;
      options.ddcr.m_time = 2;
      options.ddcr.m_static = 2;
      options.ddcr.F = 64;
      options.ddcr.q = 64;
      options.ddcr.class_width_c = core::DdcrConfig::class_width_for(
          wl.max_deadline(), options.ddcr.F);
      options.ddcr.alpha = options.ddcr.class_width_c * 2;
      options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
      options.arrival_horizon =
          sim::SimTime::from_ns(smoke ? 5'000'000 : 40'000'000);
      options.drain_cap =
          sim::SimTime::from_ns(smoke ? 30'000'000 : 150'000'000);
      options.conformance_check = bench::conformance_requested();
      const auto result = core::run_ddcr(wl, options);
      bench::require_conformance(result.conformance, "atm_arbitration");
      std::int64_t epochs = 0;
      for (const auto& station : result.per_station) {
        epochs += station.epochs;
      }
      out.add_row(
          {util::TextTable::cell(static_cast<std::int64_t>(z)),
           mode == net::CollisionMode::kDestructive ? "destructive"
                                                    : "wired-OR",
           util::TextTable::cell(result.metrics.delivered),
           util::TextTable::cell(result.metrics.misses),
           util::TextTable::cell(result.channel.collision_slots),
           util::TextTable::cell(result.channel.arbitration_wins),
           util::TextTable::cell(epochs / static_cast<std::int64_t>(
                                              result.per_station.size())),
           util::TextTable::cell(result.metrics.deadline_inversions),
           util::TextTable::cell(result.metrics.mean_latency_s * 1e6, 1),
           util::TextTable::cell(result.metrics.worst_latency_s * 1e6, 1),
           util::TextTable::cell(result.utilization * 100.0, 2)});
      auto& row = report.add_row();
      row["z"] = bench::Json(z);
      row["mode"] = bench::Json(mode == net::CollisionMode::kDestructive
                                    ? "destructive"
                                    : "wired-OR");
      row["delivered"] = bench::Json(result.metrics.delivered);
      row["misses"] = bench::Json(result.metrics.misses);
      row["collisions"] = bench::Json(result.channel.collision_slots);
      row["arbitration_wins"] =
          bench::Json(result.channel.arbitration_wins);
      row["inversions"] = bench::Json(result.metrics.deadline_inversions);
      row["utilization"] = bench::Json(result.utilization);
    }
  }
  std::printf("%s", out.str().c_str());

  // Analytic counterpart: the ATM-mode bound B_ATM (one arbitration slot
  // per interferer, no tree terms, explicit non-preemptive blocking)
  // against the section 4.3 bound B_DDCR evaluated at the same PHY.
  std::printf("%s", util::banner(
      "E13: analytic bounds on the ATM bus (z = 8)").c_str());
  {
    const traffic::Workload wl = traffic::air_traffic_control(8);
    traffic::FcAdapterOptions fc;
    fc.psi_bps = 622e6;
    fc.slot_s = 16e-9;
    fc.overhead_bits = 40;
    fc.trees = analysis::FcTreeParams{2, 64, 2, 64};
    const auto system = traffic::to_fc_system(wl, fc);
    const auto ddcr = analysis::check_feasibility(system);
    const auto atm = analysis::check_feasibility_atm(system);
    util::TextTable bounds({"class", "B_DDCR (us)", "B_ATM (us)",
                            "d (us)"});
    for (std::size_t i = 0; i < 2 && i < atm.classes.size(); ++i) {
      bounds.add_row({atm.classes[i].klass,
                      util::TextTable::cell(ddcr.classes[i].b_ddcr_s * 1e6,
                                            2),
                      util::TextTable::cell(atm.classes[i].b_atm_s * 1e6, 2),
                      util::TextTable::cell(atm.classes[i].d_s * 1e6, 2)});
    }
    std::printf("%s", bounds.str().c_str());
    std::printf("(at x = 16 ns the bounds nearly coincide: tree search is "
                "essentially free on an ATM internal bus)\n");
  }
  report.write();
  return 0;
}
