// E15 — google-benchmark microbenchmarks: throughput of the analysis
// kernels (exact DP, closed form, P2 DP, feasibility evaluation), the
// tree-search engine, the event loop and a full protocol run.
//
// Custom main (instead of benchmark_main) so the JSON reporter output is
// routed through the shared bench harness into BENCH_micro.json: the
// google-benchmark result objects land verbatim in the artifact's "rows".
#include <benchmark/benchmark.h>

#include <functional>
#include <sstream>

#include "bench/harness.hpp"

#include "analysis/feasibility.hpp"
#include "analysis/p2.hpp"
#include "analysis/xi.hpp"
#include "core/ddcr_network.hpp"
#include "core/edf_queue.hpp"
#include "core/tree_search.hpp"
#include "sim/simulator.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using namespace hrtdm;

void BM_XiExactTableBuild(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    analysis::XiExactTable table(m, n);
    benchmark::DoNotOptimize(table.xi(table.t() / 2));
  }
  state.SetLabel("t=" + std::to_string(util::ipow(m, n)));
}
BENCHMARK(BM_XiExactTableBuild)
    ->Args({2, 8})
    ->Args({2, 10})
    ->Args({4, 5})
    ->Args({4, 6})
    ->Args({4, 8})     // 65536 leaves
    ->Args({4, 10});   // ~1M leaves; intractable before the concave kernel

void BM_XiClosedForm(benchmark::State& state) {
  const std::int64_t t = 4096;
  std::int64_t k = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::xi_closed(4, t, k));
    k = k % t + 1;
    if (k < 2) {
      k = 2;
    }
  }
}
BENCHMARK(BM_XiClosedForm);

void BM_XiAsymptote(benchmark::State& state) {
  double k = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::xi_asymptotic(4, 4096.0, k));
    k = k < 2000.0 ? k + 1.37 : 2.0;
  }
}
BENCHMARK(BM_XiAsymptote);

void BM_P2ExhaustiveDp(benchmark::State& state) {
  analysis::XiExactTable table(4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::p2_exhaustive(table, 100, 4));
  }
}
BENCHMARK(BM_P2ExhaustiveDp);

void BM_FeasibilityCheck(benchmark::State& state) {
  const auto wl = traffic::videoconference(static_cast<int>(state.range(0)));
  traffic::FcAdapterOptions options;
  options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  const auto system = traffic::to_fc_system(wl, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::check_feasibility(system));
  }
}
BENCHMARK(BM_FeasibilityCheck)->Arg(4)->Arg(16)->Arg(64);

void BM_TreeSearchEngine(benchmark::State& state) {
  const auto leaves_count = state.range(0);
  util::Rng rng(42);
  analysis::XiExactTable table(4, 3);
  const auto leaves =
      analysis::worst_case_leaves(table, leaves_count);
  for (auto _ : state) {
    core::TreeSearchEngine engine(4, 64);
    engine.begin();
    std::vector<std::int64_t> active(leaves.begin(), leaves.end());
    while (engine.active()) {
      const auto interval = engine.current();
      int inside = 0;
      for (const auto leaf : active) {
        inside += interval.contains(leaf) ? 1 : 0;
      }
      if (inside == 0) {
        engine.feedback(core::TreeSearchEngine::Feedback::kSilence);
      } else if (inside == 1) {
        engine.feedback(core::TreeSearchEngine::Feedback::kSuccess);
        for (std::size_t i = 0; i < active.size(); ++i) {
          if (interval.contains(active[i])) {
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      } else {
        engine.feedback(core::TreeSearchEngine::Feedback::kCollision);
      }
    }
    benchmark::DoNotOptimize(engine.search_slots());
  }
}
BENCHMARK(BM_TreeSearchEngine)->Arg(4)->Arg(16)->Arg(64);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    std::function<void()> tick = [&] {
      if (++fired < 10'000) {
        sim.schedule_after(util::Duration::nanoseconds(10), tick);
      }
    };
    sim.schedule_at(sim::SimTime::zero(), tick);
    sim.run_to_completion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_SimulatorEventChurn(benchmark::State& state) {
  // Schedule/cancel churn: every round schedules a batch, cancels half and
  // fires the rest, recycling pool slots continuously — the pattern the
  // channel's slot-end + gap-resume events produce.
  constexpr int kBatch = 64;
  constexpr int kRounds = 256;
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(kBatch);
    for (int round = 0; round < kRounds; ++round) {
      handles.clear();
      const auto at = sim.now() + util::Duration::nanoseconds(10);
      for (int i = 0; i < kBatch; ++i) {
        handles.push_back(sim.schedule_at(at, [&fired] { ++fired; }));
      }
      for (int i = 0; i < kBatch; i += 2) {
        sim.cancel(handles[static_cast<std::size_t>(i)]);
      }
      sim.run_until(at);
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kBatch * kRounds);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_EdfQueueChurn(benchmark::State& state) {
  // Steady-state push/remove against a deep backlog; remove() used to scan
  // the deadline set linearly, so this scaled with the queue depth.
  const std::int64_t depth = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    core::EdfQueue queue;
    util::SplitMix64 mix(7);
    for (std::int64_t uid = 0; uid < depth; ++uid) {
      traffic::Message msg;
      msg.uid = uid;
      msg.l_bits = 100;
      msg.absolute_deadline = sim::SimTime::from_ns(
          static_cast<std::int64_t>(mix.next() % 1'000'000));
      queue.push(msg);
    }
    state.ResumeTiming();
    std::int64_t uid = depth;
    for (std::int64_t op = 0; op < 4096; ++op) {
      traffic::Message msg;
      msg.uid = uid++;
      msg.l_bits = 100;
      msg.absolute_deadline = sim::SimTime::from_ns(
          static_cast<std::int64_t>(mix.next() % 1'000'000));
      queue.push(msg);
      queue.remove(static_cast<std::int64_t>(mix.next() %
                                             static_cast<std::uint64_t>(uid)));
    }
    benchmark::DoNotOptimize(queue.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EdfQueueChurn)->Arg(1024)->Arg(10240);

void BM_FullDdcrRun(benchmark::State& state) {
  const auto wl = traffic::quickstart(static_cast<int>(state.range(0)));
  core::DdcrRunOptions options;
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrival_horizon = sim::SimTime::from_ns(10'000'000);  // 10 ms
  options.drain_cap = sim::SimTime::from_ns(50'000'000);
  for (auto _ : state) {
    const auto result = core::run_ddcr(wl, options);
    benchmark::DoNotOptimize(result.metrics.delivered);
  }
}
BENCHMARK(BM_FullDdcrRun)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hrtdm::bench::BenchReport report("micro");

  // Smoke mode trims measurement time; explicit flags still win because
  // Initialize consumes them after these defaults.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (hrtdm::bench::BenchReport::smoke()) {
    args.insert(args.begin() + 1, min_time.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());

  // The JSON reporter runs as the *display* reporter (a custom file
  // reporter would force --benchmark_out), captured into a stream and
  // re-parsed into the shared artifact; a compact console summary is
  // printed from the parsed rows below.
  std::ostringstream json_stream;
  benchmark::JSONReporter json;
  json.SetOutputStream(&json_stream);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&json);

  const auto parsed = hrtdm::bench::Json::parse(json_stream.str());
  report.metric("benchmarks_run", static_cast<std::int64_t>(ran));
  if (parsed.contains("benchmarks")) {
    for (const auto& entry : parsed.at("benchmarks").as_array()) {
      report.add_row() = entry.as_object();
      const double t = entry.contains("real_time")
                           ? entry.at("real_time").as_double()
                           : 0.0;
      const std::string unit = entry.contains("time_unit")
                                   ? entry.at("time_unit").as_string()
                                   : "?";
      std::printf("%-40s %14.1f %s\n", entry.at("name").as_string().c_str(),
                  t, unit.c_str());
    }
  }
  report.write();
  benchmark::Shutdown();
  return 0;
}
