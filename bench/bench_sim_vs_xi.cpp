// E8 — Simulation versus P1 analysis: adversarial k-way collisions on a
// live CSMA/DDCR network must realise exactly the predicted DFS cost, and
// never exceed xi(k, F).
//
// For each tree shape, the adversarial placement from the Eq. 1 recursion
// (worst_case_leaves) is injected as k messages on k stations, one per
// deadline-equivalence class, and the measured time-tree search slots are
// compared with xi(k, F) - 1 (the root probe is the epoch-triggering
// collision, charged separately).
#include <cstdio>
#include <vector>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_network.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;
using core::DdcrRunOptions;
using core::DdcrTestbed;
using util::Duration;
using util::SimTime;

std::int64_t measure_search_slots(int m, std::int64_t F,
                                  const std::vector<std::int64_t>& leaves) {
  const int k = static_cast<int>(leaves.size());
  DdcrRunOptions options;
  options.phy.slot_x = Duration::nanoseconds(100);
  options.phy.psi_bps = 1e9;
  options.phy.overhead_bits = 0;
  options.ddcr.m_time = m;
  options.ddcr.F = F;
  options.ddcr.m_static = m;
  std::int64_t q = m;
  while (q < k) {
    q *= m;
  }
  options.ddcr.q = q;
  options.ddcr.class_width_c = Duration::milliseconds(1);
  options.ddcr.alpha = Duration::nanoseconds(0);

  DdcrTestbed bed(k, options);
  const std::int64_t c = options.ddcr.class_width_c.ns();
  for (int s = 0; s < k; ++s) {
    traffic::Message msg;
    msg.uid = s;
    msg.class_id = s;
    msg.source = s;
    msg.l_bits = 100;
    msg.arrival = SimTime::zero();
    msg.absolute_deadline = SimTime::from_ns(
        100 + leaves[static_cast<std::size_t>(s)] * c + c / 2);
    bed.inject(s, msg);
  }
  bed.run_until_delivered(k, SimTime::from_ns(300'000'000));
  return bed.station(0).counters().search_slots_time;
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  hrtdm::bench::BenchReport report("sim_vs_xi");
  std::printf("%s", util::banner(
      "E8: measured time-tree search slots vs xi(k, F) "
      "(adversarial placements)").c_str());
  util::TextTable out({"m", "F", "k", "xi(k,F)", "measured+root", "match",
                       "within bound"});
  bool all_match = true;
  std::int64_t placements = 0;
  struct Shape { int m; int n; };
  for (const auto& [m, n] : {Shape{2, 4}, {2, 5}, {2, 6}, {4, 2}, {4, 3}}) {
    analysis::XiExactTable table(m, n);
    const std::int64_t F = table.t();
    for (std::int64_t k = 2; k <= std::min<std::int64_t>(F, 12); ++k) {
      const auto leaves = analysis::worst_case_leaves(table, k);
      const std::int64_t measured = measure_search_slots(m, F, leaves) + 1;
      const bool match = measured == table.xi(k);
      const bool bounded = measured <= table.xi(k);
      all_match = all_match && match;
      ++placements;
      out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                   util::TextTable::cell(F), util::TextTable::cell(k),
                   util::TextTable::cell(table.xi(k)),
                   util::TextTable::cell(measured), match ? "exact" : "NO",
                   bounded ? "yes" : "VIOLATED"});
    }
  }
  std::printf("%s", out.str().c_str());
  std::printf("\nsimulated adversarial searches realise xi exactly: %s\n",
              all_match ? "YES" : "NO");
  report.metric("placements_checked", placements);
  report.metric("all_exact", all_match);
  report.write();
  return all_match ? 0 : 1;
}
