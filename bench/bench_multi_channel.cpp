// E18 — Parallel broadcast media (section 3.1: "many such media can be
// used in parallel"): capacity scaling with the channel count, plus the
// run-engine speedup of executing the per-channel simulations on the
// deterministic thread pool.
//
// A workload that overloads one Gigabit segment is spread across 1-4
// parallel segments by the greedy load-balancing planner; misses and
// worst-case latency should collapse once per-channel load drops below
// the feasibility frontier. The parallel engine must be bit-identical to
// the serial one (digest + metrics), just faster — both facts are
// measured and recorded in BENCH_multi_channel.json.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "core/multi_channel.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hrtdm;

  // --trace-out <file> (or HRTDM_TRACE_OUT) emits a Perfetto trace of the
  // runs below: one process per channel, one track per station.
  bench::apply_trace_flag(argc, argv);
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("multi_channel");
  const bool smoke = bench::BenchReport::smoke();

  // 4x nominal trading-floor load: slot overhead alone stresses one
  // channel (every frame holds the medium for >= 4.096 us).
  const traffic::Workload wl = traffic::stock_exchange(12).scaled_load(4.0);

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon =
      sim::SimTime::from_ns(smoke ? 10'000'000 : 60'000'000);
  options.drain_cap = sim::SimTime::from_ns(smoke ? 60'000'000 : 300'000'000);

  report.config("workload", "stock_exchange(12) x4 load");
  report.config("arrival_horizon_ns", options.arrival_horizon.ns());
  report.config("drain_cap_ns", options.drain_cap.ns());
  report.config("seed", static_cast<std::int64_t>(options.seed));

  std::printf("%s", util::banner(
      "E18: capacity scaling with parallel broadcast media "
      "(stock exchange x4, z = 12)").c_str());
  util::TextTable out({"channels", "imbalance", "generated", "delivered",
                       "misses", "undelivered", "worst lat us",
                       "mean util %"});
  for (const int channels : {1, 2, 3, 4}) {
    const auto result = core::run_multi_channel(wl, channels, options);
    out.add_row({util::TextTable::cell(static_cast<std::int64_t>(channels)),
                 util::TextTable::cell(result.plan.imbalance(), 2),
                 util::TextTable::cell(result.generated),
                 util::TextTable::cell(result.delivered),
                 util::TextTable::cell(result.misses),
                 util::TextTable::cell(result.undelivered),
                 util::TextTable::cell(result.worst_latency_s * 1e6, 1),
                 util::TextTable::cell(result.mean_utilization * 100.0, 1)});
    auto& row = report.add_row();
    row["channels"] = bench::Json(channels);
    row["imbalance"] = bench::Json(result.plan.imbalance());
    row["generated"] = bench::Json(result.generated);
    row["delivered"] = bench::Json(result.delivered);
    row["misses"] = bench::Json(result.misses);
    row["undelivered"] = bench::Json(result.undelivered);
    row["worst_latency_us"] = bench::Json(result.worst_latency_s * 1e6);
    row["mean_utilization"] = bench::Json(result.mean_utilization);
  }
  std::printf("%s", out.str().c_str());
  std::printf("\n(per-class traffic stays on one channel, so the "
              "single-channel FCs apply verbatim per segment)\n");

  // --- run-engine speedup: serial vs thread-pool execution --------------
  // Longer horizon so the serial baseline is comfortably in wall-clock
  // measurement territory; the two runs must agree bit-for-bit.
  core::DdcrRunOptions timed = options;
  timed.arrival_horizon =
      sim::SimTime::from_ns(smoke ? 20'000'000 : 240'000'000);
  timed.drain_cap = sim::SimTime::from_ns(smoke ? 120'000'000 : 900'000'000);
  const int kChannels = 4;
  // One worker per channel even when the host has fewer cores: the
  // bit-identical check must exercise the real cross-thread path, and the
  // recorded hardware_threads lets readers judge the speedup number (on a
  // single-core host it is ~1x by construction; it scales with cores).
  const int threads = kChannels;

  const auto serial_start = std::chrono::steady_clock::now();
  const auto serial = core::run_multi_channel(wl, kChannels, timed, 1);
  const double serial_s = seconds_since(serial_start);

  const auto parallel_start = std::chrono::steady_clock::now();
  const auto parallel = core::run_multi_channel(wl, kChannels, timed, threads);
  const double parallel_s = seconds_since(parallel_start);

  const bool identical =
      serial.protocol_digest == parallel.protocol_digest &&
      serial.generated == parallel.generated &&
      serial.delivered == parallel.delivered &&
      serial.misses == parallel.misses &&
      serial.undelivered == parallel.undelivered &&
      serial.worst_latency_s == parallel.worst_latency_s &&
      serial.mean_utilization == parallel.mean_utilization;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  std::printf("\nE18 run engine, %d channels: serial %.3f s, parallel "
              "(%d threads) %.3f s -> %.2fx; bit-identical: %s\n",
              kChannels, serial_s, threads, parallel_s, speedup,
              identical ? "yes" : "NO");

  report.set_threads(threads);
  report.config("hardware_threads", util::ThreadPool::hardware_threads());
  report.config("speedup_channels", kChannels);
  report.config("speedup_horizon_ns", timed.arrival_horizon.ns());
  report.metric("serial_wall_s", serial_s);
  report.metric("parallel_wall_s", parallel_s);
  report.metric("speedup_4ch", speedup);
  report.metric("parallel_bit_identical", identical);
  report.metric("protocol_digest",
                static_cast<std::int64_t>(serial.protocol_digest));
  report.write();
  return identical ? 0 : 1;
}
