// E18 — Parallel broadcast media (section 3.1: "many such media can be
// used in parallel"): capacity scaling with the channel count.
//
// A workload that overloads one Gigabit segment is spread across 1-4
// parallel segments by the greedy load-balancing planner; misses and
// worst-case latency should collapse once per-channel load drops below
// the feasibility frontier.
#include <cstdio>

#include "core/multi_channel.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main() {
  using namespace hrtdm;

  // 4x nominal trading-floor load: slot overhead alone stresses one
  // channel (every frame holds the medium for >= 4.096 us).
  const traffic::Workload wl = traffic::stock_exchange(12).scaled_load(4.0);

  core::DdcrRunOptions options;
  options.phy = net::PhyConfig::gigabit_ethernet();
  options.ddcr.class_width_c =
      core::DdcrConfig::class_width_for(wl.max_deadline(), options.ddcr.F);
  options.ddcr.alpha = options.ddcr.class_width_c * 2;
  options.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  options.arrival_horizon = sim::SimTime::from_ns(60'000'000);
  options.drain_cap = sim::SimTime::from_ns(300'000'000);

  std::printf("%s", util::banner(
      "E18: capacity scaling with parallel broadcast media "
      "(stock exchange x4, z = 12)").c_str());
  util::TextTable out({"channels", "imbalance", "generated", "delivered",
                       "misses", "undelivered", "worst lat us",
                       "mean util %"});
  for (const int channels : {1, 2, 3, 4}) {
    const auto result = core::run_multi_channel(wl, channels, options);
    out.add_row({util::TextTable::cell(static_cast<std::int64_t>(channels)),
                 util::TextTable::cell(result.plan.imbalance(), 2),
                 util::TextTable::cell(result.generated),
                 util::TextTable::cell(result.delivered),
                 util::TextTable::cell(result.misses),
                 util::TextTable::cell(result.undelivered),
                 util::TextTable::cell(result.worst_latency_s * 1e6, 1),
                 util::TextTable::cell(result.mean_utilization * 100.0, 1)});
  }
  std::printf("%s", out.str().c_str());
  std::printf("\n(per-class traffic stays on one channel, so the "
              "single-channel FCs apply verbatim per segment)\n");
  return 0;
}
