// E3 — Cross-validation of the paper's xi characterisations: the defining
// recursion (Eq. 1, via DP), the divide-and-conquer recursion (Eq. 2/3/4)
// and the closed form (Eq. 9/10) over a sweep of tree shapes.
//
// Prints one row per shape with the number of k values checked and the
// maximal absolute disagreement (expected: 0 everywhere).
#include <cstdio>

#include "analysis/xi.hpp"
#include "bench/harness.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("eq_crossval");

  std::printf("%s", util::banner(
      "E3: Eq.1 (exact DP) vs Eq.2/3 (divide&conquer) vs Eq.9/10 (closed)")
      .c_str());
  util::TextTable out({"m", "n", "t", "k checked", "dnc mismatches",
                       "closed mismatches"});
  bool all_ok = true;
  struct Shape { int m; int n; };
  const Shape shapes[] = {{2, 1}, {2, 4}, {2, 8},  {2, 11}, {3, 2}, {3, 5},
                          {3, 7}, {4, 2}, {4, 5},  {4, 6},  {5, 3}, {5, 4},
                          {6, 3}, {7, 3}, {8, 3},  {9, 3},  {16, 2}};
  for (const auto& [m, n] : shapes) {
    analysis::XiExactTable table(m, n);
    std::int64_t dnc_bad = 0;
    std::int64_t closed_bad = 0;
    for (std::int64_t k = 0; k <= table.t(); ++k) {
      const std::int64_t exact = table.xi(k);
      if (analysis::xi_dnc(m, table.t(), k) != exact) {
        ++dnc_bad;
      }
      if (analysis::xi_closed(m, table.t(), k) != exact) {
        ++closed_bad;
      }
    }
    all_ok = all_ok && dnc_bad == 0 && closed_bad == 0;
    out.add_row({util::TextTable::cell(static_cast<std::int64_t>(m)),
                 util::TextTable::cell(static_cast<std::int64_t>(n)),
                 util::TextTable::cell(table.t()),
                 util::TextTable::cell(table.t() + 1),
                 util::TextTable::cell(dnc_bad),
                 util::TextTable::cell(closed_bad)});
    auto& row = report.add_row();
    row["m"] = bench::Json(m);
    row["n"] = bench::Json(n);
    row["t"] = bench::Json(table.t());
    row["dnc_mismatches"] = bench::Json(dnc_bad);
    row["closed_mismatches"] = bench::Json(closed_bad);
  }
  std::printf("%s", out.str().c_str());
  std::printf("\nall characterisations agree: %s\n", all_ok ? "YES" : "NO");
  report.metric("all_ok", all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
