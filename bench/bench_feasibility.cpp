// E7 — Feasibility conditions (section 4.3) on the reference workloads:
// per-class r(M), u(M), v(M), S1, S2 and B_DDCR, plus a feasibility
// frontier: the largest load multiplier at which each workload's FCs still
// hold (bisection on Workload::scaled_load).
#include <cstdio>

#include "analysis/feasibility.hpp"
#include "bench/harness.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace hrtdm;

traffic::FcAdapterOptions gigabit_fc() {
  traffic::FcAdapterOptions options;
  options.psi_bps = 1e9;
  options.slot_s = 4.096e-6;
  options.overhead_bits = 160;
  options.trees = analysis::FcTreeParams{4, 64, 4, 64};
  return options;
}

void print_fc_table(const traffic::Workload& wl) {
  const auto report =
      analysis::check_feasibility(traffic::to_fc_system(wl, gigabit_fc()));
  std::printf("%s", util::banner("E7: FCs for workload `" + wl.name +
                                 "` (z = " + std::to_string(wl.z()) + ")")
                        .c_str());
  util::TextTable out({"source", "class", "r", "u", "v", "S1", "S2",
                       "B_DDCR(ms)", "d(ms)", "feasible"});
  // One row per class of the first source (classes repeat across sources)
  // plus any source whose numbers differ.
  for (std::size_t i = 0; i < report.classes.size(); ++i) {
    const auto& cls = report.classes[i];
    if (i >= wl.sources[0].classes.size() &&
        cls.klass.substr(0, cls.klass.find('-')) ==
            report.classes[i - wl.sources[0].classes.size()].klass.substr(
                0, report.classes[i - wl.sources[0].classes.size()]
                       .klass.find('-'))) {
      continue;  // identical to the same class on source 0
    }
    out.add_row({cls.source, cls.klass, util::TextTable::cell(cls.r),
                 util::TextTable::cell(cls.u), util::TextTable::cell(cls.v),
                 util::TextTable::cell(cls.s1_slots, 1),
                 util::TextTable::cell(cls.s2_slots, 1),
                 util::TextTable::cell(cls.b_ddcr_s * 1e3, 3),
                 util::TextTable::cell(cls.d_s * 1e3, 3),
                 cls.feasible ? "yes" : "NO"});
  }
  std::printf("%s", out.str().c_str());
  std::printf("offered load %.2f%%, worst margin %.3f ms, verdict %s\n",
              report.offered_load * 100.0, report.worst_margin_s * 1e3,
              report.feasible ? "FEASIBLE" : "INFEASIBLE");
}

double feasibility_frontier(const traffic::Workload& wl) {
  double lo = 0.1;
  double hi = 64.0;
  // Expand lo if even 0.1 is infeasible.
  const auto feasible_at = [&wl](double factor) {
    const auto system =
        traffic::to_fc_system(wl.scaled_load(factor), gigabit_fc());
    return analysis::check_feasibility(system).feasible;
  };
  if (!feasible_at(lo)) {
    return 0.0;
  }
  while (feasible_at(hi)) {
    hi *= 2.0;
    if (hi > 1e6) {
      return hi;
    }
  }
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (feasible_at(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_check_flag(argc, argv);
  bench::BenchReport report("feasibility");
  const traffic::Workload workloads[] = {
      traffic::quickstart(8), traffic::videoconference(8),
      traffic::air_traffic_control(6), traffic::stock_exchange(8)};

  for (const auto& wl : workloads) {
    print_fc_table(wl);
  }

  std::printf("%s", util::banner(
      "E7: feasibility frontier (max load multiplier with FCs intact)")
      .c_str());
  util::TextTable out({"workload", "z", "frontier multiplier",
                       "offered load at frontier"});
  for (const auto& wl : workloads) {
    const double frontier = feasibility_frontier(wl);
    const double load_at =
        wl.scaled_load(std::max(frontier, 1e-9))
            .offered_load_bits_per_second() /
        1e9 * 100.0;
    out.add_row({wl.name, util::TextTable::cell(static_cast<std::int64_t>(wl.z())),
                 util::TextTable::cell(frontier, 2),
                 util::TextTable::cell(load_at, 2) + "%"});
    auto& row = report.add_row();
    row["workload"] = bench::Json(wl.name);
    row["z"] = bench::Json(static_cast<std::int64_t>(wl.z()));
    row["frontier_multiplier"] = bench::Json(frontier);
    row["offered_load_pct_at_frontier"] = bench::Json(load_at);
  }
  std::printf("%s", out.str().c_str());
  report.write();
  return 0;
}
