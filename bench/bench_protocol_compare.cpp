// E10 — Protocol comparison: CSMA/DDCR vs CSMA-CD/BEB vs CSMA/DCR vs TDMA
// across an offered-load sweep on the trading-floor workload.
//
// Expected shape (the paper's motivation): the deterministic deadline-
// driven protocol holds a zero (or near-zero) miss ratio up to loads where
// randomized backoff misses heavily; TDMA is collision-free but pays
// per-round latency; DCR resolves deterministically but in index order,
// not deadline order, so it inverts deadlines under pressure.
#include <cstdio>

#include "baseline/runner.hpp"
#include "bench/harness.hpp"
#include "core/ddcr_config.hpp"
#include "traffic/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hrtdm;
  bench::apply_check_flag(argc, argv);
  using baseline::Protocol;
  bench::BenchReport report("protocol_compare");
  const bool smoke = bench::BenchReport::smoke();

  std::printf("%s", util::banner(
      "E10: deadline-miss ratio and latency vs offered load "
      "(stock exchange, z = 12)").c_str());

  util::TextTable out({"load x", "offered Mbit/s", "protocol", "delivered",
                       "late", "miss %", "mean lat us", "p99 lat us",
                       "inversions", "util %"});
  for (const double factor : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const traffic::Workload wl =
        traffic::stock_exchange(12).scaled_load(factor);
    baseline::ProtocolRunOptions options;
    options.base.ddcr.class_width_c = core::DdcrConfig::class_width_for(
        wl.max_deadline(), options.base.ddcr.F);
    options.base.ddcr.alpha = options.base.ddcr.class_width_c * 2;
    options.base.arrivals = traffic::ArrivalKind::kSaturatingAdversary;
    options.base.arrival_horizon =
        sim::SimTime::from_ns(smoke ? 10'000'000 : 60'000'000);
    options.base.drain_cap =
        sim::SimTime::from_ns(smoke ? 60'000'000 : 300'000'000);
    options.dcr_q = 64;

    for (const Protocol protocol :
         {Protocol::kDdcr, Protocol::kBeb, Protocol::kDcr, Protocol::kTdma,
          Protocol::kStack}) {
      const auto result = baseline::run_protocol(protocol, wl, options);
      out.add_row(
          {util::TextTable::cell(factor, 1),
           util::TextTable::cell(
               wl.offered_load_bits_per_second() / 1e6, 1),
           baseline::protocol_name(protocol),
           util::TextTable::cell(result.metrics.delivered),
           util::TextTable::cell(result.metrics.misses + result.undelivered +
                                 result.dropped),
           util::TextTable::cell(result.miss_ratio() * 100.0, 2),
           util::TextTable::cell(result.metrics.mean_latency_s * 1e6, 1),
           util::TextTable::cell(result.metrics.p99_latency_s * 1e6, 1),
           util::TextTable::cell(result.metrics.deadline_inversions),
           util::TextTable::cell(result.utilization * 100.0, 1)});
      auto& row = report.add_row();
      row["load_factor"] = bench::Json(factor);
      row["protocol"] = bench::Json(baseline::protocol_name(protocol));
      row["delivered"] = bench::Json(result.metrics.delivered);
      row["miss_ratio"] = bench::Json(result.miss_ratio());
      row["mean_latency_us"] =
          bench::Json(result.metrics.mean_latency_s * 1e6);
      row["p99_latency_us"] = bench::Json(result.metrics.p99_latency_s * 1e6);
      row["deadline_inversions"] =
          bench::Json(result.metrics.deadline_inversions);
      row["utilization"] = bench::Json(result.utilization);
    }
  }
  std::printf("%s", out.str().c_str());
  report.write();
  return 0;
}
