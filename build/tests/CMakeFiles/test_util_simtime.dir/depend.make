# Empty dependencies file for test_util_simtime.
# This may be replaced when dependencies are built.
