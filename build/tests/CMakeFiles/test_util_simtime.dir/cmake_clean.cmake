file(REMOVE_RECURSE
  "CMakeFiles/test_util_simtime.dir/test_util_simtime.cpp.o"
  "CMakeFiles/test_util_simtime.dir/test_util_simtime.cpp.o.d"
  "test_util_simtime"
  "test_util_simtime.pdb"
  "test_util_simtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
