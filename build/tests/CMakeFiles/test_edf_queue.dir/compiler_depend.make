# Empty compiler generated dependencies file for test_edf_queue.
# This may be replaced when dependencies are built.
