file(REMOVE_RECURSE
  "CMakeFiles/test_edf_queue.dir/test_edf_queue.cpp.o"
  "CMakeFiles/test_edf_queue.dir/test_edf_queue.cpp.o.d"
  "test_edf_queue"
  "test_edf_queue.pdb"
  "test_edf_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edf_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
