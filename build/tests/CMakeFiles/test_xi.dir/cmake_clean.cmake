file(REMOVE_RECURSE
  "CMakeFiles/test_xi.dir/test_xi.cpp.o"
  "CMakeFiles/test_xi.dir/test_xi.cpp.o.d"
  "test_xi"
  "test_xi.pdb"
  "test_xi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
