# Empty dependencies file for test_xi.
# This may be replaced when dependencies are built.
