# Empty dependencies file for test_tree_inference.
# This may be replaced when dependencies are built.
