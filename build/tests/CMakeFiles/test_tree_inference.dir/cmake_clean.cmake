file(REMOVE_RECURSE
  "CMakeFiles/test_tree_inference.dir/test_tree_inference.cpp.o"
  "CMakeFiles/test_tree_inference.dir/test_tree_inference.cpp.o.d"
  "test_tree_inference"
  "test_tree_inference.pdb"
  "test_tree_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
