file(REMOVE_RECURSE
  "CMakeFiles/test_feasibility_atm.dir/test_feasibility_atm.cpp.o"
  "CMakeFiles/test_feasibility_atm.dir/test_feasibility_atm.cpp.o.d"
  "test_feasibility_atm"
  "test_feasibility_atm.pdb"
  "test_feasibility_atm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feasibility_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
