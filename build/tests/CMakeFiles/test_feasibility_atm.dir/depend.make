# Empty dependencies file for test_feasibility_atm.
# This may be replaced when dependencies are built.
