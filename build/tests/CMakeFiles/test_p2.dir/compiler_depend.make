# Empty compiler generated dependencies file for test_p2.
# This may be replaced when dependencies are built.
