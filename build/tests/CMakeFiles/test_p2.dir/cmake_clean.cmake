file(REMOVE_RECURSE
  "CMakeFiles/test_p2.dir/test_p2.cpp.o"
  "CMakeFiles/test_p2.dir/test_p2.cpp.o.d"
  "test_p2"
  "test_p2.pdb"
  "test_p2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
