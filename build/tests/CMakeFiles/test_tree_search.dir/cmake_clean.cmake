file(REMOVE_RECURSE
  "CMakeFiles/test_tree_search.dir/test_tree_search.cpp.o"
  "CMakeFiles/test_tree_search.dir/test_tree_search.cpp.o.d"
  "test_tree_search"
  "test_tree_search.pdb"
  "test_tree_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
