# Empty dependencies file for test_net_channel.
# This may be replaced when dependencies are built.
