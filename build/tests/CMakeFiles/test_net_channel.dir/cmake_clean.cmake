file(REMOVE_RECURSE
  "CMakeFiles/test_net_channel.dir/test_net_channel.cpp.o"
  "CMakeFiles/test_net_channel.dir/test_net_channel.cpp.o.d"
  "test_net_channel"
  "test_net_channel.pdb"
  "test_net_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
