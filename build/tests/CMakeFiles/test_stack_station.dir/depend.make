# Empty dependencies file for test_stack_station.
# This may be replaced when dependencies are built.
