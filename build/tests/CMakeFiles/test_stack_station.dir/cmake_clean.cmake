file(REMOVE_RECURSE
  "CMakeFiles/test_stack_station.dir/test_stack_station.cpp.o"
  "CMakeFiles/test_stack_station.dir/test_stack_station.cpp.o.d"
  "test_stack_station"
  "test_stack_station.pdb"
  "test_stack_station[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
