# Empty dependencies file for test_ddcr_station.
# This may be replaced when dependencies are built.
