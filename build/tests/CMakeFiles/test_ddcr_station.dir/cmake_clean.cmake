file(REMOVE_RECURSE
  "CMakeFiles/test_ddcr_station.dir/test_ddcr_station.cpp.o"
  "CMakeFiles/test_ddcr_station.dir/test_ddcr_station.cpp.o.d"
  "test_ddcr_station"
  "test_ddcr_station.pdb"
  "test_ddcr_station[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddcr_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
