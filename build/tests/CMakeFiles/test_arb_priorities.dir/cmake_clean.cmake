file(REMOVE_RECURSE
  "CMakeFiles/test_arb_priorities.dir/test_arb_priorities.cpp.o"
  "CMakeFiles/test_arb_priorities.dir/test_arb_priorities.cpp.o.d"
  "test_arb_priorities"
  "test_arb_priorities.pdb"
  "test_arb_priorities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arb_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
