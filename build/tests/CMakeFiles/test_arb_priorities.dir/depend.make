# Empty dependencies file for test_arb_priorities.
# This may be replaced when dependencies are built.
