# Empty dependencies file for test_ddcr_network.
# This may be replaced when dependencies are built.
