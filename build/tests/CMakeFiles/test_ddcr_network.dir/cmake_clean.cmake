file(REMOVE_RECURSE
  "CMakeFiles/test_ddcr_network.dir/test_ddcr_network.cpp.o"
  "CMakeFiles/test_ddcr_network.dir/test_ddcr_network.cpp.o.d"
  "test_ddcr_network"
  "test_ddcr_network.pdb"
  "test_ddcr_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddcr_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
