file(REMOVE_RECURSE
  "CMakeFiles/test_multi_channel.dir/test_multi_channel.cpp.o"
  "CMakeFiles/test_multi_channel.dir/test_multi_channel.cpp.o.d"
  "test_multi_channel"
  "test_multi_channel.pdb"
  "test_multi_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
