# Empty dependencies file for test_channel_fuzz.
# This may be replaced when dependencies are built.
