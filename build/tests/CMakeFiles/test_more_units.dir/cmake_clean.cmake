file(REMOVE_RECURSE
  "CMakeFiles/test_more_units.dir/test_more_units.cpp.o"
  "CMakeFiles/test_more_units.dir/test_more_units.cpp.o.d"
  "test_more_units"
  "test_more_units.pdb"
  "test_more_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
