# Empty compiler generated dependencies file for test_optimal_m.
# This may be replaced when dependencies are built.
