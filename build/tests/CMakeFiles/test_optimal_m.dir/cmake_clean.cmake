file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_m.dir/test_optimal_m.cpp.o"
  "CMakeFiles/test_optimal_m.dir/test_optimal_m.cpp.o.d"
  "test_optimal_m"
  "test_optimal_m.pdb"
  "test_optimal_m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
