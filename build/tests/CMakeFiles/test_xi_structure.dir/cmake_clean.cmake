file(REMOVE_RECURSE
  "CMakeFiles/test_xi_structure.dir/test_xi_structure.cpp.o"
  "CMakeFiles/test_xi_structure.dir/test_xi_structure.cpp.o.d"
  "test_xi_structure"
  "test_xi_structure.pdb"
  "test_xi_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xi_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
