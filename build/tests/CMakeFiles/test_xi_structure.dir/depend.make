# Empty dependencies file for test_xi_structure.
# This may be replaced when dependencies are built.
