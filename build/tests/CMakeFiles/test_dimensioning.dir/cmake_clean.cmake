file(REMOVE_RECURSE
  "CMakeFiles/test_dimensioning.dir/test_dimensioning.cpp.o"
  "CMakeFiles/test_dimensioning.dir/test_dimensioning.cpp.o.d"
  "test_dimensioning"
  "test_dimensioning.pdb"
  "test_dimensioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
