# Empty dependencies file for test_dimensioning.
# This may be replaced when dependencies are built.
