file(REMOVE_RECURSE
  "CMakeFiles/test_xi_expected.dir/test_xi_expected.cpp.o"
  "CMakeFiles/test_xi_expected.dir/test_xi_expected.cpp.o.d"
  "test_xi_expected"
  "test_xi_expected.pdb"
  "test_xi_expected[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xi_expected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
