# Empty compiler generated dependencies file for test_xi_expected.
# This may be replaced when dependencies are built.
