# Empty dependencies file for bench_optimal_m.
# This may be replaced when dependencies are built.
