file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_m.dir/bench_optimal_m.cpp.o"
  "CMakeFiles/bench_optimal_m.dir/bench_optimal_m.cpp.o.d"
  "bench_optimal_m"
  "bench_optimal_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
