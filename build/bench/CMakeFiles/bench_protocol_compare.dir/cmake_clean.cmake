file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_compare.dir/bench_protocol_compare.cpp.o"
  "CMakeFiles/bench_protocol_compare.dir/bench_protocol_compare.cpp.o.d"
  "bench_protocol_compare"
  "bench_protocol_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
