# Empty dependencies file for bench_protocol_compare.
# This may be replaced when dependencies are built.
