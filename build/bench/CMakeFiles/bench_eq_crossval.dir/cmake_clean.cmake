file(REMOVE_RECURSE
  "CMakeFiles/bench_eq_crossval.dir/bench_eq_crossval.cpp.o"
  "CMakeFiles/bench_eq_crossval.dir/bench_eq_crossval.cpp.o.d"
  "bench_eq_crossval"
  "bench_eq_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
