# Empty compiler generated dependencies file for bench_eq_crossval.
# This may be replaced when dependencies are built.
