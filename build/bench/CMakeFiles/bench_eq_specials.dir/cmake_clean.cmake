file(REMOVE_RECURSE
  "CMakeFiles/bench_eq_specials.dir/bench_eq_specials.cpp.o"
  "CMakeFiles/bench_eq_specials.dir/bench_eq_specials.cpp.o.d"
  "bench_eq_specials"
  "bench_eq_specials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq_specials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
