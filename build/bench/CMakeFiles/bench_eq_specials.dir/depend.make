# Empty dependencies file for bench_eq_specials.
# This may be replaced when dependencies are built.
