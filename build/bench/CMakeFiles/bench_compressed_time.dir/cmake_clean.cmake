file(REMOVE_RECURSE
  "CMakeFiles/bench_compressed_time.dir/bench_compressed_time.cpp.o"
  "CMakeFiles/bench_compressed_time.dir/bench_compressed_time.cpp.o.d"
  "bench_compressed_time"
  "bench_compressed_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressed_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
