# Empty compiler generated dependencies file for bench_compressed_time.
# This may be replaced when dependencies are built.
