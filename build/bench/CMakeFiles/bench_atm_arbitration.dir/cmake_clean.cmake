file(REMOVE_RECURSE
  "CMakeFiles/bench_atm_arbitration.dir/bench_atm_arbitration.cpp.o"
  "CMakeFiles/bench_atm_arbitration.dir/bench_atm_arbitration.cpp.o.d"
  "bench_atm_arbitration"
  "bench_atm_arbitration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atm_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
