# Empty compiler generated dependencies file for bench_atm_arbitration.
# This may be replaced when dependencies are built.
