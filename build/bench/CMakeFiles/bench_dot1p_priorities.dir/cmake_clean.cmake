file(REMOVE_RECURSE
  "CMakeFiles/bench_dot1p_priorities.dir/bench_dot1p_priorities.cpp.o"
  "CMakeFiles/bench_dot1p_priorities.dir/bench_dot1p_priorities.cpp.o.d"
  "bench_dot1p_priorities"
  "bench_dot1p_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dot1p_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
