# Empty compiler generated dependencies file for bench_dot1p_priorities.
# This may be replaced when dependencies are built.
