# Empty compiler generated dependencies file for bench_packet_bursting.
# This may be replaced when dependencies are built.
