file(REMOVE_RECURSE
  "CMakeFiles/bench_packet_bursting.dir/bench_packet_bursting.cpp.o"
  "CMakeFiles/bench_packet_bursting.dir/bench_packet_bursting.cpp.o.d"
  "bench_packet_bursting"
  "bench_packet_bursting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_bursting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
