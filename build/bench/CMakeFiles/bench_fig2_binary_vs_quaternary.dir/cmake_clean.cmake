file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_binary_vs_quaternary.dir/bench_fig2_binary_vs_quaternary.cpp.o"
  "CMakeFiles/bench_fig2_binary_vs_quaternary.dir/bench_fig2_binary_vs_quaternary.cpp.o.d"
  "bench_fig2_binary_vs_quaternary"
  "bench_fig2_binary_vs_quaternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_binary_vs_quaternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
