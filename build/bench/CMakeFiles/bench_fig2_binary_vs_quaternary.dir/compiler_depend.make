# Empty compiler generated dependencies file for bench_fig2_binary_vs_quaternary.
# This may be replaced when dependencies are built.
