# Empty dependencies file for bench_multi_channel.
# This may be replaced when dependencies are built.
