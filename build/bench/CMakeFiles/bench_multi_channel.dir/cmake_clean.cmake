file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_channel.dir/bench_multi_channel.cpp.o"
  "CMakeFiles/bench_multi_channel.dir/bench_multi_channel.cpp.o.d"
  "bench_multi_channel"
  "bench_multi_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
