
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_tolerance.cpp" "bench/CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cpp.o" "gcc" "bench/CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hrtdm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hrtdm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hrtdm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hrtdm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hrtdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hrtdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hrtdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
