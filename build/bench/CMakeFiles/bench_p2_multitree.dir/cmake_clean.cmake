file(REMOVE_RECURSE
  "CMakeFiles/bench_p2_multitree.dir/bench_p2_multitree.cpp.o"
  "CMakeFiles/bench_p2_multitree.dir/bench_p2_multitree.cpp.o.d"
  "bench_p2_multitree"
  "bench_p2_multitree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2_multitree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
