# Empty compiler generated dependencies file for bench_p2_multitree.
# This may be replaced when dependencies are built.
