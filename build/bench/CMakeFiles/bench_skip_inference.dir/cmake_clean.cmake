file(REMOVE_RECURSE
  "CMakeFiles/bench_skip_inference.dir/bench_skip_inference.cpp.o"
  "CMakeFiles/bench_skip_inference.dir/bench_skip_inference.cpp.o.d"
  "bench_skip_inference"
  "bench_skip_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skip_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
