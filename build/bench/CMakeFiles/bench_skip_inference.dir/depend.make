# Empty dependencies file for bench_skip_inference.
# This may be replaced when dependencies are built.
