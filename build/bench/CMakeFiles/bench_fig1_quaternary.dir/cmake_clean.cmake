file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_quaternary.dir/bench_fig1_quaternary.cpp.o"
  "CMakeFiles/bench_fig1_quaternary.dir/bench_fig1_quaternary.cpp.o.d"
  "bench_fig1_quaternary"
  "bench_fig1_quaternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_quaternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
