# Empty dependencies file for bench_fig1_quaternary.
# This may be replaced when dependencies are built.
