file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_vs_xi.dir/bench_sim_vs_xi.cpp.o"
  "CMakeFiles/bench_sim_vs_xi.dir/bench_sim_vs_xi.cpp.o.d"
  "bench_sim_vs_xi"
  "bench_sim_vs_xi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_vs_xi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
