file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_traffic.dir/arrival.cpp.o"
  "CMakeFiles/hrtdm_traffic.dir/arrival.cpp.o.d"
  "CMakeFiles/hrtdm_traffic.dir/fc_adapter.cpp.o"
  "CMakeFiles/hrtdm_traffic.dir/fc_adapter.cpp.o.d"
  "CMakeFiles/hrtdm_traffic.dir/serialize.cpp.o"
  "CMakeFiles/hrtdm_traffic.dir/serialize.cpp.o.d"
  "CMakeFiles/hrtdm_traffic.dir/workload.cpp.o"
  "CMakeFiles/hrtdm_traffic.dir/workload.cpp.o.d"
  "libhrtdm_traffic.a"
  "libhrtdm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
