
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/arrival.cpp" "src/traffic/CMakeFiles/hrtdm_traffic.dir/arrival.cpp.o" "gcc" "src/traffic/CMakeFiles/hrtdm_traffic.dir/arrival.cpp.o.d"
  "/root/repo/src/traffic/fc_adapter.cpp" "src/traffic/CMakeFiles/hrtdm_traffic.dir/fc_adapter.cpp.o" "gcc" "src/traffic/CMakeFiles/hrtdm_traffic.dir/fc_adapter.cpp.o.d"
  "/root/repo/src/traffic/serialize.cpp" "src/traffic/CMakeFiles/hrtdm_traffic.dir/serialize.cpp.o" "gcc" "src/traffic/CMakeFiles/hrtdm_traffic.dir/serialize.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/traffic/CMakeFiles/hrtdm_traffic.dir/workload.cpp.o" "gcc" "src/traffic/CMakeFiles/hrtdm_traffic.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrtdm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hrtdm_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
