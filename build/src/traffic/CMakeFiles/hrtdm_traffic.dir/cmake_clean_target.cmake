file(REMOVE_RECURSE
  "libhrtdm_traffic.a"
)
