# Empty compiler generated dependencies file for hrtdm_traffic.
# This may be replaced when dependencies are built.
