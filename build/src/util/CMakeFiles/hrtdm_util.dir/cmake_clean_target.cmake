file(REMOVE_RECURSE
  "libhrtdm_util.a"
)
