file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_util.dir/check.cpp.o"
  "CMakeFiles/hrtdm_util.dir/check.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/cli.cpp.o"
  "CMakeFiles/hrtdm_util.dir/cli.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/log.cpp.o"
  "CMakeFiles/hrtdm_util.dir/log.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/math.cpp.o"
  "CMakeFiles/hrtdm_util.dir/math.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/rng.cpp.o"
  "CMakeFiles/hrtdm_util.dir/rng.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/simtime.cpp.o"
  "CMakeFiles/hrtdm_util.dir/simtime.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/stats.cpp.o"
  "CMakeFiles/hrtdm_util.dir/stats.cpp.o.d"
  "CMakeFiles/hrtdm_util.dir/table.cpp.o"
  "CMakeFiles/hrtdm_util.dir/table.cpp.o.d"
  "libhrtdm_util.a"
  "libhrtdm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
