# Empty dependencies file for hrtdm_util.
# This may be replaced when dependencies are built.
