
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dimensioning.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/dimensioning.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/dimensioning.cpp.o.d"
  "/root/repo/src/analysis/efficiency.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/efficiency.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/efficiency.cpp.o.d"
  "/root/repo/src/analysis/feasibility.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/feasibility.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/feasibility.cpp.o.d"
  "/root/repo/src/analysis/feasibility_atm.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/feasibility_atm.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/feasibility_atm.cpp.o.d"
  "/root/repo/src/analysis/optimal_m.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/optimal_m.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/optimal_m.cpp.o.d"
  "/root/repo/src/analysis/p2.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/p2.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/p2.cpp.o.d"
  "/root/repo/src/analysis/xi.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/xi.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/xi.cpp.o.d"
  "/root/repo/src/analysis/xi_expected.cpp" "src/analysis/CMakeFiles/hrtdm_analysis.dir/xi_expected.cpp.o" "gcc" "src/analysis/CMakeFiles/hrtdm_analysis.dir/xi_expected.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hrtdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
