# Empty dependencies file for hrtdm_analysis.
# This may be replaced when dependencies are built.
