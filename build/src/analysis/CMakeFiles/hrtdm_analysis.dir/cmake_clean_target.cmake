file(REMOVE_RECURSE
  "libhrtdm_analysis.a"
)
