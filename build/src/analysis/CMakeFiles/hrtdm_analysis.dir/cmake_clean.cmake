file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_analysis.dir/dimensioning.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/dimensioning.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/efficiency.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/efficiency.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/feasibility.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/feasibility.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/feasibility_atm.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/feasibility_atm.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/optimal_m.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/optimal_m.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/p2.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/p2.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/xi.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/xi.cpp.o.d"
  "CMakeFiles/hrtdm_analysis.dir/xi_expected.cpp.o"
  "CMakeFiles/hrtdm_analysis.dir/xi_expected.cpp.o.d"
  "libhrtdm_analysis.a"
  "libhrtdm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
