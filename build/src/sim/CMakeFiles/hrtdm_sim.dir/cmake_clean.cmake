file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_sim.dir/simulator.cpp.o"
  "CMakeFiles/hrtdm_sim.dir/simulator.cpp.o.d"
  "libhrtdm_sim.a"
  "libhrtdm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
