file(REMOVE_RECURSE
  "libhrtdm_sim.a"
)
