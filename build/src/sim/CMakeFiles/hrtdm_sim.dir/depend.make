# Empty dependencies file for hrtdm_sim.
# This may be replaced when dependencies are built.
