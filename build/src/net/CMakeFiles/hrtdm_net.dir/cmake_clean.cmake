file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_net.dir/channel.cpp.o"
  "CMakeFiles/hrtdm_net.dir/channel.cpp.o.d"
  "CMakeFiles/hrtdm_net.dir/phy.cpp.o"
  "CMakeFiles/hrtdm_net.dir/phy.cpp.o.d"
  "CMakeFiles/hrtdm_net.dir/trace.cpp.o"
  "CMakeFiles/hrtdm_net.dir/trace.cpp.o.d"
  "libhrtdm_net.a"
  "libhrtdm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
