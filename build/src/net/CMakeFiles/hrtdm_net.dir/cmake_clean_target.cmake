file(REMOVE_RECURSE
  "libhrtdm_net.a"
)
