# Empty dependencies file for hrtdm_net.
# This may be replaced when dependencies are built.
