file(REMOVE_RECURSE
  "libhrtdm_baseline.a"
)
