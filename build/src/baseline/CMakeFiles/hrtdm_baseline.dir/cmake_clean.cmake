file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_baseline.dir/beb_station.cpp.o"
  "CMakeFiles/hrtdm_baseline.dir/beb_station.cpp.o.d"
  "CMakeFiles/hrtdm_baseline.dir/dcr_station.cpp.o"
  "CMakeFiles/hrtdm_baseline.dir/dcr_station.cpp.o.d"
  "CMakeFiles/hrtdm_baseline.dir/runner.cpp.o"
  "CMakeFiles/hrtdm_baseline.dir/runner.cpp.o.d"
  "CMakeFiles/hrtdm_baseline.dir/stack_station.cpp.o"
  "CMakeFiles/hrtdm_baseline.dir/stack_station.cpp.o.d"
  "CMakeFiles/hrtdm_baseline.dir/tdma_station.cpp.o"
  "CMakeFiles/hrtdm_baseline.dir/tdma_station.cpp.o.d"
  "libhrtdm_baseline.a"
  "libhrtdm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
