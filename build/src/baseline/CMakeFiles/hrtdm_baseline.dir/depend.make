# Empty dependencies file for hrtdm_baseline.
# This may be replaced when dependencies are built.
