# Empty compiler generated dependencies file for hrtdm_core.
# This may be replaced when dependencies are built.
