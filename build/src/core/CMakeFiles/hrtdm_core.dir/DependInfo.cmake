
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ddcr_config.cpp" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_config.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_config.cpp.o.d"
  "/root/repo/src/core/ddcr_network.cpp" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_network.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_network.cpp.o.d"
  "/root/repo/src/core/ddcr_station.cpp" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_station.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/ddcr_station.cpp.o.d"
  "/root/repo/src/core/edf_queue.cpp" "src/core/CMakeFiles/hrtdm_core.dir/edf_queue.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/edf_queue.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/hrtdm_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/multi_channel.cpp" "src/core/CMakeFiles/hrtdm_core.dir/multi_channel.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/multi_channel.cpp.o.d"
  "/root/repo/src/core/tree_search.cpp" "src/core/CMakeFiles/hrtdm_core.dir/tree_search.cpp.o" "gcc" "src/core/CMakeFiles/hrtdm_core.dir/tree_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hrtdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hrtdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hrtdm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hrtdm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hrtdm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
