file(REMOVE_RECURSE
  "libhrtdm_core.a"
)
