file(REMOVE_RECURSE
  "CMakeFiles/hrtdm_core.dir/ddcr_config.cpp.o"
  "CMakeFiles/hrtdm_core.dir/ddcr_config.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/ddcr_network.cpp.o"
  "CMakeFiles/hrtdm_core.dir/ddcr_network.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/ddcr_station.cpp.o"
  "CMakeFiles/hrtdm_core.dir/ddcr_station.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/edf_queue.cpp.o"
  "CMakeFiles/hrtdm_core.dir/edf_queue.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/metrics.cpp.o"
  "CMakeFiles/hrtdm_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/multi_channel.cpp.o"
  "CMakeFiles/hrtdm_core.dir/multi_channel.cpp.o.d"
  "CMakeFiles/hrtdm_core.dir/tree_search.cpp.o"
  "CMakeFiles/hrtdm_core.dir/tree_search.cpp.o.d"
  "libhrtdm_core.a"
  "libhrtdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtdm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
