file(REMOVE_RECURSE
  "CMakeFiles/auto_dimension.dir/auto_dimension.cpp.o"
  "CMakeFiles/auto_dimension.dir/auto_dimension.cpp.o.d"
  "auto_dimension"
  "auto_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
