# Empty compiler generated dependencies file for auto_dimension.
# This may be replaced when dependencies are built.
