file(REMOVE_RECURSE
  "CMakeFiles/gigabit_videoconf.dir/gigabit_videoconf.cpp.o"
  "CMakeFiles/gigabit_videoconf.dir/gigabit_videoconf.cpp.o.d"
  "gigabit_videoconf"
  "gigabit_videoconf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gigabit_videoconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
