# Empty dependencies file for gigabit_videoconf.
# This may be replaced when dependencies are built.
