# Empty compiler generated dependencies file for collision_trace.
# This may be replaced when dependencies are built.
