file(REMOVE_RECURSE
  "CMakeFiles/collision_trace.dir/collision_trace.cpp.o"
  "CMakeFiles/collision_trace.dir/collision_trace.cpp.o.d"
  "collision_trace"
  "collision_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
