# Empty dependencies file for export_data.
# This may be replaced when dependencies are built.
