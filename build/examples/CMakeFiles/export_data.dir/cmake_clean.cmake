file(REMOVE_RECURSE
  "CMakeFiles/export_data.dir/export_data.cpp.o"
  "CMakeFiles/export_data.dir/export_data.cpp.o.d"
  "export_data"
  "export_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
