# Empty compiler generated dependencies file for atm_fabric.
# This may be replaced when dependencies are built.
