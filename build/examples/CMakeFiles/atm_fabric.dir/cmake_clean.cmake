file(REMOVE_RECURSE
  "CMakeFiles/atm_fabric.dir/atm_fabric.cpp.o"
  "CMakeFiles/atm_fabric.dir/atm_fabric.cpp.o.d"
  "atm_fabric"
  "atm_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
