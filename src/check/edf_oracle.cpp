#include "check/edf_oracle.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace hrtdm::check {
namespace {

/// Heap order: earliest absolute deadline first, uid breaking ties — the
/// same total order core::EdfQueue imposes station-locally.
struct EdfLater {
  bool operator()(const Message& a, const Message& b) const {
    if (a.absolute_deadline != b.absolute_deadline) {
      return a.absolute_deadline > b.absolute_deadline;
    }
    return a.uid > b.uid;
  }
};

}  // namespace

SimTime OracleSchedule::completion_of(std::int64_t uid) const {
  for (const OracleTx& tx : order) {
    if (tx.uid == uid) return tx.completed;
  }
  HRTDM_EXPECT(false, "oracle schedule has no transmission for uid");
  return SimTime::zero();
}

bool OracleSchedule::contains(std::int64_t uid) const {
  return std::any_of(order.begin(), order.end(),
                     [uid](const OracleTx& tx) { return tx.uid == uid; });
}

OracleSchedule EdfOracle::schedule(std::vector<Message> messages) const {
  phy_.validate();
  std::sort(messages.begin(), messages.end(),
            [](const Message& a, const Message& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.uid < b.uid;
            });
  for (std::size_t i = 1; i < messages.size(); ++i) {
    HRTDM_EXPECT(messages[i - 1].uid != messages[i].uid,
                 "oracle input uids must be unique");
  }

  OracleSchedule out;
  out.order.reserve(messages.size());
  std::priority_queue<Message, std::vector<Message>, EdfLater> pending;
  std::size_t next = 0;
  SimTime clock = SimTime::zero();
  while (next < messages.size() || !pending.empty()) {
    if (pending.empty()) {
      // Work-conserving server: jump to the next arrival.
      clock = std::max(clock, messages[next].arrival);
    }
    while (next < messages.size() && messages[next].arrival <= clock) {
      pending.push(messages[next]);
      ++next;
    }
    const Message msg = pending.top();
    pending.pop();
    OracleTx tx;
    tx.uid = msg.uid;
    tx.source = msg.source;
    tx.arrival = msg.arrival;
    tx.deadline = msg.absolute_deadline;
    tx.start = clock;
    // Non-preemptive occupancy: a win of the channel costs at least one
    // slot even for tiny frames, exactly like a successful contention slot.
    const Duration service = std::max(phy_.tx_time(msg.l_bits), phy_.slot_x);
    tx.completed = clock + service;
    clock = tx.completed;
    if (tx.completed > tx.deadline) {
      ++out.misses;
      out.feasible = false;
    }
    out.makespan = std::max(out.makespan, tx.completed);
    out.order.push_back(tx);
  }
  return out;
}

}  // namespace hrtdm::check
