// Deterministic shrinking replay harness.
//
// When a conformance check fails, the offending run is usually buried in a
// large generated workload. A ReplayCase captures everything needed to
// reproduce one run from explicit message instances (no arrival generator,
// no seed sensitivity); the Shrinker then minimises a failing case with a
// ddmin-style search — dropping message chunks, renumbering away unused
// sources, normalising arrival offsets and halving deadline slack — while
// re-running the case after every candidate reduction to confirm it still
// fails. The minimal case serialises into the line-oriented text format the
// repo already uses for workloads (traffic/serialize.hpp) and is pinned
// under tests/repro/ as a regression, auto-loaded by test_repro_cases.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/ddcr_network.hpp"
#include "fault/churn_plan.hpp"
#include "fault/drift_plan.hpp"
#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "net/phy.hpp"
#include "traffic/message.hpp"

namespace hrtdm::check {

/// A self-contained, deterministic run: explicit message instances instead
/// of a generated arrival stream. static_indices stays empty (one spread
/// index per source is allocated automatically) and corruption_prob stays 0
/// — repro cases are exact by construction. Hostile scenarios stay exact
/// too: scripted fault/churn/drift plans replay through a FaultInjector
/// seeded with fault_seed, and the Gilbert-Elliott channel mode draws from
/// the channel's own seeded RNG split.
struct ReplayCase {
  std::string name = "repro";
  int stations = 1;
  net::PhyConfig phy;
  net::CollisionMode collision_mode = net::CollisionMode::kDestructive;
  core::DdcrConfig ddcr;
  /// Assert every completion meets its deadline when replaying.
  bool expect_timeliness = false;
  /// EDF-order tolerance; zero = the comparator's auto default.
  util::Duration edf_tolerance;
  std::vector<traffic::Message> messages;

  /// Hostile-world axes (docs/FAULTS.md), all empty by default. When any
  /// is populated the replay installs a FaultInjector with the standard
  /// campaign hooks (crash -> reset_for_rejoin, churn -> go_offline /
  /// bring_online, drift resync while the victim is not synced) and the
  /// conformance check clips to the injector's clean prefix.
  fault::FaultPlan fault_plan;
  fault::ChurnPlan churn;
  fault::DriftPlan drift;
  /// Seed for the injector's probability draws (symmetric/asymmetric
  /// windows); the plans' *shapes* are explicit, so this only pins the
  /// in-window outcomes.
  std::uint64_t fault_seed = 1;

  bool hostile() const {
    return !fault_plan.empty() || !churn.empty() || !drift.specs.empty();
  }

  /// Contract-fails on out-of-range sources, duplicate uids, populated
  /// static_indices, nonzero corruption_prob or invalid hostile plans.
  void validate() const;
};

/// Replays the case on a fresh testbed under the full differential
/// conformance check and returns the report.
core::ConformanceReport replay_case(const ReplayCase& c);

/// Line-oriented text rendering; parse_case() round-trips it exactly.
std::string serialize_case(const ReplayCase& c);
ReplayCase parse_case(const std::string& text);

/// File convenience wrappers (contract-fail on I/O errors).
ReplayCase load_case_file(const std::string& path);
void save_case_file(const ReplayCase& c, const std::string& path);

struct ShrinkResult {
  ReplayCase minimal;
  int evals = 0;     ///< property evaluations spent
  int accepted = 0;  ///< reductions that kept the case failing
};

class Shrinker {
 public:
  /// Returns true when the case still exhibits the failure being chased.
  using Property = std::function<bool(const ReplayCase&)>;

  explicit Shrinker(Property property);

  /// Minimises `start` (which must satisfy the property). Deterministic:
  /// the same input and property always shrink to the same case. At most
  /// `max_evals` property evaluations are spent.
  ShrinkResult shrink(ReplayCase start, int max_evals = 400) const;

  /// The default property: the differential conformance check reports a
  /// violation.
  static Property conformance_fails();

 private:
  Property property_;
};

}  // namespace hrtdm::check
