// Independent centralized non-preemptive EDF oracle.
//
// The paper's central claim is that CSMA/DDCR *emulates distributed
// non-preemptive EDF*. Everything else in the repo validates the simulator
// against the paper's analysis; this oracle is the other leg of the
// differential: a from-scratch, centralized scheduler that consumes the
// same arrival stream and produces the ideal transmission schedule a
// clairvoyant single-queue NP-EDF server would realise on the same PHY.
//
// It deliberately shares no code with the protocol stack: no slots, no
// channel, no tree search — just a priority queue over (DM, uid), the exact
// total order every DdcrStation's local EdfQueue uses. Conformance checks
// (check/conformance.hpp) compare a recorded CSMA/DDCR run against this
// schedule: the protocol may only be slower by bounded search overhead,
// never differently ordered beyond the deadline-class granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "net/phy.hpp"
#include "traffic/message.hpp"

namespace hrtdm::check {

using traffic::Message;
using util::Duration;
using util::SimTime;

/// One transmission in the ideal schedule.
struct OracleTx {
  std::int64_t uid = -1;
  int source = -1;
  SimTime arrival;
  SimTime deadline;
  SimTime start;
  SimTime completed;
};

struct OracleSchedule {
  /// Transmissions in start order (equivalently completion order — the
  /// server is a single non-preemptive channel).
  std::vector<OracleTx> order;
  /// True iff every completion is at or before its absolute deadline. When
  /// the ideal centralized server already misses, no distributed protocol
  /// can meet the deadline either — a necessary-condition cross-check for
  /// the feasibility analysis.
  bool feasible = true;
  std::int64_t misses = 0;
  /// Last completion instant (zero for an empty schedule).
  SimTime makespan;

  /// Completion time of `uid`; contract-fails when absent.
  SimTime completion_of(std::int64_t uid) const;
  bool contains(std::int64_t uid) const;
};

class EdfOracle {
 public:
  /// The oracle charges each message the same channel occupancy a
  /// successful contention slot costs: max(tx_time(l'), slot x).
  explicit EdfOracle(const net::PhyConfig& phy) : phy_(phy) {}

  /// Ideal non-preemptive EDF schedule over the message instances.
  /// Work-conserving: the server idles only when nothing has arrived.
  /// Ties (equal DM) break by uid, matching core::EdfQueue's order.
  /// Message uids must be unique.
  OracleSchedule schedule(std::vector<Message> messages) const;

 private:
  net::PhyConfig phy_;
};

}  // namespace hrtdm::check
