// Independent epoch/mode replica driven by ground-truth slot records.
//
// Every DdcrStation runs the CSMA/DDCR mode machine off the observations it
// hears. The tracker re-runs that machine a second time — from the channel's
// own SlotRecord stream, with no queues, no reference time and no station
// state — and extracts, per time tree search, the quantities the paper's
// analysis bounds: search slots consumed, resolution events (successes and
// leaf collisions) and the nested static searches. check::BoundChecker then
// holds those observations against the exact xi table and the P2 multi-tree
// bound; a disagreement between the tracker's totals and the stations' own
// counters is itself a conformance violation (epoch accounting drift).
//
// The tracker assumes fault-free destructive-mode operation: no
// SlotInterceptor, no corruption, no station crashes. Callers gate on that
// (check::ConformanceComparator does) — under faults the replicas may
// legitimately diverge from any channel-side reconstruction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ddcr_config.hpp"
#include "core/tree_search.hpp"
#include "net/channel.hpp"

namespace hrtdm::check {

using util::SimTime;

/// One completed time tree search (begin() to done()).
struct TtsRunRecord {
  std::int64_t epoch = 0;         ///< 1-based epoch the run belongs to
  std::int64_t search_slots = 0;  ///< engine count: silences + collisions
  std::int64_t successes = 0;     ///< time-level resolutions (non-burst)
  std::int64_t leaf_collisions = 0;  ///< ties handed to the static search
  SimTime first_slot_start;       ///< start of the first probe slot
  SimTime last_slot_end;          ///< end of the last slot (incl. nested STs)
  /// Resolution events at time-tree level — the k of xi(k, t). Within one
  /// run every resolution lands on a distinct leaf (the DFS frontier is
  /// strictly monotone), so k_effective <= F structurally.
  std::int64_t k_effective() const { return successes + leaf_collisions; }
};

/// One completed static tree tie-break (nested inside a time tree search).
struct StsRunRecord {
  std::int64_t epoch = 0;
  std::int64_t search_slots = 0;  ///< engine count: silences + collisions
  std::int64_t successes = 0;     ///< s distinct static indices resolved
  std::int64_t leaf_retries = 0;  ///< lone-leaf collisions (noise only)
  SimTime first_slot_start;
  SimTime last_slot_end;
};

class EpochTracker {
 public:
  explicit EpochTracker(const core::DdcrConfig& config);

  /// Feeds one ground-truth slot. Records must arrive in channel order.
  /// Burst continuations advance no search state (the channel was never
  /// relinquished), exactly as in DdcrStation::observe.
  void on_slot(const net::SlotRecord& record);

  /// Marks the end of the recorded stream. A search still in progress
  /// (truncated recording, e.g. a faulted suffix was cut off) is discarded
  /// rather than recorded as complete.
  void finish();

  std::int64_t epochs() const { return epochs_; }
  const std::vector<TtsRunRecord>& tts_runs() const { return tts_runs_; }
  const std::vector<StsRunRecord>& sts_runs() const { return sts_runs_; }
  /// True when finish() cut off a search in progress.
  bool truncated_mid_search() const { return truncated_mid_search_; }

  /// Totals over *completed* runs, for cross-checking the stations' own
  /// search_slots_time / search_slots_static counters.
  std::int64_t total_tts_search_slots() const;
  std::int64_t total_sts_search_slots() const;
  std::int64_t total_leaf_collisions() const;

 private:
  enum class Mode { kCsmaCd, kTts, kSts };

  void start_epoch();
  void start_tts();
  void finish_tts();
  void finish_sts();
  void note_span(SimTime start, SimTime end);

  core::DdcrConfig config_;
  core::TreeSearchEngine time_engine_;
  core::TreeSearchEngine static_engine_;
  Mode mode_ = Mode::kCsmaCd;
  bool finished_ = false;
  bool truncated_mid_search_ = false;

  std::int64_t epochs_ = 0;
  bool saw_transmission_ = false;   ///< the paper's `out` for the current TTs
  bool post_tts_attempt_ = false;   ///< perpetual mode: à-la-CSMA-CD slot
  int consecutive_empty_tts_ = 0;

  TtsRunRecord current_tts_;
  bool tts_open_ = false;
  bool tts_span_started_ = false;
  StsRunRecord current_sts_;
  bool sts_open_ = false;
  bool sts_span_started_ = false;

  std::vector<TtsRunRecord> tts_runs_;
  std::vector<StsRunRecord> sts_runs_;
};

}  // namespace hrtdm::check
