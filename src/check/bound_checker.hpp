// Cross-checks observed search costs against the paper's exact analysis.
//
// For every completed time tree search the EpochTracker extracted, the
// checker asserts the realised cost against xi(k, t) (Eq. 1), and for every
// distinct observed k it re-derives xi three independent ways (defining
// recursion, divide-and-conquer Eq. 2–4, closed form Eq. 9/10) plus the
// special values and tightness relations Eq. 5–15 — so a bug in any one
// characterisation, or in the simulator, breaks the differential.
//
// Accounting conventions (see tests/test_properties.cpp and DESIGN.md):
// the analysis counts the epoch's triggering collision as the root probe
// (1 slot), the engine's search_slots() does not — hence the `+ 1` below.
//
// Tied deadline classes cost more than the xi placement model charges: a
// lone entity resolves by a SUCCESS at the highest node where it is probed
// alone (its subtree is then never entered), but a tied class collides on
// every probe down to the exact leaf, and the DFS then walks that
// subtree's remaining children. Each leaf collision therefore gets an
// allowance of m * n extra slots (full-depth descent, m probes per level)
// on top of xi(k_effective); the nested static search is bounded
// separately against its own tree. Only tie-free runs enter the P2
// multi-tree cross-check, where slots + 1 is the exact xi-model cost.
//
// The xi placement model fixes the active set when the search starts, so
// runs with message arrivals inside their slot span are exempted from the
// per-run cost bound (a mid-search head change can make a station probe
// under two different leaves); they still feed the totals cross-check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/xi.hpp"
#include "check/epoch_tracker.hpp"
#include "core/ddcr_config.hpp"
#include "util/simtime.hpp"

namespace hrtdm::check {

class BoundChecker {
 public:
  /// `arrival_times` are the arrival instants of every injected message
  /// (any order); used to exempt runs with mid-search arrivals.
  BoundChecker(const core::DdcrConfig& config,
               std::vector<util::SimTime> arrival_times);

  /// Checks every completed run the tracker recorded. May be called once.
  void run(const EpochTracker& tracker);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Runs actually held against xi / the static-tree xi (clean runs with
  /// k >= 2); tests assert these are non-zero so the gating cannot
  /// silently turn the checker off.
  std::int64_t tts_checked() const { return tts_checked_; }
  std::int64_t tts_exempt() const { return tts_exempt_; }
  std::int64_t sts_checked() const { return sts_checked_; }
  std::int64_t p2_windows_checked() const { return p2_windows_checked_; }
  std::int64_t relations_checked() const { return relations_checked_; }

  /// True when no message arrival lies inside [start, end] (boundary
  /// inclusive on both sides — an arrival racing a slot edge is treated as
  /// mid-run, conservatively).
  bool span_is_arrival_free(util::SimTime start, util::SimTime end) const;

 private:
  void check_tts_run(const TtsRunRecord& run);
  void check_sts_run(const StsRunRecord& run);
  void check_relations_for(int m, std::int64_t t, std::int64_t k);
  void check_p2(const std::vector<const TtsRunRecord*>& eligible);
  void add_violation(std::string text);

  core::DdcrConfig config_;
  std::vector<util::SimTime> arrivals_;  ///< sorted
  int n_time_ = 0;
  int n_static_ = 0;
  analysis::XiExactTable time_table_;
  analysis::XiExactTable static_table_;

  std::vector<std::string> violations_;
  std::vector<std::pair<int, std::int64_t>> relations_done_;  ///< (tree, k)
  std::int64_t tts_checked_ = 0;
  std::int64_t tts_exempt_ = 0;
  std::int64_t sts_checked_ = 0;
  std::int64_t p2_windows_checked_ = 0;
  std::int64_t relations_checked_ = 0;
  bool ran_ = false;
};

}  // namespace hrtdm::check
