#include "check/bound_checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/p2.hpp"
#include "analysis/xi.hpp"
#include "util/check.hpp"

namespace hrtdm::check {
namespace {

int ilog(int m, std::int64_t leaves) {
  int n = 0;
  std::int64_t v = 1;
  while (v < leaves) {
    v *= m;
    ++n;
  }
  HRTDM_EXPECT(v == leaves, "leaves must be a power of m");
  return n;
}

constexpr double kEps = 1e-6;

}  // namespace

BoundChecker::BoundChecker(const core::DdcrConfig& config,
                           std::vector<util::SimTime> arrival_times)
    : config_(config),
      arrivals_(std::move(arrival_times)),
      n_time_(ilog(config.m_time, config.F)),
      n_static_(ilog(config.m_static, config.q)),
      time_table_(config.m_time, n_time_),
      static_table_(config.m_static, n_static_) {
  std::sort(arrivals_.begin(), arrivals_.end());
}

bool BoundChecker::span_is_arrival_free(util::SimTime start,
                                        util::SimTime end) const {
  const auto it = std::lower_bound(arrivals_.begin(), arrivals_.end(), start);
  return it == arrivals_.end() || *it > end;
}

void BoundChecker::add_violation(std::string text) {
  violations_.push_back(std::move(text));
}

void BoundChecker::check_relations_for(int m, std::int64_t t, std::int64_t k) {
  const int which = (m == config_.m_time && t == config_.F) ? 0 : 1;
  const std::pair<int, std::int64_t> key{which, k};
  if (std::find(relations_done_.begin(), relations_done_.end(), key) !=
      relations_done_.end()) {
    return;
  }
  relations_done_.push_back(key);
  if (k < 2 || k > t) {
    return;
  }
  const analysis::XiExactTable& table =
      which == 0 ? time_table_ : static_table_;
  std::ostringstream where;
  where << " (m=" << m << ", t=" << t << ", k=" << k << ")";

  // Three independent characterisations of xi must agree on observed k.
  const std::int64_t exact = table.xi(k);
  const std::int64_t dnc = analysis::xi_dnc(m, t, k);
  const std::int64_t closed = analysis::xi_closed(m, t, k);
  if (exact != dnc || exact != closed) {
    std::ostringstream os;
    os << "xi characterisations disagree: table=" << exact << " dnc=" << dnc
       << " closed=" << closed << where.str();
    add_violation(os.str());
  }
  ++relations_checked_;

  // Special values (Eq. 5/7) and the linear tail (Eq. 15).
  if (k == 2 && exact != analysis::xi_two(m, t)) {
    add_violation("Eq.5 xi(2,t) mismatch" + where.str());
  }
  if (k == t && exact != analysis::xi_full(m, t)) {
    add_violation("Eq.7 xi(t,t) mismatch" + where.str());
  }
  if (m * k >= 2 * t && exact != analysis::xi_linear_tail(m, t, k)) {
    add_violation("Eq.15 linear-tail mismatch" + where.str());
  }
  // Odd-k step (Eq. 3): xi(2p+1) = xi(2p) - 1 — an odd adversary wastes
  // one pairing, so the worst case sits one slot under the preceding even k.
  if (k % 2 == 1 && k >= 3 && exact != table.xi(k - 1) - 1) {
    add_violation("Eq.3 odd-k step mismatch" + where.str());
  }
  // Even derivative (Eq. 8).
  if (k % 2 == 0 && k + 2 <= t &&
      table.xi(k + 2) - exact != analysis::xi_even_derivative(m, t, k / 2)) {
    add_violation("Eq.8 even-derivative mismatch" + where.str());
  }
  // Tightness of the concave asymptote over even k in [2, 2t/m]
  // (Eq. 12/13): xi <= xi~ <= xi + g(m) t.
  if (k % 2 == 0 && m * k <= 2 * t) {
    const double asym =
        analysis::xi_asymptotic(m, static_cast<double>(t),
                                static_cast<double>(k));
    if (static_cast<double>(exact) > asym + kEps) {
      std::ostringstream os;
      os << "Eq.12 violated: xi=" << exact << " > xi~=" << asym
         << where.str();
      add_violation(os.str());
    }
    const double gap = asym - static_cast<double>(exact);
    const double bound =
        analysis::tightness_bound_factor(m) * static_cast<double>(t);
    if (gap > bound + kEps) {
      std::ostringstream os;
      os << "Eq.13 violated: xi~ - xi = " << gap << " > g(m) t = " << bound
         << where.str();
      add_violation(os.str());
    }
  }
}

void BoundChecker::check_tts_run(const TtsRunRecord& run) {
  const int m = config_.m_time;
  const std::int64_t t = config_.F;
  const std::int64_t k = run.k_effective();
  std::ostringstream where;
  where << " (epoch " << run.epoch << ", slots=" << run.search_slots
        << ", successes=" << run.successes
        << ", leaf_collisions=" << run.leaf_collisions << ")";

  // Structural invariant: the DFS frontier is strictly monotone, so the
  // run's resolution events land on distinct leaves — never more than F.
  if (k > t) {
    add_violation("TTs resolved more entities than leaves: k=" +
                  std::to_string(k) + " > F=" + std::to_string(t) +
                  where.str());
    return;
  }
  if (!span_is_arrival_free(run.first_slot_start, run.last_slot_end)) {
    ++tts_exempt_;  // mid-search arrivals void the fixed-placement model
    return;
  }
  ++tts_checked_;
  // A tied class never resolves by an internal-node success: it collides on
  // every probe down to its exact leaf and the DFS then probes the emptied
  // siblings — up to m slots per level, n levels, beyond what the success
  // model charges.
  const std::int64_t tie_allowance =
      run.leaf_collisions * static_cast<std::int64_t>(m) *
      std::max(n_time_, 1);
  if (k >= 2) {
    const std::int64_t bound = time_table_.xi(k) + tie_allowance;
    if (run.search_slots + 1 > bound) {
      std::ostringstream os;
      os << "TTs search cost exceeds xi: slots+1 = " << run.search_slots + 1
         << " > xi(" << k << "," << t << ") + tie descents = " << bound
         << where.str();
      add_violation(os.str());
    }
    check_relations_for(m, t, k);
  } else {
    // k <= 1: an all-silent scan costs m slots; a lone resolution costs at
    // most m per level down the tree, plus the tie-descent allowance when
    // that lone resolution was a leaf collision.
    const std::int64_t bound =
        static_cast<std::int64_t>(m) * std::max(n_time_, 1) + tie_allowance;
    if (run.search_slots > bound) {
      std::ostringstream os;
      os << "empty/lone TTs scan too long: slots = " << run.search_slots
         << " > m*n + tie descents = " << bound << where.str();
      add_violation(os.str());
    }
  }
}

void BoundChecker::check_sts_run(const StsRunRecord& run) {
  const std::int64_t q = config_.q;
  const std::int64_t s = run.successes;
  std::ostringstream where;
  where << " (epoch " << run.epoch << ", slots=" << run.search_slots
        << ", successes=" << s << ", retries=" << run.leaf_retries << ")";
  if (run.leaf_retries > 0) {
    // Static indices are unique per source: in a fault-free destructive
    // run a lone static leaf cannot collide. (The caller only invokes the
    // checker on clean runs, so this is a genuine protocol violation.)
    add_violation("STs leaf retry without channel noise" + where.str());
    return;
  }
  if (s > q) {
    add_violation("STs resolved more entities than leaves: s=" +
                  std::to_string(s) + " > q=" + std::to_string(q) +
                  where.str());
    return;
  }
  if (s < 2) {
    // The triggering time-tree leaf collision proves >= 2 tied messages;
    // fewer than 2 static successes means a tied message vanished.
    add_violation("STs with fewer than 2 resolutions" + where.str());
    return;
  }
  ++sts_checked_;
  // The time-tree leaf collision is the static root probe: + 1.
  const std::int64_t bound = static_table_.xi(s);
  if (run.search_slots + 1 > bound) {
    std::ostringstream os;
    os << "STs search cost exceeds xi: slots+1 = " << run.search_slots + 1
       << " > xi(" << s << "," << q << ") = " << bound << where.str();
    add_violation(os.str());
  }
  check_relations_for(config_.m_static, q, s);
}

void BoundChecker::check_p2(
    const std::vector<const TtsRunRecord*>& eligible) {
  // The P2 bound (Eq. 16–19) caps the summed search cost of v trees with
  // k_i in [2, t] each by v xi~(u/v, t), u = sum k_i. By concavity this
  // holds for any v observed searches, consecutive or not; we check sliding
  // windows plus the whole set. Eligible runs are tie-free, so slots + 1 is
  // the exact xi-model cost.
  const int m = config_.m_time;
  const double t = static_cast<double>(config_.F);
  std::vector<std::size_t> windows{2, 3, 5, eligible.size()};
  for (const std::size_t v : windows) {
    if (v < 2 || v > eligible.size()) {
      continue;
    }
    for (std::size_t i = 0; i + v <= eligible.size();
         i += (v == eligible.size() ? eligible.size() : 1)) {
      std::int64_t cost = 0;  // xi-model cost: search slots + root probe
      std::int64_t u = 0;
      for (std::size_t j = i; j < i + v; ++j) {
        cost += eligible[j]->search_slots + 1;
        u += eligible[j]->k_effective();
      }
      const double bound = analysis::p2_bound(
          m, t, static_cast<double>(u), static_cast<double>(v));
      ++p2_windows_checked_;
      if (static_cast<double>(cost) > bound + kEps) {
        std::ostringstream os;
        os << "P2 multi-tree bound violated: sum cost = " << cost
           << " > v xi~(u/v) = " << bound << " (v=" << v << ", u=" << u
           << ", window at " << i << ")";
        add_violation(os.str());
      }
    }
  }
}

void BoundChecker::run(const EpochTracker& tracker) {
  HRTDM_EXPECT(!ran_, "BoundChecker::run may be called once");
  ran_ = true;
  std::vector<const TtsRunRecord*> p2_eligible;
  for (const TtsRunRecord& run : tracker.tts_runs()) {
    check_tts_run(run);
    if (run.leaf_collisions == 0 && run.k_effective() >= 2 &&
        run.k_effective() <= config_.F &&
        span_is_arrival_free(run.first_slot_start, run.last_slot_end)) {
      p2_eligible.push_back(&run);
    }
  }
  for (const StsRunRecord& run : tracker.sts_runs()) {
    check_sts_run(run);
  }
  check_p2(p2_eligible);
  if (!tracker.tts_runs().empty() || !tracker.sts_runs().empty()) {
    // Universal tightness constant (Eq. 14): g(m) <= g(9) for every m.
    if (analysis::tightness_bound_factor(config_.m_time) >
        analysis::tightness_bound_universal() + 1e-12) {
      add_violation("Eq.14 violated: g(m) exceeds the universal constant");
    }
  }
}

}  // namespace hrtdm::check
