#include "check/epoch_tracker.hpp"

#include "util/check.hpp"

namespace hrtdm::check {

EpochTracker::EpochTracker(const core::DdcrConfig& config)
    : config_(config),
      time_engine_(config.m_time, config.F, config.infer_last_child),
      static_engine_(config.m_static, config.q, config.infer_last_child) {}

void EpochTracker::note_span(SimTime start, SimTime end) {
  if (tts_open_) {
    if (!tts_span_started_) {
      current_tts_.first_slot_start = start;
      tts_span_started_ = true;
    }
    current_tts_.last_slot_end = end;
  }
  if (sts_open_) {
    if (!sts_span_started_) {
      current_sts_.first_slot_start = start;
      sts_span_started_ = true;
    }
    current_sts_.last_slot_end = end;
  }
}

void EpochTracker::start_epoch() {
  ++epochs_;
  post_tts_attempt_ = false;
  consecutive_empty_tts_ = 0;
  start_tts();
}

void EpochTracker::start_tts() {
  saw_transmission_ = false;
  current_tts_ = TtsRunRecord{};
  current_tts_.epoch = epochs_;
  tts_open_ = true;
  tts_span_started_ = false;
  time_engine_.begin();  // root probed by the triggering collision
  mode_ = Mode::kTts;
}

void EpochTracker::finish_tts() {
  current_tts_.search_slots = time_engine_.search_slots();
  tts_runs_.push_back(current_tts_);
  tts_open_ = false;
  const bool out = saw_transmission_;
  if (out) {
    consecutive_empty_tts_ = 0;
    mode_ = Mode::kCsmaCd;
    post_tts_attempt_ = (config_.epoch_mode == core::EpochMode::kPerpetual);
    return;
  }
  ++consecutive_empty_tts_;
  if (config_.theta_factor > 0.0) {
    if (config_.epoch_mode == core::EpochMode::kCsmaCdFallback &&
        config_.max_empty_tts > 0 &&
        consecutive_empty_tts_ >= config_.max_empty_tts) {
      consecutive_empty_tts_ = 0;
      mode_ = Mode::kCsmaCd;
      return;
    }
    start_tts();
    return;
  }
  consecutive_empty_tts_ = 0;
  mode_ = Mode::kCsmaCd;
  post_tts_attempt_ = (config_.epoch_mode == core::EpochMode::kPerpetual);
}

void EpochTracker::finish_sts() {
  current_sts_.search_slots = static_engine_.search_slots();
  sts_runs_.push_back(current_sts_);
  sts_open_ = false;
  mode_ = Mode::kTts;
  if (time_engine_.done()) {
    finish_tts();
  }
}

void EpochTracker::on_slot(const net::SlotRecord& record) {
  HRTDM_EXPECT(!finished_, "tracker already finished");
  note_span(record.start, record.end);
  if (record.in_burst) {
    if (mode_ != Mode::kCsmaCd) {
      saw_transmission_ =
          saw_transmission_ || record.kind == net::SlotKind::kSuccess;
    }
    return;
  }
  switch (mode_) {
    case Mode::kCsmaCd: {
      if (record.kind == net::SlotKind::kCollision) {
        start_epoch();
        // The epoch's first probe slot is the *next* one.
        return;
      }
      if (post_tts_attempt_) {
        post_tts_attempt_ = false;
        start_tts();
      }
      return;
    }
    case Mode::kTts: {
      using Feedback = core::TreeSearchEngine::Feedback;
      using StepResult = core::TreeSearchEngine::StepResult;
      const auto fb = record.kind == net::SlotKind::kSilence
                          ? Feedback::kSilence
                          : record.kind == net::SlotKind::kSuccess
                                ? Feedback::kSuccess
                                : Feedback::kCollision;
      if (record.kind == net::SlotKind::kSuccess) {
        ++current_tts_.successes;
        saw_transmission_ = true;
      }
      const auto result = time_engine_.feedback(fb);
      if (result == StepResult::kLeafCollision) {
        ++current_tts_.leaf_collisions;
        current_sts_ = StsRunRecord{};
        current_sts_.epoch = epochs_;
        sts_open_ = true;
        sts_span_started_ = false;
        static_engine_.begin();  // root probed by this very leaf collision
        mode_ = Mode::kSts;
        return;
      }
      if (time_engine_.done()) {
        finish_tts();
      }
      return;
    }
    case Mode::kSts: {
      using Feedback = core::TreeSearchEngine::Feedback;
      using StepResult = core::TreeSearchEngine::StepResult;
      const auto fb = record.kind == net::SlotKind::kSilence
                          ? Feedback::kSilence
                          : record.kind == net::SlotKind::kSuccess
                                ? Feedback::kSuccess
                                : Feedback::kCollision;
      if (record.kind == net::SlotKind::kSuccess) {
        ++current_sts_.successes;
        saw_transmission_ = true;
      }
      const auto probed = static_engine_.current();
      const auto result = static_engine_.feedback(fb);
      if (result == StepResult::kLeafCollision) {
        // Static indices are unique per source: a lone leaf collision can
        // only be a transmission destroyed by noise. Retry the leaf, as
        // DdcrStation does.
        ++current_sts_.leaf_retries;
        static_engine_.requeue(probed);
        return;
      }
      if (static_engine_.done()) {
        finish_sts();
      }
      return;
    }
  }
}

void EpochTracker::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (tts_open_ || sts_open_) {
    truncated_mid_search_ = true;
    tts_open_ = false;
    sts_open_ = false;
    time_engine_.abort();
    static_engine_.abort();
  }
}

std::int64_t EpochTracker::total_tts_search_slots() const {
  std::int64_t total = 0;
  for (const TtsRunRecord& run : tts_runs_) total += run.search_slots;
  return total;
}

std::int64_t EpochTracker::total_sts_search_slots() const {
  std::int64_t total = 0;
  for (const StsRunRecord& run : sts_runs_) total += run.search_slots;
  return total;
}

std::int64_t EpochTracker::total_leaf_collisions() const {
  std::int64_t total = 0;
  for (const TtsRunRecord& run : tts_runs_) total += run.leaf_collisions;
  return total;
}

}  // namespace hrtdm::check
