#include "check/shrinker.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>

#include "check/conformance.hpp"
#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace hrtdm::check {
namespace {

using util::Duration;
using util::SimTime;

SimTime replay_cap(const ReplayCase& c) {
  // Generous but deterministic: the latest deadline plus four times the
  // total transmission work plus a fixed slot allowance. Shrunk cases are
  // tiny, so overshooting costs nothing. Hostile cases extend the
  // allowance past the last scripted directive (every observation is at
  // least one slot) so fault windows always run out before the cap.
  SimTime latest;
  Duration total_tx;
  for (const traffic::Message& msg : c.messages) {
    latest = std::max(latest, std::max(msg.arrival, msg.absolute_deadline));
    total_tx += std::max(c.phy.tx_time(msg.l_bits), c.phy.slot_x);
  }
  const std::int64_t scripted =
      std::max({std::int64_t{0}, c.fault_plan.last_fault_observation(),
                c.churn.last_observation()});
  return latest + total_tx * 4 + c.phy.slot_x * (4096 + scripted);
}

}  // namespace

void ReplayCase::validate() const {
  HRTDM_EXPECT(stations >= 1, "replay case needs at least one station");
  HRTDM_EXPECT(ddcr.static_indices.empty(),
               "replay cases use the automatic static-index allocation");
  HRTDM_EXPECT(phy.corruption_prob == 0.0,
               "replay cases must be noise-free to reproduce exactly");
  fault_plan.validate(stations);
  churn.validate(stations);
  drift.validate(stations);
  std::set<std::int64_t> uids;
  for (const traffic::Message& msg : messages) {
    HRTDM_EXPECT(msg.source >= 0 && msg.source < stations,
                 "replay message source out of range");
    HRTDM_EXPECT(uids.insert(msg.uid).second, "replay message uids collide");
    HRTDM_EXPECT(msg.absolute_deadline >= msg.arrival,
                 "replay message deadline precedes its arrival");
  }
}

core::ConformanceReport replay_case(const ReplayCase& c) {
  c.validate();
  core::DdcrRunOptions options;
  options.phy = c.phy;
  options.collision_mode = c.collision_mode;
  options.ddcr = c.ddcr;
  options.churn_events = static_cast<std::int64_t>(c.churn.events.size());
  // Every hostile axis can push a station through the quiet-period rejoin
  // path (crash recovery, churn re-entry, a drift quarantine), so the
  // configuration must be rejoin-capable up front.
  options.require_rejoinable = c.hostile();
  core::DdcrTestbed testbed(c.stations, options);
  ConformanceRecorder recorder;
  testbed.channel().add_observer(recorder);
  std::optional<fault::FaultInjector> injector;
  if (c.hostile()) {
    injector.emplace(c.fault_plan, c.churn, c.drift, c.fault_seed);
    injector->set_crash_hook([&testbed](int id) {
      core::DdcrStation& station = testbed.station(id);
      if (station.online()) {
        station.reset_for_rejoin();
      }
    });
    injector->set_churn_hook([&testbed](int id, fault::ChurnKind kind) {
      if (kind == fault::ChurnKind::kLeave) {
        testbed.station(id).go_offline();
      } else {
        testbed.station(id).bring_online();
      }
    });
    injector->set_sync_probe(
        [&testbed](int id) { return !testbed.station(id).synced(); });
    injector->install(testbed.channel());
  }
  for (const traffic::Message& msg : c.messages) {
    testbed.inject(msg.source, msg);
  }
  const SimTime cap = replay_cap(c);
  testbed.run_until_delivered(static_cast<std::int64_t>(c.messages.size()),
                              cap);
  if (injector) {
    // A hostile replay can still hold backlog or quarantined replicas when
    // the delivery count is reached (duplicates on the wire, offline
    // stations): settle until the network quiesces or the cap runs out.
    auto settled = [&testbed] {
      if (testbed.queued() > 0) {
        return false;
      }
      for (int s = 0; s < testbed.station_count(); ++s) {
        if (!testbed.station(s).synced()) {
          return false;
        }
      }
      return true;
    };
    while (testbed.simulator().now() < cap && !settled()) {
      testbed.run(testbed.simulator().now() + c.phy.slot_x * 64);
    }
  }

  ConformanceInput input;
  input.messages = c.messages;
  input.phy = c.phy;
  input.collision_mode = c.collision_mode;
  input.ddcr = c.ddcr;
  input.protocol_is_ddcr = true;
  input.expect_timeliness = c.expect_timeliness;
  input.edf_tolerance = c.edf_tolerance;
  std::vector<core::DdcrStation::Counters> counters;
  std::int64_t dropped = 0;
  std::int64_t unclean = 0;
  for (int s = 0; s < testbed.station_count(); ++s) {
    counters.push_back(testbed.station(s).counters());
    dropped += counters.back().dropped_late;
    unclean += counters.back().desyncs_detected +
               counters.back().quarantines + counters.back().rejoins;
  }
  input.replicas_clean = unclean == 0;
  input.expect_drain = testbed.queued() == 0 && dropped == 0;
  input.stats = &testbed.channel().stats();
  input.per_station = &counters;
  if (injector) {
    // Everything before the first scripted directive (or the first
    // runtime drift mis-sample) is provably clean; the comparator clips
    // its whole-run checks to that prefix.
    input.clean_prefix_end = injector->clean_prefix_end();
  }
  return ConformanceComparator{}.check(input, recorder);
}

// --- serialisation ---------------------------------------------------------

namespace {

// The text format is integer-only (parse_kv uses stoll), so probabilities
// and ppm rates serialise in fixed-point: per-mille for probabilities,
// parts-per-billion for drift rates. Pinned hostile cases must use values
// representable at that granularity for serialize/parse to round-trip
// exactly.
std::int64_t to_pm(double prob) {
  return static_cast<std::int64_t>(prob * 1000.0 + 0.5);
}

}  // namespace

std::string serialize_case(const ReplayCase& c) {
  c.validate();
  std::ostringstream os;
  os << "repro " << c.name << "\n";
  os << "phy slot_ns=" << c.phy.slot_x.ns()
     << " psi_bps=" << static_cast<std::int64_t>(c.phy.psi_bps)
     << " overhead_bits=" << c.phy.overhead_bits
     << " burst_bits=" << c.phy.burst_budget_bits << "\n";
  os << "mode "
     << (c.collision_mode == net::CollisionMode::kDestructive ? "destructive"
                                                              : "arbitration")
     << "\n";
  os << "ddcr m_time=" << c.ddcr.m_time << " F=" << c.ddcr.F
     << " c_ns=" << c.ddcr.class_width_c.ns()
     << " alpha_ns=" << c.ddcr.alpha.ns() << " theta_pm="
     << static_cast<std::int64_t>(c.ddcr.theta_factor * 1000.0 + 0.5)
     << " m_static=" << c.ddcr.m_static << " q=" << c.ddcr.q << " epoch="
     << (c.ddcr.epoch_mode == core::EpochMode::kPerpetual ? "perpetual"
                                                          : "fallback")
     << " infer_last=" << (c.ddcr.infer_last_child ? 1 : 0)
     << " drop_late=" << (c.ddcr.drop_late_messages ? 1 : 0)
     << " max_empty_tts=" << c.ddcr.max_empty_tts << "\n";
  os << "stations " << c.stations << "\n";
  os << "expect timeliness=" << (c.expect_timeliness ? 1 : 0)
     << " tolerance_ns=" << c.edf_tolerance.ns() << "\n";
  if (c.phy.ge_enabled) {
    os << "ge p_gb_pm=" << to_pm(c.phy.ge_p_good_bad)
       << " p_bg_pm=" << to_pm(c.phy.ge_p_bad_good)
       << " loss_g_pm=" << to_pm(c.phy.ge_loss_good)
       << " loss_b_pm=" << to_pm(c.phy.ge_loss_bad) << "\n";
  }
  if (c.hostile()) {
    os << "seed fault=" << static_cast<std::int64_t>(c.fault_seed) << "\n";
  }
  for (const fault::CrashFault& f : c.fault_plan.crashes) {
    os << "fault crash at=" << f.at_observation << " station=" << f.station
       << "\n";
  }
  for (const fault::SymmetricNoiseFault& f : c.fault_plan.symmetric) {
    os << "fault sym from=" << f.from_observation << " to=" << f.to_observation
       << " prob_pm=" << to_pm(f.prob) << "\n";
  }
  for (const fault::AsymmetricFault& f : c.fault_plan.asymmetric) {
    os << "fault asym from=" << f.from_observation
       << " to=" << f.to_observation << " station=" << f.station << " kind="
       << (f.kind == fault::AsymmetricKind::kCorruptReceive ? 0 : 1)
       << " prob_pm=" << to_pm(f.prob) << "\n";
  }
  for (const fault::ChurnEvent& e : c.churn.events) {
    os << "churn at=" << e.at_observation << " station=" << e.station
       << " kind=" << (e.kind == fault::ChurnKind::kLeave ? 0 : 1) << "\n";
  }
  for (const fault::DriftSpec& d : c.drift.specs) {
    os << "drift station=" << d.station << " phase_ns=" << d.initial_phase.ns()
       << " rate_ppb=" << static_cast<std::int64_t>(d.rate_ppm * 1000.0 +
                                                    (d.rate_ppm < 0 ? -0.5
                                                                    : 0.5))
       << " bound_ns=" << d.phase_bound.ns() << "\n";
  }
  for (const traffic::Message& msg : c.messages) {
    os << "msg uid=" << msg.uid << " source=" << msg.source
       << " class=" << msg.class_id << " l_bits=" << msg.l_bits
       << " arrival_ns=" << msg.arrival.ns()
       << " deadline_ns=" << msg.absolute_deadline.ns() << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  HRTDM_EXPECT(false, "replay case line " + std::to_string(line) + ": " +
                          message);
  throw util::ContractViolation("unreachable");  // for the compiler
}

std::int64_t parse_kv(const std::string& token, const std::string& key,
                      int line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail(line, "expected " + prefix + "<int>, got '" + token + "'");
  }
  try {
    return std::stoll(token.substr(prefix.size()));
  } catch (const std::exception&) {
    fail(line, "cannot parse integer in '" + token + "'");
  }
}

std::int64_t next_kv(std::istringstream& in, const std::string& key,
                     int line) {
  std::string token;
  if (!(in >> token)) {
    fail(line, "missing " + key + "=<int>");
  }
  return parse_kv(token, key, line);
}

}  // namespace

ReplayCase parse_case(const std::string& text) {
  ReplayCase c;
  c.name.clear();
  std::istringstream input(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(input, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw = raw.substr(0, hash);
    }
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) {
      continue;
    }
    if (keyword == "repro") {
      if (!(line >> c.name)) {
        fail(line_no, "repro line needs a name");
      }
    } else if (keyword == "phy") {
      c.phy.slot_x = Duration::nanoseconds(next_kv(line, "slot_ns", line_no));
      c.phy.psi_bps =
          static_cast<double>(next_kv(line, "psi_bps", line_no));
      c.phy.overhead_bits = next_kv(line, "overhead_bits", line_no);
      c.phy.burst_budget_bits = next_kv(line, "burst_bits", line_no);
    } else if (keyword == "mode") {
      std::string mode;
      if (!(line >> mode)) {
        fail(line_no, "mode line needs destructive|arbitration");
      }
      if (mode == "destructive") {
        c.collision_mode = net::CollisionMode::kDestructive;
      } else if (mode == "arbitration") {
        c.collision_mode = net::CollisionMode::kArbitration;
      } else {
        fail(line_no, "unknown collision mode '" + mode + "'");
      }
    } else if (keyword == "ddcr") {
      c.ddcr.m_time = static_cast<int>(next_kv(line, "m_time", line_no));
      c.ddcr.F = next_kv(line, "F", line_no);
      c.ddcr.class_width_c =
          Duration::nanoseconds(next_kv(line, "c_ns", line_no));
      c.ddcr.alpha = Duration::nanoseconds(next_kv(line, "alpha_ns", line_no));
      c.ddcr.theta_factor =
          static_cast<double>(next_kv(line, "theta_pm", line_no)) / 1000.0;
      c.ddcr.m_static = static_cast<int>(next_kv(line, "m_static", line_no));
      c.ddcr.q = next_kv(line, "q", line_no);
      std::string epoch_tok;
      if (!(line >> epoch_tok) || epoch_tok.rfind("epoch=", 0) != 0) {
        fail(line_no, "expected epoch=fallback|perpetual");
      }
      const std::string epoch = epoch_tok.substr(6);
      if (epoch == "fallback") {
        c.ddcr.epoch_mode = core::EpochMode::kCsmaCdFallback;
      } else if (epoch == "perpetual") {
        c.ddcr.epoch_mode = core::EpochMode::kPerpetual;
      } else {
        fail(line_no, "unknown epoch mode '" + epoch + "'");
      }
      c.ddcr.infer_last_child = next_kv(line, "infer_last", line_no) != 0;
      c.ddcr.drop_late_messages = next_kv(line, "drop_late", line_no) != 0;
      c.ddcr.max_empty_tts =
          static_cast<int>(next_kv(line, "max_empty_tts", line_no));
    } else if (keyword == "stations") {
      if (!(line >> c.stations)) {
        fail(line_no, "stations line needs a count");
      }
    } else if (keyword == "expect") {
      c.expect_timeliness = next_kv(line, "timeliness", line_no) != 0;
      c.edf_tolerance =
          Duration::nanoseconds(next_kv(line, "tolerance_ns", line_no));
    } else if (keyword == "ge") {
      const double p_gb =
          static_cast<double>(next_kv(line, "p_gb_pm", line_no)) / 1000.0;
      const double p_bg =
          static_cast<double>(next_kv(line, "p_bg_pm", line_no)) / 1000.0;
      const double loss_g =
          static_cast<double>(next_kv(line, "loss_g_pm", line_no)) / 1000.0;
      const double loss_b =
          static_cast<double>(next_kv(line, "loss_b_pm", line_no)) / 1000.0;
      c.phy.gilbert_elliott(p_gb, p_bg, loss_g, loss_b);
    } else if (keyword == "seed") {
      c.fault_seed =
          static_cast<std::uint64_t>(next_kv(line, "fault", line_no));
    } else if (keyword == "fault") {
      std::string sub;
      if (!(line >> sub)) {
        fail(line_no, "fault line needs crash|sym|asym");
      }
      if (sub == "crash") {
        fault::CrashFault f;
        f.at_observation = next_kv(line, "at", line_no);
        f.station = static_cast<int>(next_kv(line, "station", line_no));
        c.fault_plan.crashes.push_back(f);
      } else if (sub == "sym") {
        fault::SymmetricNoiseFault f;
        f.from_observation = next_kv(line, "from", line_no);
        f.to_observation = next_kv(line, "to", line_no);
        f.prob =
            static_cast<double>(next_kv(line, "prob_pm", line_no)) / 1000.0;
        c.fault_plan.symmetric.push_back(f);
      } else if (sub == "asym") {
        fault::AsymmetricFault f;
        f.from_observation = next_kv(line, "from", line_no);
        f.to_observation = next_kv(line, "to", line_no);
        f.station = static_cast<int>(next_kv(line, "station", line_no));
        f.kind = next_kv(line, "kind", line_no) == 0
                     ? fault::AsymmetricKind::kCorruptReceive
                     : fault::AsymmetricKind::kMissReceive;
        f.prob =
            static_cast<double>(next_kv(line, "prob_pm", line_no)) / 1000.0;
        c.fault_plan.asymmetric.push_back(f);
      } else {
        fail(line_no, "unknown fault class '" + sub + "'");
      }
    } else if (keyword == "churn") {
      fault::ChurnEvent e;
      e.at_observation = next_kv(line, "at", line_no);
      e.station = static_cast<int>(next_kv(line, "station", line_no));
      e.kind = next_kv(line, "kind", line_no) == 0 ? fault::ChurnKind::kLeave
                                                   : fault::ChurnKind::kJoin;
      c.churn.events.push_back(e);
    } else if (keyword == "drift") {
      fault::DriftSpec d;
      d.station = static_cast<int>(next_kv(line, "station", line_no));
      d.initial_phase =
          Duration::nanoseconds(next_kv(line, "phase_ns", line_no));
      d.rate_ppm =
          static_cast<double>(next_kv(line, "rate_ppb", line_no)) / 1000.0;
      d.phase_bound = Duration::nanoseconds(next_kv(line, "bound_ns", line_no));
      c.drift.specs.push_back(d);
    } else if (keyword == "msg") {
      traffic::Message msg;
      msg.uid = next_kv(line, "uid", line_no);
      msg.source = static_cast<int>(next_kv(line, "source", line_no));
      msg.class_id = static_cast<int>(next_kv(line, "class", line_no));
      msg.l_bits = next_kv(line, "l_bits", line_no);
      msg.arrival = SimTime::from_ns(next_kv(line, "arrival_ns", line_no));
      msg.absolute_deadline =
          SimTime::from_ns(next_kv(line, "deadline_ns", line_no));
      c.messages.push_back(msg);
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (c.name.empty()) {
    fail(line_no, "missing `repro <name>` line");
  }
  c.validate();
  return c;
}

ReplayCase load_case_file(const std::string& path) {
  std::ifstream in(path);
  HRTDM_EXPECT(in.good(), "cannot open replay case file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_case(text.str());
}

void save_case_file(const ReplayCase& c, const std::string& path) {
  std::ofstream out(path);
  HRTDM_EXPECT(out.good(), "cannot write replay case file: " + path);
  out << serialize_case(c);
  HRTDM_EXPECT(out.good(), "write failed for replay case file: " + path);
}

// --- shrinking -------------------------------------------------------------

namespace {

/// Drops unused sources and renumbers the rest densely. Returns false when
/// nothing changed. Stations referenced by a hostile plan count as used —
/// a crash/churn/drift directive pins its victim even when that station
/// carries no traffic.
bool renumber_sources(ReplayCase& c) {
  std::set<int> used;
  for (const traffic::Message& msg : c.messages) {
    used.insert(msg.source);
  }
  for (const fault::CrashFault& f : c.fault_plan.crashes) {
    used.insert(f.station);
  }
  for (const fault::AsymmetricFault& f : c.fault_plan.asymmetric) {
    used.insert(f.station);
  }
  for (const fault::ChurnEvent& e : c.churn.events) {
    used.insert(e.station);
  }
  for (const fault::DriftSpec& d : c.drift.specs) {
    used.insert(d.station);
  }
  if (used.empty()) {
    return false;
  }
  std::vector<int> order(used.begin(), used.end());
  const int compact = static_cast<int>(order.size());
  bool identity = compact == c.stations;
  for (int i = 0; identity && i < compact; ++i) {
    identity = order[static_cast<std::size_t>(i)] == i;
  }
  if (identity) {
    return false;
  }
  const auto remap = [&order](int station) {
    const auto it = std::lower_bound(order.begin(), order.end(), station);
    return static_cast<int>(it - order.begin());
  };
  for (traffic::Message& msg : c.messages) {
    msg.source = remap(msg.source);
  }
  for (fault::CrashFault& f : c.fault_plan.crashes) {
    f.station = remap(f.station);
  }
  for (fault::AsymmetricFault& f : c.fault_plan.asymmetric) {
    f.station = remap(f.station);
  }
  for (fault::ChurnEvent& e : c.churn.events) {
    e.station = remap(e.station);
  }
  for (fault::DriftSpec& d : c.drift.specs) {
    d.station = remap(d.station);
  }
  c.stations = compact;
  return true;
}

/// Shifts every arrival and deadline so the earliest arrival is 0. Returns
/// false when nothing changed.
bool normalize_arrivals(ReplayCase& c) {
  if (c.messages.empty()) {
    return false;
  }
  SimTime earliest = SimTime::infinity();
  for (const traffic::Message& msg : c.messages) {
    earliest = std::min(earliest, msg.arrival);
  }
  if (earliest == SimTime::zero()) {
    return false;
  }
  const Duration shift = earliest - SimTime::zero();
  for (traffic::Message& msg : c.messages) {
    msg.arrival = msg.arrival - shift;
    msg.absolute_deadline = msg.absolute_deadline - shift;
  }
  return true;
}

}  // namespace

Shrinker::Shrinker(Property property) : property_(std::move(property)) {
  HRTDM_EXPECT(static_cast<bool>(property_), "Shrinker needs a property");
}

Shrinker::Property Shrinker::conformance_fails() {
  return [](const ReplayCase& c) { return !replay_case(c).ok; };
}

ShrinkResult Shrinker::shrink(ReplayCase start, int max_evals) const {
  ShrinkResult out;
  out.minimal = std::move(start);
  out.minimal.validate();
  const auto fails = [this, &out](const ReplayCase& candidate) {
    ++out.evals;
    return property_(candidate);
  };
  HRTDM_EXPECT(fails(out.minimal),
               "Shrinker: the starting case must exhibit the failure");

  // Phase 1 — ddmin over messages: try dropping chunks, refining the chunk
  // size on failure to reduce, down to single messages.
  std::size_t chunks = 2;
  while (out.minimal.messages.size() >= 2 && out.evals < max_evals) {
    const std::size_t n = out.minimal.messages.size();
    chunks = std::min(chunks, n);
    bool reduced = false;
    for (std::size_t i = 0; i < chunks && out.evals < max_evals; ++i) {
      const std::size_t lo = i * n / chunks;
      const std::size_t hi = (i + 1) * n / chunks;
      if (lo == hi) {
        continue;
      }
      ReplayCase candidate = out.minimal;
      candidate.messages.erase(
          candidate.messages.begin() + static_cast<std::ptrdiff_t>(lo),
          candidate.messages.begin() + static_cast<std::ptrdiff_t>(hi));
      if (fails(candidate)) {
        out.minimal = std::move(candidate);
        ++out.accepted;
        reduced = true;
        break;
      }
    }
    if (reduced) {
      chunks = std::max<std::size_t>(chunks - 1, 2);
      continue;
    }
    if (chunks >= n) {
      break;  // already at single-message granularity, nothing droppable
    }
    chunks = std::min(chunks * 2, n);
  }

  // Phase 2 — structural cleanups: renumber away unused sources, shift the
  // time origin. Each must preserve the failure to be kept.
  {
    ReplayCase candidate = out.minimal;
    if (renumber_sources(candidate) && out.evals < max_evals &&
        fails(candidate)) {
      out.minimal = std::move(candidate);
      ++out.accepted;
    }
  }
  {
    ReplayCase candidate = out.minimal;
    if (normalize_arrivals(candidate) && out.evals < max_evals &&
        fails(candidate)) {
      out.minimal = std::move(candidate);
      ++out.accepted;
    }
  }

  // Phase 3 — deadline-slack halving: tighten each message's window while
  // the failure persists (one greedy sweep, binary-search granularity).
  for (std::size_t i = 0;
       i < out.minimal.messages.size() && out.evals < max_evals; ++i) {
    for (int round = 0; round < 8 && out.evals < max_evals; ++round) {
      const traffic::Message& msg = out.minimal.messages[i];
      const Duration slack = msg.absolute_deadline - msg.arrival;
      const Duration min_slack =
          std::max(out.minimal.phy.tx_time(msg.l_bits),
                   out.minimal.phy.slot_x);
      if (slack <= min_slack) {
        break;
      }
      ReplayCase candidate = out.minimal;
      candidate.messages[i].absolute_deadline =
          msg.arrival + std::max(slack / 2, min_slack);
      if (fails(candidate)) {
        out.minimal = std::move(candidate);
        ++out.accepted;
      } else {
        break;
      }
    }
  }
  return out;
}

}  // namespace hrtdm::check
