// Differential conformance checking of recorded broadcast-channel runs.
//
// A ConformanceRecorder captures the ground-truth SlotRecord stream of a
// run (it is a plain ChannelObserver — attach it to any channel, CSMA/DDCR
// or baseline). The ConformanceComparator then replays that stream against
// everything the paper promises:
//
//   safety      — mutual exclusion (a destructive-mode success has exactly
//                 one transmitter), slot-grid integrity (no overlaps, exact
//                 slot durations), frame integrity (every delivered frame
//                 matches an injected message, delivered once, never before
//                 it arrived);
//   timeliness  — completions vs absolute deadlines, cross-checked against
//                 the independent centralized NP-EDF oracle (EdfOracle);
//   EDF order   — no delivered message overtakes a waiting message whose
//                 deadline is earlier by more than the protocol's legal
//                 granularity (class width / in-epoch clamping);
//   boundedness — per-epoch search cost <= xi(k, t, m), the P2 multi-tree
//                 bound, and an aggregate makespan bound vs the oracle
//                 (protocol may only lose accounted overhead: pending-work
//                 silences, contention slots, arbitration preambles);
//   accounting  — the EpochTracker replica's totals vs the stations' own
//                 counters and the channel's stats.
//
// Checks that rely on the fixed-placement analysis model are gated off
// when the run could legitimately deviate (channel noise, fault injection,
// arbitration mode, late-message shedding); the report counts how many
// checks actually ran so tests can assert the gating never silently
// disables everything.
#pragma once

#include <cstdint>
#include <vector>

#include "check/edf_oracle.hpp"
#include "core/ddcr_network.hpp"
#include "net/channel.hpp"
#include "traffic/message.hpp"

namespace hrtdm::check {

/// Ground-truth recorder. Attach to a channel before start(); the entry
/// list then covers the whole run, with fast-forwarded idle gaps kept as
/// single aggregated entries (observation indices stay aligned with the
/// channel's fault-plan axis).
class ConformanceRecorder final : public net::ChannelObserver {
 public:
  struct Entry {
    net::SlotRecord record;
    /// 0 = a real slot; > 0 = an aggregated idle gap of this many silence
    /// slots (record spans the whole gap).
    std::int64_t gap_slots = 0;
    /// Channel observation index of the (first) slot.
    std::int64_t obs_index = 0;
  };

  void on_slot(const net::SlotRecord& record) override;
  void on_idle_gap(std::int64_t slots, SimTime first_start,
                   util::Duration slot_x) override;

  const std::vector<Entry>& entries() const { return entries_; }
  /// Observations recorded (slots + gap slots).
  std::int64_t observations() const { return observations_; }

  /// The entries strictly before observation index `end` (gap entries
  /// straddling the cut are clipped to the slots that fit).
  std::vector<Entry> clean_prefix(std::int64_t end) const;

  /// The dual: entries at or after observation index `begin` (a gap
  /// straddling the cut keeps its tail). This is the stabilization
  /// harness's judging stream — after a run that *started* corrupted has
  /// reconverged, the suffix from the convergence point onward must pass
  /// the full conformance check.
  std::vector<Entry> clean_suffix(std::int64_t begin) const;

 private:
  std::vector<Entry> entries_;
  std::int64_t observations_ = 0;
};

/// Everything the comparator needs to judge a recorded run.
struct ConformanceInput {
  /// Every message instance injected into the run (any order; uids unique).
  std::vector<traffic::Message> messages;
  net::PhyConfig phy;
  net::CollisionMode collision_mode = net::CollisionMode::kDestructive;
  core::DdcrConfig ddcr;
  /// The protocol under test emulates EDF via CSMA/DDCR. False for the
  /// baseline protocols (BEB, DCR, TDMA, stack): only safety, frame
  /// integrity and completeness apply — they promise no deadline order.
  bool protocol_is_ddcr = true;
  /// A fault plan was active: only the observations strictly before this
  /// index are judged (use fault::FaultPlan::first_fault_observation()).
  /// -1 = the whole run was fault-free.
  std::int64_t clean_prefix_end = -1;
  /// Clean-*suffix* judging (the dual used by the self-stabilization
  /// harness): only observations at or after this index are judged. The
  /// caller must certify the boundary is quiet — queues drained, every
  /// station synced and digest-consistent — and `messages` must contain
  /// exactly the messages injected after it. -1 = no suffix clipping.
  /// May be combined with clean_prefix_end (judging a clean window).
  std::int64_t clean_suffix_begin = -1;
  /// No watchdog detection / quarantine / rejoin happened (auditors derive
  /// this from the run result). False disables the placement-model bounds.
  bool replicas_clean = true;
  /// The run drained: every injected message must have been delivered, and
  /// the makespan bound vs the oracle applies.
  bool expect_drain = false;
  /// Assert every completion meets its absolute deadline (set by tests
  /// whose scenario the feasibility conditions declare schedulable).
  bool expect_timeliness = false;
  /// EDF-order tolerance; zero = auto (the scheduling horizon c F plus
  /// alpha plus one class width — the worst legal in-epoch clamping skew).
  /// Controlled scenarios pass something much tighter (~c).
  util::Duration edf_tolerance;
  /// Optional cross-checks (require the recorder to span the whole run).
  const net::ChannelStats* stats = nullptr;
  const std::vector<core::DdcrStation::Counters>* per_station = nullptr;
};

class ConformanceComparator {
 public:
  /// Judges a recorded run. Applies clean_prefix_end clipping itself.
  core::ConformanceReport check(const ConformanceInput& input,
                                const ConformanceRecorder& recorder) const;

  /// Same, over a hand-built entry stream (negative tests forge violating
  /// streams this way). `whole_run` tells the comparator the stream covers
  /// the complete run (enables completeness / stats / counter checks).
  core::ConformanceReport check_entries(
      const ConformanceInput& input,
      const std::vector<ConformanceRecorder::Entry>& entries,
      bool whole_run) const;
};

/// Installs the run_ddcr conformance seam (core::set_auditor_factory) so
/// DdcrRunOptions::conformance_check works. Returns true; call it from a
/// file-level static so linking a test against hrtdm_check is enough:
///   static const bool kConformanceInstalled =
///       hrtdm::check::install_conformance_auditor();
bool install_conformance_auditor();

}  // namespace hrtdm::check
