#include "check/conformance.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "check/bound_checker.hpp"
#include "check/epoch_tracker.hpp"
#include "traffic/workload.hpp"
#include "util/check.hpp"

namespace hrtdm::check {
namespace {

using core::ConformanceReport;
using util::Duration;

/// Violation lists are capped so a systematically broken run does not
/// produce a megabyte of strings; the tail is summarised.
constexpr std::size_t kMaxViolations = 40;

class ViolationSink {
 public:
  explicit ViolationSink(ConformanceReport& report) : report_(report) {}
  void add(std::string text) {
    if (report_.violations.size() < kMaxViolations) {
      report_.violations.push_back(std::move(text));
    } else {
      ++overflow_;
    }
  }
  /// Call exactly once, before the report leaves the function.
  void finalize() {
    if (overflow_ > 0) {
      report_.violations.push_back("... and " + std::to_string(overflow_) +
                                   " further violation(s)");
    }
    report_.ok = report_.violations.empty();
  }

 private:
  ConformanceReport& report_;
  std::int64_t overflow_ = 0;
};

struct Delivery {
  std::int64_t uid = -1;
  SimTime start;
  SimTime end;
  SimTime deadline;
  bool in_burst = false;
};

std::string slot_at(const net::SlotRecord& record) {
  std::ostringstream os;
  os << " (slot at " << record.start.str() << ")";
  return os.str();
}

}  // namespace

void ConformanceRecorder::on_slot(const net::SlotRecord& record) {
  Entry entry;
  entry.record = record;
  entry.obs_index = observations_;
  entries_.push_back(entry);
  ++observations_;
}

void ConformanceRecorder::on_idle_gap(std::int64_t slots, SimTime first_start,
                                      util::Duration slot_x) {
  if (slots <= 0) {
    return;
  }
  Entry entry;
  entry.record.kind = net::SlotKind::kSilence;
  entry.record.contenders = 0;
  entry.record.start = first_start;
  entry.record.end = first_start + slot_x * slots;
  entry.gap_slots = slots;
  entry.obs_index = observations_;
  entries_.push_back(entry);
  observations_ += slots;
}

std::vector<ConformanceRecorder::Entry> ConformanceRecorder::clean_prefix(
    std::int64_t end) const {
  std::vector<Entry> prefix;
  for (const Entry& entry : entries_) {
    if (entry.obs_index >= end) {
      break;
    }
    if (entry.gap_slots > 0 && entry.obs_index + entry.gap_slots > end) {
      // Clip the gap to the slots that fit before the cut.
      Entry clipped = entry;
      clipped.gap_slots = end - entry.obs_index;
      const Duration slot =
          (entry.record.end - entry.record.start) / entry.gap_slots;
      clipped.record.end = entry.record.start + slot * clipped.gap_slots;
      prefix.push_back(clipped);
      break;
    }
    prefix.push_back(entry);
  }
  return prefix;
}

std::vector<ConformanceRecorder::Entry> ConformanceRecorder::clean_suffix(
    std::int64_t begin) const {
  std::vector<Entry> suffix;
  for (const Entry& entry : entries_) {
    const std::int64_t covered =
        entry.gap_slots > 0 ? entry.gap_slots : 1;
    if (entry.obs_index + covered <= begin) {
      continue;
    }
    if (entry.gap_slots > 0 && entry.obs_index < begin) {
      // Clip the gap to the slots at or after the cut.
      Entry clipped = entry;
      clipped.gap_slots = entry.obs_index + entry.gap_slots - begin;
      const Duration slot =
          (entry.record.end - entry.record.start) / entry.gap_slots;
      clipped.record.start = entry.record.end - slot * clipped.gap_slots;
      clipped.obs_index = begin;
      suffix.push_back(clipped);
      continue;
    }
    suffix.push_back(entry);
  }
  return suffix;
}

core::ConformanceReport ConformanceComparator::check(
    const ConformanceInput& input, const ConformanceRecorder& recorder) const {
  const bool prefix_clipped = input.clean_prefix_end >= 0;
  const bool suffix_clipped = input.clean_suffix_begin >= 0;
  if (!prefix_clipped && !suffix_clipped) {
    return check_entries(input, recorder.entries(), /*whole_run=*/true);
  }
  std::vector<ConformanceRecorder::Entry> stream =
      suffix_clipped ? recorder.clean_suffix(input.clean_suffix_begin)
                     : recorder.entries();
  if (prefix_clipped) {
    // Drop (and clip) everything at or past the prefix end — combining the
    // two cuts judges a clean window.
    std::vector<ConformanceRecorder::Entry> window;
    for (const ConformanceRecorder::Entry& entry : stream) {
      if (entry.obs_index >= input.clean_prefix_end) {
        break;
      }
      if (entry.gap_slots > 0 &&
          entry.obs_index + entry.gap_slots > input.clean_prefix_end) {
        ConformanceRecorder::Entry clipped = entry;
        clipped.gap_slots = input.clean_prefix_end - entry.obs_index;
        const Duration slot =
            (entry.record.end - entry.record.start) / entry.gap_slots;
        clipped.record.end = entry.record.start + slot * clipped.gap_slots;
        window.push_back(clipped);
        break;
      }
      window.push_back(entry);
    }
    stream = std::move(window);
  }
  return check_entries(input, stream, /*whole_run=*/false);
}

core::ConformanceReport ConformanceComparator::check_entries(
    const ConformanceInput& input,
    const std::vector<ConformanceRecorder::Entry>& entries,
    bool whole_run) const {
  ConformanceReport report;
  report.checked = true;
  ViolationSink sink(report);

  const bool destructive =
      input.collision_mode == net::CollisionMode::kDestructive;
  const bool may_corrupt =
      input.phy.corruption_prob > 0.0 || input.phy.ge_enabled;
  const bool clean = whole_run && !may_corrupt && input.replicas_clean;

  // --- message index -------------------------------------------------------
  std::map<std::int64_t, traffic::Message> by_uid;
  std::vector<SimTime> arrivals;
  arrivals.reserve(input.messages.size());
  for (const traffic::Message& msg : input.messages) {
    const bool inserted = by_uid.emplace(msg.uid, msg).second;
    HRTDM_EXPECT(inserted, "conformance input uids must be unique");
    arrivals.push_back(msg.arrival);
  }
  std::sort(arrivals.begin(), arrivals.end());

  // --- pass 1: slot-grid sanity, safety, delivery extraction ---------------
  std::vector<Delivery> deliveries;
  std::set<std::int64_t> delivered_uids;
  bool have_prev = false;
  SimTime prev_end;
  Duration busy_silence;     // silence while some message was pending
  Duration contention;       // collision slots (wall time)
  Duration arbitration_extra;  // the slot_x preamble of arbitration wins
  std::size_t arrived_ptr = 0;
  std::int64_t delivered_count = 0;

  for (const ConformanceRecorder::Entry& entry : entries) {
    const net::SlotRecord& rec = entry.record;
    report.slots_checked += entry.gap_slots > 0 ? entry.gap_slots : 1;
    if (rec.end < rec.start) {
      sink.add("slot ends before it starts" + slot_at(rec));
    }
    if (have_prev && rec.start < prev_end) {
      sink.add("slots overlap: starts at " + rec.start.str() +
               " before previous ended at " + prev_end.str());
    }
    have_prev = true;
    prev_end = rec.end;

    if (entry.gap_slots > 0) {
      // Idle fast-forward gaps commit only when every station is quiescent,
      // i.e. every queue is empty — so nothing can be pending during them.
      if (rec.kind != net::SlotKind::kSilence || rec.contenders != 0) {
        sink.add("idle gap recorded as non-silence" + slot_at(rec));
      }
      continue;
    }

    switch (rec.kind) {
      case net::SlotKind::kSilence: {
        if (rec.contenders != 0) {
          sink.add("silence with transmitters on the medium" + slot_at(rec));
        }
        if (rec.frame.has_value()) {
          sink.add("silence slot carries a frame" + slot_at(rec));
        }
        if (rec.end - rec.start != input.phy.slot_x) {
          sink.add("silence slot duration != x" + slot_at(rec));
        }
        while (arrived_ptr < arrivals.size() &&
               arrivals[arrived_ptr] <= rec.end) {
          ++arrived_ptr;
        }
        if (static_cast<std::int64_t>(arrived_ptr) > delivered_count) {
          busy_silence += rec.end - rec.start;
        }
        break;
      }
      case net::SlotKind::kCollision: {
        if (destructive && !may_corrupt && rec.contenders < 2) {
          sink.add("collision with fewer than 2 transmitters" + slot_at(rec));
        }
        if (!destructive && !may_corrupt) {
          sink.add("destructive collision in arbitration mode" +
                   slot_at(rec));
        }
        if (!may_corrupt && rec.end - rec.start != input.phy.slot_x) {
          sink.add("collision slot duration != x" + slot_at(rec));
        }
        contention += rec.end - rec.start;
        break;
      }
      case net::SlotKind::kSuccess: {
        if (!rec.frame.has_value()) {
          sink.add("success without a frame" + slot_at(rec));
          break;
        }
        const net::Frame& frame = *rec.frame;
        // Mutual exclusion: in destructive mode a delivered frame means
        // exactly one transmitter held the medium. (Arbitration wins and
        // burst continuations legitimately differ.)
        if (destructive && !rec.in_burst && !rec.arbitration &&
            rec.contenders != 1) {
          sink.add("mutual exclusion violated: success with " +
                   std::to_string(rec.contenders) + " transmitters" +
                   slot_at(rec));
        }
        const Duration tx = input.phy.tx_time(frame.l_bits);
        const Duration expect =
            rec.in_burst ? tx
                         : rec.arbitration ? input.phy.slot_x + tx
                                           : std::max(tx, input.phy.slot_x);
        if (rec.end - rec.start != expect) {
          sink.add("success slot duration inconsistent with l'/psi" +
                   slot_at(rec));
        }
        if (rec.arbitration) {
          arbitration_extra += input.phy.slot_x;
        }
        const auto it = by_uid.find(frame.msg_uid);
        if (it == by_uid.end()) {
          sink.add("delivered frame was never injected (uid " +
                   std::to_string(frame.msg_uid) + ")" + slot_at(rec));
          break;
        }
        const traffic::Message& msg = it->second;
        if (frame.source != msg.source || frame.class_id != msg.class_id ||
            frame.l_bits != msg.l_bits || frame.enqueue_time != msg.arrival ||
            frame.absolute_deadline != msg.absolute_deadline) {
          sink.add("frame metadata does not match the injected message (uid " +
                   std::to_string(frame.msg_uid) + ")" + slot_at(rec));
        }
        if (rec.start < msg.arrival) {
          sink.add("message transmitted before it arrived (uid " +
                   std::to_string(frame.msg_uid) + ")" + slot_at(rec));
        }
        if (!delivered_uids.insert(frame.msg_uid).second) {
          sink.add("message delivered twice (uid " +
                   std::to_string(frame.msg_uid) + ")" + slot_at(rec));
        }
        ++delivered_count;
        Delivery d;
        d.uid = frame.msg_uid;
        d.start = rec.start;
        d.end = rec.end;
        d.deadline = msg.absolute_deadline;
        d.in_burst = rec.in_burst;
        deliveries.push_back(d);
        break;
      }
    }
  }

  // --- completeness --------------------------------------------------------
  if (input.expect_drain && whole_run) {
    for (const auto& [uid, msg] : by_uid) {
      if (delivered_uids.count(uid) == 0) {
        sink.add("message never delivered (uid " + std::to_string(uid) +
                 ", source " + std::to_string(msg.source) + ")");
      }
    }
  }

  // --- timeliness + oracle -------------------------------------------------
  SimTime observed_makespan;
  for (const Delivery& d : deliveries) {
    observed_makespan = std::max(observed_makespan, d.end);
    if (d.end > d.deadline) {
      ++report.observed_misses;
      if (input.expect_timeliness) {
        sink.add("deadline missed (uid " + std::to_string(d.uid) +
                 "): completed " + d.end.str() + " > DM " + d.deadline.str());
      }
    }
  }
  report.observed_makespan_s = observed_makespan.to_seconds();

  const EdfOracle oracle(input.phy);
  const OracleSchedule ideal = oracle.schedule(input.messages);
  report.oracle_feasible = ideal.feasible;
  report.oracle_misses = ideal.misses;
  report.oracle_makespan_s = ideal.makespan.to_seconds();
  if (input.expect_timeliness && !ideal.feasible) {
    sink.add("scenario declared timely but the ideal centralized NP-EDF "
             "already misses " +
             std::to_string(ideal.misses) + " deadline(s)");
  }

  // --- EDF dispatch order --------------------------------------------------
  // A delivered message must not overtake a message that was already
  // waiting with a deadline earlier by more than the protocol's legal
  // granularity. Sweep deliveries in transmission order against the set of
  // arrived-but-undelivered messages (O(n log n)).
  if (input.protocol_is_ddcr && !input.ddcr.drop_late_messages) {
    const Duration tolerance =
        input.edf_tolerance > Duration()
            ? input.edf_tolerance
            : input.ddcr.horizon() + input.ddcr.alpha +
                  input.ddcr.class_width_c;
    std::vector<const traffic::Message*> by_arrival;
    by_arrival.reserve(input.messages.size());
    for (const traffic::Message& msg : input.messages) {
      by_arrival.push_back(&msg);
    }
    std::sort(by_arrival.begin(), by_arrival.end(),
              [](const traffic::Message* a, const traffic::Message* b) {
                if (a->arrival != b->arrival) return a->arrival < b->arrival;
                return a->uid < b->uid;
              });
    std::vector<Delivery> in_tx_order = deliveries;
    std::sort(in_tx_order.begin(), in_tx_order.end(),
              [](const Delivery& a, const Delivery& b) {
                return a.start < b.start;
              });
    std::set<std::pair<SimTime, std::int64_t>> waiting;  // (deadline, uid)
    std::map<std::int64_t, SimTime> waiting_deadline;
    std::set<std::int64_t> transmitted;
    std::size_t next_arrival = 0;
    for (const Delivery& d : in_tx_order) {
      // Strictly-before: an arrival racing the slot boundary may or may not
      // have been visible to the transmitter's poll. A message that starts
      // transmitting in its very arrival slot is ingested *after* its own
      // delivery sweeps past — the transmitted set keeps it out of waiting.
      transmitted.insert(d.uid);
      while (next_arrival < by_arrival.size() &&
             by_arrival[next_arrival]->arrival < d.start) {
        const traffic::Message* msg = by_arrival[next_arrival];
        if (transmitted.count(msg->uid) == 0) {
          waiting.emplace(msg->absolute_deadline, msg->uid);
          waiting_deadline.emplace(msg->uid, msg->absolute_deadline);
        }
        ++next_arrival;
      }
      const auto mine = waiting_deadline.find(d.uid);
      if (mine != waiting_deadline.end()) {
        waiting.erase({mine->second, d.uid});
        waiting_deadline.erase(mine);
      }
      if (d.in_burst || waiting.empty()) {
        continue;  // bursts legally chain the winner's queue
      }
      ++report.edf_pairs_checked;
      const auto& [min_deadline, min_uid] = *waiting.begin();
      if (d.deadline - min_deadline > tolerance) {
        std::ostringstream os;
        os << "EDF order violated: uid " << d.uid << " (DM "
           << d.deadline.str() << ") transmitted at " << d.start.str()
           << " while uid " << min_uid << " (DM " << min_deadline.str()
           << ") had been waiting; skew exceeds tolerance "
           << tolerance.str();
        sink.add(os.str());
      }
    }
  }

  // --- epoch replica, xi / P2 bounds, counter cross-checks -----------------
  const bool track_epochs = input.protocol_is_ddcr && destructive &&
                            !may_corrupt && input.replicas_clean;
  if (track_epochs) {
    EpochTracker tracker(input.ddcr);
    for (const ConformanceRecorder::Entry& entry : entries) {
      if (entry.gap_slots > 0) {
        continue;  // gaps require all-quiescent: plain CSMA-CD silences
      }
      tracker.on_slot(entry.record);
    }
    tracker.finish();
    report.epochs = tracker.epochs();

    if (!input.ddcr.drop_late_messages) {
      BoundChecker bounds(input.ddcr, arrivals);
      bounds.run(tracker);
      report.tts_bound_checked = bounds.tts_checked();
      report.sts_bound_checked = bounds.sts_checked();
      report.p2_windows_checked = bounds.p2_windows_checked();
      for (const std::string& violation : bounds.violations()) {
        sink.add(violation);
      }
    }

    if (input.per_station != nullptr && whole_run && !may_corrupt) {
      // Every synced replica hears every slot, so each station's own search
      // accounting must agree with the channel-side replica. A search still
      // in progress when the run ended is counted by stations but discarded
      // by the tracker, so equality only holds for fully-drained streams.
      for (const core::DdcrStation::Counters& c : *input.per_station) {
        if (c.epochs != tracker.epochs()) {
          sink.add("epoch accounting drift: station counted " +
                   std::to_string(c.epochs) + " epochs, channel replica " +
                   std::to_string(tracker.epochs()));
        }
        const std::int64_t tts_runs =
            static_cast<std::int64_t>(tracker.tts_runs().size());
        const std::int64_t sts_runs =
            static_cast<std::int64_t>(tracker.sts_runs().size());
        const bool exact = !tracker.truncated_mid_search();
        if (exact ? c.tts_runs != tts_runs : c.tts_runs < tts_runs) {
          sink.add("TTs run accounting drift: station " +
                   std::to_string(c.tts_runs) + " vs replica " +
                   std::to_string(tts_runs));
        }
        if (exact ? c.sts_runs != sts_runs : c.sts_runs < sts_runs) {
          sink.add("STs run accounting drift: station " +
                   std::to_string(c.sts_runs) + " vs replica " +
                   std::to_string(sts_runs));
        }
        if (exact
                ? c.search_slots_time != tracker.total_tts_search_slots()
                : c.search_slots_time < tracker.total_tts_search_slots()) {
          sink.add("TTs search-slot accounting drift: station " +
                   std::to_string(c.search_slots_time) + " vs replica " +
                   std::to_string(tracker.total_tts_search_slots()));
        }
        if (exact
                ? c.search_slots_static != tracker.total_sts_search_slots()
                : c.search_slots_static < tracker.total_sts_search_slots()) {
          sink.add("STs search-slot accounting drift: station " +
                   std::to_string(c.search_slots_static) + " vs replica " +
                   std::to_string(tracker.total_sts_search_slots()));
        }
      }
    }
  }

  // --- bounded lateness vs the oracle --------------------------------------
  // The protocol may finish later than the clairvoyant single-queue server
  // only by overhead the analysis accounts: silences while work was
  // pending, contention slots, and arbitration preambles (plus two slots of
  // grid-alignment slack). Everything else — transmission time — is
  // identical on both sides.
  if (input.protocol_is_ddcr && input.expect_drain && whole_run && clean &&
      !input.ddcr.drop_late_messages && !deliveries.empty()) {
    const Duration slack = input.phy.slot_x * 2;
    const SimTime bound = ideal.makespan + busy_silence + contention +
                          arbitration_extra + slack;
    if (observed_makespan > bound) {
      std::ostringstream os;
      os << "lateness vs oracle unbounded: last completion "
         << observed_makespan.str() << " > ideal " << ideal.makespan.str()
         << " + accounted overhead (" << (bound - ideal.makespan).str()
         << ")";
      sink.add(os.str());
    }
  }

  // --- channel accounting cross-check --------------------------------------
  if (input.stats != nullptr && whole_run) {
    std::int64_t silences = 0;
    std::int64_t collisions = 0;
    std::int64_t successes = 0;
    for (const ConformanceRecorder::Entry& entry : entries) {
      if (entry.gap_slots > 0) {
        silences += entry.gap_slots;
        continue;
      }
      switch (entry.record.kind) {
        case net::SlotKind::kSilence: ++silences; break;
        case net::SlotKind::kCollision: ++collisions; break;
        case net::SlotKind::kSuccess: ++successes; break;
      }
    }
    if (silences != input.stats->silence_slots ||
        collisions != input.stats->collision_slots ||
        successes != input.stats->successes) {
      std::ostringstream os;
      os << "channel accounting drift: recorded " << silences << "/"
         << collisions << "/" << successes
         << " silence/collision/success vs stats "
         << input.stats->silence_slots << "/"
         << input.stats->collision_slots << "/" << input.stats->successes;
      sink.add(os.str());
    }
  }

  sink.finalize();
  return report;
}

namespace {

/// The auditor run_ddcr instantiates for conformance-checked runs: records
/// the ground truth during the run, regenerates the identical arrival
/// stream afterwards (generate_traffic is deterministic in (workload, kind,
/// horizon, seed)) and judges the recording.
class RunConformanceAuditor final : public core::RunAuditor {
 public:
  RunConformanceAuditor(const traffic::Workload& workload,
                        const core::DdcrRunOptions& options)
      : workload_(workload), options_(options) {}

  net::ChannelObserver& observer() override { return recorder_; }

  void finish(core::DdcrRunResult& result) override {
    ConformanceInput input;
    const auto traffic = traffic::generate_traffic(
        workload_, options_.arrivals, options_.arrival_horizon,
        options_.seed);
    for (const auto& source : traffic.per_source) {
      input.messages.insert(input.messages.end(), source.begin(),
                            source.end());
    }
    input.phy = options_.phy;
    input.collision_mode = options_.collision_mode;
    input.ddcr = options_.ddcr;
    input.protocol_is_ddcr = true;
    input.replicas_clean = result.desyncs_detected == 0 &&
                           result.quarantines == 0 && result.rejoins == 0;
    input.expect_drain =
        result.undelivered == 0 && result.dropped_late == 0;
    input.stats = &result.channel;
    input.per_station = &result.per_station;
    result.conformance = ConformanceComparator{}.check(input, recorder_);
  }

 private:
  traffic::Workload workload_;
  core::DdcrRunOptions options_;
  ConformanceRecorder recorder_;
};

std::unique_ptr<core::RunAuditor> make_auditor(
    const traffic::Workload& workload, const core::DdcrRunOptions& resolved) {
  return std::make_unique<RunConformanceAuditor>(workload, resolved);
}

}  // namespace

bool install_conformance_auditor() {
  core::set_auditor_factory(&make_auditor);
  return true;
}

}  // namespace hrtdm::check
