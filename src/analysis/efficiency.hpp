// Channel-utilisation analysis for tree collision resolution.
//
// Section 3.1 motivates tree protocols by their near-optimal channel
// utilisation. These helpers quantify it for CSMA/DDCR: a k-way collision
// costs xi(k, t) + 1 slots (search plus the triggering collision) to
// deliver k frames, so the worst-case efficiency is
//
//     eta(k) = k T_tx / (k T_tx + (xi(k, t) + 1) x).
//
// The per-message overhead (xi + 1)/k falls toward its floor as the tree
// saturates: at k = t, (xi(t,t) + 1)/t -> 1/(m-1) slots per message.
#pragma once

#include <cstdint>

namespace hrtdm::analysis {

/// Worst-case search slots per delivered message for a k-way collision,
/// including the triggering collision: (xi(k, t) + 1) / k.
double per_message_overhead_slots(int m, std::int64_t t, std::int64_t k);

/// Worst-case channel efficiency for k contenders with transmission time
/// tx_seconds and slot time slot_seconds. Requires k >= 1 (k = 1 has no
/// collision and is fully efficient).
double worst_case_efficiency(int m, std::int64_t t, std::int64_t k,
                             double tx_seconds, double slot_seconds);

/// The saturation floor of the per-message overhead: 1/(m-1) slots, the
/// k = t limit of per_message_overhead_slots (plus the vanishing 1/t).
double saturated_overhead_slots(int m);

}  // namespace hrtdm::analysis
