#include "analysis/dimensioning.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {

namespace {

FcSystem build_system(const DimensioningRequest& request,
                      const FcTreeParams& trees,
                      const std::vector<std::int64_t>& nu) {
  FcSystem system;
  system.phy = request.phy;
  system.trees = trees;
  system.sources = request.sources;
  for (std::size_t s = 0; s < system.sources.size(); ++s) {
    system.sources[s].nu = nu[s];
  }
  return system;
}

/// Index of the source owning the class with the smallest margin d - B.
std::size_t worst_source(const FcReport& report,
                         const std::vector<FcSource>& sources) {
  double worst = std::numeric_limits<double>::infinity();
  std::string worst_name;
  for (const auto& cls : report.classes) {
    const double margin = cls.d_s - cls.b_ddcr_s;
    if (margin < worst) {
      worst = margin;
      worst_name = cls.source;
    }
  }
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (sources[s].name == worst_name) {
      return s;
    }
  }
  return 0;
}

}  // namespace

DimensioningResult dimension(const DimensioningRequest& request) {
  HRTDM_EXPECT(!request.sources.empty(), "need at least one source");
  HRTDM_EXPECT(request.m >= 2, "branching degree must be >= 2");
  HRTDM_EXPECT(util::is_power_of(request.m, request.F),
               "F must be a power of m");
  const auto z = static_cast<std::int64_t>(request.sources.size());
  HRTDM_EXPECT(request.max_q >= z, "max_q cannot be below the source count");

  DimensioningResult result;
  result.trees.m_static = request.m;
  result.trees.m_time = request.m;
  result.trees.F = request.F;

  // Smallest power-of-m static tree that seats every source.
  std::int64_t q = util::ipow(request.m, util::ilog_ceil(request.m, z));
  std::vector<std::int64_t> nu(static_cast<std::size_t>(z), 1);

  const auto log_step = [&result](const std::string& text) {
    result.steps.push_back(text);
  };

  // Fast-fail: no tree shape can help past raw channel capacity.
  {
    FcSystem probe = build_system(request, result.trees, nu);
    probe.trees.q = q;
    const double load = probe.slot_limited_load();
    if (load >= 1.0) {
      std::ostringstream oss;
      oss << "slot-limited offered load " << load
          << " >= 1: beyond channel capacity, no configuration exists";
      log_step(oss.str());
      result.trees.q = q;
      result.nu = nu;
      result.report = check_feasibility(probe);
      return result;
    }
  }

  for (int step = 0; step < request.max_steps; ++step) {
    result.trees.q = q;
    result.nu = nu;
    const FcSystem system = build_system(request, result.trees, nu);
    result.report = check_feasibility(system);
    if (result.report.feasible) {
      result.feasible = true;
      std::ostringstream oss;
      oss << "feasible with q=" << q << ", total nu="
          << std::accumulate(nu.begin(), nu.end(), std::int64_t{0});
      log_step(oss.str());
      return result;
    }

    // Escalate: one more static index for the source with the binding
    // class; grow the static tree when the index budget is exhausted.
    const std::int64_t total_nu =
        std::accumulate(nu.begin(), nu.end(), std::int64_t{0});
    const std::size_t target = worst_source(result.report, request.sources);
    if (total_nu < q) {
      ++nu[target];
      std::ostringstream oss;
      oss << "margin " << result.report.worst_margin_s << " s: grant index #"
          << nu[target] << " to source " << request.sources[target].name;
      log_step(oss.str());
    } else if (q * request.m <= request.max_q) {
      q *= request.m;
      ++nu[target];
      std::ostringstream oss;
      oss << "index budget exhausted: grow static tree to q=" << q;
      log_step(oss.str());
    } else {
      log_step("budgets exhausted; instance appears infeasible at this PHY");
      return result;
    }
  }
  log_step("step budget exhausted");
  return result;
}

}  // namespace hrtdm::analysis
