#include "analysis/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/xi.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {

namespace {

/// ceil(x / w) clamped below at 0: the number of sliding windows of length w
/// that fit arrivals inside an interval of (possibly negative) length x.
std::int64_t window_count(double x, double w) {
  HRTDM_EXPECT(w > 0.0, "arrival window must be positive");
  if (x <= 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>(std::ceil(x / w));
}

double l_prime_bits(const FcPhy& phy, const FcMessageClass& cls) {
  return static_cast<double>(cls.l_bits + phy.overhead_bits);
}

}  // namespace

void FcSystem::validate() const {
  HRTDM_EXPECT(phy.psi_bps > 0.0, "throughput must be positive");
  HRTDM_EXPECT(phy.slot_s > 0.0, "slot time must be positive");
  HRTDM_EXPECT(phy.overhead_bits >= 0, "framing overhead cannot be negative");
  HRTDM_EXPECT(trees.m_static >= 2 && trees.m_time >= 2,
               "branching degrees must be >= 2");
  HRTDM_EXPECT(util::is_power_of(trees.m_static, trees.q),
               "q must be a power of m_static");
  HRTDM_EXPECT(util::is_power_of(trees.m_time, trees.F),
               "F must be a power of m_time");
  HRTDM_EXPECT(!sources.empty(), "need at least one source");
  HRTDM_EXPECT(trees.q >= static_cast<std::int64_t>(sources.size()),
               "q must be at least the number of sources z");
  std::int64_t total_nu = 0;
  for (const auto& src : sources) {
    HRTDM_EXPECT(src.nu >= 1, "every source needs at least one static index");
    total_nu += src.nu;
    for (const auto& cls : src.classes) {
      HRTDM_EXPECT(cls.l_bits > 0, "message length must be positive");
      HRTDM_EXPECT(cls.d_s > 0.0, "deadline must be positive");
      HRTDM_EXPECT(cls.a >= 1, "arrival count bound must be >= 1");
      HRTDM_EXPECT(cls.w_s > 0.0, "arrival window must be positive");
    }
  }
  HRTDM_EXPECT(total_nu <= trees.q,
               "static indices cannot exceed static-tree leaves");
}

double FcSystem::offered_load() const {
  double load = 0.0;
  for (const auto& src : sources) {
    for (const auto& cls : src.classes) {
      load += static_cast<double>(cls.a) / cls.w_s *
              (l_prime_bits(phy, cls) / phy.psi_bps);
    }
  }
  return load;
}

double FcSystem::slot_limited_load() const {
  double load = 0.0;
  for (const auto& src : sources) {
    for (const auto& cls : src.classes) {
      const double tx = l_prime_bits(phy, cls) / phy.psi_bps;
      load += static_cast<double>(cls.a) / cls.w_s * std::max(tx, phy.slot_s);
    }
  }
  return load;
}

FcClassReport evaluate_class(const FcSystem& system, std::size_t source_idx,
                             std::size_t class_idx) {
  HRTDM_EXPECT(source_idx < system.sources.size(), "source index out of range");
  const FcSource& source = system.sources[source_idx];
  HRTDM_EXPECT(class_idx < source.classes.size(), "class index out of range");
  const FcMessageClass& M = source.classes[class_idx];

  FcClassReport report;
  report.source = source.name;
  report.klass = M.name;
  report.d_s = M.d_s;

  // r(M): messages of MSG_i that can be serviced before M. A message msg can
  // precede M only if it arrives in [T(M) - d(msg), T(M) + d(M) - d(msg)],
  // an interval of length d(M); the density bound caps arrivals per class.
  std::int64_t r = -1;  // the -1 removes M itself
  for (const auto& cls : source.classes) {
    r += window_count(M.d_s, cls.w_s) * cls.a;
  }
  report.r = std::max<std::int64_t>(r, 0);

  // u(M): messages transmitted by all sources over I(M) = [T, T + d(M)).
  const double tx_of_m = l_prime_bits(system.phy, M) / system.phy.psi_bps;
  std::int64_t u = 0;
  double tx_sum = 0.0;
  for (const auto& src : system.sources) {
    for (const auto& cls : src.classes) {
      const std::int64_t count =
          window_count(M.d_s + cls.d_s - tx_of_m, cls.w_s) * cls.a;
      u += count;
      tx_sum += static_cast<double>(count) *
                (l_prime_bits(system.phy, cls) / system.phy.psi_bps);
    }
  }
  report.u = u;
  report.tx_time_s = tx_sum;

  // v(M): static trees searched while M waits, given nu_i indices per STs.
  report.v = 1 + util::floor_div(report.r, source.nu);

  // S1: P2 bound over v consecutive static trees; the asymptote is defined
  // on k in (0, q], and the paper's adversary uses k_i in [2, q], so the
  // per-tree average u/v is clamped into that range.
  const double q = static_cast<double>(system.trees.q);
  double k_avg = static_cast<double>(report.u) / static_cast<double>(report.v);
  if (k_avg < 2.0 || k_avg > q) {
    report.k_clamped = true;
    k_avg = std::clamp(k_avg, 2.0, q);
  }
  report.s1_slots = static_cast<double>(report.v) *
                    xi_asymptotic(system.trees.m_static, q, k_avg);

  // S2: isolating v time-tree leaves; 2 active leaves per time tree is the
  // worst case, so ceil(v/2) trees each contribute xi(2, F) slots.
  report.s2_slots =
      static_cast<double>(util::ceil_div(report.v, 2)) *
      static_cast<double>(xi_two(system.trees.m_time, system.trees.F));

  report.b_ddcr_s = report.tx_time_s +
                    system.phy.slot_s * (report.s1_slots + report.s2_slots);
  report.feasible = report.b_ddcr_s <= M.d_s;
  return report;
}

FcReport check_feasibility(const FcSystem& system) {
  system.validate();
  FcReport report;
  report.feasible = true;
  report.worst_margin_s = std::numeric_limits<double>::infinity();
  report.offered_load = system.offered_load();
  for (std::size_t s = 0; s < system.sources.size(); ++s) {
    for (std::size_t c = 0; c < system.sources[s].classes.size(); ++c) {
      FcClassReport cls = evaluate_class(system, s, c);
      report.feasible = report.feasible && cls.feasible;
      report.worst_margin_s =
          std::min(report.worst_margin_s, cls.d_s - cls.b_ddcr_s);
      report.classes.push_back(std::move(cls));
    }
  }
  return report;
}

}  // namespace hrtdm::analysis
