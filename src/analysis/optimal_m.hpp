// Optimal branching degree selection (end of section 4.1).
//
// The paper observes that for 64 leaves a quaternary tree dominates a binary
// tree for every k in [2, 64], and notes that "optimal m is derived from the
// general expression of xi". These helpers make that derivation concrete:
// given a required leaf count, compare candidate degrees m over the k range
// of interest.
#pragma once

#include <cstdint>
#include <vector>

namespace hrtdm::analysis {

struct BranchingCandidate {
  int m = 0;
  std::int64_t t = 0;           ///< smallest power of m >= required leaves
  std::int64_t worst_xi = 0;    ///< max over the evaluated k range
  double mean_xi = 0.0;         ///< mean over the evaluated k range
  bool dominated = false;       ///< some other candidate is <= for every k
};

struct BranchingStudy {
  std::int64_t leaves_required = 0;
  std::int64_t k_max = 0;
  std::vector<BranchingCandidate> candidates;  ///< sorted by m
  int best_m_worst_case = 0;  ///< argmin of worst_xi (ties -> smaller m)
  int best_m_mean = 0;        ///< argmin of mean_xi (ties -> smaller m)
};

/// Evaluates xi(k, t_m) for each m in [2, m_max] with t_m the smallest power
/// of m >= leaves_required, over k in [2, min(k_max, t_min)] where t_min is
/// the smallest of the t_m (so every candidate is defined on the range).
/// k_max <= 0 means "the full comparable range".
BranchingStudy compare_branching_degrees(std::int64_t leaves_required,
                                         int m_max, std::int64_t k_max = 0);

}  // namespace hrtdm::analysis
