// Exact expected search cost over uniformly random leaf placements.
//
// The paper (and its FCs) work with the adversarial worst case xi(k, t);
// the random-access literature it cites ([15]-[19]) studies averages. For
// k active leaves placed uniformly at random the expected number of
// non-transmission slots has a closed combinatorial form:
//
// A node v (subtree of s leaves) is probed iff its parent collided, i.e.
// iff the parent subtree (of ps = m s leaves) holds >= 2 of the k active
// leaves; a probed node costs one slot iff it holds 0 or >= 2 actives.
// The root probe is the epoch-triggering collision (cost 1 iff k >= 2, or
// a silent slot iff k = 0). By symmetry all nodes of one level share the
// same probability, and the counts follow the hypergeometric law, so
//
//   E[cost] = [k != 1] + sum_levels  n_level *
//             P(parent >= 2  and  node not exactly 1)
//
// computed exactly with hypergeometric joint probabilities.
#pragma once

#include <cstdint>

namespace hrtdm::analysis {

/// P[exactly j of the k active leaves fall in a fixed s-leaf subtree],
/// hypergeometric over t leaves. Exposed for testing.
double hypergeometric_pmf(std::int64_t t, std::int64_t k, std::int64_t s,
                          std::int64_t j);

/// Exact expected search cost (collision + empty slots, including the
/// triggering root probe) for k uniformly random active leaves in a
/// t-leaf balanced m-ary tree. 0 <= k <= t, t = m^n.
double xi_expected(int m, std::int64_t t, std::int64_t k);

/// Monte-Carlo estimate of the same quantity (used by tests and benches
/// to cross-check the closed form). Deterministic for a given seed.
double xi_expected_monte_carlo(int m, std::int64_t t, std::int64_t k,
                               int trials, std::uint64_t seed);

}  // namespace hrtdm::analysis
