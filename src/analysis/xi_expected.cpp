#include "analysis/xi_expected.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/xi.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrtdm::analysis {

namespace {

double log_choose(std::int64_t n, std::int64_t r) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(r) + 1.0) -
         std::lgamma(static_cast<double>(n - r) + 1.0);
}

}  // namespace

double hypergeometric_pmf(std::int64_t t, std::int64_t k, std::int64_t s,
                          std::int64_t j) {
  HRTDM_EXPECT(t >= 1 && k >= 0 && k <= t, "need 0 <= k <= t");
  HRTDM_EXPECT(s >= 0 && s <= t, "need 0 <= s <= t");
  if (j < 0 || j > s || j > k || k - j > t - s) {
    return 0.0;
  }
  return std::exp(log_choose(s, j) + log_choose(t - s, k - j) -
                  log_choose(t, k));
}

double xi_expected(int m, std::int64_t t, std::int64_t k) {
  HRTDM_EXPECT(m >= 2, "branching degree must be >= 2");
  HRTDM_EXPECT(util::is_power_of(m, t), "t must be a power of m");
  HRTDM_EXPECT(k >= 0 && k <= t, "k must lie in [0, t]");
  // Root probe: a collision for k >= 2, a silent slot for k = 0, free for
  // the lone-transmitter case.
  double expected = (k == 1) ? 0.0 : 1.0;
  if (k <= 1) {
    return expected;  // nothing below the root is ever probed
  }
  const std::int64_t n = util::ilog_floor(m, t);
  for (std::int64_t level = 1; level <= n; ++level) {
    const std::int64_t s = t / util::ipow(m, level);  // subtree size
    const std::int64_t ps = m * s;                    // parent size
    // P(node probed and non-success)
    //   = 1 - P(node holds exactly 1)
    //       - P(parent holds 0) - P(parent holds 1, outside this node).
    const double p = 1.0 - hypergeometric_pmf(t, k, s, 1) -
                     hypergeometric_pmf(t, k, ps, 0) -
                     hypergeometric_pmf(t, k, ps, 1) *
                         (static_cast<double>(m) - 1.0) /
                         static_cast<double>(m);
    expected += static_cast<double>(util::ipow(m, level)) * p;
  }
  return expected;
}

double xi_expected_monte_carlo(int m, std::int64_t t, std::int64_t k,
                               int trials, std::uint64_t seed) {
  HRTDM_EXPECT(trials >= 1, "need at least one trial");
  HRTDM_EXPECT(k >= 0 && k <= t, "k must lie in [0, t]");
  util::Rng rng(seed);
  double total = 0.0;
  std::vector<std::int64_t> pool(static_cast<std::size_t>(t));
  for (std::int64_t i = 0; i < t; ++i) {
    pool[static_cast<std::size_t>(i)] = i;
  }
  for (int trial = 0; trial < trials; ++trial) {
    // Partial Fisher-Yates: the first k entries become the placement.
    for (std::int64_t i = 0; i < k; ++i) {
      const std::int64_t j = rng.uniform_i64(i, t - 1);
      std::swap(pool[static_cast<std::size_t>(i)],
                pool[static_cast<std::size_t>(j)]);
    }
    std::vector<std::int64_t> leaves(pool.begin(), pool.begin() + k);
    std::sort(leaves.begin(), leaves.end());
    total += static_cast<double>(search_cost_for_leaves(m, t, leaves));
  }
  return total / static_cast<double>(trials);
}

}  // namespace hrtdm::analysis
