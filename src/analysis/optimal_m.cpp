#include "analysis/optimal_m.hpp"

#include <algorithm>
#include <limits>

#include "analysis/xi.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {

BranchingStudy compare_branching_degrees(std::int64_t leaves_required,
                                         int m_max, std::int64_t k_max) {
  HRTDM_EXPECT(leaves_required >= 2, "need at least two leaves");
  HRTDM_EXPECT(m_max >= 2, "m_max must be >= 2");

  BranchingStudy study;
  study.leaves_required = leaves_required;

  // Smallest t_m per candidate, and the smallest t across candidates (the
  // range on which all candidates are comparable).
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> t_of_m;
  for (int m = 2; m <= m_max; ++m) {
    const std::int64_t n = util::ilog_ceil(m, leaves_required);
    const std::int64_t t = util::ipow(m, n);
    t_of_m.push_back(t);
    t_min = std::min(t_min, t);
  }
  study.k_max = (k_max <= 0) ? t_min : std::min(k_max, t_min);
  HRTDM_EXPECT(study.k_max >= 2, "comparable k range is empty");

  // Evaluate each candidate over the shared k range via the closed form.
  std::vector<std::vector<std::int64_t>> values;
  for (int m = 2; m <= m_max; ++m) {
    const std::int64_t t = t_of_m[static_cast<std::size_t>(m - 2)];
    BranchingCandidate cand;
    cand.m = m;
    cand.t = t;
    std::vector<std::int64_t> vals;
    vals.reserve(static_cast<std::size_t>(study.k_max - 1));
    double sum = 0.0;
    for (std::int64_t k = 2; k <= study.k_max; ++k) {
      const std::int64_t v = xi_closed(m, t, k);
      vals.push_back(v);
      cand.worst_xi = std::max(cand.worst_xi, v);
      sum += static_cast<double>(v);
    }
    cand.mean_xi = sum / static_cast<double>(study.k_max - 1);
    values.push_back(std::move(vals));
    study.candidates.push_back(cand);
  }

  // Dominance: candidate i is dominated if some j is <= pointwise and
  // strictly < somewhere.
  for (std::size_t i = 0; i < study.candidates.size(); ++i) {
    for (std::size_t j = 0; j < study.candidates.size(); ++j) {
      if (i == j) {
        continue;
      }
      bool le_everywhere = true;
      bool lt_somewhere = false;
      for (std::size_t k = 0; k < values[i].size(); ++k) {
        if (values[j][k] > values[i][k]) {
          le_everywhere = false;
          break;
        }
        if (values[j][k] < values[i][k]) {
          lt_somewhere = true;
        }
      }
      if (le_everywhere && lt_somewhere) {
        study.candidates[i].dominated = true;
        break;
      }
    }
  }

  const auto best_by = [&](auto key) {
    int best_m = study.candidates.front().m;
    auto best_val = key(study.candidates.front());
    for (const auto& cand : study.candidates) {
      if (key(cand) < best_val) {
        best_val = key(cand);
        best_m = cand.m;
      }
    }
    return best_m;
  };
  study.best_m_worst_case =
      best_by([](const BranchingCandidate& c) { return c.worst_xi; });
  study.best_m_mean = best_by(
      [](const BranchingCandidate& c) { return c.mean_xi; });
  return study;
}

}  // namespace hrtdm::analysis
