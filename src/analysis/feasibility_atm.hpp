// Feasibility conditions for CSMA/DDCR over an ATM internal bus
// (section 3.2: "It is reasonably straightforward to derive an analysis of
// the CSMA/DDCR protocol in the case of ATM switches from the analysis
// presented below").
//
// On such a bus the exclusive-OR logic makes collisions non-destructive:
// a contention slot resolves by wired-OR arbitration to the contender with
// the smallest key (here: the earliest absolute deadline). Consequently
//  - no tree searches exist: every interfering message costs at most one
//    arbitration slot x plus its transmission time, and
//  - the protocol is exactly non-preemptive EDF, so the only blocking is
//    one lower-priority message already on the wire.
//
// The latency bound for message M of source s_i therefore becomes
//
//   B_ATM(M) = max_(m in MSG) l'(m)/psi            (non-preemptive block)
//            + sum_(m in MSG, precedes M) count_m (l'(m)/psi + x)
//            + l'(M)/psi + x
//
// where count_m is the same peak-density window count as in section 4.3
// but restricted to messages that can precede M under EDF (deadline no
// later than M's, using the d(M) + d(m) interference window).
#pragma once

#include "analysis/feasibility.hpp"

namespace hrtdm::analysis {

struct AtmClassReport {
  std::string source;
  std::string klass;
  std::int64_t u = 0;        ///< interfering messages over I(M)
  double blocking_s = 0.0;   ///< non-preemptive blocking term
  double b_atm_s = 0.0;      ///< the bound B_ATM(M)
  double d_s = 0.0;
  bool feasible = false;
};

struct AtmReport {
  std::vector<AtmClassReport> classes;
  bool feasible = false;
  double worst_margin_s = 0.0;
};

/// Evaluates the arbitration-mode bound for every class. Tree parameters
/// of `system` are ignored (there are no trees on an arbitrated bus).
AtmReport check_feasibility_atm(const FcSystem& system);

/// Single-class evaluation (index-based, mirrors evaluate_class).
AtmClassReport evaluate_class_atm(const FcSystem& system,
                                  std::size_t source_idx,
                                  std::size_t class_idx);

}  // namespace hrtdm::analysis
