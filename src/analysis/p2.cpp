#include "analysis/p2.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace hrtdm::analysis {

namespace {
constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

/// best[j][s]: maximal sum of xi over j parts (each in [2, t]) summing to s.
std::vector<std::vector<std::int64_t>> p2_dp(const XiExactTable& table,
                                             std::int64_t u, int v) {
  HRTDM_EXPECT(v >= 1, "need at least one tree");
  HRTDM_EXPECT(u >= 2 * v && u <= v * table.t(),
               "u must admit a composition with parts in [2, t]");
  const std::int64_t t = table.t();
  std::vector<std::vector<std::int64_t>> best(
      static_cast<std::size_t>(v) + 1,
      std::vector<std::int64_t>(static_cast<std::size_t>(u) + 1, kNegInf));
  best[0][0] = 0;
  for (int j = 1; j <= v; ++j) {
    for (std::int64_t s = 2 * j; s <= std::min<std::int64_t>(u, j * t); ++s) {
      std::int64_t b = kNegInf;
      const std::int64_t lo = std::max<std::int64_t>(2, s - (j - 1) * t);
      const std::int64_t hi = std::min(t, s - 2 * (j - 1));
      for (std::int64_t k = lo; k <= hi; ++k) {
        const std::int64_t prev =
            best[static_cast<std::size_t>(j - 1)][static_cast<std::size_t>(s - k)];
        if (prev != kNegInf) {
          b = std::max(b, prev + table.xi(k));
        }
      }
      best[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] = b;
    }
  }
  return best;
}
}  // namespace

double p2_bound(int m, double t, double u, double v) {
  HRTDM_EXPECT(v >= 1.0, "need at least one tree");
  HRTDM_EXPECT(u > 0.0 && u / v <= t, "u/v must lie in (0, t]");
  return v * xi_asymptotic(m, t, u / v);
}

double p2_bound_alt(int m, double t, double u, double v) {
  HRTDM_EXPECT(v >= 1.0, "need at least one tree");
  HRTDM_EXPECT(u > 0.0 && u / v <= t, "u/v must lie in (0, t]");
  return xi_asymptotic(m, t * v, u) - (v - 1.0) / (static_cast<double>(m) - 1.0);
}

std::int64_t p2_exhaustive(const XiExactTable& table, std::int64_t u, int v) {
  const auto best = p2_dp(table, u, v);
  const std::int64_t result =
      best[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)];
  HRTDM_ENSURE(result != kNegInf, "no valid composition found");
  return result;
}

std::vector<std::int64_t> p2_worst_composition(const XiExactTable& table,
                                               std::int64_t u, int v) {
  const auto best = p2_dp(table, u, v);
  const std::int64_t t = table.t();
  std::vector<std::int64_t> parts;
  parts.reserve(static_cast<std::size_t>(v));
  std::int64_t s = u;
  for (int j = v; j >= 1; --j) {
    const std::int64_t target =
        best[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
    HRTDM_ENSURE(target != kNegInf, "no valid composition found");
    const std::int64_t lo = std::max<std::int64_t>(2, s - (j - 1) * t);
    const std::int64_t hi = std::min(t, s - 2 * (j - 1));
    bool found = false;
    for (std::int64_t k = lo; k <= hi; ++k) {
      const std::int64_t prev =
          best[static_cast<std::size_t>(j - 1)][static_cast<std::size_t>(s - k)];
      if (prev != kNegInf && prev + table.xi(k) == target) {
        parts.push_back(k);
        s -= k;
        found = true;
        break;
      }
    }
    HRTDM_ENSURE(found, "composition reconstruction failed");
  }
  HRTDM_ENSURE(s == 0, "composition does not sum to u");
  std::sort(parts.begin(), parts.end());
  return parts;
}

}  // namespace hrtdm::analysis
