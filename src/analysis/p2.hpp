// Problem P2 of the paper: worst-case searches over multiple consecutive
// balanced m-ary trees (section 4.2).
//
// The adversary distributes u messages over v consecutive t-leaf trees
// (k_i in [2, t] per tree) to maximise the total search cost
// sum_i xi(k_i, t). The paper bounds this (Eq. 17–19) by the concave
// asymptote evaluated at the equal split:
//
//   max sum xi(k_i, t)  <=  v xi~(u/v, t)  =  xi~(u, t v) - (v-1)/(m-1).
#pragma once

#include <cstdint>

#include "analysis/xi.hpp"

namespace hrtdm::analysis {

/// Eq. 18 left form: v * xi~(u/v, t). Requires v >= 1 and u/v in (0, t].
double p2_bound(int m, double t, double u, double v);

/// Eq. 18 right form: xi~(u, t v) - (v-1)/(m-1). Equal to p2_bound by the
/// paper's identity; both are exposed so tests can confirm the identity.
double p2_bound_alt(int m, double t, double u, double v);

/// Exact maximum of sum_i xi(k_i, t) over compositions u = k_1 + ... + k_v
/// with every k_i in [2, t], by dynamic programming over the exact table.
/// Requires 2 v <= u <= v t. O(v * u * t) time.
std::int64_t p2_exhaustive(const XiExactTable& table, std::int64_t u, int v);

/// One maximising composition (same DP, with reconstruction).
std::vector<std::int64_t> p2_worst_composition(const XiExactTable& table,
                                               std::int64_t u, int v);

}  // namespace hrtdm::analysis
