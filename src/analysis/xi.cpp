#include "analysis/xi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "util/check.hpp"
#include "util/math.hpp"

namespace hrtdm::analysis {

using hrtdm::util::ilog_floor;
using hrtdm::util::ilog_ceil;
using hrtdm::util::ilog_floor_rational;
using hrtdm::util::ipow;
using hrtdm::util::is_power_of;

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

void check_tree_shape(int m, std::int64_t t) {
  HRTDM_EXPECT(m >= 2, "branching degree m must be >= 2");
  HRTDM_EXPECT(t >= 1 && is_power_of(m, t), "t must be a power of m");
}

/// Max-plus convolution: c[s] = max_{i+j=s} a[i] + b[j].
std::vector<std::int64_t> maxplus(const std::vector<std::int64_t>& a,
                                  const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> c(a.size() + b.size() - 1, kNegInf);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      c[i + j] = std::max(c[i + j], a[i] + b[j]);
    }
  }
  return c;
}

/// r-fold max-plus power of `row` for r = 1..m (index r-1).
std::vector<std::vector<std::int64_t>> maxplus_powers(
    const std::vector<std::int64_t>& row, int m) {
  std::vector<std::vector<std::int64_t>> powers;
  powers.reserve(static_cast<std::size_t>(m));
  powers.push_back(row);
  for (int r = 2; r <= m; ++r) {
    powers.push_back(maxplus(powers.back(), row));
  }
  return powers;
}

/// m-fold max-plus power of a *level row* in O(m s) total instead of the
/// dense O(m^2 s^2), exploiting the structure the paper proves about every
/// row a = xi(., s):
///
///   (i)  a[2p+1] = a[2p] - 1                                      (Eq. 3)
///   (ii) E[p] := a[2p] is concave: its slopes dE[p] = E[p] - E[p-1]
///        are non-increasing (Eq. 8, which also gives dE >= -2).
///
/// Write each part of a composition k = k_1 + ... + k_m as
/// k_i = 2 p_i + o_i with o_i in {0, 1}; by (i), a[k_i] = E[p_i] - o_i, so
/// with j = sum o_i (the number of odd parts, j == k mod 2) and
/// q = sum p_i = (k - j) / 2,
///
///   c[k] = max_j [ -j + max_{sum p_i = q} sum_i E[p_i] ].
///
/// The inner max is a classic concave allocation: start all parts at p = 0
/// (worth m E[0]) and hand out the q unit increments greedily — the slope
/// multiset holds m copies of each dE[1] >= dE[2] >= ... >= dE[P], so the
/// optimum is m pre[q/m] + (q%m) dE[q/m + 1] with pre the slope prefix sum.
/// Raising j by 2 (preserving parity) trades one slope increment for -2;
/// since every slope is >= -2 by (ii), the minimal feasible j always wins.
/// Feasibility of j: parts are bounded by k_i <= s, i.e. p_i <= floor(s/2)
/// for even parts and 2 p_i + 1 <= s for odd ones, so
///   s odd:  odd parts reach s, even parts only s - 1, forcing
///           j >= k - m (s - 1);
///   s even: even parts reach s and only at most m - j parts can sit at
///           p = P, which the capacity bound q <= m P - j (implied by
///           k <= m s - j) already guarantees the greedy respects.
/// Both bounds preserve j == k (mod 2), giving j0 below.
std::vector<std::int64_t> maxplus_power_concave(
    const std::vector<std::int64_t>& a, int m) {
  const std::int64_t s = static_cast<std::int64_t>(a.size()) - 1;
  HRTDM_EXPECT(s >= 1, "level row must cover at least one leaf");
  const std::int64_t P = s / 2;
  const bool s_even = (s % 2 == 0);
  std::vector<std::int64_t> dE(static_cast<std::size_t>(P) + 1, 0);
  std::vector<std::int64_t> pre(static_cast<std::size_t>(P) + 1, 0);
  for (std::int64_t p = 1; p <= P; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    dE[pi] = a[static_cast<std::size_t>(2 * p)] -
             a[static_cast<std::size_t>(2 * (p - 1))];
    pre[pi] = pre[pi - 1] + dE[pi];
    HRTDM_ENSURE(dE[pi] >= -2 && (p == 1 || dE[pi] <= dE[pi - 1]),
                 "level row is not concave-even; Eq. 3/8 structure violated");
  }
  std::vector<std::int64_t> c(static_cast<std::size_t>(m * s) + 1);
  for (std::int64_t k = 0; k <= m * s; ++k) {
    std::int64_t j0 = k & 1;
    if (!s_even) {
      j0 = std::max(j0, k - m * (s - 1));
    }
    const std::int64_t q = (k - j0) / 2;
    const std::int64_t g = q / m;
    const std::int64_t r = q % m;
    std::int64_t top = m * pre[static_cast<std::size_t>(g)];
    if (r > 0) {
      top += r * dE[static_cast<std::size_t>(g) + 1];
    }
    c[static_cast<std::size_t>(k)] = m * a[0] - j0 + top;
  }
  return c;
}

}  // namespace

XiExactTable::XiExactTable(int m, int n) : m_(m), n_(n) {
  HRTDM_EXPECT(m >= 2, "branching degree m must be >= 2");
  HRTDM_EXPECT(n >= 0, "tree height n must be >= 0");
  t_ = ipow(m, n);
  // Level 0 (a single leaf): probing an empty leaf costs one silent slot,
  // probing an occupied leaf is a free successful transmission.
  levels_.push_back({1, 0});
  for (int level = 1; level <= n; ++level) {
    const auto conv = maxplus_power_concave(levels_.back(), m);
#ifndef NDEBUG
    // Debug cross-check: the concave slope-merge kernel must agree with the
    // defining dense convolution wherever the latter is affordable.
    if (conv.size() <= 513) {
      HRTDM_ENSURE(conv == maxplus_powers(levels_.back(), m).back(),
                   "concave max-plus kernel diverged from dense kernel");
    }
#endif
    const auto size = static_cast<std::size_t>(ipow(m, level)) + 1;
    HRTDM_ENSURE(conv.size() == size, "convolution width mismatch");
    std::vector<std::int64_t> row(size);
    row[0] = 1;  // empty subtree: one silent slot
    if (size > 1) {
      row[1] = 0;  // lone active leaf: free transmission
    }
    for (std::size_t k = 2; k < size; ++k) {
      // Eq. 1: a collision slot at the root, then the adversary splits the
      // k active leaves across the m subtrees to maximise total cost.
      row[k] = 1 + conv[k];
    }
    levels_.push_back(std::move(row));
  }
}

std::int64_t XiExactTable::xi(std::int64_t k) const {
  return xi_at_level(n_, k);
}

std::int64_t XiExactTable::xi_at_level(int level, std::int64_t k) const {
  HRTDM_EXPECT(level >= 0 && level <= n_, "level out of range");
  const auto& row = levels_[static_cast<std::size_t>(level)];
  HRTDM_EXPECT(k >= 0 && k < static_cast<std::int64_t>(row.size()),
               "k out of range for this level");
  return row[static_cast<std::size_t>(k)];
}

std::int64_t xi_dnc(int m, std::int64_t t, std::int64_t k) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(k >= 0 && k <= t, "k must lie in [0, t]");

  // Memo shared across calls, keyed by (m, t, k). Callers may now run on
  // the util::ThreadPool workers; once the memo is warm the workload is
  // pure lookups, so readers take a shared lock and only a miss that
  // completed its recursion upgrades to an exclusive one.
  static std::shared_mutex memo_mu;
  static std::map<std::tuple<int, std::int64_t, std::int64_t>, std::int64_t>
      memo;

  struct Solver {
    int m;
    std::int64_t eval(std::int64_t t, std::int64_t k) {
      if (k % 2 == 1) {
        return eval(t, k - 1) - 1;  // Eq. 3
      }
      if (k == 0) {
        return 1;  // Eq. 2, p = 0
      }
      if (t == m) {
        return 1 + m - k;  // Eq. 4 (k = 2p even here)
      }
      const auto key = std::make_tuple(m, t, k);
      {
        std::shared_lock<std::shared_mutex> lock(memo_mu);
        if (const auto it = memo.find(key); it != memo.end()) {
          return it->second;
        }
      }
      const std::int64_t p = k / 2;
      const std::int64_t s = t / m;
      std::int64_t sum = 1;
      for (std::int64_t i = 0; i < m; ++i) {
        sum += eval(s, 2 * ((std::min(p, s) + i) / m));
      }
      sum -= 2 * std::max<std::int64_t>(0, p - s);
      std::unique_lock<std::shared_mutex> lock(memo_mu);
      memo[key] = sum;
      return sum;
    }
  };

  if (t == 1) {
    return k == 0 ? 1 : 0;
  }
  return Solver{m}.eval(t, k);
}

std::int64_t xi_closed(int m, std::int64_t t, std::int64_t k) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(k >= 0 && k <= t, "k must lie in [0, t]");
  if (k == 0) {
    return 1;
  }
  if (k == 1) {
    return 0;
  }
  // Eq. 10 with p = floor(k/2):
  //   (m^ceil(log_m(mp)) - 1)/(m-1) + m p floor(log_m(t/(m p))) - (k - m p)
  const std::int64_t p = k / 2;
  const std::int64_t term1 = (ipow(m, ilog_ceil(m, m * p)) - 1) / (m - 1);
  const std::int64_t term2 = m * p * ilog_floor_rational(m, t, m * p);
  const std::int64_t term3 = -(k - m * p);
  return term1 + term2 + term3;
}

std::int64_t xi_two(int m, std::int64_t t) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(t >= 2, "xi_two needs at least two leaves");
  return m * ilog_floor(m, t) - 1;  // Eq. 5
}

std::int64_t xi_two_t_over_m(int m, std::int64_t t) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(t >= m, "xi_two_t_over_m needs t >= m");
  return (t - 1) / (m - 1) + (t - 2 * t / m);  // Eq. 6
}

std::int64_t xi_full(int m, std::int64_t t) {
  check_tree_shape(m, t);
  return (t - 1) / (m - 1);  // Eq. 7
}

std::int64_t xi_even_derivative(int m, std::int64_t t, std::int64_t p) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(p >= 1 && p <= t / 2 - 1, "p must lie in [1, t/2 - 1]");
  // Eq. 8: m (log_m t - floor(log_m(m p))) - 2.
  return m * (ilog_floor(m, t) - ilog_floor(m, m * p)) - 2;
}

std::int64_t xi_linear_tail(int m, std::int64_t t, std::int64_t k) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(k >= 2 * t / m && k <= t, "Eq. 15 holds on [2t/m, t] only");
  return (m * t - 1) / (m - 1) - k;  // Eq. 15
}

double xi_asymptotic(int m, double t, double k) {
  HRTDM_EXPECT(m >= 2, "branching degree m must be >= 2");
  HRTDM_EXPECT(t > 0.0 && k > 0.0, "xi~ needs positive t and k");
  const double md = static_cast<double>(m);
  const double half = md * k / 2.0;
  return (half - 1.0) / (md - 1.0) +
         half * std::log(2.0 * t / k) / std::log(md) - k;  // Eq. 11
}

double tightness_bound_factor(int m) {
  HRTDM_EXPECT(m >= 2, "branching degree m must be >= 2");
  const double md = static_cast<double>(m);
  // Eq. 13: m^(1/(m-1)) / (e ln m) - 1/(m-1).
  return std::pow(md, 1.0 / (md - 1.0)) /
             (std::exp(1.0) * std::log(md)) -
         1.0 / (md - 1.0);
}

double tightness_bound_universal() {
  // Eq. 14: attained at m = 9, i.e. 3^(1/4) / (2 e ln 3) - 1/8 ~ 0.09537.
  return tightness_bound_factor(9);
}

GapReport max_asymptote_gap(const XiExactTable& table) {
  const std::int64_t t = table.t();
  const int m = table.m();
  HRTDM_EXPECT(t >= m, "gap report needs at least one full level");
  GapReport report;
  report.bound = tightness_bound_factor(m) * static_cast<double>(t);
  for (std::int64_t k = 2; k <= 2 * t / m; ++k) {
    const double gap =
        xi_asymptotic(m, static_cast<double>(t), static_cast<double>(k)) -
        static_cast<double>(table.xi(k));
    if (gap > report.max_gap) {
      report.max_gap = gap;
      report.argmax_k = k;
    }
    if (k % 2 == 0 && gap > report.max_gap_even) {
      report.max_gap_even = gap;
      report.argmax_k_even = k;
    }
  }
  return report;
}

std::int64_t search_cost_for_leaves(int m, std::int64_t t,
                                    std::span<const std::int64_t> leaves) {
  check_tree_shape(m, t);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    HRTDM_EXPECT(leaves[i] >= 0 && leaves[i] < t, "leaf index out of range");
    if (i > 0) {
      HRTDM_EXPECT(leaves[i - 1] < leaves[i],
                   "leaves must be sorted and distinct");
    }
  }
  // Recursive DFS cost over [lo, lo + size) using binary search to count
  // active leaves per interval.
  struct Visitor {
    int m;
    std::span<const std::int64_t> leaves;
    std::int64_t cost(std::int64_t lo, std::int64_t size) const {
      const auto first = std::lower_bound(leaves.begin(), leaves.end(), lo);
      const auto last = std::lower_bound(leaves.begin(), leaves.end(), lo + size);
      const auto k = static_cast<std::int64_t>(last - first);
      if (k == 0) {
        return 1;
      }
      if (k == 1) {
        return 0;
      }
      std::int64_t total = 1;
      const std::int64_t child = size / m;
      for (int i = 0; i < m; ++i) {
        total += cost(lo + i * child, child);
      }
      return total;
    }
  };
  return Visitor{m, leaves}.cost(0, t);
}

std::int64_t xi_exhaustive_subsets(int m, std::int64_t t, std::int64_t k) {
  check_tree_shape(m, t);
  HRTDM_EXPECT(k >= 0 && k <= t, "k must lie in [0, t]");
  HRTDM_EXPECT(t <= 20, "exhaustive oracle is exponential; keep t small");
  if (k == 0) {
    return 1;
  }
  // Enumerate k-subsets of [0, t) in lexicographic order.
  std::vector<std::int64_t> subset(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    subset[static_cast<std::size_t>(i)] = i;
  }
  std::int64_t best = kNegInf;
  while (true) {
    best = std::max(best, search_cost_for_leaves(m, t, subset));
    // Advance to the next combination.
    std::int64_t i = k - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] == t - k + i) {
      --i;
    }
    if (i < 0) {
      break;
    }
    ++subset[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < k; ++j) {
      subset[static_cast<std::size_t>(j)] =
          subset[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return best;
}

std::vector<std::int64_t> worst_case_leaves(const XiExactTable& table,
                                            std::int64_t k) {
  HRTDM_EXPECT(k >= 0 && k <= table.t(), "k must lie in [0, t]");
  const int m = table.m();

  // Lazily built r-fold max-plus powers per level, shared by the recursion.
  std::vector<std::vector<std::vector<std::int64_t>>> powers(
      static_cast<std::size_t>(table.n()) + 1);
  auto powers_at = [&](int level) -> const std::vector<std::vector<std::int64_t>>& {
    auto& slot = powers[static_cast<std::size_t>(level)];
    if (slot.empty()) {
      std::vector<std::int64_t> row(
          static_cast<std::size_t>(util::ipow(m, level)) + 1);
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i] = table.xi_at_level(level, static_cast<std::int64_t>(i));
      }
      slot = maxplus_powers(row, m);
    }
    return slot;
  };

  std::vector<std::int64_t> result;
  result.reserve(static_cast<std::size_t>(k));

  // Descend, at each node re-deriving a maximising composition.
  using PowersAt = decltype(powers_at);
  struct Placer {
    const XiExactTable& table;
    int m;
    PowersAt& get_powers;
    std::vector<std::int64_t>& out;

    void place(int level, std::int64_t base, std::int64_t k) {
      if (k == 0) {
        return;
      }
      if (level == 0) {
        out.push_back(base);
        return;
      }
      if (k == 1) {
        out.push_back(base);  // leftmost leaf of this subtree
        return;
      }
      const auto& pw = get_powers(level - 1);
      const std::int64_t child = util::ipow(m, level - 1);
      std::int64_t remaining = k;
      for (int part = 0; part < m; ++part) {
        const int rest = m - part - 1;
        std::int64_t chosen = remaining;  // default: all into this child
        if (rest > 0) {
          const auto& rest_pw = pw[static_cast<std::size_t>(rest - 1)];
          const std::int64_t target =
              pw[static_cast<std::size_t>(rest)]
                [static_cast<std::size_t>(remaining)];
          const std::int64_t lo =
              std::max<std::int64_t>(0, remaining - rest * child);
          const std::int64_t hi = std::min(child, remaining);
          for (std::int64_t c = lo; c <= hi; ++c) {
            if (table.xi_at_level(level - 1, c) +
                    rest_pw[static_cast<std::size_t>(remaining - c)] ==
                target) {
              chosen = c;
              break;
            }
          }
        }
        place(level - 1, base + part * child, chosen);
        remaining -= chosen;
      }
      HRTDM_ENSURE(remaining == 0, "composition reconstruction failed");
    }
  };

  Placer{table, m, powers_at, result}.place(table.n(), 0, k);
  std::sort(result.begin(), result.end());
  HRTDM_ENSURE(static_cast<std::int64_t>(result.size()) == k,
               "worst-case placement size mismatch");
  HRTDM_ENSURE(search_cost_for_leaves(m, table.t(), result) == table.xi(k),
               "reconstructed placement does not achieve xi(k)");
  return result;
}

}  // namespace hrtdm::analysis
