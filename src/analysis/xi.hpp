// Problem P1 of the paper: worst-case deterministic search cost for a
// balanced m-ary tree (section 4.1).
//
// xi(k, t) is the worst case, over all binomial(t, k) placements of k active
// leaves in a t-leaf balanced m-ary tree (t = m^n), of the number of
// *non-transmission* channel slots consumed by the collision-resolution
// DFS: each collision slot (node with >= 2 active leaves below it) and each
// empty slot (node with none) counts 1; a successful transmission (node with
// exactly 1) counts 0.
//
// The paper gives five computable characterisations, all implemented here
// and cross-validated in the test suite:
//   Eq. 1      — defining max-plus recursion           -> XiExactTable
//   Eq. 2/3/4  — divide-and-conquer recursion          -> xi_dnc
//   Eq. 9/10   — closed form                           -> xi_closed
//   Eq. 5/6/7/8/15 — special values / derivative / linear tail
//   Eq. 11     — real-valued concave asymptote xi~     -> xi_asymptotic
//   Eq. 12/13/14 — tightness of xi~ over [2, 2t/m]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hrtdm::analysis {

/// Exact worst-case search costs via the defining recursion (Eq. 1),
/// evaluated bottom-up with max-plus convolutions. Builds every level
/// 1, m, m^2, ..., m^n so sub-tree tables are available too. The per-level
/// convolution exploits the concave-even row structure (Eq. 3/8) to run in
/// O(m^level) instead of the dense O(m^(2*level)); see docs/PERFORMANCE.md.
class XiExactTable {
 public:
  /// Requires m >= 2, n >= 0. Cost O(m t) time and O(t) space total.
  XiExactTable(int m, int n);

  int m() const { return m_; }
  int n() const { return n_; }
  std::int64_t t() const { return t_; }

  /// xi(k, t) for k in [0, t].
  std::int64_t xi(std::int64_t k) const;

  /// xi(k, m^level) for level in [0, n], k in [0, m^level].
  std::int64_t xi_at_level(int level, std::int64_t k) const;

  /// The full level-n row (index k).
  std::span<const std::int64_t> row() const { return levels_.back(); }

 private:
  int m_;
  int n_;
  std::int64_t t_;
  std::vector<std::vector<std::int64_t>> levels_;
};

/// Divide-and-conquer recursion, Eq. 2 (even k), Eq. 3 (odd k), Eq. 4
/// (t = m base case). Memoised internally per (m, t, k). Requires t = m^n.
std::int64_t xi_dnc(int m, std::int64_t t, std::int64_t k);

/// Closed form, Eq. 10 (equivalently Eq. 9 plus Eq. 3). Requires t = m^n.
std::int64_t xi_closed(int m, std::int64_t t, std::int64_t k);

/// Eq. 5: xi(2, t) = m log_m t - 1.
std::int64_t xi_two(int m, std::int64_t t);

/// Eq. 6: xi(2t/m, t) = (t-1)/(m-1) + (t - 2t/m).
std::int64_t xi_two_t_over_m(int m, std::int64_t t);

/// Eq. 7: xi(t, t) = (t-1)/(m-1).
std::int64_t xi_full(int m, std::int64_t t);

/// Eq. 8: xi(2p+2, t) - xi(2p, t) for p in [1, t/2 - 1].
std::int64_t xi_even_derivative(int m, std::int64_t t, std::int64_t p);

/// Eq. 15: xi(k, t) = (mt-1)/(m-1) - k, valid for k in [2t/m, t].
std::int64_t xi_linear_tail(int m, std::int64_t t, std::int64_t k);

/// Eq. 11: the concave asymptote
///   xi~(k, t) = (mk/2 - 1)/(m-1) + (mk/2) log_m(2t/k) - k.
/// Real-valued in both k and t (the feasibility conditions evaluate it at
/// fractional k = u/v). Requires k > 0, t > 0.
double xi_asymptotic(int m, double t, double k);

/// Eq. 13: coefficient g(m) with max_{k in [2, 2t/m]} (xi~ - xi) <= g(m) t.
double tightness_bound_factor(int m);

/// Eq. 14: the universal constant sup_m g(m) = g(9) = 3^(1/4)/(2 e ln 3) - 1/8
/// ~ 0.0954 (the "9.54% t" of the paper).
double tightness_bound_universal();

/// Measured tightness of the asymptote against an exact table.
///
/// Reproduction note: Eq. 13 as printed holds verbatim when the max is
/// taken over *even* k (the parity in which Eq. 9/11 are derived — the
/// touch points are k = 2 m^i). Over all integer k the odd values, which
/// sit one slot below their even neighbour (Eq. 3) while the asymptote
/// does not dip, exceed the bound by an additive term that converges to
/// m/2 as t grows (measured; see bench_tightness / EXPERIMENTS.md).
struct GapReport {
  std::int64_t argmax_k = 0;       ///< k in [2, 2t/m] maximising xi~ - xi
  double max_gap = 0.0;            ///< max difference over all k, in slots
  std::int64_t argmax_k_even = 0;  ///< argmax restricted to even k
  double max_gap_even = 0.0;       ///< the Eq. 13 quantity
  double bound = 0.0;              ///< Eq. 13 bound g(m) * t
};
GapReport max_asymptote_gap(const XiExactTable& table);

/// Exact DFS search cost for one concrete placement of active leaves
/// (sorted, distinct, each in [0, t)). This is the quantity the simulator's
/// tree-search engine realises; xi(k, t) is its max over placements.
std::int64_t search_cost_for_leaves(int m, std::int64_t t,
                                    std::span<const std::int64_t> leaves);

/// Ground-truth worst case by enumerating all binomial(t, k) subsets and
/// evaluating search_cost_for_leaves. Only for small t (<= ~16 leaves);
/// used by tests as an implementation-independent oracle.
std::int64_t xi_exhaustive_subsets(int m, std::int64_t t, std::int64_t k);

/// A placement of k leaves achieving the worst case xi(k, t), reconstructed
/// from the Eq. 1 recursion (used to drive the simulator adversarially).
std::vector<std::int64_t> worst_case_leaves(const XiExactTable& table,
                                            std::int64_t k);

}  // namespace hrtdm::analysis
