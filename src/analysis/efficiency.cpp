#include "analysis/efficiency.hpp"

#include "analysis/xi.hpp"
#include "util/check.hpp"

namespace hrtdm::analysis {

double per_message_overhead_slots(int m, std::int64_t t, std::int64_t k) {
  HRTDM_EXPECT(k >= 1 && k <= t, "k must lie in [1, t]");
  if (k == 1) {
    return 0.0;  // a lone transmission needs no resolution
  }
  return (static_cast<double>(xi_closed(m, t, k)) + 1.0) /
         static_cast<double>(k);
}

double worst_case_efficiency(int m, std::int64_t t, std::int64_t k,
                             double tx_seconds, double slot_seconds) {
  HRTDM_EXPECT(tx_seconds > 0.0 && slot_seconds > 0.0,
               "times must be positive");
  const double payload = static_cast<double>(k) * tx_seconds;
  const double overhead =
      per_message_overhead_slots(m, t, k) * static_cast<double>(k) *
      slot_seconds;
  return payload / (payload + overhead);
}

double saturated_overhead_slots(int m) {
  HRTDM_EXPECT(m >= 2, "branching degree must be >= 2");
  return 1.0 / (static_cast<double>(m) - 1.0);
}

}  // namespace hrtdm::analysis
