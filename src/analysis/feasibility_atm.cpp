#include "analysis/feasibility_atm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace hrtdm::analysis {

namespace {

std::int64_t window_count(double x, double w) {
  HRTDM_EXPECT(w > 0.0, "arrival window must be positive");
  if (x <= 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>(std::ceil(x / w));
}

}  // namespace

AtmClassReport evaluate_class_atm(const FcSystem& system,
                                  std::size_t source_idx,
                                  std::size_t class_idx) {
  HRTDM_EXPECT(source_idx < system.sources.size(), "source index out of range");
  const FcSource& source = system.sources[source_idx];
  HRTDM_EXPECT(class_idx < source.classes.size(), "class index out of range");
  const FcMessageClass& M = source.classes[class_idx];

  AtmClassReport report;
  report.source = source.name;
  report.klass = M.name;
  report.d_s = M.d_s;

  const double tx_of = [&system](const FcMessageClass& cls) {
    return static_cast<double>(cls.l_bits + system.phy.overhead_bits) /
           system.phy.psi_bps;
  }(M);

  // Non-preemptive blocking: one message of any class may already hold the
  // wire when M arrives, plus the arbitration slot M then waits for.
  double max_tx = 0.0;
  for (const auto& src : system.sources) {
    for (const auto& cls : src.classes) {
      max_tx = std::max(
          max_tx, static_cast<double>(cls.l_bits + system.phy.overhead_bits) /
                      system.phy.psi_bps);
    }
  }
  report.blocking_s = max_tx + system.phy.slot_s;

  // Interference: the section 4.3 peak-density window count, with each
  // interferer costing its transmission plus exactly one arbitration slot
  // (non-destructive resolution needs no tree search).
  double interference = 0.0;
  std::int64_t u = 0;
  for (const auto& src : system.sources) {
    for (const auto& cls : src.classes) {
      const std::int64_t count =
          window_count(M.d_s + cls.d_s - tx_of, cls.w_s) * cls.a;
      u += count;
      const double cls_tx =
          static_cast<double>(cls.l_bits + system.phy.overhead_bits) /
          system.phy.psi_bps;
      interference +=
          static_cast<double>(count) * (cls_tx + system.phy.slot_s);
    }
  }
  report.u = u;
  report.b_atm_s = report.blocking_s + interference;
  report.feasible = report.b_atm_s <= M.d_s;
  return report;
}

AtmReport check_feasibility_atm(const FcSystem& system) {
  system.validate();
  AtmReport report;
  report.feasible = true;
  report.worst_margin_s = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < system.sources.size(); ++s) {
    for (std::size_t c = 0; c < system.sources[s].classes.size(); ++c) {
      AtmClassReport cls = evaluate_class_atm(system, s, c);
      report.feasible = report.feasible && cls.feasible;
      report.worst_margin_s =
          std::min(report.worst_margin_s, cls.d_s - cls.b_atm_s);
      report.classes.push_back(std::move(cls));
    }
  }
  return report;
}

}  // namespace hrtdm::analysis
