// Dimensioning assistant: the paper positions the feasibility conditions
// as the tool "for an end user or a technology provider who has to assign
// numerical values" — this module automates the assignment. Given the
// message classes and the PHY, it searches tree shapes (q) and static-index
// allocations (nu_i) until every class satisfies B_DDCR <= d, escalating
// the remedies an engineer would: more static indices for the sources
// whose local backlog drives v(M), then a larger static tree.
#pragma once

#include <string>
#include <vector>

#include "analysis/feasibility.hpp"

namespace hrtdm::analysis {

struct DimensioningRequest {
  FcPhy phy;
  std::vector<FcSource> sources;  ///< nu fields are ignored (chosen here)
  int m = 4;                      ///< branching degree for both trees
  std::int64_t F = 64;            ///< time-tree leaves (power of m)
  std::int64_t max_q = 4096;      ///< static-tree growth budget
  int max_steps = 200;            ///< escalation budget
};

struct DimensioningResult {
  bool feasible = false;
  FcTreeParams trees;
  std::vector<std::int64_t> nu;  ///< chosen static indices per source
  FcReport report;               ///< FC evaluation of the chosen config
  std::vector<std::string> steps;  ///< escalation log (human-readable)
};

/// Searches for a feasible (q, nu) assignment. Starts from the smallest
/// power-of-m static tree holding z sources with one index each; while the
/// FCs fail, grants an extra index to the source owning the class with the
/// worst margin (v(M) shrinks), growing q by a factor of m whenever the
/// index budget is exhausted. Gives up when the budgets run out and
/// returns the best attempt.
DimensioningResult dimension(const DimensioningRequest& request);

}  // namespace hrtdm::analysis
