// Feasibility conditions for HRTDM under CSMA/DDCR (section 4.3).
//
// For every message class M of source s_i the paper derives a computable
// upper bound B_DDCR(s_i, M) on successful-transmission latency under
// peak-load (density-saturating) conditions:
//
//   r(M) = sum_{m in MSG_i} ceil(d(M)/w(m)) a(m) - 1          (local rank)
//   u(M) = sum_{m in MSG}  ceil((d(M)+d(m)-l'(M)/psi)/w(m)) a(m)
//                                                   (global interference)
//   v(M) = 1 + floor(r(M)/nu_i)                (static trees to search)
//   S1   = v(M) xi~(u(M)/v(M), q)              (P2 bound, static trees)
//   S2   = ceil(v(M)/2) xi(2, F)               (time-tree overhead)
//   B    = sum_{m in MSG} ceil(...) a(m) l'(m)/psi + x (S1 + S2)
//
// The instantiation is feasible iff B_DDCR(s_i, M) <= d(M) for every source
// and class. All analysis-side quantities are double seconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hrtdm::analysis {

/// One message class: every instance has the same length, deadline and
/// arrival-density bound (the unimodal arbitrary model: at most `a` arrivals
/// in any sliding window of `w_s` seconds).
struct FcMessageClass {
  std::string name;
  std::int64_t l_bits = 0;  ///< data-link PDU length l(msg), bits
  double d_s = 0.0;         ///< relative deadline d(msg), seconds
  std::int64_t a = 1;       ///< max arrivals per window
  double w_s = 0.0;         ///< sliding window w(msg), seconds
};

/// A source and the subset MSG_i mapped onto it.
struct FcSource {
  std::string name;
  std::vector<FcMessageClass> classes;
  std::int64_t nu = 1;  ///< static indices allocated to this source (nu_i)
};

/// Physical-layer model: throughput psi, slot time x, and the framing
/// overhead that turns l into l' = l + overhead.
struct FcPhy {
  double psi_bps = 1e9;          ///< nominal throughput (bits per second)
  double slot_s = 4.096e-6;      ///< slot time x (seconds)
  std::int64_t overhead_bits = 0;  ///< l'(msg) - l(msg)
};

/// Tree-shape parameters of CSMA/DDCR.
struct FcTreeParams {
  int m_static = 4;       ///< static-tree branching degree
  std::int64_t q = 64;    ///< static-tree leaves (power of m_static, >= z)
  int m_time = 4;         ///< time-tree branching degree
  std::int64_t F = 64;    ///< time-tree leaves (power of m_time)
};

/// A fully quantified HRTDM instantiation.
struct FcSystem {
  FcPhy phy;
  FcTreeParams trees;
  std::vector<FcSource> sources;

  /// Validates the structural constraints (powers of m, q >= z,
  /// sum nu_i <= q, positive densities). Contract-fails on violation.
  void validate() const;

  /// Long-run offered load sum a/w * l'/psi (must be < 1 for any protocol).
  double offered_load() const;

  /// Slot-limited offered load: every frame occupies at least one slot x
  /// on a CSMA medium, so sum a/w * max(l'/psi, x) < 1 is a *necessary*
  /// capacity condition regardless of protocol — a cheap screen before
  /// evaluating the full FCs.
  double slot_limited_load() const;
};

/// Per-class evaluation of the bound.
struct FcClassReport {
  std::string source;
  std::string klass;
  std::int64_t r = 0;       ///< local rank bound r(M)
  std::int64_t u = 0;       ///< global interference bound u(M)
  std::int64_t v = 0;       ///< static-tree count v(M)
  double tx_time_s = 0.0;   ///< physical transmission time component
  double s1_slots = 0.0;    ///< P2 static-tree search bound (slots)
  double s2_slots = 0.0;    ///< time-tree search bound (slots)
  double b_ddcr_s = 0.0;    ///< the latency bound B_DDCR(s_i, M)
  double d_s = 0.0;         ///< the class deadline
  bool feasible = false;    ///< B <= d
  bool k_clamped = false;   ///< u/v fell outside [2, q] and was clamped
};

struct FcReport {
  std::vector<FcClassReport> classes;
  bool feasible = false;      ///< conjunction over classes
  double worst_margin_s = 0;  ///< min over classes of d - B (negative if infeasible)
  double offered_load = 0.0;
};

/// Evaluates the feasibility conditions of section 4.3 for every class.
FcReport check_feasibility(const FcSystem& system);

/// Evaluates B_DDCR for a single class of a single source (index-based).
FcClassReport evaluate_class(const FcSystem& system, std::size_t source_idx,
                             std::size_t class_idx);

}  // namespace hrtdm::analysis
