#include "traffic/arrival.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hrtdm::traffic {

namespace {

void check_class(const MessageClass& cls) {
  HRTDM_EXPECT(cls.a >= 1, "arrival bound a must be >= 1");
  HRTDM_EXPECT(cls.w > Duration::nanoseconds(0), "window w must be positive");
  HRTDM_EXPECT(cls.d > Duration::nanoseconds(0), "deadline d must be positive");
}

std::vector<SimTime> saturating(const MessageClass& cls, SimTime horizon) {
  // `a` arrivals at the very start of every window. Separating the burst
  // members by 1 ns keeps timestamps distinct (and the density bound intact:
  // any window of length w still sees exactly a of them).
  std::vector<SimTime> times;
  for (SimTime window = SimTime::zero(); window < horizon;
       window += cls.w) {
    for (std::int64_t i = 0; i < cls.a; ++i) {
      const SimTime at = window + Duration::nanoseconds(i);
      if (at < horizon) {
        times.push_back(at);
      }
    }
  }
  return times;
}

std::vector<SimTime> periodic_jitter(const MessageClass& cls, SimTime horizon,
                                     Rng& rng) {
  // Nominal spacing w/a with a non-negative random gap extension of up to
  // 20% of the period. Gap jitter (as opposed to per-arrival phase slip)
  // can only stretch inter-arrival distances, so any window of length w
  // still holds at most `a` arrivals.
  const Duration period = cls.w / cls.a;
  HRTDM_EXPECT(period > Duration::nanoseconds(0), "period underflow");
  const std::int64_t max_extra = std::max<std::int64_t>(period.ns() / 5, 0);
  std::vector<SimTime> times;
  SimTime at = SimTime::zero();
  while (at < horizon) {
    times.push_back(at);
    at += period + Duration::nanoseconds(
                       max_extra > 0 ? rng.uniform_i64(0, max_extra) : 0);
  }
  return times;
}

std::vector<SimTime> sporadic(const MessageClass& cls, SimTime horizon,
                              Rng& rng) {
  // Minimum inter-arrival w/a plus an exponential extension with mean
  // 0.5 * w/a; strictly sparser than the saturating adversary.
  const Duration min_gap = cls.w / cls.a;
  std::vector<SimTime> times;
  SimTime at = SimTime::zero();
  while (at < horizon) {
    times.push_back(at);
    const double extra_s =
        rng.exponential(2.0 / std::max(min_gap.to_seconds(), 1e-12));
    at += min_gap + Duration::from_seconds(extra_s);
  }
  return times;
}

std::vector<SimTime> bounded_poisson(const MessageClass& cls, SimTime horizon,
                                     Rng& rng) {
  // Poisson at the nominal rate a/w, then thinned: an arrival that would be
  // the (a+1)-th inside some window of length w is dropped.
  const double rate = static_cast<double>(cls.a) / cls.w.to_seconds();
  std::vector<SimTime> times;
  SimTime at = SimTime::zero() + Duration::from_seconds(rng.exponential(rate));
  while (at < horizon) {
    const std::size_t n = times.size();
    const bool violates =
        n >= static_cast<std::size_t>(cls.a) &&
        at - times[n - static_cast<std::size_t>(cls.a)] < cls.w;
    if (!violates) {
      times.push_back(at);
    }
    at += Duration::from_seconds(rng.exponential(rate));
  }
  return times;
}

}  // namespace

std::vector<SimTime> generate_arrivals(const MessageClass& cls,
                                       ArrivalKind kind, SimTime horizon,
                                       Rng& rng) {
  check_class(cls);
  std::vector<SimTime> times;
  switch (kind) {
    case ArrivalKind::kSaturatingAdversary:
      times = saturating(cls, horizon);
      break;
    case ArrivalKind::kPeriodicJitter:
      times = periodic_jitter(cls, horizon, rng);
      break;
    case ArrivalKind::kSporadic:
      times = sporadic(cls, horizon, rng);
      break;
    case ArrivalKind::kBoundedPoisson:
      times = bounded_poisson(cls, horizon, rng);
      break;
  }
  HRTDM_ENSURE(std::is_sorted(times.begin(), times.end()),
               "arrival times must be sorted");
  HRTDM_ENSURE(respects_density(times, cls.a, cls.w),
               "generator violated the unimodal arbitrary bound");
  return times;
}

bool respects_density(const std::vector<SimTime>& times, std::int64_t a,
                      Duration w) {
  HRTDM_EXPECT(a >= 1, "arrival bound a must be >= 1");
  for (std::size_t i = 0; i + static_cast<std::size_t>(a) < times.size();
       ++i) {
    if (times[i + static_cast<std::size_t>(a)] - times[i] < w) {
      return false;
    }
  }
  return true;
}

std::vector<Message> materialize(const MessageClass& cls,
                                 const std::vector<SimTime>& times,
                                 std::int64_t& next_uid) {
  std::vector<Message> messages;
  messages.reserve(times.size());
  for (const SimTime at : times) {
    Message msg;
    msg.uid = next_uid++;
    msg.class_id = cls.id;
    msg.source = cls.source;
    msg.l_bits = cls.l_bits;
    msg.arrival = at;
    msg.absolute_deadline = at + cls.d;
    messages.push_back(msg);
  }
  return messages;
}

}  // namespace hrtdm::traffic
