#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace hrtdm::traffic {

std::vector<MessageClass> Workload::all_classes() const {
  std::vector<MessageClass> classes;
  for (const auto& src : sources) {
    classes.insert(classes.end(), src.classes.begin(), src.classes.end());
  }
  return classes;
}

void Workload::validate() const {
  HRTDM_EXPECT(!sources.empty(), "workload needs at least one source");
  std::set<int> source_ids;
  std::set<int> class_ids;
  for (const auto& src : sources) {
    HRTDM_EXPECT(src.id >= 0, "source ids must be non-negative");
    HRTDM_EXPECT(source_ids.insert(src.id).second, "duplicate source id");
    for (const auto& cls : src.classes) {
      HRTDM_EXPECT(cls.source == src.id,
                   "class source must match its owning source");
      HRTDM_EXPECT(class_ids.insert(cls.id).second, "duplicate class id");
      HRTDM_EXPECT(cls.l_bits > 0, "class length must be positive");
      HRTDM_EXPECT(cls.d > Duration::nanoseconds(0),
                   "class deadline must be positive");
      HRTDM_EXPECT(cls.a >= 1, "class arrival bound must be >= 1");
      HRTDM_EXPECT(cls.w > Duration::nanoseconds(0),
                   "class window must be positive");
    }
  }
}

Duration Workload::max_deadline() const {
  Duration max_d;
  for (const auto& src : sources) {
    for (const auto& cls : src.classes) {
      max_d = std::max(max_d, cls.d);
    }
  }
  return max_d;
}

double Workload::offered_load_bits_per_second() const {
  double bits_per_second = 0.0;
  for (const auto& src : sources) {
    for (const auto& cls : src.classes) {
      bits_per_second += static_cast<double>(cls.a) *
                         static_cast<double>(cls.l_bits) /
                         cls.w.to_seconds();
    }
  }
  return bits_per_second;
}

Workload Workload::scaled_load(double factor) const {
  HRTDM_EXPECT(factor > 0.0, "load factor must be positive");
  Workload scaled = *this;
  for (auto& src : scaled.sources) {
    for (auto& cls : src.classes) {
      const auto ns = static_cast<std::int64_t>(
          std::llround(static_cast<double>(cls.w.ns()) / factor));
      cls.w = Duration::nanoseconds(std::max<std::int64_t>(ns, cls.a + 1));
    }
  }
  return scaled;
}

GeneratedTraffic generate_traffic(const Workload& workload, ArrivalKind kind,
                                  SimTime horizon, std::uint64_t seed) {
  workload.validate();
  GeneratedTraffic traffic;
  traffic.per_source.resize(workload.sources.size());
  util::Rng rng(seed);
  std::int64_t next_uid = 0;
  for (std::size_t s = 0; s < workload.sources.size(); ++s) {
    std::vector<Message>& out = traffic.per_source[s];
    for (const auto& cls : workload.sources[s].classes) {
      util::Rng class_rng = rng.split();
      const auto times = generate_arrivals(cls, kind, horizon, class_rng);
      const auto msgs = materialize(cls, times, next_uid);
      out.insert(out.end(), msgs.begin(), msgs.end());
    }
    std::sort(out.begin(), out.end(),
              [](const Message& a, const Message& b) {
                if (a.arrival != b.arrival) {
                  return a.arrival < b.arrival;
                }
                return a.uid < b.uid;
              });
    traffic.total_messages += static_cast<std::int64_t>(out.size());
  }
  return traffic;
}

namespace {

MessageClass make_class(int id, std::string name, int source,
                        std::int64_t l_bits, Duration d, std::int64_t a,
                        Duration w) {
  MessageClass cls;
  cls.id = id;
  cls.name = std::move(name);
  cls.source = source;
  cls.l_bits = l_bits;
  cls.d = d;
  cls.a = a;
  cls.w = w;
  return cls;
}

}  // namespace

Workload quickstart(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "quickstart";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "node-" + std::to_string(s);
    src.classes.push_back(make_class(
        next_class++, "ctl-" + std::to_string(s), s, /*l_bits=*/512 * 8,
        /*d=*/Duration::milliseconds(5), /*a=*/1,
        /*w=*/Duration::milliseconds(10)));
    src.classes.push_back(make_class(
        next_class++, "bulk-" + std::to_string(s), s, /*l_bits=*/12000,
        /*d=*/Duration::milliseconds(20), /*a=*/2,
        /*w=*/Duration::milliseconds(40)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload videoconference(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "videoconference";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "conf-" + std::to_string(s);
    // G.711-ish audio: 160-byte payload every 20 ms, deadline 10 ms.
    src.classes.push_back(make_class(
        next_class++, "audio-" + std::to_string(s), s, 160 * 8,
        Duration::milliseconds(10), 1, Duration::milliseconds(20)));
    // Compressed video: up to 2 slices of 1500 bytes per 33 ms frame.
    src.classes.push_back(make_class(
        next_class++, "video-" + std::to_string(s), s, 1500 * 8,
        Duration::milliseconds(33), 2, Duration::milliseconds(33)));
    // Floor control: rare, small, fairly tight.
    src.classes.push_back(make_class(
        next_class++, "floor-" + std::to_string(s), s, 64 * 8,
        Duration::milliseconds(8), 1, Duration::milliseconds(100)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload air_traffic_control(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "air-traffic-control";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "radar-" + std::to_string(s);
    // Track updates: 4 tracks of 400 bytes per 100 ms sweep.
    src.classes.push_back(make_class(
        next_class++, "track-" + std::to_string(s), s, 400 * 8,
        Duration::milliseconds(50), 4, Duration::milliseconds(100)));
    // Conflict alerts: at most 1 per 200 ms, must go out within 2 ms.
    src.classes.push_back(make_class(
        next_class++, "alert-" + std::to_string(s), s, 128 * 8,
        Duration::milliseconds(2), 1, Duration::milliseconds(200)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload stock_exchange(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "stock-exchange";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "gateway-" + std::to_string(s);
    // Order entries: bursts of 4 per 10 ms, 3 ms deadline.
    src.classes.push_back(make_class(
        next_class++, "order-" + std::to_string(s), s, 256 * 8,
        Duration::milliseconds(3), 4, Duration::milliseconds(10)));
    // Market data ticks: 8 per 20 ms, 15 ms deadline.
    src.classes.push_back(make_class(
        next_class++, "tick-" + std::to_string(s), s, 512 * 8,
        Duration::milliseconds(15), 8, Duration::milliseconds(20)));
    // Audit records: loose.
    src.classes.push_back(make_class(
        next_class++, "audit-" + std::to_string(s), s, 1024 * 8,
        Duration::milliseconds(100), 1, Duration::milliseconds(100)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload factory_cell(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "factory-cell";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "plc-" + std::to_string(s);
    // PLC scan exchange: 64-byte I/O image every 5 ms, 2 ms deadline.
    src.classes.push_back(make_class(
        next_class++, "scan-" + std::to_string(s), s, 64 * 8,
        Duration::milliseconds(2), 1, Duration::milliseconds(5)));
    // Emergency stop: at most one per second, 500 us hard deadline.
    src.classes.push_back(make_class(
        next_class++, "estop-" + std::to_string(s), s, 32 * 8,
        Duration::microseconds(500), 1, Duration::seconds(1)));
    // Supervisory telemetry: 2 KiB per 100 ms, loose.
    src.classes.push_back(make_class(
        next_class++, "telemetry-" + std::to_string(s), s, 2048 * 8,
        Duration::milliseconds(80), 1, Duration::milliseconds(100)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload avionics(int z) {
  HRTDM_EXPECT(z >= 1, "need at least one source");
  Workload wl;
  wl.name = "avionics";
  int next_class = 0;
  for (int s = 0; s < z; ++s) {
    SourceSpec src;
    src.id = s;
    src.name = "lru-" + std::to_string(s);
    // Flight-control frames: 128 bytes at a 10 ms minor cycle, 4 ms
    // deadline.
    src.classes.push_back(make_class(
        next_class++, "fcs-" + std::to_string(s), s, 128 * 8,
        Duration::milliseconds(4), 1, Duration::milliseconds(10)));
    // Navigation updates: 512 bytes at a 50 ms cycle.
    src.classes.push_back(make_class(
        next_class++, "nav-" + std::to_string(s), s, 512 * 8,
        Duration::milliseconds(25), 1, Duration::milliseconds(50)));
    // Maintenance records: 4 KiB per second, very loose.
    src.classes.push_back(make_class(
        next_class++, "maint-" + std::to_string(s), s, 4096 * 8,
        Duration::milliseconds(500), 1, Duration::seconds(1)));
    wl.sources.push_back(std::move(src));
  }
  return wl;
}

Workload workload_by_name(const std::string& name, int z) {
  if (name == "quickstart") {
    return quickstart(z);
  }
  if (name == "videoconference") {
    return videoconference(z);
  }
  if (name == "atc") {
    return air_traffic_control(z);
  }
  if (name == "stocks") {
    return stock_exchange(z);
  }
  if (name == "factory") {
    return factory_cell(z);
  }
  if (name == "avionics") {
    return avionics(z);
  }
  HRTDM_EXPECT(false, "unknown scenario: " + name);
  return {};
}

std::vector<std::string> scenario_names() {
  return {"quickstart", "videoconference", "atc",
          "stocks",     "factory",         "avionics"};
}

}  // namespace hrtdm::traffic
