// Workload definitions: sources, their message classes, and scenario
// builders for the application domains the paper's introduction motivates
// (interactive multimedia, videoconferencing, on-line transactions,
// surveillance / air-traffic control).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/arrival.hpp"
#include "traffic/message.hpp"

namespace hrtdm::traffic {

struct SourceSpec {
  int id = -1;
  std::string name;
  std::vector<MessageClass> classes;  ///< MSG_i, the subset mapped here
};

/// A fully specified HRTDM workload (the <m.HRTDM> models).
struct Workload {
  std::string name;
  std::vector<SourceSpec> sources;

  /// Number of sources z.
  int z() const { return static_cast<int>(sources.size()); }

  /// All classes across sources (MSG).
  std::vector<MessageClass> all_classes() const;

  /// Structural validation: ids consistent, parameters positive.
  void validate() const;

  /// Largest relative deadline across MSG (for horizon dimensioning).
  Duration max_deadline() const;

  /// Long-run offered load: sum over MSG of (a/w) * (l/psi). The l' framing
  /// overhead is added by the caller's PHY when relevant.
  double offered_load_bits_per_second() const;

  /// Uniformly scales every class's arrival window by 1/factor (factor > 1
  /// means more load). Used by the load-sweep benches.
  Workload scaled_load(double factor) const;
};

/// Per-source message instances for a run.
struct GeneratedTraffic {
  std::vector<std::vector<Message>> per_source;  ///< sorted by arrival
  std::int64_t total_messages = 0;
};

GeneratedTraffic generate_traffic(const Workload& workload, ArrivalKind kind,
                                  SimTime horizon, std::uint64_t seed);

// ---- Scenario builders ------------------------------------------------

/// Quickstart scenario: `z` identical sources each with one small control
/// class and one bulk class. Deadlines are loose enough to be feasible on
/// Gigabit Ethernet at the default tree shapes.
Workload quickstart(int z);

/// Videoconferencing bridge: z stations each carry an audio class (small,
/// tight deadline), a video class (large, frame-rate window) and a floor
/// control class (rare, small).
Workload videoconference(int z);

/// Surveillance / air-traffic control: radar track updates (periodic-ish),
/// conflict-alert messages (sporadic, very tight deadline) and controller
/// console traffic.
Workload air_traffic_control(int z);

/// On-line transactions (stock market): order entries (bursty, tight),
/// market data ticks (dense) and audit records (loose).
Workload stock_exchange(int z);

/// Manufacturing cell (the 1980s CSMA/DCR deployments of section 5:
/// discrete/continuous manufacturing): PLC scan cycles (small, periodic,
/// tight), emergency-stop signals (rare, hard microsecond-scale deadline)
/// and supervisory telemetry.
Workload factory_cell(int z);

/// Modular avionics (the TRDF application of section 2.1): flight-control
/// sensor/actuator frames at a fast minor cycle, navigation updates at a
/// slower cycle, and maintenance records.
Workload avionics(int z);

/// Scenario registry for CLI-driven tools: resolves one of "quickstart",
/// "videoconference", "atc", "stocks", "factory", "avionics".
/// Contract-fails on an unknown name (scenario_names() lists them).
Workload workload_by_name(const std::string& name, int z);
std::vector<std::string> scenario_names();

}  // namespace hrtdm::traffic
