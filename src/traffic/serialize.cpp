#include "traffic/serialize.hpp"

#include <sstream>

#include "util/check.hpp"

namespace hrtdm::traffic {

std::string serialize_workload(const Workload& workload) {
  workload.validate();
  std::ostringstream oss;
  oss << "workload " << workload.name << "\n";
  for (const auto& src : workload.sources) {
    oss << "source " << src.id << " " << src.name << "\n";
    for (const auto& cls : src.classes) {
      oss << "class " << cls.id << " " << cls.name
          << " l_bits=" << cls.l_bits << " d_us=" << cls.d.ns() / 1000
          << " a=" << cls.a << " w_us=" << cls.w.ns() / 1000 << "\n";
    }
  }
  return oss.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  HRTDM_EXPECT(false, "workload text line " + std::to_string(line) + ": " +
                          message);
  throw util::ContractViolation("unreachable");  // for the compiler
}

std::int64_t parse_kv(const std::string& token, const std::string& key,
                      int line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail(line, "expected " + prefix + "<int>, got '" + token + "'");
  }
  try {
    return std::stoll(token.substr(prefix.size()));
  } catch (const std::exception&) {
    fail(line, "cannot parse integer in '" + token + "'");
  }
}

}  // namespace

Workload parse_workload(const std::string& text) {
  Workload workload;
  std::istringstream input(text);
  std::string raw;
  int line_no = 0;
  bool have_name = false;
  while (std::getline(input, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw = raw.substr(0, hash);
    }
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) {
      continue;  // blank / comment-only line
    }
    if (keyword == "workload") {
      if (!(line >> workload.name)) {
        fail(line_no, "workload line needs a name");
      }
      have_name = true;
    } else if (keyword == "source") {
      SourceSpec src;
      if (!(line >> src.id >> src.name)) {
        fail(line_no, "source line needs <id> <name>");
      }
      workload.sources.push_back(std::move(src));
    } else if (keyword == "class") {
      if (workload.sources.empty()) {
        fail(line_no, "class line before any source");
      }
      MessageClass cls;
      std::string l_tok;
      std::string d_tok;
      std::string a_tok;
      std::string w_tok;
      if (!(line >> cls.id >> cls.name >> l_tok >> d_tok >> a_tok >> w_tok)) {
        fail(line_no,
             "class line needs <id> <name> l_bits= d_us= a= w_us=");
      }
      cls.source = workload.sources.back().id;
      cls.l_bits = parse_kv(l_tok, "l_bits", line_no);
      cls.d = Duration::microseconds(parse_kv(d_tok, "d_us", line_no));
      cls.a = parse_kv(a_tok, "a", line_no);
      cls.w = Duration::microseconds(parse_kv(w_tok, "w_us", line_no));
      workload.sources.back().classes.push_back(std::move(cls));
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!have_name) {
    fail(line_no, "missing `workload <name>` line");
  }
  workload.validate();
  return workload;
}

}  // namespace hrtdm::traffic
