#include "traffic/fc_adapter.hpp"

#include "util/check.hpp"

namespace hrtdm::traffic {

analysis::FcSystem to_fc_system(const Workload& workload,
                                const FcAdapterOptions& options) {
  workload.validate();
  HRTDM_EXPECT(options.nu.empty() ||
                   options.nu.size() == workload.sources.size(),
               "nu vector must match the number of sources");

  analysis::FcSystem system;
  system.phy.psi_bps = options.psi_bps;
  system.phy.slot_s = options.slot_s;
  system.phy.overhead_bits = options.overhead_bits;
  system.trees = options.trees;

  for (std::size_t s = 0; s < workload.sources.size(); ++s) {
    const SourceSpec& src = workload.sources[s];
    analysis::FcSource fc_src;
    fc_src.name = src.name;
    fc_src.nu = options.nu.empty() ? 1 : options.nu[s];
    for (const MessageClass& cls : src.classes) {
      analysis::FcMessageClass fc_cls;
      fc_cls.name = cls.name;
      fc_cls.l_bits = cls.l_bits;
      fc_cls.d_s = cls.d.to_seconds();
      fc_cls.a = cls.a;
      fc_cls.w_s = cls.w.to_seconds();
      fc_src.classes.push_back(std::move(fc_cls));
    }
    system.sources.push_back(std::move(fc_src));
  }
  return system;
}

}  // namespace hrtdm::traffic
