// Message model of the HRTDM problem (section 2.2).
//
// MSG is partitioned into per-source subsets; every message of a class
// shares the class's bit length l, relative deadline d, and unimodal
// arbitrary arrival bound: at most `a` arrivals in any sliding window of
// length w.
#pragma once

#include <cstdint>
#include <string>

#include "util/simtime.hpp"

namespace hrtdm::traffic {

using util::Duration;
using util::SimTime;

struct MessageClass {
  int id = -1;                ///< network-unique class id
  std::string name;
  int source = -1;            ///< owning source (the mapping model)
  std::int64_t l_bits = 0;    ///< data-link PDU length l(msg)
  Duration d;                 ///< relative deadline d(msg)
  std::int64_t a = 1;         ///< max arrivals per window
  Duration w;                 ///< sliding window w(msg)
};

/// One message instance, as delivered to a source's waiting queue.
struct Message {
  std::int64_t uid = -1;      ///< network-unique message id
  int class_id = -1;
  int source = -1;
  std::int64_t l_bits = 0;
  SimTime arrival;            ///< T(msg)
  SimTime absolute_deadline;  ///< DM(msg) = T(msg) + d(msg)
};

}  // namespace hrtdm::traffic
