// Plain-text workload serialisation.
//
// A downstream user specifies an HRTDM instantiation as a small text file
// rather than C++; the format is line-oriented and diff-friendly:
//
//   workload <name>
//   source <id> <name>
//   class <id> <name> l_bits=<int> d_us=<int> a=<int> w_us=<int>
//   ...
//
// Classes belong to the most recent `source` line. `#` starts a comment.
// parse_workload() round-trips serialize_workload() exactly.
#pragma once

#include <string>

#include "traffic/workload.hpp"

namespace hrtdm::traffic {

/// Renders the workload in the text format above.
std::string serialize_workload(const Workload& workload);

/// Parses the text format; contract-fails with a line-numbered message on
/// malformed input. The result is validate()d before returning.
Workload parse_workload(const std::string& text);

}  // namespace hrtdm::traffic
