// Bridges the simulator-side workload model (integer nanoseconds) to the
// analysis-side feasibility structures (double seconds), so one workload
// definition drives both the FC computation and the simulation that
// validates it.
#pragma once

#include "analysis/feasibility.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::traffic {

struct FcAdapterOptions {
  double psi_bps = 1e9;
  double slot_s = 4.096e-6;
  std::int64_t overhead_bits = 0;
  analysis::FcTreeParams trees;
  /// Static indices per source; empty means one index per source.
  std::vector<std::int64_t> nu;
};

/// Builds the analysis::FcSystem corresponding to `workload`.
analysis::FcSystem to_fc_system(const Workload& workload,
                                const FcAdapterOptions& options);

}  // namespace hrtdm::traffic
