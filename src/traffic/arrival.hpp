// Arrival-process generators under the unimodal arbitrary model.
//
// The paper's adversary may submit up to a(msg) arrivals of msg in *any*
// sliding window of w(msg); it subsumes periodic and Poisson models. The
// generators below produce arrival-time sequences that respect the bound
// (verified by respects_density); the saturating adversary realises its
// extreme point, which is what the feasibility conditions assume.
#pragma once

#include <vector>

#include "traffic/message.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace hrtdm::traffic {

using util::Rng;

enum class ArrivalKind {
  /// Peak load: bursts of `a` simultaneous-as-possible arrivals at the
  /// start of every window — the worst case the FCs are computed against.
  kSaturatingAdversary,
  /// Evenly spaced arrivals with period w/a and uniform phase jitter,
  /// clamped so the density bound still holds.
  kPeriodicJitter,
  /// Sporadic: minimum separation w/a plus an exponential extra gap.
  kSporadic,
  /// Poisson at rate a/w, thinned to respect the sliding-window bound.
  kBoundedPoisson,
};

/// Arrival times for one class over [0, horizon), sorted ascending.
std::vector<SimTime> generate_arrivals(const MessageClass& cls,
                                       ArrivalKind kind, SimTime horizon,
                                       Rng& rng);

/// True iff every sliding window of length w contains at most `a` of the
/// (sorted) arrival times: for all i, times[i + a] - times[i] >= w.
bool respects_density(const std::vector<SimTime>& times, std::int64_t a,
                      Duration w);

/// Materialises Message instances (uid, DM) from arrival times.
std::vector<Message> materialize(const MessageClass& cls,
                                 const std::vector<SimTime>& times,
                                 std::int64_t& next_uid);

}  // namespace hrtdm::traffic
