#include "fault/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

std::int64_t FaultPlan::last_fault_observation() const {
  std::int64_t last = -1;
  for (const CrashFault& c : crashes) {
    last = std::max(last, c.at_observation);
  }
  for (const SymmetricNoiseFault& s : symmetric) {
    last = std::max(last, s.to_observation - 1);
  }
  for (const AsymmetricFault& a : asymmetric) {
    last = std::max(last, a.to_observation - 1);
  }
  return last;
}

std::int64_t FaultPlan::first_fault_observation() const {
  if (empty()) {
    return -1;
  }
  std::int64_t first = INT64_MAX;
  for (const CrashFault& c : crashes) {
    first = std::min(first, c.at_observation);
  }
  for (const SymmetricNoiseFault& s : symmetric) {
    first = std::min(first, s.from_observation);
  }
  for (const AsymmetricFault& a : asymmetric) {
    first = std::min(first, a.from_observation);
  }
  return first;
}

void FaultPlan::validate(int station_count) const {
  for (const CrashFault& c : crashes) {
    HRTDM_EXPECT(c.at_observation >= 0, "crash observation must be >= 0");
    HRTDM_EXPECT(c.station >= 0 && c.station < station_count,
                 "crash station id out of range");
  }
  for (const SymmetricNoiseFault& s : symmetric) {
    HRTDM_EXPECT(s.from_observation >= 0 &&
                     s.to_observation > s.from_observation,
                 "symmetric noise window must be non-empty");
    HRTDM_EXPECT(s.prob >= 0.0 && s.prob <= 1.0,
                 "symmetric noise probability must be in [0, 1]");
  }
  for (const AsymmetricFault& a : asymmetric) {
    HRTDM_EXPECT(a.from_observation >= 0 &&
                     a.to_observation > a.from_observation,
                 "asymmetric fault window must be non-empty");
    HRTDM_EXPECT(a.station >= 0 && a.station < station_count,
                 "asymmetric fault station id out of range");
    HRTDM_EXPECT(a.prob >= 0.0 && a.prob <= 1.0,
                 "asymmetric fault probability must be in [0, 1]");
  }
}

FaultPlan FaultPlan::random_mix(int station_count,
                                std::int64_t window_observations, int crashes,
                                int symmetric_bursts, double symmetric_prob,
                                int asymmetric_bursts, double asymmetric_prob,
                                std::uint64_t seed) {
  HRTDM_EXPECT(station_count >= 1, "need at least one station");
  HRTDM_EXPECT(window_observations >= 1, "fault window must be non-empty");
  util::Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < crashes; ++i) {
    CrashFault c;
    c.at_observation = rng.uniform_i64(0, window_observations - 1);
    c.station = static_cast<int>(rng.uniform_i64(0, station_count - 1));
    plan.crashes.push_back(c);
  }
  const std::int64_t max_burst =
      std::max<std::int64_t>(window_observations / 8, 1);
  for (int i = 0; i < symmetric_bursts; ++i) {
    SymmetricNoiseFault s;
    s.from_observation = rng.uniform_i64(0, window_observations - 1);
    s.to_observation = s.from_observation + rng.uniform_i64(1, max_burst);
    s.prob = symmetric_prob;
    plan.symmetric.push_back(s);
  }
  for (int i = 0; i < asymmetric_bursts; ++i) {
    AsymmetricFault a;
    a.from_observation = rng.uniform_i64(0, window_observations - 1);
    a.to_observation = a.from_observation + rng.uniform_i64(1, max_burst);
    a.station = static_cast<int>(rng.uniform_i64(0, station_count - 1));
    a.kind = rng.bernoulli(0.5) ? AsymmetricKind::kCorruptReceive
                                : AsymmetricKind::kMissReceive;
    a.prob = asymmetric_prob;
    plan.asymmetric.push_back(a);
  }
  plan.validate(station_count);
  return plan;
}

}  // namespace hrtdm::fault
