// Executes a FaultPlan against a live BroadcastChannel.
//
// The injector sits on both channel hooks: as the SlotInterceptor it
// destroys scripted transmissions (symmetric windows) and rewrites chosen
// stations' observations (asymmetric windows); as a ChannelObserver it
// counts delivered observations and fires crash directives at their slot
// boundary through a caller-supplied hook (the injector knows station *ids*,
// the harness knows the DdcrStation objects).
//
// All randomness comes from one seeded stream drawn in a deterministic
// order (symmetric draw per window per slot, then asymmetric draws in
// station-attach order), so a (plan, seed) pair reproduces bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

class FaultInjector final : public net::SlotInterceptor,
                            public net::ChannelObserver {
 public:
  /// Invoked with the station id of a crash directive, at the boundary of
  /// the observation it is scripted for (after the station observed it).
  using CrashHook = std::function<void(int station)>;

  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Installs this injector on the channel (interceptor + observer) —
  /// call before channel.start(); the injector must outlive the channel.
  void install(net::BroadcastChannel& channel);

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  struct Stats {
    std::int64_t crashes_fired = 0;
    std::int64_t symmetric_corruptions = 0;
    std::int64_t asymmetric_corruptions = 0;  ///< success heard as collision
    std::int64_t asymmetric_misses = 0;       ///< slot heard as silence
  };
  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  std::int64_t last_fault_observation() const {
    return plan_.last_fault_observation();
  }
  /// True once every directive's window lies strictly in the past.
  bool exhausted(std::int64_t observation_index) const {
    return observation_index > last_fault_observation();
  }

  // --- net::SlotInterceptor ---
  bool corrupt_slot(std::int64_t slot_index) override;
  net::SlotObservation deliver_to(int station_id, std::int64_t slot_index,
                                  const net::SlotObservation& obs) override;

  // --- net::ChannelObserver (crash firing) ---
  void on_slot(const net::SlotRecord& record) override;

 private:
  FaultPlan plan_;
  util::Rng rng_;
  CrashHook crash_hook_;
  std::vector<bool> crash_fired_;
  std::int64_t observations_seen_ = 0;
  Stats stats_;
};

}  // namespace hrtdm::fault
