// Executes fault, churn and drift plans against a live BroadcastChannel.
//
// The injector sits on both channel hooks: as the SlotInterceptor it
// destroys scripted transmissions (symmetric windows), rewrites chosen
// stations' observations (asymmetric windows) and mis-samples drifted
// stations' receive paths; as a ChannelObserver it counts delivered
// observations and fires crash and churn directives at their slot boundary
// through caller-supplied hooks (the injector knows station *ids*, the
// harness knows the DdcrStation objects).
//
// All randomness comes from one seeded stream drawn in a deterministic
// order (symmetric draw per window per slot, then asymmetric draws in
// station-attach order), so a (plan, seed) pair reproduces bit-for-bit.
// The churn and drift axes draw nothing at run time — churn plans are
// pre-generated and drift is a deterministic clock model — so enabling
// either axis cannot perturb the fault stream of an existing pinned run.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/churn_plan.hpp"
#include "fault/drift_plan.hpp"
#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "sim/drift_clock.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

class FaultInjector final : public net::SlotInterceptor,
                            public net::ChannelObserver {
 public:
  /// Invoked with the station id of a crash directive, at the boundary of
  /// the observation it is scripted for (after the station observed it).
  using CrashHook = std::function<void(int station)>;
  /// Invoked with a churn directive at its observation boundary.
  using ChurnHook = std::function<void(int station, ChurnKind kind)>;
  /// Polled once per slot per drifted station: returns true while the
  /// station is resynchronising (quarantined by the watchdog or rejoining
  /// after churn). While true the station's drift clock is re-anchored —
  /// the resync rule: rejoin corrects phase, the residual rate remains.
  using SyncProbe = std::function<bool(int station)>;

  FaultInjector(FaultPlan plan, std::uint64_t seed);
  FaultInjector(FaultPlan plan, ChurnPlan churn, DriftPlan drift,
                std::uint64_t seed);

  /// Installs this injector on the channel (interceptor + observer) —
  /// call before channel.start(); the injector must outlive the channel.
  void install(net::BroadcastChannel& channel);

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }
  void set_churn_hook(ChurnHook hook) { churn_hook_ = std::move(hook); }
  void set_sync_probe(SyncProbe probe) { sync_probe_ = std::move(probe); }

  struct Stats {
    std::int64_t crashes_fired = 0;
    std::int64_t symmetric_corruptions = 0;
    std::int64_t asymmetric_corruptions = 0;  ///< success heard as collision
    std::int64_t asymmetric_misses = 0;       ///< slot heard as silence
    std::int64_t churn_leaves = 0;
    std::int64_t churn_joins = 0;
    std::int64_t drift_missamples = 0;  ///< success garbled by phase error
    std::int64_t drift_resyncs = 0;     ///< clock re-anchoring episodes
  };
  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  const ChurnPlan& churn() const { return churn_; }
  const DriftPlan& drift() const { return drift_; }

  /// Last observation index at which any *scripted* directive (fault or
  /// churn) can still act. Drift has no window: it is persistent and heals
  /// through the resync rule instead of expiring.
  std::int64_t last_fault_observation() const {
    const std::int64_t f = plan_.last_fault_observation();
    const std::int64_t c = churn_.last_observation();
    return f > c ? f : c;
  }
  /// True once every scripted directive's window lies strictly in the past.
  bool exhausted(std::int64_t observation_index) const {
    return observation_index > last_fault_observation();
  }

  /// End of the provably clean prefix: the smallest observation index at
  /// which anything acted or could have acted — the scripted firsts of the
  /// fault and churn plans, and the *runtime-observed* first drift
  /// mis-sample (drift has no scripted first; before the first rewrite the
  /// stream is truthful, so the prefix is sound). -1 when nothing ever
  /// acted: the whole run is clean.
  std::int64_t clean_prefix_end() const;

  // --- net::SlotInterceptor ---
  bool corrupt_slot(std::int64_t slot_index) override;
  net::SlotObservation deliver_to(int station_id, std::int64_t slot_index,
                                  const net::SlotObservation& obs) override;

  // --- net::ChannelObserver (crash/churn firing, drift resync) ---
  void on_slot(const net::SlotRecord& record) override;

 private:
  struct DriftedStation {
    int station = 0;
    sim::DriftClock clock;
    bool resyncing = false;
  };

  FaultPlan plan_;
  ChurnPlan churn_;
  DriftPlan drift_;
  util::Rng rng_;
  CrashHook crash_hook_;
  ChurnHook churn_hook_;
  SyncProbe sync_probe_;
  std::vector<bool> crash_fired_;
  std::vector<DriftedStation> drifted_;
  util::Duration slot_x_;  ///< set at install() from the channel's phy
  std::size_t churn_next_ = 0;
  std::int64_t observations_seen_ = 0;
  std::int64_t first_drift_effect_ = -1;
  Stats stats_;
};

}  // namespace hrtdm::fault
