#include "fault/campaign.hpp"

#include <memory>
#include <vector>

#include "check/conformance.hpp"
#include "core/metrics.hpp"
#include "obs/registry.hpp"
#include "traffic/message.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hrtdm::fault {

using core::DdcrStation;
using util::Duration;
using util::SimTime;

void SafetyChecker::on_slot(const net::SlotRecord& record) {
  if (any_ && record.start < last_end_) {
    ++violations_;  // two slots overlapped in time
  }
  if (record.kind == net::SlotKind::kSuccess) {
    if (!record.frame.has_value()) {
      ++violations_;  // a delivery with no delivered frame
    }
    if (!record.in_burst && !record.arbitration && record.contenders != 1) {
      ++violations_;  // mutual exclusion: a success needs one transmitter
    }
  }
  if (record.end < record.start) {
    ++violations_;
  }
  any_ = true;
  last_end_ = std::max(last_end_, record.end);
}

void ReconvergenceProbe::on_slot(const net::SlotRecord& record) {
  (void)record;
  const std::int64_t index = observations_++;
  if (!consistent_()) {
    last_divergent_ = index;
  }
}

std::uint64_t axis_seed(std::uint64_t base_seed, CampaignAxis axis) {
  // Mirrors core::channel_seed(): one SplitMix64 chain, axis k takes the
  // (k+1)-th draw. The base constant differs from the legacy 0xFA17 mix,
  // so these streams are decorrelated from (and cannot perturb) the
  // fault-plan and injector seeds of pinned campaigns.
  util::SplitMix64 mix(base_seed ^ 0xA715'C10C'D81F'7C4AULL);
  std::uint64_t seed = mix.next();
  for (int i = 0; i < static_cast<int>(axis); ++i) {
    seed = mix.next();
  }
  return seed;
}

CampaignOptions::CampaignOptions() {
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  ddcr.m_time = 2;
  ddcr.F = 16;
  ddcr.m_static = 2;
  ddcr.q = 16;
  ddcr.class_width_c = Duration::microseconds(1);
  ddcr.alpha = Duration::nanoseconds(0);
  ddcr.max_empty_tts = 2;  // bounded silence streaks: rejoin-capable
}

CampaignResult run_campaign(const CampaignOptions& options) {
  HRTDM_EXPECT(options.stations >= 2,
               "a fault campaign needs >= 2 stations to contend");
  HRTDM_EXPECT(options.messages_per_station >= 1, "campaign needs traffic");
  core::DdcrConfig config = options.ddcr;
  if (config.static_indices.empty()) {
    config.static_indices =
        core::DdcrConfig::one_index_per_source(options.stations, config.q);
  }
  config.validate(options.stations);
  // Crash directives and watchdog quarantines re-enter through the
  // quiet-period certificate; reject configurations that livelock it.
  config.validate_rejoinable();
  HRTDM_EXPECT(config.alpha + options.relative_deadline < config.horizon(),
               "campaign deadlines must fit the scheduling horizon cF");

  sim::Simulator simulator;
  net::BroadcastChannel channel(simulator, options.phy,
                                net::CollisionMode::kDestructive);
  std::vector<std::unique_ptr<DdcrStation>> stations;
  for (int s = 0; s < options.stations; ++s) {
    stations.push_back(std::make_unique<DdcrStation>(
        s, config, config.static_indices[static_cast<std::size_t>(s)]));
    channel.attach(*stations.back());
  }

  // Derive independent streams for the plan shape and the in-run draws.
  // The churn and drift axes take their seeds from axis_seed(), a separate
  // SplitMix64 split, so enabling them leaves this legacy sequence — and
  // with it every pinned campaign — bit-identical.
  util::SplitMix64 mix(options.seed ^ 0xFA17ULL);
  const FaultPlan plan = FaultPlan::random_mix(
      options.stations, options.fault_window_observations, options.crashes,
      options.symmetric_bursts, options.symmetric_prob,
      options.asymmetric_bursts, options.asymmetric_prob, mix.next());
  ChurnPlan churn;
  if (options.churn_events > 0) {
    churn = options.churn_adversarial
                ? ChurnPlan::adversarial_burst(
                      options.stations, options.fault_window_observations / 3,
                      options.churn_rejoin_gap, /*survivors=*/1)
                : ChurnPlan::poisson(
                      options.stations, options.fault_window_observations,
                      options.churn_events,
                      axis_seed(options.seed, CampaignAxis::kChurn));
  }
  DriftPlan drift;
  if (options.drifted_stations > 0) {
    drift = DriftPlan::uniform(options.stations, options.drifted_stations,
                               options.drift_phase_bound,
                               options.drift_rate_ppm,
                               axis_seed(options.seed, CampaignAxis::kDrift));
  }
  FaultInjector injector(plan, churn, drift, mix.next());
  injector.set_crash_hook([&stations](int id) {
    DdcrStation* station = stations[static_cast<std::size_t>(id)].get();
    if (!station->online()) {
      return;  // a powered-off station cannot crash
    }
    station->reset_for_rejoin();
  });
  injector.set_churn_hook([&stations](int id, ChurnKind kind) {
    DdcrStation* station = stations[static_cast<std::size_t>(id)].get();
    if (kind == ChurnKind::kLeave) {
      station->go_offline();
    } else {
      station->bring_online();
    }
  });
  // The resync rule: a drifted station's clock is re-anchored while it sits
  // in a listen-only state (watchdog quarantine, crash recovery or churn
  // rejoin).
  injector.set_sync_probe([&stations](int id) {
    return !stations[static_cast<std::size_t>(id)]->synced();
  });
  injector.install(channel);

  core::MetricsCollector metrics;
  SafetyChecker safety;
  auto consistent = [&stations] {
    bool have_reference = false;
    std::uint64_t reference = 0;
    for (const auto& station : stations) {
      if (!station->synced()) {
        return false;  // a quarantined/crashed replica is not converged
      }
      const std::uint64_t digest = station->protocol_digest();
      if (!have_reference) {
        reference = digest;
        have_reference = true;
      } else if (digest != reference) {
        return false;
      }
    }
    return true;
  };
  ReconvergenceProbe probe(consistent);
  channel.add_observer(metrics);
  channel.add_observer(safety);
  channel.add_observer(probe);
  check::ConformanceRecorder recorder;
  std::vector<traffic::Message> injected;
  if (options.conformance_check) {
    channel.add_observer(recorder);
  }

  // Phase 1 traffic: shared arrival instants force z-way collisions, and a
  // shared relative deadline forces same-class ties, so every burst
  // exercises TTs + STs while the fault plan fires.
  std::int64_t generated = 0;
  for (int k = 0; k < options.messages_per_station; ++k) {
    const SimTime arrival = SimTime() + options.arrival_spacing * (k + 1);
    for (int s = 0; s < options.stations; ++s) {
      traffic::Message msg;
      msg.uid = 1'000'000 + static_cast<std::int64_t>(s) * 10'000 + k;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = 100;
      msg.arrival = arrival;
      msg.absolute_deadline = arrival + options.relative_deadline;
      DdcrStation* station = stations[static_cast<std::size_t>(s)].get();
      simulator.schedule_at(
          arrival, [station, msg] { station->enqueue(msg); }, "arrival");
      if (options.conformance_check) {
        injected.push_back(msg);
      }
      ++generated;
    }
  }

  auto queued = [&stations] {
    std::int64_t total = 0;
    for (const auto& station : stations) {
      total += static_cast<std::int64_t>(station->queue().size());
    }
    return total;
  };
  auto all_synced = [&stations] {
    for (const auto& station : stations) {
      if (!station->synced()) {
        return false;
      }
    }
    return true;
  };

  channel.start();
  const Duration step = options.phy.slot_x * 64;
  const SimTime hard_cap =
      SimTime() + options.phy.slot_x * options.recovery_slots_cap;

  // Phase 1: run the fault window out (silence slots also advance the
  // observation index, so the plan always exhausts). A drift-only campaign
  // has no scripted window at all — drift is persistent, not scheduled —
  // so the phase must also cover the arrival span, or nothing would ever
  // force the clock past t = 0 (phase 2 samples queued() before any
  // arrival event has enqueued a message).
  const SimTime last_arrival =
      SimTime() + options.arrival_spacing * options.messages_per_station;
  sim::run_chunked(simulator, step, hard_cap,
                   [&injector, &channel, &simulator, last_arrival] {
                     return !injector.exhausted(
                                channel.observations_delivered()) ||
                            simulator.now() < last_arrival;
                   });

  // Phase 2: self-heal — drain the backlog and give crashed or quarantined
  // stations the quiet streak their rejoin certificate needs.
  sim::run_chunked(simulator, step, hard_cap, [&queued, &all_synced] {
    return queued() > 0 || !all_synced();
  });

  // Phase 3: reconvergence epochs. Residual divergence (a stale reft or a
  // carried compressed-time reference) is protocol-legal until the next
  // epoch resets it; force epochs — a z-way burst of in-horizon messages —
  // until every replica digest agrees. A round can itself trigger a
  // watchdog quarantine on a replica whose stale divergence only now
  // surfaces; the following round picks the rejoined station up.
  int rounds = 0;
  std::int64_t round_uid = 2'000'000;
  while (simulator.now() < hard_cap &&
         !(queued() == 0 && all_synced() && consistent())) {
    if (rounds >= options.max_recovery_rounds) {
      break;
    }
    ++rounds;
    const SimTime burst_at = simulator.now() + options.phy.slot_x * 2;
    for (int s = 0; s < options.stations; ++s) {
      traffic::Message msg;
      msg.uid = round_uid++;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = 100;
      msg.arrival = burst_at;
      msg.absolute_deadline = burst_at + options.relative_deadline;
      DdcrStation* station = stations[static_cast<std::size_t>(s)].get();
      simulator.schedule_at(
          burst_at, [station, msg] { station->enqueue(msg); }, "arrival");
      if (options.conformance_check) {
        injected.push_back(msg);
      }
      ++generated;
    }
    // Always step at least once: the burst arrivals lie in the future, so
    // an entry check on queued() would see empty queues and skip the round.
    simulator.run_until(simulator.now() + step);
    sim::run_chunked(simulator, step, hard_cap, [&queued, &all_synced] {
      return queued() > 0 || !all_synced();
    });
  }
  channel.stop();

  CampaignResult result;
  result.safety_ok = safety.ok();
  result.safety_violations = safety.violations();
  result.drained = queued() == 0;
  result.reconverged = result.drained && all_synced() && consistent();
  // Scripted axes only: drift has no window (it heals via the resync rule
  // rather than expiring), so reconvergence is measured from the last
  // fault or churn directive.
  result.last_fault_observation = injector.last_fault_observation();
  const std::int64_t last_divergent = probe.last_divergent_observation();
  result.reconvergence_observations =
      last_divergent <= result.last_fault_observation
          ? 0
          : last_divergent - result.last_fault_observation;
  result.recovery_rounds_used = rounds;
  result.faults = injector.stats();
  for (const auto& station : stations) {
    result.desyncs_detected += station->counters().desyncs_detected;
    result.quarantines += station->counters().quarantines;
    result.rejoins += station->counters().rejoins;
  }
  result.generated = generated;
  result.delivered = static_cast<std::int64_t>(metrics.log().size());
  result.misses = metrics.summarize().misses;
  if (options.conformance_check) {
    // Full differential checking is only sound while no fault directive has
    // acted: clip the recorded stream at the first fault. The prefix saw no
    // noise, no crashes and no receive lies, so the placement-model bounds
    // and the EDF sweep apply without exemption.
    check::ConformanceInput input;
    input.messages = injected;
    input.phy = options.phy;
    input.collision_mode = net::CollisionMode::kDestructive;
    input.ddcr = config;
    input.protocol_is_ddcr = true;
    // The scripted firsts of the fault and churn plans, plus the
    // runtime-observed first drift mis-sample — before that index nothing
    // rewrote or silenced any observation, so the full check is sound.
    input.clean_prefix_end = injector.clean_prefix_end();
    input.replicas_clean = true;
    result.conformance =
        check::ConformanceComparator{}.check(input, recorder);
  }
  HRTDM_COUNT("fault.campaigns");
  if (result.passed()) {
    HRTDM_COUNT("fault.campaigns_passed");
  }
  // Rejoin latency, in channel observations from the last injected fault
  // to the last divergent digest — the self-healing figure of merit.
  HRTDM_OBSERVE("fault.rejoin_latency_obs", result.reconvergence_observations);
  HRTDM_OBSERVE("fault.recovery_rounds", result.recovery_rounds_used);
  return result;
}

std::vector<CampaignResult> run_campaigns(
    const CampaignOptions& base, const std::vector<std::uint64_t>& seeds,
    int threads) {
  std::vector<CampaignResult> results(seeds.size());
  util::parallel_for_index(
      threads, static_cast<std::int64_t>(seeds.size()),
      [&](std::int64_t i) {
        CampaignOptions options = base;
        options.seed = seeds[static_cast<std::size_t>(i)];
        results[static_cast<std::size_t>(i)] = run_campaign(options);
      });
  return results;
}

}  // namespace hrtdm::fault
