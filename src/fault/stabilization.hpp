// Self-stabilization harness (docs/FAULTS.md).
//
// Petig et al. (arXiv:1308.6475) define self-stabilization for a MAC
// protocol as convergence to legal executions from *arbitrary* initial
// state, not merely recovery from injected faults. This harness puts
// CSMA/DDCR to that test: every station starts from a randomly corrupted
// joint state — a fabricated observation history that leaves its tree
// engines, mode, reft/compressed-time references and watchdog streaks in
// arbitrary reachable positions, plus a garbage-filled EDF queue — and the
// network must reconverge (all stations synced, all protocol digests
// equal, all queues drained) within a stated bound of channel
// observations.
//
// Convergence is *checked*, not just simulated: after the measured
// convergence point a fresh verification workload runs and the recorded
// clean suffix must pass the full differential conformance check
// (check::ConformanceComparator with ConformanceInput::clean_suffix_begin)
// — the dual of the campaign harness's clean-prefix judging.
//
// The scramble streams derive from axis_seed(seed, CampaignAxis::kScramble)
// so they cannot perturb any pinned campaign sequence.
#pragma once

#include <cstdint>

#include "core/ddcr_config.hpp"
#include "core/ddcr_network.hpp"
#include "net/phy.hpp"
#include "util/simtime.hpp"

namespace hrtdm::fault {

struct StabilizationOptions {
  int stations = 4;
  std::uint64_t seed = 1;

  /// Base PHY/protocol parameters; ddcr must be rejoin-capable. Defaults
  /// match the campaign harness's small fast instance.
  net::PhyConfig phy;
  core::DdcrConfig ddcr;

  /// Scramble strength: per station, up to this many fabricated channel
  /// observations are replayed into the state machine (driving it to an
  /// arbitrary reachable protocol state) ...
  int max_scramble_observations = 24;
  /// ... and up to this many garbage messages (random deadlines up to 2x
  /// the scheduling horizon) are loaded into its EDF queue.
  int max_garbage_messages = 4;

  /// Recovery bounds, as in the campaign harness: forced z-way
  /// reconvergence bursts inside an overall slot budget.
  int max_recovery_rounds = 12;
  std::int64_t recovery_slots_cap = 400'000;
  util::Duration arrival_spacing = util::Duration::microseconds(3);
  util::Duration relative_deadline = util::Duration::microseconds(8);

  /// Post-convergence verification workload (per station) judged under the
  /// clean-suffix conformance check.
  int verify_messages_per_station = 6;
  bool conformance_check = true;

  StabilizationOptions();
};

struct StabilizationResult {
  bool reconverged = false;  ///< synced + digests agree + drained at end
  /// Observation index from which consistency held for good (0 = the
  /// scramble happened to be consistent from the first slot).
  std::int64_t convergence_observations = 0;
  /// The same, in frames (one frame = the scheduling horizon cF of slots).
  std::int64_t convergence_frames = 0;
  /// The stated bound (stabilization_bound_observations) and the verdict.
  std::int64_t bound_observations = 0;
  bool within_bound = false;
  int recovery_rounds_used = 0;
  std::int64_t scrambled_observations = 0;  ///< fabricated obs replayed
  std::int64_t garbage_messages = 0;        ///< EDF queue corruption size
  std::int64_t desyncs_detected = 0;
  std::int64_t quarantines = 0;
  std::int64_t rejoins = 0;
  bool safety_ok = false;
  std::int64_t safety_violations = 0;
  /// Clean-suffix conformance over the verification phase.
  bool suffix_checked = false;
  bool suffix_ok = true;
  core::ConformanceReport conformance;

  bool passed() const {
    return reconverged && safety_ok && within_bound &&
           (!suffix_checked || suffix_ok);
  }
};

/// The stated convergence bound, in channel observations, derived from the
/// configuration: worst-case garbage drain plus the forced reconvergence
/// rounds, each costing at most one full epoch (collision + complete TTs +
/// z STs tie-breaks + z transmissions) plus a quiet-period rejoin. It is
/// deliberately generous — an *empirical contract* with analytic structure,
/// not a proof — and the soak asserts every observed convergence stays
/// under it.
std::int64_t stabilization_bound_observations(
    const StabilizationOptions& options);

/// Runs one seeded scrambled-start experiment. Deterministic per options.
StabilizationResult run_stabilization(const StabilizationOptions& options);

}  // namespace hrtdm::fault
