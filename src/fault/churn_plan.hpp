// Mass join/leave churn plans (docs/FAULTS.md).
//
// A ChurnPlan scripts station membership changes on the same deterministic
// time axis as a FaultPlan: the channel's observation number. A kLeave
// event takes a station offline — it stops transmitting and hears nothing
// (DdcrStation::go_offline) — and a kJoin event brings it back through the
// listen-only quiet-period rejoin path (the PR 1 quarantine/rejoin
// machinery), never with fabricated state. Two generators cover the two
// regimes of interest: memoryless background churn (poisson) and an
// adversarial mass departure followed by a thundering simultaneous rejoin
// (adversarial_burst).
//
// Plans are *fully paired*: per station, events alternate leave/join,
// starting with a leave and ending with a join, so every plan eventually
// returns the network to full membership and reconvergence is a meaningful
// postcondition.
#pragma once

#include <cstdint>
#include <vector>

namespace hrtdm::fault {

enum class ChurnKind {
  kLeave,  ///< station goes offline right after this observation
  kJoin,   ///< station re-enters via the listen-only resync path
};

struct ChurnEvent {
  std::int64_t at_observation = 0;  ///< fires right after this delivery
  int station = 0;
  ChurnKind kind = ChurnKind::kLeave;
};

struct ChurnPlan {
  /// Sorted by at_observation (ties in scripted order).
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }

  /// First / last observation index at which an event fires (-1 if empty).
  std::int64_t first_observation() const;
  std::int64_t last_observation() const;

  /// Station ids in range, events sorted, and per-station sequences fully
  /// paired (alternating leave/join, starting leave, ending join, strictly
  /// increasing observation numbers).
  void validate(int station_count) const;

  /// Memoryless background churn: events arrive with exponential spacing
  /// (mean window/events per gap) over [0, window_observations); each picks
  /// a station uniformly and toggles it (online -> leave, offline -> join).
  /// Stations still offline at the window's end are rejoined staggered
  /// shortly after it, keeping the plan fully paired. Deterministic per
  /// seed.
  static ChurnPlan poisson(int station_count,
                           std::int64_t window_observations, int events,
                           std::uint64_t seed);

  /// Adversarial burst: every station except the `survivors` lowest ids
  /// leaves at `leave_at` in one observation, and all of them rejoin
  /// simultaneously at `leave_at + rejoin_gap` — the thundering-rejoin
  /// worst case for the quiet-period certificate.
  static ChurnPlan adversarial_burst(int station_count,
                                     std::int64_t leave_at,
                                     std::int64_t rejoin_gap, int survivors);
};

}  // namespace hrtdm::fault
