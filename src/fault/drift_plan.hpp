// Per-station clock drift plans (docs/FAULTS.md).
//
// A DriftPlan assigns a sim::DriftClock to chosen stations. The injector
// mis-samples a drifted station's receive path whenever its phase error
// reaches half a slot (the synchrony budget the paper's proofs assume):
// a successful transmission is heard as a collision — the frame straddles
// the station's misplaced slot boundary and fails its CRC. Sub-threshold
// drift is benign by construction: no observation is ever rewritten, so a
// plan whose clocks can never reach x/2 is a provable no-op.
//
// The model is deterministic (clocks draw no randomness at run time);
// only the generator below consumes a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/drift_clock.hpp"
#include "util/simtime.hpp"

namespace hrtdm::fault {

struct DriftSpec {
  int station = 0;
  util::Duration initial_phase;  ///< fixed skew at run start (may be <0)
  double rate_ppm = 0.0;         ///< linear drift rate, parts per million
  util::Duration phase_bound;    ///< |phase| clamp; required when rate != 0

  sim::DriftClock make_clock() const {
    return sim::DriftClock(initial_phase, rate_ppm, phase_bound);
  }
};

struct DriftPlan {
  std::vector<DriftSpec> specs;

  bool empty() const { return specs.empty(); }

  /// Station ids in range and unique; a nonzero rate requires a positive
  /// phase bound (an unclamped drifting clock has no synchrony budget).
  void validate(int station_count) const;

  /// True when any spec's clock can ever reach the x/2 mis-sampling
  /// threshold. A plan for which this is false rewrites nothing: runs are
  /// bit-identical to drift-free runs.
  bool can_missample(util::Duration slot_x) const;

  /// Picks `drifted` distinct stations; each gets a uniform initial phase
  /// in [-phase_bound, +phase_bound] and the given rate with a random
  /// sign. Deterministic per seed.
  static DriftPlan uniform(int station_count, int drifted,
                           util::Duration phase_bound, double rate_ppm,
                           std::uint64_t seed);
};

}  // namespace hrtdm::fault
