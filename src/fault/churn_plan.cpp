#include "fault/churn_plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

std::int64_t ChurnPlan::first_observation() const {
  return events.empty() ? -1 : events.front().at_observation;
}

std::int64_t ChurnPlan::last_observation() const {
  return events.empty() ? -1 : events.back().at_observation;
}

void ChurnPlan::validate(int station_count) const {
  std::int64_t prev = -1;
  for (const ChurnEvent& e : events) {
    HRTDM_EXPECT(e.at_observation >= 0, "churn observation must be >= 0");
    HRTDM_EXPECT(e.at_observation >= prev, "churn events must be sorted");
    HRTDM_EXPECT(e.station >= 0 && e.station < station_count,
                 "churn station id out of range");
    prev = e.at_observation;
  }
  // Per-station pairing: alternating, leave first, join last, strictly
  // increasing observation numbers.
  for (int s = 0; s < station_count; ++s) {
    bool offline = false;
    std::int64_t last_at = -1;
    for (const ChurnEvent& e : events) {
      if (e.station != s) {
        continue;
      }
      HRTDM_EXPECT(e.at_observation > last_at,
                   "a station's churn events must be strictly ordered");
      last_at = e.at_observation;
      if (e.kind == ChurnKind::kLeave) {
        HRTDM_EXPECT(!offline, "leave directive for an offline station");
        offline = true;
      } else {
        HRTDM_EXPECT(offline, "join directive for an online station");
        offline = false;
      }
    }
    HRTDM_EXPECT(!offline, "churn plan leaves a station offline forever");
  }
}

ChurnPlan ChurnPlan::poisson(int station_count,
                             std::int64_t window_observations, int events,
                             std::uint64_t seed) {
  HRTDM_EXPECT(station_count >= 1, "need at least one station");
  HRTDM_EXPECT(window_observations >= 1, "churn window must be non-empty");
  HRTDM_EXPECT(events >= 0, "event count cannot be negative");
  util::Rng rng(seed);
  ChurnPlan plan;
  if (events == 0) {
    return plan;
  }
  const double mean_gap =
      static_cast<double>(window_observations) / static_cast<double>(events);
  std::vector<bool> offline(static_cast<std::size_t>(station_count), false);
  std::vector<std::int64_t> last_at(static_cast<std::size_t>(station_count),
                                    -1);
  double t = 0.0;
  for (int i = 0; i < events; ++i) {
    t += rng.exponential(1.0 / mean_gap);
    const auto at = static_cast<std::int64_t>(std::llround(t));
    if (at >= window_observations) {
      break;
    }
    const int station =
        static_cast<int>(rng.uniform_i64(0, station_count - 1));
    const auto idx = static_cast<std::size_t>(station);
    if (at <= last_at[idx]) {
      continue;  // same-observation repeat for one station: skip
    }
    ChurnEvent e;
    e.at_observation = at;
    e.station = station;
    e.kind = offline[idx] ? ChurnKind::kJoin : ChurnKind::kLeave;
    offline[idx] = !offline[idx];
    last_at[idx] = at;
    plan.events.push_back(e);
  }
  // Pair off: stations still offline rejoin staggered shortly after the
  // window so reconvergence is always reachable.
  std::int64_t stagger = 0;
  for (int s = 0; s < station_count; ++s) {
    if (!offline[static_cast<std::size_t>(s)]) {
      continue;
    }
    ChurnEvent e;
    e.at_observation = window_observations + 4 * stagger++;
    e.station = s;
    e.kind = ChurnKind::kJoin;
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_observation < b.at_observation;
                   });
  plan.validate(station_count);
  return plan;
}

ChurnPlan ChurnPlan::adversarial_burst(int station_count,
                                       std::int64_t leave_at,
                                       std::int64_t rejoin_gap,
                                       int survivors) {
  HRTDM_EXPECT(station_count >= 1, "need at least one station");
  HRTDM_EXPECT(leave_at >= 0, "leave observation must be >= 0");
  HRTDM_EXPECT(rejoin_gap >= 1, "rejoin gap must be positive");
  HRTDM_EXPECT(survivors >= 0 && survivors <= station_count,
               "survivor count out of range");
  ChurnPlan plan;
  for (int s = survivors; s < station_count; ++s) {
    plan.events.push_back({leave_at, s, ChurnKind::kLeave});
  }
  for (int s = survivors; s < station_count; ++s) {
    plan.events.push_back({leave_at + rejoin_gap, s, ChurnKind::kJoin});
  }
  plan.validate(station_count);
  return plan;
}

}  // namespace hrtdm::fault
