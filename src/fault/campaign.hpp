// Randomized fault-campaign harness (docs/FAULTS.md).
//
// One campaign = one seeded run of a full CSMA/DDCR network under a random
// mixture of crash, symmetric-noise and asymmetric receive faults, followed
// by a self-healing phase, checking the two invariants that must survive
// *any* fault pattern:
//
//  safety        — channel-level mutual exclusion: delivered transmissions
//                  never overlap in time (verified from the ground-truth
//                  SlotRecords, which faults cannot rewrite);
//  reconvergence — within a bounded number of observations after the last
//                  injected fault, every station is synced again, all
//                  protocol digests agree, and every queued message drains.
//
// Shared by tests/test_fault_campaign.cpp (50+ seeded campaigns) and the
// asymmetric-fault-rate sweep in bench_fault_tolerance.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ddcr_network.hpp"
#include "fault/fault_injector.hpp"
#include "net/channel.hpp"

namespace hrtdm::fault {

/// Ground-truth mutual-exclusion checker: slot records must be
/// time-ordered and non-overlapping, and every success must carry exactly
/// one transmitter's frame.
class SafetyChecker final : public net::ChannelObserver {
 public:
  void on_slot(const net::SlotRecord& record) override;

  bool ok() const { return violations_ == 0; }
  std::int64_t violations() const { return violations_; }

 private:
  std::int64_t violations_ = 0;
  util::SimTime last_end_;
  bool any_ = false;
};

/// Per-observation reconvergence probe: evaluates a caller-supplied
/// consistency predicate after every delivery and remembers the last
/// observation index at which it was false.
class ReconvergenceProbe final : public net::ChannelObserver {
 public:
  explicit ReconvergenceProbe(std::function<bool()> consistent)
      : consistent_(std::move(consistent)) {}

  void on_slot(const net::SlotRecord& record) override;

  std::int64_t observations() const { return observations_; }
  /// -1 when the predicate held on every observation.
  std::int64_t last_divergent_observation() const { return last_divergent_; }

 private:
  std::function<bool()> consistent_;
  std::int64_t observations_ = 0;
  std::int64_t last_divergent_ = -1;
};

/// The extended fault axes derive their RNG streams by channel_seed()-style
/// SplitMix64 splitting: axis k's seed is the (k+1)-th draw of a SplitMix64
/// chain over a base decorrelated from the campaign's legacy stream
/// (`seed ^ 0xFA17`, which feeds the fault-plan shape and the injector, in
/// that order, exactly as before). Enabling a new axis therefore never
/// perturbs the random sequence of an existing pinned campaign.
enum class CampaignAxis : int {
  kChurn = 0,
  kDrift = 1,
  kScramble = 2,  ///< stabilization harness state corruption
};

std::uint64_t axis_seed(std::uint64_t base_seed, CampaignAxis axis);

struct CampaignOptions {
  int stations = 4;
  std::uint64_t seed = 1;

  /// Base PHY/protocol parameters. Defaults are a small, fast instance;
  /// ddcr must be rejoin-capable (checked at construction).
  net::PhyConfig phy;
  core::DdcrConfig ddcr;

  /// Phase-1 traffic: every station enqueues `messages_per_station`
  /// messages at shared arrival instants (worst case: z-way collisions and
  /// same-class ties on every burst).
  int messages_per_station = 12;
  util::Duration arrival_spacing = util::Duration::microseconds(3);
  util::Duration relative_deadline = util::Duration::microseconds(8);

  /// Fault mixture, scattered over the first `fault_window_observations`
  /// channel deliveries.
  std::int64_t fault_window_observations = 300;
  int crashes = 1;
  int symmetric_bursts = 1;
  double symmetric_prob = 0.3;
  int asymmetric_bursts = 2;
  double asymmetric_prob = 0.6;

  /// Churn axis (0 = disabled): scripted join/leave membership events over
  /// the fault window. Poisson background churn by default; the
  /// adversarial variant is one mass departure of every station but one at
  /// a third of the window, all rejoining `churn_rejoin_gap` observations
  /// later. Seeded from axis_seed(seed, CampaignAxis::kChurn).
  int churn_events = 0;
  bool churn_adversarial = false;
  std::int64_t churn_rejoin_gap = 96;

  /// Drift axis (0 = disabled): this many stations get drifting clocks
  /// (fault::DriftPlan::uniform) with the given phase bound and |rate|.
  /// Seeded from axis_seed(seed, CampaignAxis::kDrift).
  int drifted_stations = 0;
  util::Duration drift_phase_bound;
  double drift_rate_ppm = 0.0;

  /// Self-healing bounds: up to `max_recovery_rounds` forced reconvergence
  /// epochs inside an overall budget of `recovery_slots_cap` slot times.
  int max_recovery_rounds = 8;
  std::int64_t recovery_slots_cap = 400'000;

  /// Run the differential conformance check (src/check) over the clean
  /// prefix of the campaign — the observations strictly before the first
  /// injected fault, where the placement-model bounds and the EDF oracle
  /// comparison are sound. The faulted suffix remains covered by the
  /// campaign's own safety / reconvergence invariants.
  bool conformance_check = false;

  CampaignOptions();
};

struct CampaignResult {
  bool safety_ok = false;
  std::int64_t safety_violations = 0;
  bool drained = false;      ///< every queue empty at the end
  bool reconverged = false;  ///< all synced + digests agree at the end
  std::int64_t last_fault_observation = -1;
  /// Observations from the last injected fault until consistency held for
  /// good (0 when faults never broke it).
  std::int64_t reconvergence_observations = 0;
  int recovery_rounds_used = 0;
  FaultInjector::Stats faults;
  std::int64_t desyncs_detected = 0;
  std::int64_t quarantines = 0;
  std::int64_t rejoins = 0;
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  std::int64_t misses = 0;
  /// Filled when CampaignOptions::conformance_check was set (the clean
  /// pre-fault prefix only).
  core::ConformanceReport conformance;

  bool passed() const {
    return safety_ok && drained && reconverged &&
           (!conformance.checked || conformance.ok);
  }
};

/// Runs one seeded campaign to completion. Deterministic per options.
CampaignResult run_campaign(const CampaignOptions& options);

/// Runs one campaign per entry of `seeds` (the base options with the seed
/// overridden) and returns the results in seed order. Campaigns are
/// independent simulations, so `threads` > 1 executes them on the
/// deterministic worker pool (util::parallel_for_index); the result vector
/// is bit-identical to the serial threads = 1 loop.
std::vector<CampaignResult> run_campaigns(
    const CampaignOptions& base, const std::vector<std::uint64_t>& seeds,
    int threads = 1);

}  // namespace hrtdm::fault
