#include "fault/fault_injector.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hrtdm::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : FaultInjector(std::move(plan), ChurnPlan{}, DriftPlan{}, seed) {}

FaultInjector::FaultInjector(FaultPlan plan, ChurnPlan churn, DriftPlan drift,
                             std::uint64_t seed)
    : plan_(std::move(plan)),
      churn_(std::move(churn)),
      drift_(std::move(drift)),
      rng_(seed),
      crash_fired_(plan_.crashes.size(), false) {
  for (const DriftSpec& spec : drift_.specs) {
    drifted_.push_back({spec.station, spec.make_clock(), false});
  }
}

void FaultInjector::install(net::BroadcastChannel& channel) {
  slot_x_ = channel.phy().slot_x;
  channel.set_interceptor(this);
  channel.add_observer(*this);
}

std::int64_t FaultInjector::clean_prefix_end() const {
  std::int64_t first = INT64_MAX;
  if (const std::int64_t f = plan_.first_fault_observation(); f >= 0) {
    first = std::min(first, f);
  }
  if (const std::int64_t c = churn_.first_observation(); c >= 0) {
    first = std::min(first, c);
  }
  if (first_drift_effect_ >= 0) {
    first = std::min(first, first_drift_effect_);
  }
  return first == INT64_MAX ? -1 : first;
}

bool FaultInjector::corrupt_slot(std::int64_t slot_index) {
  bool corrupt = false;
  for (const SymmetricNoiseFault& s : plan_.symmetric) {
    if (slot_index < s.from_observation || slot_index >= s.to_observation) {
      continue;
    }
    // Draw for every covering window so the stream stays aligned with the
    // plan regardless of earlier outcomes.
    if (rng_.bernoulli(s.prob)) {
      corrupt = true;
    }
  }
  if (corrupt) {
    ++stats_.symmetric_corruptions;
    HRTDM_COUNT("fault.symmetric_corruptions");
  }
  return corrupt;
}

net::SlotObservation FaultInjector::deliver_to(
    int station_id, std::int64_t slot_index,
    const net::SlotObservation& obs) {
  net::SlotObservation heard = obs;
  for (const AsymmetricFault& a : plan_.asymmetric) {
    if (a.station != station_id || slot_index < a.from_observation ||
        slot_index >= a.to_observation) {
      continue;
    }
    if (!rng_.bernoulli(a.prob)) {
      continue;
    }
    switch (a.kind) {
      case AsymmetricKind::kCorruptReceive:
        // Receiver-local CRC failure: the transmission is heard, but as
        // garbage — indistinguishable from a collision of equal length.
        if (heard.kind == net::SlotKind::kSuccess) {
          heard.kind = net::SlotKind::kCollision;
          heard.frame.reset();
          heard.arbitration = false;
          ++stats_.asymmetric_corruptions;
          HRTDM_COUNT("fault.asymmetric_corruptions");
        }
        break;
      case AsymmetricKind::kMissReceive:
        // Deaf receiver: carrier sense missed the activity entirely.
        if (heard.kind != net::SlotKind::kSilence) {
          heard.kind = net::SlotKind::kSilence;
          heard.frame.reset();
          heard.arbitration = false;
          heard.in_burst = false;
          ++stats_.asymmetric_misses;
          HRTDM_COUNT("fault.asymmetric_misses");
        }
        break;
    }
  }
  // Drift mis-sampling runs after the scripted asymmetric faults so the
  // rng_ draw order is untouched (drift draws nothing). A station whose
  // phase error has reached x/2 samples the slot boundary on the wrong
  // side: a successful frame straddles its misplaced boundary and fails
  // the CRC, so it hears a collision of the same duration. Collisions and
  // silence carry no frame to garble and pass through.
  if (!drifted_.empty()) {
    HRTDM_EXPECT(slot_x_.ns() > 0,
                 "install() must run before drifted delivery");
  }
  for (const DriftedStation& d : drifted_) {
    if (d.station != station_id ||
        !d.clock.missamples(heard.slot_start, slot_x_)) {
      continue;
    }
    if (heard.kind == net::SlotKind::kSuccess) {
      heard.kind = net::SlotKind::kCollision;
      heard.frame.reset();
      heard.arbitration = false;
      ++stats_.drift_missamples;
      HRTDM_COUNT("fault.drift_missamples");
      if (first_drift_effect_ < 0) {
        first_drift_effect_ = slot_index;
      }
    }
  }
  return heard;
}

void FaultInjector::on_slot(const net::SlotRecord& record) {
  const std::int64_t index = observations_seen_++;
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    if (crash_fired_[i] || plan_.crashes[i].at_observation > index) {
      continue;
    }
    crash_fired_[i] = true;
    ++stats_.crashes_fired;
    HRTDM_COUNT("fault.crashes_fired");
    HRTDM_EXPECT(static_cast<bool>(crash_hook_),
                 "a crash directive fired but no crash hook is set");
    crash_hook_(plan_.crashes[i].station);
  }
  while (churn_next_ < churn_.events.size() &&
         churn_.events[churn_next_].at_observation <= index) {
    const ChurnEvent& e = churn_.events[churn_next_++];
    HRTDM_EXPECT(static_cast<bool>(churn_hook_),
                 "a churn directive fired but no churn hook is set");
    if (e.kind == ChurnKind::kLeave) {
      ++stats_.churn_leaves;
      HRTDM_COUNT("fault.churn_leaves");
    } else {
      ++stats_.churn_joins;
      HRTDM_COUNT("fault.churn_joins");
    }
    churn_hook_(e.station, e.kind);
  }
  // The resync rule: while a drifted station sits in the listen-only
  // resync state (watchdog quarantine or churn rejoin), its clock is
  // re-anchored against the channel it is listening to — phase returns to
  // zero, the residual frequency error stays.
  for (DriftedStation& d : drifted_) {
    const bool resyncing = sync_probe_ && sync_probe_(d.station);
    if (resyncing) {
      d.clock.resync(record.end);
      if (!d.resyncing) {
        ++stats_.drift_resyncs;
        HRTDM_COUNT("fault.drift_resyncs");
      }
    }
    d.resyncing = resyncing;
  }
}

}  // namespace hrtdm::fault
