#include "fault/fault_injector.hpp"

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hrtdm::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      rng_(seed),
      crash_fired_(plan_.crashes.size(), false) {}

void FaultInjector::install(net::BroadcastChannel& channel) {
  channel.set_interceptor(this);
  channel.add_observer(*this);
}

bool FaultInjector::corrupt_slot(std::int64_t slot_index) {
  bool corrupt = false;
  for (const SymmetricNoiseFault& s : plan_.symmetric) {
    if (slot_index < s.from_observation || slot_index >= s.to_observation) {
      continue;
    }
    // Draw for every covering window so the stream stays aligned with the
    // plan regardless of earlier outcomes.
    if (rng_.bernoulli(s.prob)) {
      corrupt = true;
    }
  }
  if (corrupt) {
    ++stats_.symmetric_corruptions;
    HRTDM_COUNT("fault.symmetric_corruptions");
  }
  return corrupt;
}

net::SlotObservation FaultInjector::deliver_to(
    int station_id, std::int64_t slot_index,
    const net::SlotObservation& obs) {
  net::SlotObservation heard = obs;
  for (const AsymmetricFault& a : plan_.asymmetric) {
    if (a.station != station_id || slot_index < a.from_observation ||
        slot_index >= a.to_observation) {
      continue;
    }
    if (!rng_.bernoulli(a.prob)) {
      continue;
    }
    switch (a.kind) {
      case AsymmetricKind::kCorruptReceive:
        // Receiver-local CRC failure: the transmission is heard, but as
        // garbage — indistinguishable from a collision of equal length.
        if (heard.kind == net::SlotKind::kSuccess) {
          heard.kind = net::SlotKind::kCollision;
          heard.frame.reset();
          heard.arbitration = false;
          ++stats_.asymmetric_corruptions;
          HRTDM_COUNT("fault.asymmetric_corruptions");
        }
        break;
      case AsymmetricKind::kMissReceive:
        // Deaf receiver: carrier sense missed the activity entirely.
        if (heard.kind != net::SlotKind::kSilence) {
          heard.kind = net::SlotKind::kSilence;
          heard.frame.reset();
          heard.arbitration = false;
          heard.in_burst = false;
          ++stats_.asymmetric_misses;
          HRTDM_COUNT("fault.asymmetric_misses");
        }
        break;
    }
  }
  return heard;
}

void FaultInjector::on_slot(const net::SlotRecord& record) {
  (void)record;
  const std::int64_t index = observations_seen_++;
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    if (crash_fired_[i] || plan_.crashes[i].at_observation > index) {
      continue;
    }
    crash_fired_[i] = true;
    ++stats_.crashes_fired;
    HRTDM_COUNT("fault.crashes_fired");
    HRTDM_EXPECT(static_cast<bool>(crash_hook_),
                 "a crash directive fired but no crash hook is set");
    crash_hook_(plan_.crashes[i].station);
  }
}

}  // namespace hrtdm::fault
