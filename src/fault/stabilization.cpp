#include "fault/stabilization.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/xi.hpp"
#include "check/conformance.hpp"
#include "fault/campaign.hpp"
#include "net/channel.hpp"
#include "obs/registry.hpp"
#include "traffic/message.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

using core::DdcrStation;
using util::Duration;
using util::SimTime;

namespace {

/// Payload size used by the scramble frames, the garbage queue entries and
/// the verification workload (matches the campaign harness traffic).
constexpr std::int64_t kMsgBits = 100;

}  // namespace

StabilizationOptions::StabilizationOptions() {
  phy.slot_x = Duration::nanoseconds(100);
  phy.psi_bps = 1e9;
  phy.overhead_bits = 0;
  ddcr.m_time = 2;
  ddcr.F = 16;
  ddcr.m_static = 2;
  ddcr.q = 16;
  ddcr.class_width_c = Duration::microseconds(1);
  ddcr.alpha = Duration::nanoseconds(0);
  ddcr.max_empty_tts = 2;  // bounded silence streaks: rejoin-capable
}

std::int64_t stabilization_bound_observations(
    const StabilizationOptions& options) {
  core::DdcrConfig config = options.ddcr;
  const std::int64_t z = options.stations;
  const Duration x = options.phy.slot_x;
  HRTDM_EXPECT(z >= 2 && x.ns() > 0, "bound needs stations and a slot time");

  // Worst-case cost of one complete collision-resolution epoch with all z
  // stations active: the triggering collision, a full time-tree search
  // (xi non-transmission slots, P1 worst case, plus the resolving slot),
  // a full static-tree tie-break per station, and z transmissions.
  const std::int64_t n_time = util::ilog_floor(config.m_time, config.F);
  const std::int64_t n_static = util::ilog_floor(config.m_static, config.q);
  const std::int64_t xi_time =
      analysis::XiExactTable(config.m_time, static_cast<int>(n_time))
          .xi(std::min<std::int64_t>(z, config.F));
  const std::int64_t xi_static =
      analysis::XiExactTable(config.m_static, static_cast<int>(n_static))
          .xi(std::min<std::int64_t>(z, config.q));
  const std::int64_t tx_slots =
      std::max<std::int64_t>(1, options.phy.tx_time(kMsgBits).ceil_div(x));
  const std::int64_t per_epoch =
      1 + (xi_time + 1) + z * (xi_static + 1) + z * tx_slots;

  const std::int64_t rejoin_quiet = config.resync_silence_threshold();
  const std::int64_t frame_slots = config.horizon().ceil_div(x);
  const std::int64_t spacing_slots = options.arrival_spacing.ceil_div(x);
  const std::int64_t garbage =
      z * static_cast<std::int64_t>(options.max_garbage_messages);

  // The stated bound, in channel observations from the (corrupted) start:
  //  - 2 frames of real time make every garbage deadline (drawn below twice
  //    the horizon) schedulable: f(reft, msg) <= F - 1 once reft has
  //    advanced past DM - cF. The wait is global — time advances for every
  //    station at once — so it is paid once, not per message.
  //  - each garbage message then drains within one worst-case epoch plus
  //    its own transmission;
  //  - each station may burn one watchdog quarantine on its scrambled state
  //    and needs the quiet-period certificate plus one epoch to re-enter;
  //  - each forced reconvergence round costs at most one worst-case epoch,
  //    one rejoin quiet period (a round may surface a stale replica), the
  //    arrival stagger, and the harness's 64-slot chunking slack;
  //  - one final frame + quiet period of settling slack.
  // Deliberately generous: an empirical contract with analytic structure
  // (the soak asserts every observed convergence stays under it), not a
  // derived worst case.
  return 2 * frame_slots + garbage * (per_epoch + tx_slots) +
         z * (rejoin_quiet + per_epoch) +
         static_cast<std::int64_t>(options.max_recovery_rounds) *
             (per_epoch + rejoin_quiet + spacing_slots + 66) +
         frame_slots + rejoin_quiet;
}

StabilizationResult run_stabilization(const StabilizationOptions& options) {
  HRTDM_EXPECT(options.stations >= 2,
               "self-stabilization needs >= 2 stations to contend");
  HRTDM_EXPECT(options.max_scramble_observations >= 0 &&
                   options.max_garbage_messages >= 0,
               "scramble strengths cannot be negative");
  HRTDM_EXPECT(options.verify_messages_per_station >= 1,
               "the clean-suffix verdict needs a verification workload");
  core::DdcrConfig config = options.ddcr;
  if (config.static_indices.empty()) {
    config.static_indices =
        core::DdcrConfig::one_index_per_source(options.stations, config.q);
  }
  config.validate(options.stations);
  // Scrambled replicas recover through watchdog quarantines; the
  // quiet-period certificate must be live-lock free.
  config.validate_rejoinable();
  HRTDM_EXPECT(config.alpha + options.relative_deadline < config.horizon(),
               "verification deadlines must fit the scheduling horizon cF");

  sim::Simulator simulator;
  net::BroadcastChannel channel(simulator, options.phy,
                                net::CollisionMode::kDestructive);
  std::vector<std::unique_ptr<DdcrStation>> stations;
  for (int s = 0; s < options.stations; ++s) {
    stations.push_back(std::make_unique<DdcrStation>(
        s, config, config.static_indices[static_cast<std::size_t>(s)]));
    channel.attach(*stations.back());
  }

  SafetyChecker safety;
  auto consistent = [&stations] {
    bool have_reference = false;
    std::uint64_t reference = 0;
    for (const auto& station : stations) {
      if (!station->synced()) {
        return false;
      }
      const std::uint64_t digest = station->protocol_digest();
      if (!have_reference) {
        reference = digest;
        have_reference = true;
      } else if (digest != reference) {
        return false;
      }
    }
    return true;
  };
  ReconvergenceProbe probe(consistent);
  check::ConformanceRecorder recorder;
  channel.add_observer(safety);
  channel.add_observer(probe);
  if (options.conformance_check) {
    channel.add_observer(recorder);
  }

  StabilizationResult result;
  result.bound_observations = stabilization_bound_observations(options);

  // --- Phase A: scramble -------------------------------------------------
  // Before the channel starts, drive every station to an arbitrary
  // *reachable* protocol state by replaying a fabricated observation
  // history into its public observe() entry point: random mixtures of
  // silence, collisions and foreign successes leave the tree engines, mode,
  // reft / carried compressed-time references and watchdog streaks in
  // random positions (including mid-quarantine — a fabricated impossible
  // success trips the watchdog exactly as a real one would). Then corrupt
  // the EDF queue with garbage messages (deadlines up to twice the
  // horizon) and, with probability 1/4, drop the station into a partially
  // complete resync. Seeded via axis_seed(.., kScramble), so pinned
  // campaigns never observe these draws.
  const Duration x = options.phy.slot_x;
  util::SplitMix64 scramble_mix(axis_seed(options.seed, CampaignAxis::kScramble));
  std::int64_t fabricated_uid = 90'000'000;
  std::int64_t garbage_uid = 95'000'000;
  for (int s = 0; s < options.stations; ++s) {
    DdcrStation* station = stations[static_cast<std::size_t>(s)].get();
    util::Rng rng(scramble_mix.next());
    const std::int64_t n_obs =
        rng.uniform_i64(0, options.max_scramble_observations);
    SimTime t;
    for (std::int64_t i = 0; i < n_obs; ++i) {
      net::SlotObservation obs;
      obs.slot_start = t;
      obs.slot_end = t + x;
      const std::int64_t kind = rng.uniform_i64(0, 9);
      if (kind < 3) {
        obs.kind = net::SlotKind::kSilence;
      } else if (kind < 7) {
        obs.kind = net::SlotKind::kCollision;
      } else {
        obs.kind = net::SlotKind::kSuccess;
        net::Frame frame;
        // Never the station's own id: a station removes its *own* delivered
        // frame from its queue, and these frames were never queued.
        frame.source = static_cast<int>(
            (s + 1 + rng.uniform_i64(0, options.stations - 2)) %
            options.stations);
        frame.msg_uid = fabricated_uid++;
        frame.class_id = 0;
        frame.l_bits = kMsgBits;
        frame.enqueue_time = t;
        frame.absolute_deadline =
            t + Duration::nanoseconds(
                    rng.uniform_i64(1, config.horizon().ns() - 1));
        obs.frame = frame;
        obs.slot_end = t + std::max(options.phy.tx_time(kMsgBits), x);
      }
      station->observe(obs);
      t = obs.slot_end;
      ++result.scrambled_observations;
    }
    const std::int64_t n_garbage =
        rng.uniform_i64(0, options.max_garbage_messages);
    for (std::int64_t j = 0; j < n_garbage; ++j) {
      traffic::Message msg;
      msg.uid = garbage_uid++;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = kMsgBits;
      msg.arrival = SimTime();
      msg.absolute_deadline =
          SimTime() +
          Duration::nanoseconds(rng.uniform_i64(1, 2 * config.horizon().ns()));
      station->enqueue(msg);
      ++result.garbage_messages;
    }
    if (rng.bernoulli(0.25)) {
      station->reset_for_rejoin();  // corrupted epoch counter / mid-resync
    }
  }

  // --- Phase B: recover --------------------------------------------------
  // No injector, no scripted faults: from here the run is clean, and the
  // network must converge on its own. Structure mirrors the campaign
  // harness's self-heal phases: drain the (garbage) backlog and give
  // quarantined replicas their quiet certificate, then force reconvergence
  // epochs until every protocol digest agrees.
  auto queued = [&stations] {
    std::int64_t total = 0;
    for (const auto& station : stations) {
      total += static_cast<std::int64_t>(station->queue().size());
    }
    return total;
  };
  auto all_synced = [&stations] {
    for (const auto& station : stations) {
      if (!station->synced()) {
        return false;
      }
    }
    return true;
  };

  channel.start();
  const Duration step = x * 64;
  const SimTime hard_cap = SimTime() + x * options.recovery_slots_cap;

  sim::run_chunked(simulator, step, hard_cap, [&queued, &all_synced] {
    return queued() > 0 || !all_synced();
  });

  int rounds = 0;
  std::int64_t round_uid = 2'000'000;
  std::int64_t generated = 0;
  while (simulator.now() < hard_cap &&
         !(queued() == 0 && all_synced() && consistent())) {
    if (rounds >= options.max_recovery_rounds) {
      break;
    }
    ++rounds;
    const SimTime burst_at = simulator.now() + x * 2;
    for (int s = 0; s < options.stations; ++s) {
      traffic::Message msg;
      msg.uid = round_uid++;
      msg.class_id = s;
      msg.source = s;
      msg.l_bits = kMsgBits;
      msg.arrival = burst_at;
      msg.absolute_deadline = burst_at + options.relative_deadline;
      DdcrStation* station = stations[static_cast<std::size_t>(s)].get();
      simulator.schedule_at(
          burst_at, [station, msg] { station->enqueue(msg); }, "arrival");
      ++generated;
    }
    simulator.run_until(simulator.now() + step);
    sim::run_chunked(simulator, step, hard_cap, [&queued, &all_synced] {
      return queued() > 0 || !all_synced();
    });
  }
  result.recovery_rounds_used = rounds;
  result.reconverged = queued() == 0 && all_synced() && consistent();

  // --- Phase C: verify the clean suffix ----------------------------------
  // The quiet boundary: queues drained, every station synced, digests
  // equal. Everything delivered from here on is fresh verification traffic,
  // so the suffix must pass the *full* differential conformance check —
  // placement-model bounds, EDF-oracle sweep and all.
  const std::int64_t suffix_begin = channel.observations_delivered();
  std::int64_t boundary_watchdog = 0;
  for (const auto& station : stations) {
    boundary_watchdog += station->counters().desyncs_detected +
                         station->counters().quarantines +
                         station->counters().rejoins;
  }
  std::vector<traffic::Message> verify_messages;
  if (result.reconverged) {
    const SimTime base = simulator.now() + x * 2;
    for (int k = 0; k < options.verify_messages_per_station; ++k) {
      const SimTime arrival = base + options.arrival_spacing * k;
      for (int s = 0; s < options.stations; ++s) {
        traffic::Message msg;
        msg.uid = 97'000'000 + static_cast<std::int64_t>(s) * 10'000 + k;
        msg.class_id = s;
        msg.source = s;
        msg.l_bits = kMsgBits;
        msg.arrival = arrival;
        msg.absolute_deadline = arrival + options.relative_deadline;
        DdcrStation* station = stations[static_cast<std::size_t>(s)].get();
        simulator.schedule_at(
            arrival, [station, msg] { station->enqueue(msg); }, "arrival");
        verify_messages.push_back(msg);
      }
    }
    simulator.run_until(simulator.now() + step);
    sim::run_chunked(simulator, step, hard_cap, [&queued, &all_synced] {
      return queued() > 0 || !all_synced();
    });
  }
  channel.stop();

  result.safety_ok = safety.ok();
  result.safety_violations = safety.violations();
  for (const auto& station : stations) {
    result.desyncs_detected += station->counters().desyncs_detected;
    result.quarantines += station->counters().quarantines;
    result.rejoins += station->counters().rejoins;
  }
  const std::int64_t last_divergent = probe.last_divergent_observation();
  result.convergence_observations = last_divergent + 1;
  const std::int64_t frame_slots = config.horizon().ceil_div(x);
  result.convergence_frames =
      (result.convergence_observations + frame_slots - 1) / frame_slots;
  result.within_bound =
      result.convergence_observations <= result.bound_observations;

  if (options.conformance_check && result.reconverged) {
    std::int64_t end_watchdog = 0;
    for (const auto& station : stations) {
      end_watchdog += station->counters().desyncs_detected +
                      station->counters().quarantines +
                      station->counters().rejoins;
    }
    check::ConformanceInput input;
    input.messages = verify_messages;
    input.phy = options.phy;
    input.collision_mode = net::CollisionMode::kDestructive;
    input.ddcr = config;
    input.protocol_is_ddcr = true;
    input.clean_suffix_begin = suffix_begin;
    // The placement-model bounds require replica agreement over the judged
    // window: clean iff no watchdog event fired after the boundary.
    input.replicas_clean = end_watchdog == boundary_watchdog;
    result.conformance = check::ConformanceComparator{}.check(input, recorder);
    result.suffix_checked = result.conformance.checked;
    result.suffix_ok = result.conformance.ok;
  }

  (void)generated;
  HRTDM_COUNT("fault.stabilization_runs");
  if (result.passed()) {
    HRTDM_COUNT("fault.stabilization_passed");
  }
  HRTDM_OBSERVE("fault.stabilization_convergence_obs",
                result.convergence_observations);
  HRTDM_OBSERVE("fault.stabilization_recovery_rounds",
                result.recovery_rounds_used);
  return result;
}

}  // namespace hrtdm::fault
