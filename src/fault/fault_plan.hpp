// Deterministic, scripted fault plans (docs/FAULTS.md).
//
// A FaultPlan is a set of directives indexed by *observation number* — the
// channel's delivery counter, the one deterministic time axis shared by
// contention slots and burst continuations. Three fault classes:
//
//  - crash:      a station loses all protocol state at a given observation
//                and re-enters through the listen-only quiet-period rejoin
//                (DdcrStation::reset_for_rejoin). Violates liveness of one
//                replica; the broadcast property is preserved.
//  - symmetric:  a window in which each successful transmission is destroyed
//                with probability p, seen as a collision by *everyone* —
//                channel noise that keeps the broadcast property.
//  - asymmetric: a window in which one chosen station's receive path lies to
//                it — a success is heard as a collision (CRC error) or as
//                silence (missed carrier sense) while the rest of the
//                network hears the truth. This is the fault class the
//                paper's correctness proofs exclude: it breaks the
//                identical-slot-history assumption and can silently diverge
//                the victim's replica. The divergence watchdog exists to
//                catch it.
#pragma once

#include <cstdint>
#include <vector>

namespace hrtdm::fault {

/// How an asymmetric receive fault rewrites the victim's observation.
enum class AsymmetricKind {
  /// kSuccess is heard as a collision of the same duration (receiver-local
  /// CRC failure). The victim's tree engines descend or start a phantom
  /// epoch while everyone else advances past a success.
  kCorruptReceive,
  /// kSuccess or kCollision is heard as silence (missed carrier sense /
  /// deaf receiver). The victim prunes subtrees others saw resolve.
  kMissReceive,
};

struct CrashFault {
  std::int64_t at_observation = 0;  ///< fires right after this delivery
  int station = 0;
};

struct SymmetricNoiseFault {
  std::int64_t from_observation = 0;  ///< inclusive
  std::int64_t to_observation = 0;    ///< exclusive
  double prob = 0.0;                  ///< per-success destruction chance
};

struct AsymmetricFault {
  std::int64_t from_observation = 0;  ///< inclusive
  std::int64_t to_observation = 0;    ///< exclusive
  int station = 0;                    ///< the victim
  AsymmetricKind kind = AsymmetricKind::kCorruptReceive;
  double prob = 1.0;  ///< per-qualifying-observation rewrite chance
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<SymmetricNoiseFault> symmetric;
  std::vector<AsymmetricFault> asymmetric;

  bool empty() const {
    return crashes.empty() && symmetric.empty() && asymmetric.empty();
  }
  bool has_crashes() const { return !crashes.empty(); }

  /// Last observation index at which any directive can still act (-1 for an
  /// empty plan). Harnesses measure reconvergence from here.
  std::int64_t last_fault_observation() const;

  /// First observation index at which any directive can act (-1 for an
  /// empty plan). Observations strictly before it form the clean prefix on
  /// which the full differential conformance check is sound.
  std::int64_t first_fault_observation() const;

  /// Station ids in range, windows well-formed, probabilities in [0, 1].
  void validate(int station_count) const;

  /// A seeded random mixture of all three fault classes scattered over
  /// [0, window_observations) — the campaign generator. Deterministic per
  /// seed.
  static FaultPlan random_mix(int station_count,
                              std::int64_t window_observations, int crashes,
                              int symmetric_bursts, double symmetric_prob,
                              int asymmetric_bursts, double asymmetric_prob,
                              std::uint64_t seed);
};

}  // namespace hrtdm::fault
