#include "fault/drift_plan.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hrtdm::fault {

void DriftPlan::validate(int station_count) const {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DriftSpec& d = specs[i];
    HRTDM_EXPECT(d.station >= 0 && d.station < station_count,
                 "drift station id out of range");
    HRTDM_EXPECT(d.rate_ppm == 0.0 || d.phase_bound.ns() > 0,
                 "a drifting clock needs a positive phase bound");
    HRTDM_EXPECT(d.phase_bound.ns() >= 0, "phase bound cannot be negative");
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      HRTDM_EXPECT(specs[j].station != d.station,
                   "duplicate drift spec for one station");
    }
  }
}

bool DriftPlan::can_missample(util::Duration slot_x) const {
  for (const DriftSpec& d : specs) {
    if (d.make_clock().sup_phase() * 2 >= slot_x) {
      return true;
    }
  }
  return false;
}

DriftPlan DriftPlan::uniform(int station_count, int drifted,
                             util::Duration phase_bound, double rate_ppm,
                             std::uint64_t seed) {
  HRTDM_EXPECT(station_count >= 1, "need at least one station");
  HRTDM_EXPECT(drifted >= 0 && drifted <= station_count,
               "drifted station count out of range");
  util::Rng rng(seed);
  const std::vector<std::int64_t> order = rng.permutation(station_count);
  DriftPlan plan;
  for (int i = 0; i < drifted; ++i) {
    DriftSpec d;
    d.station = static_cast<int>(order[static_cast<std::size_t>(i)]);
    d.initial_phase = util::Duration::nanoseconds(
        rng.uniform_i64(-phase_bound.ns(), phase_bound.ns()));
    d.rate_ppm = rng.bernoulli(0.5) ? rate_ppm : -rate_ppm;
    d.phase_bound = phase_bound;
    plan.specs.push_back(d);
  }
  plan.validate(station_count);
  return plan;
}

}  // namespace hrtdm::fault
