// ChannelObserver -> EventTracer adapter: turns every resolved channel
// slot into a complete ('X') event on the channel's own trace track
// (pid = channel id, tid = 0), next to the per-station protocol tracks
// the DdcrStation hooks populate on tid = station + 1.
//
// Header-only on purpose: obs must not link against net (util links obs,
// net links util), so the only net dependency lives in whoever includes
// this adapter — core and bench code that already links both.
#pragma once

#include "net/channel.hpp"
#include "obs/event_tracer.hpp"

namespace hrtdm::obs {

class ChannelTracer final : public net::ChannelObserver {
 public:
  ChannelTracer(EventTracer& tracer, int channel_id)
      : tracer_(tracer), pid_(channel_id) {
    tracer_.set_process_name(pid_, "channel " + std::to_string(channel_id));
    tracer_.set_thread_name(pid_, 0, "channel");
  }

  /// A fast-forwarded idle gap renders as one merged span instead of
  /// thousands of identical per-slot silence spans — same covered interval,
  /// far smaller trace.
  void on_idle_gap(std::int64_t slots, net::SimTime first_start,
                   util::Duration slot_x) override {
    if (!tracer_.enabled() || slots <= 0) {
      return;
    }
    tracer_.complete(pid_, 0, first_start.ns(), (slot_x * slots).ns(), "idle",
                     "contenders,source,bits", 0, -1, 0);
  }

  void on_slot(const net::SlotRecord& record) override {
    // Registry counters for these slots live in BroadcastChannel::deliver
    // (they populate whether or not a tracer is installed); this adapter
    // only renders the slot onto the Perfetto channel track.
    const char* name = "silence";
    switch (record.kind) {
      case net::SlotKind::kSilence:
        name = "silence";
        break;
      case net::SlotKind::kCollision:
        name = record.arbitration ? "arbitration" : "collision";
        break;
      case net::SlotKind::kSuccess:
        name = record.in_burst ? "burst" : "tx";
        break;
    }
    if (!tracer_.enabled()) {
      return;
    }
    const std::int64_t source =
        record.frame.has_value() ? record.frame->source : -1;
    const std::int64_t bits = record.frame.has_value() ? record.frame->l_bits : 0;
    tracer_.complete(pid_, 0, record.start.ns(),
                     record.end.ns() - record.start.ns(), name,
                     "contenders,source,bits", record.contenders, source, bits);
  }

 private:
  EventTracer& tracer_;
  std::int32_t pid_;
};

}  // namespace hrtdm::obs
