// Structured protocol event tracer with Chrome trace-event JSON export
// (loadable in Perfetto / chrome://tracing — see docs/OBSERVABILITY.md).
//
// Events land in a bounded ring buffer (oldest evicted first) so tracing a
// long run costs bounded memory; `dropped()` reports the eviction count.
// Only 'X' (complete, with duration), 'i' (instant) and counter-free
// metadata events are emitted — never 'B'/'E' begin/end pairs, whose
// nesting would break as soon as the ring evicts one half of a pair.
//
// Track model: pid = channel id ("channel <id>" process), tid 0 = the
// channel's slot track, tid s+1 = station s's protocol track. Auxiliary
// producers (the thread pool) use their own pid.
//
// Dependency-free (std only): the rest of the tree links this without
// cycles. The ChannelObserver adapter lives in channel_tracer.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hrtdm::obs {

/// One trace event. `name`/`cat`/`arg_names` must point at storage that
/// outlives the tracer — string literals in practice — so the ring stays a
/// flat POD array with no per-event allocation.
struct TraceEvent {
  char phase = 'i';    ///< 'X' complete, 'i' instant
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  ///< 'X' only
  const char* name = "";
  const char* cat = "protocol";
  /// Comma-separated argument names ("lo,size,leaves"); empty = no args.
  const char* arg_names = "";
  std::int64_t args[3] = {0, 0, 0};
};

class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  /// Cheap global kill switch: record() is a relaxed load + branch when
  /// disabled, so hooks can stay installed unconditionally.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(const TraceEvent& ev);

  /// Convenience: instant event ('i') at `ts_ns`.
  void instant(std::int32_t pid, std::int32_t tid, std::int64_t ts_ns,
               const char* name, const char* arg_names = "",
               std::int64_t a0 = 0, std::int64_t a1 = 0, std::int64_t a2 = 0);

  /// Convenience: complete span ('X') covering [ts_ns, ts_ns + dur_ns].
  void complete(std::int32_t pid, std::int32_t tid, std::int64_t ts_ns,
                std::int64_t dur_ns, const char* name,
                const char* arg_names = "", std::int64_t a0 = 0,
                std::int64_t a1 = 0, std::int64_t a2 = 0);

  /// Track naming (Perfetto metadata events; kept outside the ring so
  /// labels survive arbitrarily long runs).
  void set_process_name(std::int32_t pid, const std::string& name);
  void set_thread_name(std::int32_t pid, std::int32_t tid,
                       const std::string& name);

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events evicted by the ring (total recorded - retained).
  std::int64_t dropped() const;

  /// Chrome trace-event JSON: {"displayTimeUnit":"ns","traceEvents":[...]}.
  /// Timestamps are emitted in microseconds (the format's unit) with ns
  /// precision as fractional digits.
  std::string chrome_json() const;

  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Drops all events and the dropped() count; track names survive.
  void clear();

  /// Process-wide tracer used by default wiring; enabled automatically
  /// when HRTDM_TRACE_OUT / set_trace_out() configure an output path.
  static EventTracer& global();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;   ///< next write position
  std::int64_t total_ = 0; ///< events ever recorded
  std::atomic<bool> enabled_{true};
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> thread_names_;
};

/// Trace output path: HRTDM_TRACE_OUT env var (read once) unless
/// set_trace_out() overrode it. Empty = tracing to file disabled.
std::string trace_out_path();

/// Programmatic override (e.g. from a --trace-out CLI flag). Enables the
/// global tracer when `path` is non-empty.
void set_trace_out(const std::string& path);

/// Writes the global tracer to trace_out_path() if configured. Returns the
/// path written, or "" when no path is configured or the write failed.
std::string write_global_trace();

}  // namespace hrtdm::obs
