#include "obs/registry.hpp"

#include <algorithm>

namespace hrtdm::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = exp2_bounds();
  }
  // Bounds must be strictly increasing for lower_bound bucketing; repair a
  // bad spec instead of aborting — observability must never take the
  // protocol down.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::int64_t> Histogram::exp2_bounds(int buckets) {
  if (buckets < 2) {
    buckets = 2;
  }
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(buckets));
  bounds.push_back(0);
  std::int64_t b = 1;
  for (int i = 1; i < buckets && b > 0; ++i) {
    bounds.push_back(b);
    b <<= 1;
  }
  return bounds;
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe_n(std::int64_t v, std::int64_t n) {
  if (n <= 0) {
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(v * n, std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  return histogram(name, Histogram::exp2_bounds());
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = hs.count > 0 ? h->min() : 0;
    hs.max = hs.count > 0 ? h->max() : 0;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

Registry& Registry::global() {
  // Heap singleton: never destroyed, so macro-cached references stay valid
  // through static destruction order.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace hrtdm::obs
