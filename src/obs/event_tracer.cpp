#include "obs/event_tracer.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace hrtdm::obs {

namespace {

// JSON string escape for track names (event names are literals we control,
// but process/thread names may carry arbitrary text).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ts is microseconds in the trace-event format; print ns-precision
// fractional microseconds deterministically from the integer ns value.
void append_ts_us(std::string& out, std::int64_t ns) {
  char buf[48];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t mag =
      ns < 0 ? 0ull - static_cast<std::uint64_t>(ns)
             : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof(buf), "%s%llu.%03llu", sign,
                static_cast<unsigned long long>(mag / 1000),
                static_cast<unsigned long long>(mag % 1000));
  out += buf;
}

void append_args(std::string& out, const TraceEvent& ev) {
  if (ev.arg_names[0] == '\0') {
    return;
  }
  out += ",\"args\":{";
  const char* p = ev.arg_names;
  int idx = 0;
  bool first = true;
  while (*p != '\0' && idx < 3) {
    const char* start = p;
    while (*p != '\0' && *p != ',') {
      ++p;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out.append(start, static_cast<std::size_t>(p - start));
    out += "\":";
    out += std::to_string(ev.args[idx]);
    ++idx;
    if (*p == ',') {
      ++p;
    }
  }
  out += '}';
}

}  // namespace

EventTracer::EventTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void EventTracer::record(const TraceEvent& ev) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

void EventTracer::instant(std::int32_t pid, std::int32_t tid,
                          std::int64_t ts_ns, const char* name,
                          const char* arg_names, std::int64_t a0,
                          std::int64_t a1, std::int64_t a2) {
  TraceEvent ev;
  ev.phase = 'i';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = ts_ns;
  ev.name = name;
  ev.arg_names = arg_names;
  ev.args[0] = a0;
  ev.args[1] = a1;
  ev.args[2] = a2;
  record(ev);
}

void EventTracer::complete(std::int32_t pid, std::int32_t tid,
                           std::int64_t ts_ns, std::int64_t dur_ns,
                           const char* name, const char* arg_names,
                           std::int64_t a0, std::int64_t a1, std::int64_t a2) {
  TraceEvent ev;
  ev.phase = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.name = name;
  ev.arg_names = arg_names;
  ev.args[0] = a0;
  ev.args[1] = a1;
  ev.args[2] = a2;
  record(ev);
}

void EventTracer::set_process_name(std::int32_t pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = name;
}

void EventTracer::set_thread_name(std::int32_t pid, std::int32_t tid,
                                  const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[{pid, tid}] = name;
}

std::vector<TraceEvent> EventTracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // head_ is the oldest slot once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::int64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto retained = static_cast<std::int64_t>(ring_.size());
  return total_ > retained ? total_ - retained : 0;
}

std::string EventTracer::chrome_json() const {
  const auto evs = events();
  std::map<std::int32_t, std::string> pnames;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> tnames;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pnames = process_names_;
    tnames = thread_names_;
  }

  std::string out;
  out.reserve(evs.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out += ',';
    }
    first = false;
  };
  for (const auto& [pid, name] : pnames) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += json_escape(name);
    out += "\"}}";
  }
  for (const auto& [key, name] : tnames) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(key.first);
    out += ",\"tid\":";
    out += std::to_string(key.second);
    out += ",\"args\":{\"name\":\"";
    out += json_escape(name);
    out += "\"}}";
  }
  for (const auto& ev : evs) {
    sep();
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"name\":\"";
    out += ev.name;  // literal, never needs escaping
    out += "\",\"cat\":\"";
    out += ev.cat;
    out += "\",\"pid\":";
    out += std::to_string(ev.pid);
    out += ",\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    append_ts_us(out, ev.ts_ns);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      append_ts_us(out, ev.dur_ns);
    }
    if (ev.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant marker
    }
    append_args(out, ev);
    out += '}';
  }
  out += "]}";
  return out;
}

bool EventTracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  f << chrome_json();
  return static_cast<bool>(f);
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

EventTracer& EventTracer::global() {
  // Heap singleton (never destroyed): hooks may fire during static
  // destruction of other objects.
  static EventTracer* instance = [] {
    auto* t = new EventTracer();
    // Only trace when an output path is configured; otherwise every hook
    // is a relaxed load + branch.
    t->set_enabled(!trace_out_path().empty());
    return t;
  }();
  return *instance;
}

namespace {
std::mutex g_trace_path_mu;
std::string g_trace_path;
bool g_trace_path_init = false;
}  // namespace

std::string trace_out_path() {
  std::lock_guard<std::mutex> lock(g_trace_path_mu);
  if (!g_trace_path_init) {
    g_trace_path_init = true;
    if (const char* env = std::getenv("HRTDM_TRACE_OUT")) {
      g_trace_path = env;
    }
  }
  return g_trace_path;
}

void set_trace_out(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(g_trace_path_mu);
    g_trace_path = path;
    g_trace_path_init = true;
  }
  if (!path.empty()) {
    EventTracer::global().set_enabled(true);
  }
}

std::string write_global_trace() {
  const auto path = trace_out_path();
  if (path.empty()) {
    return "";
  }
  if (!EventTracer::global().write_chrome_json(path)) {
    return "";
  }
  return path;
}

}  // namespace hrtdm::obs
