// Metrics registry: named counters, gauges and fixed-bucket histograms
// with a lock-free hot path (docs/OBSERVABILITY.md).
//
// Registration (name -> instrument) takes a mutex once; after that every
// update is a single relaxed atomic RMW, safe to call from the worker pool
// (concurrent increments sum exactly — integer addition commutes, so the
// totals are identical to a serial run regardless of interleaving, which is
// what keeps the registry compatible with the repo's parallel == serial
// determinism contract).
//
// The HRTDM_COUNT / HRTDM_OBSERVE macros cache the registry lookup in a
// function-local static, so a hot call site costs one predicted branch plus
// one relaxed fetch_add. Building with -DHRTDM_OBS_OFF compiles every macro
// to `((void)0)` — zero code, zero registrations.
//
// This subsystem is deliberately dependency-free (std only) so that even
// the lowest layer (util/thread_pool, net/channel) can be instrumented
// without a dependency cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hrtdm::obs {

/// Monotonic event count. All operations are relaxed: counters order
/// nothing, they only total.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket integer histogram. Bucket i counts observations v with
/// v <= bounds[i] (and > bounds[i-1]); one extra overflow bucket catches
/// everything beyond the last bound. Bounds are plain int64 values fixed at
/// registration, so bucket boundaries are bit-identical on every platform.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<std::int64_t> bounds);

  /// Power-of-two bounds {0, 1, 2, 4, ..., 2^(buckets-2)}: integer-exact
  /// everywhere, covering [0, 2^38] ns-scale values with the default below.
  static std::vector<std::int64_t> exp2_bounds(int buckets = kDefaultBuckets);
  static constexpr int kDefaultBuckets = 40;

  void observe(std::int64_t v);
  /// Records `n` identical observations of `v` in O(1) — one bucket RMW
  /// instead of n (the channel's idle fast-forward accounts thousands of
  /// skipped silence slots at once). `n` must be >= 0.
  void observe_n(std::int64_t v, std::int64_t n);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// INT64_MAX / INT64_MIN respectively while count() == 0.
  std::int64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::int64_t> bucket_counts() const;

  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

// --- snapshots (plain data, serialized by the bench harness) -------------

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< 0 when count == 0
  std::int64_t max = 0;  ///< 0 when count == 0
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> buckets;  ///< bounds.size() + 1 (overflow last)
};

struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;    ///< sorted by name
  std::vector<GaugeSnapshot> gauges;        ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name
};

/// Name -> instrument map. Instruments live for the registry's lifetime and
/// their addresses are stable, so call sites may cache references.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Finds or creates; `bounds` applies only on creation (the first
  /// registration of a name fixes its buckets).
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds);

  RegistrySnapshot snapshot() const;

  /// Zeroes every instrument but keeps registrations (tests; the macro
  /// static caches stay valid).
  void reset();

  /// The process-wide registry the macros write into.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hrtdm::obs

// --- hot-path macros ------------------------------------------------------
//
// The `name` argument must be a string with static storage duration (in
// practice: a literal); the lookup happens once per call site.

#if !defined(HRTDM_OBS_OFF)

#define HRTDM_COUNT_N(name, n)                                   \
  do {                                                           \
    static ::hrtdm::obs::Counter& hrtdm_obs_counter_ =           \
        ::hrtdm::obs::Registry::global().counter(name);          \
    hrtdm_obs_counter_.inc(n);                                   \
  } while (0)

#define HRTDM_COUNT(name) HRTDM_COUNT_N(name, 1)

#define HRTDM_OBSERVE(name, value)                               \
  do {                                                           \
    static ::hrtdm::obs::Histogram& hrtdm_obs_hist_ =            \
        ::hrtdm::obs::Registry::global().histogram(name);        \
    hrtdm_obs_hist_.observe(static_cast<std::int64_t>(value));   \
  } while (0)

#define HRTDM_OBSERVE_N(name, value, n)                          \
  do {                                                           \
    static ::hrtdm::obs::Histogram& hrtdm_obs_hist_ =            \
        ::hrtdm::obs::Registry::global().histogram(name);        \
    hrtdm_obs_hist_.observe_n(static_cast<std::int64_t>(value),  \
                              static_cast<std::int64_t>(n));     \
  } while (0)

#define HRTDM_GAUGE_SET(name, value)                             \
  do {                                                           \
    static ::hrtdm::obs::Gauge& hrtdm_obs_gauge_ =               \
        ::hrtdm::obs::Registry::global().gauge(name);            \
    hrtdm_obs_gauge_.set(static_cast<std::int64_t>(value));      \
  } while (0)

#else  // HRTDM_OBS_OFF: every macro is a no-op; arguments are not evaluated.

#define HRTDM_COUNT_N(name, n) ((void)0)
#define HRTDM_COUNT(name) ((void)0)
#define HRTDM_OBSERVE(name, value) ((void)0)
#define HRTDM_OBSERVE_N(name, value, n) ((void)0)
#define HRTDM_GAUGE_SET(name, value) ((void)0)

#endif  // HRTDM_OBS_OFF
