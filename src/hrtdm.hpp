// Umbrella header: the public API of the HRTDM / CSMA-DDCR library.
//
//   #include "hrtdm.hpp"
//
// pulls in everything a downstream application needs: workload modelling,
// the feasibility analysis of the paper's section 4, the protocol
// simulator, the baselines, and the utilities. Individual headers remain
// includable on their own for faster builds.
#pragma once

// Utilities.
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/simtime.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Discrete-event simulation and the broadcast medium.
#include "net/channel.hpp"
#include "net/frame.hpp"
#include "net/phy.hpp"
#include "net/station.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"

// Traffic modelling.
#include "traffic/arrival.hpp"
#include "traffic/fc_adapter.hpp"
#include "traffic/message.hpp"
#include "traffic/serialize.hpp"
#include "traffic/workload.hpp"

// The paper's analysis (section 4) and its extensions.
#include "analysis/dimensioning.hpp"
#include "analysis/efficiency.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/feasibility_atm.hpp"
#include "analysis/optimal_m.hpp"
#include "analysis/p2.hpp"
#include "analysis/xi.hpp"
#include "analysis/xi_expected.hpp"

// The CSMA/DDCR protocol and the network facade.
#include "core/ddcr_config.hpp"
#include "core/ddcr_network.hpp"
#include "core/ddcr_station.hpp"
#include "core/edf_queue.hpp"
#include "core/metrics.hpp"
#include "core/multi_channel.hpp"
#include "core/tree_search.hpp"

// Observability: metrics registry, event tracing, Perfetto export.
#include "obs/channel_tracer.hpp"
#include "obs/event_tracer.hpp"
#include "obs/registry.hpp"

// Fault injection, the hostile-world axes (drift / churn / bursty loss)
// and the self-healing campaign + self-stabilization harnesses
// (docs/FAULTS.md).
#include "fault/campaign.hpp"
#include "fault/churn_plan.hpp"
#include "fault/drift_plan.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/stabilization.hpp"

// Differential conformance: EDF oracle, comparator, bound checks,
// shrinking replay harness (docs/TESTING.md).
#include "check/bound_checker.hpp"
#include "check/conformance.hpp"
#include "check/edf_oracle.hpp"
#include "check/shrinker.hpp"

// Comparison baselines.
#include "baseline/beb_station.hpp"
#include "baseline/dcr_station.hpp"
#include "baseline/runner.hpp"
#include "baseline/stack_station.hpp"
#include "baseline/tdma_station.hpp"
