// Physical-layer model of the broadcast medium.
//
// The paper characterises the medium by a slot time x (a channel state
// transition triggered at t is seen everywhere before t + x/2), a nominal
// throughput psi, and a framing overhead that inflates the data-link PDU
// length l into the on-wire length l' > l. Presets are provided for the two
// §5 target technologies.
#pragma once

#include <cstdint>

#include "util/simtime.hpp"

namespace hrtdm::net {

using util::Duration;

struct PhyConfig {
  /// Slot time x. Gigabit Ethernet half duplex: 4096 bit times = 4.096 us.
  Duration slot_x = Duration::nanoseconds(4096);
  /// Nominal physical throughput psi in bits per second.
  double psi_bps = 1e9;
  /// l'(msg) - l(msg): preamble + framing + signalling bits.
  std::int64_t overhead_bits = 0;
  /// Packet-bursting budget in bits (continuation frames after a win may
  /// total at most this many data-link bits); 0 disables bursting.
  std::int64_t burst_budget_bits = 0;
  /// Symmetric frame-corruption probability: with this probability a
  /// contention-slot transmission is destroyed in flight and every station
  /// (including the transmitter, which detects it like a collision)
  /// observes a collision lasting the full transmission time. Models CRC
  /// failures / channel noise while preserving the broadcast property that
  /// all stations share one view. Burst continuations are not corrupted.
  double corruption_prob = 0.0;

  /// Gilbert–Elliott two-state bursty loss model: an optional replacement
  /// for the i.i.d. `corruption_prob` noise. The channel carries a hidden
  /// good/bad state that flips with the transition probabilities below at
  /// every contention-slot boundary; a successful transmission is destroyed
  /// (symmetrically, exactly like `corruption_prob`) with the loss
  /// probability of the current state. Mean bad-burst length is
  /// 1/ge_p_bad_good slots, so losses cluster — the fading-channel regime
  /// of Fast-CSMA-style wireless models — instead of arriving i.i.d.
  /// Mutually exclusive with `corruption_prob`; burst continuations are
  /// not corrupted (as with the i.i.d. model).
  bool ge_enabled = false;
  double ge_p_good_bad = 0.05;  ///< P(good -> bad) per contention slot
  double ge_p_bad_good = 0.25;  ///< P(bad -> good) per contention slot
  double ge_loss_good = 0.0;    ///< P(success destroyed | good state)
  double ge_loss_bad = 0.5;     ///< P(success destroyed | bad state)

  /// Enables the Gilbert–Elliott model with the given parameters.
  PhyConfig& gilbert_elliott(double p_good_bad, double p_bad_good,
                             double loss_good, double loss_bad);

  /// On-wire bits l'(msg) for a PDU of l bits.
  std::int64_t l_prime_bits(std::int64_t l_bits) const;

  /// Transmission time l'(msg)/psi, rounded up to a whole nanosecond.
  Duration tx_time(std::int64_t l_bits) const;

  void validate() const;

  /// Half-duplex Gigabit Ethernet (IEEE 802.3z): psi = 1e9, x = 4.096 us,
  /// 8 bytes preamble + 12 byte-times interframe gap of overhead.
  static PhyConfig gigabit_ethernet();

  /// A bus internal to an ATM switch: spanning of a few bit times. We model
  /// x = 16 ns at 622 Mbit/s with one ATM cell (53 bytes) of framing.
  static PhyConfig atm_internal_bus();
};

}  // namespace hrtdm::net
