#include "net/trace.hpp"

#include <sstream>

namespace hrtdm::net {

void TraceRecorder::on_slot(const SlotRecord& record) {
  if (capacity_ > 0 && slots_.size() >= capacity_) {
    slots_.pop_front();
    ++dropped_;
  }
  slots_.push_back(record);
}

char trace_symbol(const SlotRecord& record) {
  switch (record.kind) {
    case SlotKind::kSilence:
      return '.';
    case SlotKind::kCollision:
      return 'X';
    case SlotKind::kSuccess:
      if (record.in_burst) {
        return 'b';
      }
      return record.arbitration ? 'a' : '#';
  }
  return '?';
}

std::string TraceRecorder::ascii_timeline(std::size_t width) const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < slots_.size(); i += width) {
    oss << slots_[i].start.str() << "  ";
    for (std::size_t j = i; j < std::min(i + width, slots_.size()); ++j) {
      oss << trace_symbol(slots_[j]);
    }
    oss << "\n";
  }
  if (dropped_ > 0) {
    oss << "(" << dropped_ << " earlier slots dropped)\n";
  }
  return oss.str();
}

std::string TraceRecorder::csv() const {
  std::ostringstream oss;
  oss << "start_ns,end_ns,kind,source,uid,class,bits,burst,arbitration\n";
  for (const SlotRecord& record : slots_) {
    const char* kind = record.kind == SlotKind::kSilence ? "silence"
                       : record.kind == SlotKind::kCollision ? "collision"
                                                             : "success";
    oss << record.start.ns() << ',' << record.end.ns() << ',' << kind << ',';
    if (record.frame.has_value()) {
      oss << record.frame->source << ',' << record.frame->msg_uid << ','
          << record.frame->class_id << ',' << record.frame->l_bits;
    } else {
      oss << ",,,";
    }
    oss << ',' << (record.in_burst ? 1 : 0) << ','
        << (record.arbitration ? 1 : 0) << "\n";
  }
  return oss.str();
}

TraceRecorder::Counts TraceRecorder::counts() const {
  Counts counts;
  for (const SlotRecord& record : slots_) {
    switch (record.kind) {
      case SlotKind::kSilence:
        ++counts.silence;
        break;
      case SlotKind::kCollision:
        ++counts.collision;
        break;
      case SlotKind::kSuccess:
        ++counts.success;
        counts.burst += record.in_burst ? 1 : 0;
        counts.arbitration += record.arbitration ? 1 : 0;
        break;
    }
  }
  return counts;
}

}  // namespace hrtdm::net
