// Channel tracing: records every slot and renders ns-style artefacts —
// an ASCII timeline for eyeballing protocol behaviour and a CSV export
// for external tooling.
//
//   timeline symbols:  .  silence     X  collision     #  transmission
//                      b  burst continuation           a  arbitration win
#pragma once

#include <deque>
#include <string>

#include "net/channel.hpp"

namespace hrtdm::net {

class TraceRecorder final : public ChannelObserver {
 public:
  /// Keeps at most `capacity` most recent slots (0 = unbounded).
  explicit TraceRecorder(std::size_t capacity = 0) : capacity_(capacity) {}

  void on_slot(const SlotRecord& record) override;

  const std::deque<SlotRecord>& slots() const { return slots_; }
  std::size_t dropped() const { return dropped_; }

  /// One-line-per-row ASCII timeline, `width` slots per row, annotated
  /// with the start time of each row.
  std::string ascii_timeline(std::size_t width = 72) const;

  /// CSV: start_ns,end_ns,kind,source,uid,class,bits,burst,arbitration
  std::string csv() const;

  /// Per-kind slot counts (convenience for tests).
  struct Counts {
    std::int64_t silence = 0;
    std::int64_t collision = 0;
    std::int64_t success = 0;
    std::int64_t burst = 0;
    std::int64_t arbitration = 0;
  };
  Counts counts() const;

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  // Deque so capacity eviction (pop_front) is O(1) instead of shifting the
  // whole window on every slot once the recorder is full.
  std::deque<SlotRecord> slots_;
};

/// Symbol used by ascii_timeline for one record.
char trace_symbol(const SlotRecord& record);

}  // namespace hrtdm::net
