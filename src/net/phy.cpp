#include "net/phy.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hrtdm::net {

std::int64_t PhyConfig::l_prime_bits(std::int64_t l_bits) const {
  HRTDM_EXPECT(l_bits > 0, "PDU length must be positive");
  return l_bits + overhead_bits;
}

Duration PhyConfig::tx_time(std::int64_t l_bits) const {
  const double seconds =
      static_cast<double>(l_prime_bits(l_bits)) / psi_bps;
  return Duration::nanoseconds(
      static_cast<std::int64_t>(std::ceil(seconds * 1e9)));
}

void PhyConfig::validate() const {
  HRTDM_EXPECT(slot_x > Duration::nanoseconds(0), "slot time must be positive");
  HRTDM_EXPECT(psi_bps > 0.0, "throughput must be positive");
  HRTDM_EXPECT(overhead_bits >= 0, "overhead cannot be negative");
  HRTDM_EXPECT(burst_budget_bits >= 0, "burst budget cannot be negative");
  HRTDM_EXPECT(corruption_prob >= 0.0 && corruption_prob < 1.0,
               "corruption probability must lie in [0, 1)");
  if (ge_enabled) {
    HRTDM_EXPECT(corruption_prob == 0.0,
                 "Gilbert-Elliott replaces i.i.d. noise: corruption_prob "
                 "must be 0 when ge_enabled");
    HRTDM_EXPECT(ge_p_good_bad >= 0.0 && ge_p_good_bad <= 1.0,
                 "ge_p_good_bad must lie in [0, 1]");
    HRTDM_EXPECT(ge_p_bad_good > 0.0 && ge_p_bad_good <= 1.0,
                 "ge_p_bad_good must lie in (0, 1]: bad bursts must end");
    HRTDM_EXPECT(ge_loss_good >= 0.0 && ge_loss_good < 1.0,
                 "ge_loss_good must lie in [0, 1)");
    HRTDM_EXPECT(ge_loss_bad >= 0.0 && ge_loss_bad < 1.0,
                 "ge_loss_bad must lie in [0, 1)");
  }
}

PhyConfig& PhyConfig::gilbert_elliott(double p_good_bad, double p_bad_good,
                                      double loss_good, double loss_bad) {
  ge_enabled = true;
  ge_p_good_bad = p_good_bad;
  ge_p_bad_good = p_bad_good;
  ge_loss_good = loss_good;
  ge_loss_bad = loss_bad;
  return *this;
}

PhyConfig PhyConfig::gigabit_ethernet() {
  PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(4096);
  phy.psi_bps = 1e9;
  phy.overhead_bits = (8 + 12) * 8;  // preamble + interframe gap
  phy.burst_budget_bits = 0;         // enable explicitly for §5 experiments
  return phy;
}

PhyConfig PhyConfig::atm_internal_bus() {
  PhyConfig phy;
  phy.slot_x = Duration::nanoseconds(16);
  phy.psi_bps = 622e6;
  phy.overhead_bits = 5 * 8;  // ATM cell header
  phy.burst_budget_bits = 0;
  return phy;
}

}  // namespace hrtdm::net
