#include "net/channel.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hrtdm::net {

BroadcastChannel::BroadcastChannel(sim::Simulator& simulator, PhyConfig phy,
                                   CollisionMode mode,
                                   std::uint64_t noise_seed)
    : simulator_(simulator), phy_(phy), mode_(mode), noise_rng_(noise_seed) {
  phy_.validate();
}

void BroadcastChannel::attach(Station& station) {
  HRTDM_EXPECT(!started_once_, "attach stations before start()");
  for (const Station* existing : stations_) {
    HRTDM_EXPECT(existing->id() != station.id(), "duplicate station id");
  }
  stations_.push_back(&station);
}

void BroadcastChannel::add_observer(ChannelObserver& observer) {
  observers_.push_back(&observer);
}

void BroadcastChannel::start() {
  HRTDM_EXPECT(!stations_.empty(), "cannot start a channel with no stations");
  HRTDM_EXPECT(!running_, "channel already running");
  running_ = true;
  if (!started_once_) {
    started_once_ = true;
    started_at_ = simulator_.now();
  }
  simulator_.schedule_after(util::Duration::nanoseconds(0),
                            [this] { begin_slot(); }, "channel:first-slot");
}

void BroadcastChannel::stop() { running_ = false; }

double BroadcastChannel::utilization() const {
  const util::Duration elapsed = simulator_.now() - started_at_;
  if (elapsed.ns() <= 0) {
    return 0.0;
  }
  return stats_.busy_time.to_seconds() / elapsed.to_seconds();
}

ChannelSnapshot BroadcastChannel::snapshot() const {
  ChannelSnapshot snap;
  snap.stations = stations_.size();
  snap.running = running_;
  snap.observations_delivered = observations_delivered_;
  snap.stats = stats_;
  snap.utilization = utilization();
  return snap;
}

void BroadcastChannel::apply(const ChannelStats& delta) {
  stats_.silence_slots += delta.silence_slots;
  stats_.collision_slots += delta.collision_slots;
  stats_.successes += delta.successes;
  stats_.burst_continuations += delta.burst_continuations;
  stats_.arbitration_wins += delta.arbitration_wins;
  stats_.corrupted_frames += delta.corrupted_frames;
  stats_.bits_delivered += delta.bits_delivered;
  stats_.busy_time += delta.busy_time;
  stats_.idle_time += delta.idle_time;
  stats_.contention_time += delta.contention_time;
}

void BroadcastChannel::deliver(const SlotObservation& obs,
                               const SlotRecord& record) {
  switch (record.kind) {
    case SlotKind::kSilence:
      HRTDM_COUNT("channel.slots.silence");
      break;
    case SlotKind::kCollision:
      HRTDM_COUNT("channel.slots.collision");
      break;
    case SlotKind::kSuccess:
      HRTDM_COUNT("channel.slots.success");
      if (record.in_burst) {
        HRTDM_COUNT("channel.burst_continuations");
      }
      if (record.arbitration) {
        HRTDM_COUNT("channel.arbitration_wins");
      }
      break;
  }
  HRTDM_OBSERVE("channel.contenders", record.contenders);
  const std::int64_t index = observations_delivered_++;
  for (Station* station : stations_) {
    if (interceptor_ != nullptr) {
      station->observe(interceptor_->deliver_to(station->id(), index, obs));
    } else {
      station->observe(obs);
    }
  }
  for (ChannelObserver* observer : observers_) {
    observer->on_slot(record);
  }
}

void BroadcastChannel::continue_burst(Station& winner,
                                      std::int64_t budget_bits) {
  // Called at the instant the previous frame completed. The winner may
  // chain its next EDF-ranked frame without relinquishing the channel, as
  // long as the continuation fits the remaining burst budget (the 512-byte
  // rule of IEEE 802.3z packet bursting described in section 5).
  if (!running_) {
    return;
  }
  const SimTime now = simulator_.now();
  const auto next = winner.poll_burst(now, budget_bits);
  if (!next.has_value() || next->l_bits > budget_bits) {
    begin_slot();
    return;
  }
  HRTDM_EXPECT(next->source == winner.id(),
               "burst frame source must match winner id");

  SlotObservation obs;
  SlotRecord record;
  obs.kind = record.kind = SlotKind::kSuccess;
  obs.in_burst = record.in_burst = true;
  obs.frame = record.frame = *next;
  obs.slot_start = record.start = now;
  const util::Duration tx = phy_.tx_time(next->l_bits);
  const SimTime end = now + tx;
  obs.slot_end = record.end = end;
  record.contenders = 1;

  ChannelStats delta;
  ++delta.successes;
  ++delta.burst_continuations;
  delta.bits_delivered += next->l_bits;
  delta.busy_time += tx;

  const std::int64_t remaining = budget_bits - next->l_bits;
  simulator_.schedule_at(
      end,
      [this, obs, record, &winner, remaining, delta] {
        apply(delta);
        deliver(obs, record);
        if (running_) {
          continue_burst(winner, remaining);
        }
      },
      "channel:burst-end");
}

void BroadcastChannel::begin_slot() {
  if (!running_) {
    return;
  }
  const SimTime start = simulator_.now();

  // Poll every station; the broadcast property requires that intents are
  // decided simultaneously at the slot boundary.
  std::vector<std::pair<Station*, Frame>> intents;
  for (Station* station : stations_) {
    if (auto frame = station->poll_intent(start)) {
      HRTDM_EXPECT(frame->l_bits > 0, "station offered an empty frame");
      HRTDM_EXPECT(frame->source == station->id(),
                   "frame source must match station id");
      intents.emplace_back(station, *frame);
    }
  }

  SlotObservation obs;
  SlotRecord record;
  obs.slot_start = record.start = start;
  record.contenders = static_cast<int>(intents.size());

  Station* winner = nullptr;
  SimTime end;
  // Stats deltas are applied when the slot *completes* (in the delivery
  // event) so that stats() never includes an in-flight slot.
  ChannelStats delta;

  if (intents.empty()) {
    obs.kind = record.kind = SlotKind::kSilence;
    end = start + phy_.slot_x;
    ++delta.silence_slots;
    delta.idle_time += phy_.slot_x;
  } else if (intents.size() == 1) {
    obs.kind = record.kind = SlotKind::kSuccess;
    winner = intents.front().first;
    const Frame& frame = intents.front().second;
    obs.frame = record.frame = frame;
    const util::Duration tx =
        std::max(phy_.tx_time(frame.l_bits), phy_.slot_x);
    end = start + tx;
    ++delta.successes;
    delta.bits_delivered += frame.l_bits;
    delta.busy_time += tx;
  } else if (mode_ == CollisionMode::kDestructive) {
    obs.kind = record.kind = SlotKind::kCollision;
    end = start + phy_.slot_x;
    ++delta.collision_slots;
    delta.contention_time += phy_.slot_x;
  } else {
    // Wired-OR arbitration: the collision slot itself reveals the winner
    // (lowest arb_key, station id as tie-break), which then transmits.
    obs.kind = record.kind = SlotKind::kSuccess;
    obs.arbitration = record.arbitration = true;
    auto best = std::min_element(
        intents.begin(), intents.end(), [](const auto& a, const auto& b) {
          if (a.second.arb_key != b.second.arb_key) {
            return a.second.arb_key < b.second.arb_key;
          }
          return a.second.source < b.second.source;
        });
    winner = best->first;
    const Frame& frame = best->second;
    obs.frame = record.frame = frame;
    const util::Duration tx =
        std::max(phy_.tx_time(frame.l_bits), phy_.slot_x);
    end = start + phy_.slot_x + tx;
    ++delta.successes;
    ++delta.arbitration_wins;
    delta.bits_delivered += frame.l_bits;
    delta.contention_time += phy_.slot_x;
    delta.busy_time += tx;
  }

  // Channel noise: a transmission may be destroyed in flight. Corruption
  // is symmetric — every station, the transmitter included, observes a
  // collision lasting the full transmission time — so the replicated
  // protocol state machines stay consistent and simply retry. An installed
  // interceptor can force the same outcome on scripted slots; its draw is
  // separate from noise_rng_ so plans do not perturb the noise stream.
  const bool noise_corrupts = obs.kind == SlotKind::kSuccess &&
                              phy_.corruption_prob > 0.0 &&
                              noise_rng_.bernoulli(phy_.corruption_prob);
  const bool forced_corrupts =
      obs.kind == SlotKind::kSuccess && interceptor_ != nullptr &&
      interceptor_->corrupt_slot(observations_delivered_);
  if (noise_corrupts || forced_corrupts) {
    obs.kind = record.kind = SlotKind::kCollision;
    obs.frame.reset();
    record.frame.reset();
    obs.arbitration = record.arbitration = false;
    winner = nullptr;
    delta = ChannelStats{};
    ++delta.collision_slots;
    ++delta.corrupted_frames;
    delta.contention_time += end - start;
  }

  obs.slot_end = record.end = end;

  const bool bursting_possible = winner != nullptr &&
                                 obs.kind == SlotKind::kSuccess &&
                                 phy_.burst_budget_bits > 0;

  simulator_.schedule_at(
      end,
      [this, obs, record, winner, bursting_possible, delta] {
        apply(delta);
        deliver(obs, record);
        if (!running_) {
          return;
        }
        if (bursting_possible) {
          continue_burst(*winner, phy_.burst_budget_bits);
        } else {
          begin_slot();
        }
      },
      "channel:slot-end");
}

}  // namespace hrtdm::net
