#include "net/channel.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hrtdm::net {

BroadcastChannel::BroadcastChannel(sim::Simulator& simulator, PhyConfig phy,
                                   CollisionMode mode,
                                   std::uint64_t noise_seed)
    : simulator_(simulator),
      phy_(phy),
      mode_(mode),
      noise_rng_(noise_seed),
      ge_rng_(util::SplitMix64(noise_seed ^ 0x6E55'0BAD'600DULL).next()) {
  phy_.validate();
}

void BroadcastChannel::attach(Station& station) {
  HRTDM_EXPECT(!started_once_, "attach stations before start()");
  for (const Station* existing : stations_) {
    HRTDM_EXPECT(existing->id() != station.id(), "duplicate station id");
  }
  stations_.push_back(&station);
}

void BroadcastChannel::add_observer(ChannelObserver& observer) {
  observers_.push_back(&observer);
}

void BroadcastChannel::start() {
  HRTDM_EXPECT(!stations_.empty(), "cannot start a channel with no stations");
  HRTDM_EXPECT(!running_, "channel already running");
  running_ = true;
  if (!started_once_) {
    started_once_ = true;
    started_at_ = simulator_.now();
  }
  simulator_.schedule_after(util::Duration::nanoseconds(0),
                            [this] { begin_slot(); }, "channel:first-slot");
}

void BroadcastChannel::stop() {
  if (idle_gap_active_) {
    // Re-materialize the in-flight silence slot so a run that continues past
    // stop() observes exactly what the slot-by-slot loop would have: the
    // pending slot still completes, then the chain halts on !running_.
    dissolve_idle_gap();
  }
  running_ = false;
}

double BroadcastChannel::utilization() const {
  const util::Duration elapsed = simulator_.now() - started_at_;
  if (elapsed.ns() <= 0) {
    return 0.0;
  }
  return stats_.busy_time.to_seconds() / elapsed.to_seconds();
}

ChannelSnapshot BroadcastChannel::snapshot() const {
  flush_idle_gap(simulator_.now());
  ChannelSnapshot snap;
  snap.stations = stations_.size();
  snap.running = running_;
  snap.observations_delivered = observations_delivered_;
  snap.stats = stats_;
  snap.utilization = utilization();
  return snap;
}

void BroadcastChannel::apply(const ChannelStats& delta) {
  stats_.silence_slots += delta.silence_slots;
  stats_.collision_slots += delta.collision_slots;
  stats_.successes += delta.successes;
  stats_.burst_continuations += delta.burst_continuations;
  stats_.arbitration_wins += delta.arbitration_wins;
  stats_.corrupted_frames += delta.corrupted_frames;
  stats_.ge_bad_slots += delta.ge_bad_slots;
  stats_.ge_losses += delta.ge_losses;
  stats_.bits_delivered += delta.bits_delivered;
  stats_.busy_time += delta.busy_time;
  stats_.idle_time += delta.idle_time;
  stats_.contention_time += delta.contention_time;
}

void BroadcastChannel::deliver(const SlotObservation& obs,
                               const SlotRecord& record) {
  switch (record.kind) {
    case SlotKind::kSilence:
      HRTDM_COUNT("channel.slots.silence");
      break;
    case SlotKind::kCollision:
      HRTDM_COUNT("channel.slots.collision");
      break;
    case SlotKind::kSuccess:
      HRTDM_COUNT("channel.slots.success");
      if (record.in_burst) {
        HRTDM_COUNT("channel.burst_continuations");
      }
      if (record.arbitration) {
        HRTDM_COUNT("channel.arbitration_wins");
      }
      break;
  }
  HRTDM_OBSERVE("channel.contenders", record.contenders);
  const std::int64_t index = observations_delivered_++;
  for (Station* station : stations_) {
    if (interceptor_ != nullptr) {
      station->observe(interceptor_->deliver_to(station->id(), index, obs));
    } else {
      station->observe(obs);
    }
  }
  for (ChannelObserver* observer : observers_) {
    observer->on_slot(record);
  }
}

void BroadcastChannel::finish_burst() {
  apply(pending_delta_);
  deliver(pending_obs_, pending_record_);
  if (running_) {
    continue_burst(*pending_winner_, pending_burst_budget_);
  }
}

void BroadcastChannel::continue_burst(Station& winner,
                                      std::int64_t budget_bits) {
  // Called at the instant the previous frame completed. The winner may
  // chain its next EDF-ranked frame without relinquishing the channel, as
  // long as the continuation fits the remaining burst budget (the 512-byte
  // rule of IEEE 802.3z packet bursting described in section 5).
  if (!running_) {
    return;
  }
  const SimTime now = simulator_.now();
  const auto next = winner.poll_burst(now, budget_bits);
  if (!next.has_value() || next->l_bits > budget_bits) {
    begin_slot();
    return;
  }
  HRTDM_EXPECT(next->source == winner.id(),
               "burst frame source must match winner id");

  pending_obs_ = SlotObservation{};
  pending_record_ = SlotRecord{};
  pending_obs_.kind = pending_record_.kind = SlotKind::kSuccess;
  pending_obs_.in_burst = pending_record_.in_burst = true;
  pending_obs_.frame = pending_record_.frame = *next;
  pending_obs_.slot_start = pending_record_.start = now;
  const util::Duration tx = phy_.tx_time(next->l_bits);
  const SimTime end = now + tx;
  pending_obs_.slot_end = pending_record_.end = end;
  pending_record_.contenders = 1;

  pending_delta_ = ChannelStats{};
  ++pending_delta_.successes;
  ++pending_delta_.burst_continuations;
  pending_delta_.bits_delivered += next->l_bits;
  pending_delta_.busy_time += tx;

  pending_winner_ = &winner;
  pending_burst_budget_ = budget_bits - next->l_bits;
  simulator_.schedule_at(end, [this] { finish_burst(); },
                         "channel:burst-end");
}

void BroadcastChannel::finish_slot() {
  apply(pending_delta_);
  deliver(pending_obs_, pending_record_);
  if (!running_) {
    return;
  }
  if (pending_burst_possible_) {
    continue_burst(*pending_winner_, phy_.burst_budget_bits);
  } else {
    begin_slot();
  }
}

void BroadcastChannel::begin_slot() {
  if (!running_) {
    return;
  }
  const SimTime start = simulator_.now();

  // Gilbert–Elliott chain: the hidden good/bad state flips at every
  // contention-slot boundary, silence included — fading does not wait for
  // traffic. Drawn from ge_rng_ only, and only when the model is enabled.
  if (phy_.ge_enabled) {
    const double flip = ge_bad_ ? phy_.ge_p_bad_good : phy_.ge_p_good_bad;
    if (ge_rng_.bernoulli(flip)) {
      ge_bad_ = !ge_bad_;
    }
  }

  // Poll every station; the broadcast property requires that intents are
  // decided simultaneously at the slot boundary.
  intents_.clear();
  for (Station* station : stations_) {
    if (auto frame = station->poll_intent(start)) {
      HRTDM_EXPECT(frame->l_bits > 0, "station offered an empty frame");
      HRTDM_EXPECT(frame->source == station->id(),
                   "frame source must match station id");
      intents_.emplace_back(station, *frame);
    }
  }

  pending_obs_ = SlotObservation{};
  pending_record_ = SlotRecord{};
  pending_obs_.slot_start = pending_record_.start = start;
  pending_record_.contenders = static_cast<int>(intents_.size());

  Station* winner = nullptr;
  SimTime end;
  // Stats deltas are applied when the slot *completes* (in the delivery
  // event) so that stats() never includes an in-flight slot.
  pending_delta_ = ChannelStats{};
  ChannelStats& delta = pending_delta_;

  if (intents_.empty()) {
    if (interceptor_ == nullptr && !phy_.ge_enabled && all_quiescent() &&
        try_idle_gap(start)) {
      return;  // fast-forwarded; the gap resume event continues the chain
    }
    pending_obs_.kind = pending_record_.kind = SlotKind::kSilence;
    end = start + phy_.slot_x;
    ++delta.silence_slots;
    delta.idle_time += phy_.slot_x;
  } else if (intents_.size() == 1) {
    pending_obs_.kind = pending_record_.kind = SlotKind::kSuccess;
    winner = intents_.front().first;
    const Frame& frame = intents_.front().second;
    pending_obs_.frame = pending_record_.frame = frame;
    const util::Duration tx =
        std::max(phy_.tx_time(frame.l_bits), phy_.slot_x);
    end = start + tx;
    ++delta.successes;
    delta.bits_delivered += frame.l_bits;
    delta.busy_time += tx;
  } else if (mode_ == CollisionMode::kDestructive) {
    pending_obs_.kind = pending_record_.kind = SlotKind::kCollision;
    end = start + phy_.slot_x;
    ++delta.collision_slots;
    delta.contention_time += phy_.slot_x;
  } else {
    // Wired-OR arbitration: the collision slot itself reveals the winner
    // (lowest arb_key, station id as tie-break), which then transmits.
    pending_obs_.kind = pending_record_.kind = SlotKind::kSuccess;
    pending_obs_.arbitration = pending_record_.arbitration = true;
    auto best = std::min_element(
        intents_.begin(), intents_.end(), [](const auto& a, const auto& b) {
          if (a.second.arb_key != b.second.arb_key) {
            return a.second.arb_key < b.second.arb_key;
          }
          return a.second.source < b.second.source;
        });
    winner = best->first;
    const Frame& frame = best->second;
    pending_obs_.frame = pending_record_.frame = frame;
    const util::Duration tx =
        std::max(phy_.tx_time(frame.l_bits), phy_.slot_x);
    end = start + phy_.slot_x + tx;
    ++delta.successes;
    ++delta.arbitration_wins;
    delta.bits_delivered += frame.l_bits;
    delta.contention_time += phy_.slot_x;
    delta.busy_time += tx;
  }

  // Channel noise: a transmission may be destroyed in flight. Corruption
  // is symmetric — every station, the transmitter included, observes a
  // collision lasting the full transmission time — so the replicated
  // protocol state machines stay consistent and simply retry. An installed
  // interceptor can force the same outcome on scripted slots; its draw is
  // separate from noise_rng_ so plans do not perturb the noise stream.
  const bool noise_corrupts = pending_obs_.kind == SlotKind::kSuccess &&
                              phy_.corruption_prob > 0.0 &&
                              noise_rng_.bernoulli(phy_.corruption_prob);
  const bool ge_corrupts =
      pending_obs_.kind == SlotKind::kSuccess && phy_.ge_enabled &&
      ge_rng_.bernoulli(ge_bad_ ? phy_.ge_loss_bad : phy_.ge_loss_good);
  const bool forced_corrupts =
      pending_obs_.kind == SlotKind::kSuccess && interceptor_ != nullptr &&
      interceptor_->corrupt_slot(observations_delivered_);
  if (noise_corrupts || ge_corrupts || forced_corrupts) {
    pending_obs_.kind = pending_record_.kind = SlotKind::kCollision;
    pending_obs_.frame.reset();
    pending_record_.frame.reset();
    pending_obs_.arbitration = pending_record_.arbitration = false;
    winner = nullptr;
    delta = ChannelStats{};
    ++delta.collision_slots;
    ++delta.corrupted_frames;
    if (ge_corrupts) {
      ++delta.ge_losses;
    }
    delta.contention_time += end - start;
  }
  if (phy_.ge_enabled && ge_bad_) {
    ++delta.ge_bad_slots;
  }

  pending_obs_.slot_end = pending_record_.end = end;
  pending_winner_ = winner;
  pending_burst_possible_ = winner != nullptr &&
                            pending_obs_.kind == SlotKind::kSuccess &&
                            phy_.burst_budget_bits > 0;

  simulator_.schedule_at(end, [this] { finish_slot(); }, "channel:slot-end");
}

// --- idle fast-forward -----------------------------------------------------
//
// Equivalence argument. In a slot-by-slot run over a quiescent span the
// channel would, at each boundary b_i = start + i*x: poll every station
// (all nullopt, by the quiescent() contract), then at b_{i+1} deliver a
// silence observation (a state no-op for quiescent stations) and notify
// observers. None of that can change what any station does, so the span
// may be compressed: polls are skipped, deliveries are reduced to stats /
// counter / observer accounting (flush_idle_gap), and a single resume
// event at the far boundary continues the chain. The gap may extend only
// to the next already-scheduled simulator event: any such event (message
// arrival, another channel's slot) may end quiescence. Events scheduled
// *after* the gap is committed land inside it only via code outside the
// event loop (a testbed injecting mid-run); the ScheduleWatcher catches
// exactly that case and dissolve_idle_gap() rebuilds the in-flight slot —
// before the intruding event takes its sequence number, so even same-
// timestamp ordering matches the slot-by-slot run.

bool BroadcastChannel::all_quiescent() const {
  for (const Station* station : stations_) {
    if (!station->quiescent()) {
      return false;
    }
  }
  return true;
}

bool BroadcastChannel::try_idle_gap(SimTime start) {
  const SimTime next = simulator_.next_event_time();
  std::int64_t slots = -1;  // open-ended: nothing scheduled at all
  SimTime horizon = SimTime::infinity();
  if (next != SimTime::infinity()) {
    // Largest n with start + (n-1)*x < next: every skipped poll happens
    // strictly before the event that could end quiescence.
    slots = (next - start).ceil_div(phy_.slot_x);
    if (slots < 2) {
      return false;  // nothing (or a lone slot) to skip — not worth a gap
    }
    horizon = start + phy_.slot_x * slots;
  }
  idle_gap_active_ = true;
  idle_gap_start_ = start;
  idle_gap_slots_ = slots;
  idle_gap_flushed_ = 0;
  simulator_.add_schedule_watcher(this, horizon);
  if (slots >= 0) {
    idle_gap_resume_ = simulator_.schedule_at(
        horizon, [this] { resume_idle_gap(); }, "channel:idle-gap-resume");
  } else {
    idle_gap_resume_ = sim::EventHandle{};
  }
  return true;
}

void BroadcastChannel::resume_idle_gap() {
  simulator_.remove_schedule_watcher(this);
  flush_idle_gap(simulator_.now());  // accounts every slot in the gap
  idle_gap_active_ = false;
  begin_slot();
}

void BroadcastChannel::flush_idle_gap(SimTime upto) const {
  if (!idle_gap_active_) {
    return;
  }
  // Slot i covers [b_i, b_{i+1}); it is accounted once it has fully ended.
  std::int64_t done = (upto - idle_gap_start_).floor_div(phy_.slot_x);
  if (idle_gap_slots_ >= 0) {
    done = std::min(done, idle_gap_slots_);
  }
  if (done <= idle_gap_flushed_) {
    return;
  }
  const std::int64_t newly = done - idle_gap_flushed_;
  const SimTime first_start =
      idle_gap_start_ + phy_.slot_x * idle_gap_flushed_;
  idle_gap_flushed_ = done;
  stats_.silence_slots += newly;
  stats_.idle_time += phy_.slot_x * newly;
  observations_delivered_ += newly;
  HRTDM_COUNT_N("channel.slots.silence", newly);
  HRTDM_OBSERVE_N("channel.contenders", 0, newly);
  for (ChannelObserver* observer : observers_) {
    observer->on_idle_gap(newly, first_start, phy_.slot_x);
  }
}

void BroadcastChannel::dissolve_idle_gap() {
  simulator_.remove_schedule_watcher(this);
  flush_idle_gap(simulator_.now());
  if (!idle_gap_resume_.is_null()) {
    simulator_.cancel(idle_gap_resume_);
    idle_gap_resume_ = sim::EventHandle{};
  }
  // The slot the gap was in the middle of becomes a regular pending silence
  // slot again, with its slot-end event scheduled now — before any intruding
  // event's sequence number is assigned, preserving same-timestamp order.
  const SimTime slot_start =
      idle_gap_start_ + phy_.slot_x * idle_gap_flushed_;
  idle_gap_active_ = false;
  pending_obs_ = SlotObservation{};
  pending_record_ = SlotRecord{};
  pending_obs_.kind = pending_record_.kind = SlotKind::kSilence;
  pending_obs_.slot_start = pending_record_.start = slot_start;
  const SimTime end = slot_start + phy_.slot_x;
  pending_obs_.slot_end = pending_record_.end = end;
  pending_record_.contenders = 0;
  pending_delta_ = ChannelStats{};
  ++pending_delta_.silence_slots;
  pending_delta_.idle_time += phy_.slot_x;
  pending_winner_ = nullptr;
  pending_burst_possible_ = false;
  simulator_.schedule_at(end, [this] { finish_slot(); }, "channel:slot-end");
}

void BroadcastChannel::revalidate_idle_gap() {
  if (idle_gap_active_) {
    dissolve_idle_gap();
  }
}

void BroadcastChannel::on_early_schedule(SimTime at) {
  (void)at;
  // The simulator has already unregistered us; dissolve_idle_gap's own
  // remove_schedule_watcher is then a harmless no-op.
  dissolve_idle_gap();
}

}  // namespace hrtdm::net
