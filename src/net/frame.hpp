// The unit of transmission on the broadcast medium.
#pragma once

#include <cstdint>

#include "util/simtime.hpp"

namespace hrtdm::net {

using util::SimTime;

/// A data-link frame. Carries enough metadata for receivers to maintain the
/// replicated protocol state (every station hears every frame) and for the
/// metrics layer to account latencies and deadline misses.
struct Frame {
  int source = -1;                ///< transmitting station id
  std::int64_t msg_uid = -1;      ///< network-unique message id
  int class_id = -1;              ///< traffic class (metrics key)
  std::int64_t l_bits = 0;        ///< data-link PDU length l(msg)
  SimTime enqueue_time;           ///< arrival time T(msg) at the source queue
  SimTime absolute_deadline;      ///< DM(msg) = T(msg) + d(msg)
  std::int64_t arb_key = 0;       ///< wired-OR arbitration key (lower wins)
};

}  // namespace hrtdm::net
