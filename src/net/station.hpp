// The interface between the broadcast channel and the MAC protocols.
//
// The channel is slotted: at the start of each contention slot it polls
// every attached station for a transmit intent, resolves the outcome
// (silence / success / collision, possibly with wired-OR arbitration or a
// packet burst), and delivers the *same* observation to every station at the
// end of the slot. Protocol implementations (CSMA/DDCR, BEB, DCR, TDMA)
// live entirely behind this interface.
//
// The one sanctioned exception to "same observation everywhere" is the
// fault-injection hook (net::SlotInterceptor, driven by fault::FaultInjector):
// it can hand a chosen receiver a corrupted or missed observation to model
// receiver-local CRC errors and missed carrier sense — the asymmetric fault
// class the correctness proofs exclude and docs/FAULTS.md analyses.
#pragma once

#include <optional>

#include "net/frame.hpp"
#include "util/simtime.hpp"

namespace hrtdm::net {

using util::SimTime;

enum class SlotKind {
  kSilence,    ///< no station transmitted
  kSuccess,    ///< exactly one transmitter (or an arbitration winner)
  kCollision,  ///< >= 2 transmitters, destructive
};

/// What a station hears at the end of a slot. Everyone receives an
/// identical observation — the broadcast property the replicated protocol
/// state machines depend on.
struct SlotObservation {
  SlotKind kind = SlotKind::kSilence;
  SimTime slot_start;
  SimTime slot_end;
  /// The delivered frame on kSuccess.
  std::optional<Frame> frame;
  /// kSuccess follow-up within a packet burst: the channel was never
  /// relinquished, so protocol search state must not advance.
  bool in_burst = false;
  /// kSuccess produced by non-destructive wired-OR arbitration: there *was*
  /// contention, the lowest arb_key won, losers must retry.
  bool arbitration = false;
};

class Station {
 public:
  virtual ~Station() = default;

  virtual int id() const = 0;

  /// Called at the start of each contention slot; return the frame to
  /// attempt transmitting, or nullopt to stay silent. The decision may use
  /// only local state plus past observations (carrier sense is implicit:
  /// poll happens only when the medium is free).
  virtual std::optional<Frame> poll_intent(SimTime now) = 0;

  /// Outcome of the slot, delivered simultaneously to every station at
  /// slot_end (after the transmission completes on kSuccess).
  virtual void observe(const SlotObservation& obs) = 0;

  /// Packet bursting (IEEE 802.3z): called only on the station that just
  /// transmitted successfully while burst budget remains; return the next
  /// EDF-ranked frame with l_bits <= budget_bits, or nullopt to release the
  /// channel.
  virtual std::optional<Frame> poll_burst(SimTime now,
                                          std::int64_t budget_bits) {
    (void)now;
    (void)budget_bits;
    return std::nullopt;
  }

  /// Idle fast-forward contract: return true iff, until this station is
  /// externally stimulated (a message handed to it), every poll_intent will
  /// return nullopt AND every observe() of a silence slot leaves all
  /// observable state (including the protocol digest) unchanged. When every
  /// attached station is quiescent the channel may skip simulating silence
  /// slots wholesale. The default is conservative: never skip.
  virtual bool quiescent() const { return false; }
};

}  // namespace hrtdm::net
