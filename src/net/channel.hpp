// Slotted broadcast channel.
//
// Models the passive broadcast media of the paper (Ethernet segment, bus
// internal to an ATM switch). Time is divided into contention slots of
// length x; a successful transmission extends its slot to the frame's
// transmission time l'/psi. Three collision semantics are supported:
//
//  - kDestructive: >= 2 simultaneous transmitters destroy each other
//    (Ethernet); everyone observes a collision slot of length x.
//  - kArbitration: the wired-OR / exclusive-OR bus logic of ATM internal
//    busses makes collisions non-destructive: the slot resolves to the
//    lowest arb_key, which then transmits; losers observe the arbitration.
//
// Packet bursting (IEEE 802.3z) is available in either mode: after a
// successful transmission the winner may chain further frames up to the
// configured budget without releasing the channel.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.hpp"
#include "net/phy.hpp"
#include "net/station.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hrtdm::net {

enum class CollisionMode { kDestructive, kArbitration };

/// Diagnostic record per slot, for metrics and tests; unlike
/// SlotObservation it includes the contender count, which real stations
/// cannot see and protocol code must not use.
struct SlotRecord {
  SlotKind kind = SlotKind::kSilence;
  int contenders = 0;
  SimTime start;
  SimTime end;
  std::optional<Frame> frame;
  bool in_burst = false;
  bool arbitration = false;
};

class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual void on_slot(const SlotRecord& record) = 0;

  /// Bulk notification for `slots` consecutive silence slots the channel
  /// fast-forwarded over (idle gap: every station quiescent, nothing
  /// scheduled). The default synthesizes the exact per-slot on_slot calls a
  /// non-fast-forwarded run would have made, so observers that don't care
  /// stay bit-identical; aggregating observers override this with an O(1)
  /// bulk update.
  virtual void on_idle_gap(std::int64_t slots, SimTime first_start,
                           util::Duration slot_x) {
    SlotRecord record;
    record.kind = SlotKind::kSilence;
    record.contenders = 0;
    for (std::int64_t i = 0; i < slots; ++i) {
      record.start = first_start + slot_x * i;
      record.end = record.start + slot_x;
      on_slot(record);
    }
  }
};

/// Fault-injection hook. By default the channel delivers the *same*
/// observation to every station (the broadcast property the replicated
/// protocol state machines depend on); an interceptor can violate that
/// property deliberately — per-receiver CRC errors, missed carrier sense —
/// and can destroy chosen transmissions symmetrically. Observations are
/// indexed by delivery order (`observations_delivered()`), which is the
/// deterministic time axis fault plans are scripted against.
class SlotInterceptor {
 public:
  virtual ~SlotInterceptor() = default;

  /// Called once per contention slot that resolved to kSuccess, before the
  /// channel's own noise draw; returning true destroys the transmission
  /// symmetrically (everyone sees a collision lasting the transmission
  /// time, exactly like PhyConfig::corruption_prob). Burst continuations
  /// are not offered.
  virtual bool corrupt_slot(std::int64_t slot_index) {
    (void)slot_index;
    return false;
  }

  /// Per-receiver delivery hook: `obs` is the true channel outcome; the
  /// return value is what `station_id` actually hears. SlotRecords and
  /// ChannelObservers always see the truth — only stations can be lied to.
  virtual SlotObservation deliver_to(int station_id, std::int64_t slot_index,
                                     const SlotObservation& obs) {
    (void)station_id;
    (void)slot_index;
    return obs;
  }
};

/// Aggregate channel statistics (maintained continuously).
struct ChannelStats {
  std::int64_t silence_slots = 0;
  std::int64_t collision_slots = 0;
  std::int64_t successes = 0;          ///< frames delivered (incl. bursts)
  std::int64_t burst_continuations = 0;
  std::int64_t arbitration_wins = 0;
  std::int64_t corrupted_frames = 0;   ///< transmissions destroyed by noise
  std::int64_t ge_bad_slots = 0;       ///< slots spent in the GE bad state
  std::int64_t ge_losses = 0;          ///< corrupted_frames due to GE loss
  std::int64_t bits_delivered = 0;     ///< sum of l over delivered frames
  util::Duration busy_time;            ///< time spent transmitting
  util::Duration idle_time;            ///< silence slots
  util::Duration contention_time;      ///< collision/arbitration slots
};

/// Point-in-time introspection of a channel (docs/OBSERVABILITY.md).
/// Plain data; the bench harness serializes it into the "obs" section.
struct ChannelSnapshot {
  std::size_t stations = 0;
  bool running = false;
  std::int64_t observations_delivered = 0;
  ChannelStats stats;
  double utilization = 0.0;
};

class BroadcastChannel final : private sim::ScheduleWatcher {
 public:
  /// `noise_seed` feeds the corruption draw stream (only used when
  /// phy.corruption_prob > 0).
  BroadcastChannel(sim::Simulator& simulator, PhyConfig phy,
                   CollisionMode mode = CollisionMode::kDestructive,
                   std::uint64_t noise_seed = 0x5EEDULL);

  /// Stations must be attached before start() and outlive the channel.
  void attach(Station& station);
  void add_observer(ChannelObserver& observer);

  /// Installs (or clears, with nullptr) the fault-injection hook. The
  /// interceptor must outlive the channel or be cleared before teardown.
  void set_interceptor(SlotInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Observations delivered so far; the index passed to the interceptor
  /// for the observation currently being formed equals this value.
  std::int64_t observations_delivered() const {
    flush_idle_gap(simulator_.now());
    return observations_delivered_;
  }

  /// Begins the slot loop at the simulator's current time. The loop runs
  /// until stop() or until the simulation horizon cuts it off.
  void start();
  void stop();

  const ChannelStats& stats() const {
    flush_idle_gap(simulator_.now());
    return stats_;
  }
  const PhyConfig& phy() const { return phy_; }
  CollisionMode mode() const { return mode_; }
  std::size_t station_count() const { return stations_.size(); }

  /// Fraction of elapsed channel time spent delivering payload bits.
  double utilization() const;

  /// Plain-data snapshot of stats + delivery progress.
  ChannelSnapshot snapshot() const;

  /// Brings lazily accounted idle-gap slots (stats, counters, observers) up
  /// to the simulator's current time. Harness code calls this before
  /// reading observers (e.g. a MetricsCollector) directly; all of the
  /// channel's own accessors flush implicitly.
  void flush_idle_accounting() const { flush_idle_gap(simulator_.now()); }

  /// Code outside the event loop can mutate station state directly (a
  /// testbed crashing or resetting a station between runs), ending
  /// quiescence without any scheduled event the gap watcher could see.
  /// Harness entry points call this before advancing time again: an active
  /// idle gap is dissolved so the slot loop re-evaluates quiescence slot by
  /// slot (and re-commits a gap if nothing actually changed). No-op when no
  /// gap is active.
  void revalidate_idle_gap();

 private:
  void begin_slot();
  void finish_slot();
  void finish_burst();
  void deliver(const SlotObservation& obs, const SlotRecord& record);
  void apply(const ChannelStats& delta);
  /// Continues a packet burst: polls `winner` for the next frame while
  /// budget remains, then hands the channel back to the contention loop.
  void continue_burst(Station& winner, std::int64_t budget_bits);

  // --- idle fast-forward ---------------------------------------------------
  // When a slot resolves to silence, no interceptor is installed and every
  // station is quiescent() the channel commits an "idle gap": n back-to-back
  // silence slots covering the span up to the next scheduled simulator event
  // (or open-ended when none is pending), with one resume event at the far
  // boundary instead of one per slot. Skipped slots are accounted lazily
  // (flush_idle_gap); a ScheduleWatcher revalidates the gap if anything is
  // scheduled into it from outside the event loop.
  bool try_idle_gap(SimTime start);
  void resume_idle_gap();
  /// Accounts every gap slot that fully ended at or before `upto`: stats,
  /// registry counters, observation indices and observer notifications.
  void flush_idle_gap(SimTime upto) const;
  /// Aborts an active gap at the current time: accounts completed slots and
  /// reconstructs the in-flight silence slot as a regular slot-end event,
  /// exactly as if the gap had never been committed.
  void dissolve_idle_gap();
  void on_early_schedule(SimTime at) override;
  bool all_quiescent() const;

  sim::Simulator& simulator_;
  PhyConfig phy_;
  CollisionMode mode_;
  util::Rng noise_rng_;
  // Gilbert–Elliott channel state. ge_rng_ is seeded independently of
  // noise_rng_ (SplitMix64 split of noise_seed) and is only ever drawn from
  // when phy_.ge_enabled, so enabling the model cannot perturb the i.i.d.
  // noise stream of existing pinned runs. The chain advances once per
  // contention slot; idle fast-forward is disabled under GE so the chain
  // sees every slot boundary.
  util::Rng ge_rng_;
  bool ge_bad_ = false;
  std::vector<Station*> stations_;
  std::vector<ChannelObserver*> observers_;
  SlotInterceptor* interceptor_ = nullptr;
  bool running_ = false;
  bool started_once_ = false;
  SimTime started_at_;

  // In-flight slot state. Exactly one slot (or burst continuation) is in
  // flight at a time, so keeping it in members lets the slot-end events
  // capture only `this` (inline in the simulator's event pool, no heap).
  std::vector<std::pair<Station*, Frame>> intents_;  ///< reused each slot
  SlotObservation pending_obs_;
  SlotRecord pending_record_;
  ChannelStats pending_delta_;
  Station* pending_winner_ = nullptr;
  bool pending_burst_possible_ = false;
  std::int64_t pending_burst_budget_ = 0;

  // Idle-gap bookkeeping. `mutable` (with stats_/observations_delivered_)
  // because const accessors flush lazily-accounted slots.
  mutable std::int64_t observations_delivered_ = 0;
  mutable ChannelStats stats_;
  mutable bool idle_gap_active_ = false;
  mutable SimTime idle_gap_start_;          ///< first skipped slot boundary
  mutable std::int64_t idle_gap_slots_ = 0; ///< total slots; -1 = open-ended
  mutable std::int64_t idle_gap_flushed_ = 0;
  sim::EventHandle idle_gap_resume_;
};

}  // namespace hrtdm::net
