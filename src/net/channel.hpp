// Slotted broadcast channel.
//
// Models the passive broadcast media of the paper (Ethernet segment, bus
// internal to an ATM switch). Time is divided into contention slots of
// length x; a successful transmission extends its slot to the frame's
// transmission time l'/psi. Three collision semantics are supported:
//
//  - kDestructive: >= 2 simultaneous transmitters destroy each other
//    (Ethernet); everyone observes a collision slot of length x.
//  - kArbitration: the wired-OR / exclusive-OR bus logic of ATM internal
//    busses makes collisions non-destructive: the slot resolves to the
//    lowest arb_key, which then transmits; losers observe the arbitration.
//
// Packet bursting (IEEE 802.3z) is available in either mode: after a
// successful transmission the winner may chain further frames up to the
// configured budget without releasing the channel.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.hpp"
#include "net/phy.hpp"
#include "net/station.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hrtdm::net {

enum class CollisionMode { kDestructive, kArbitration };

/// Diagnostic record per slot, for metrics and tests; unlike
/// SlotObservation it includes the contender count, which real stations
/// cannot see and protocol code must not use.
struct SlotRecord {
  SlotKind kind = SlotKind::kSilence;
  int contenders = 0;
  SimTime start;
  SimTime end;
  std::optional<Frame> frame;
  bool in_burst = false;
  bool arbitration = false;
};

class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual void on_slot(const SlotRecord& record) = 0;
};

/// Fault-injection hook. By default the channel delivers the *same*
/// observation to every station (the broadcast property the replicated
/// protocol state machines depend on); an interceptor can violate that
/// property deliberately — per-receiver CRC errors, missed carrier sense —
/// and can destroy chosen transmissions symmetrically. Observations are
/// indexed by delivery order (`observations_delivered()`), which is the
/// deterministic time axis fault plans are scripted against.
class SlotInterceptor {
 public:
  virtual ~SlotInterceptor() = default;

  /// Called once per contention slot that resolved to kSuccess, before the
  /// channel's own noise draw; returning true destroys the transmission
  /// symmetrically (everyone sees a collision lasting the transmission
  /// time, exactly like PhyConfig::corruption_prob). Burst continuations
  /// are not offered.
  virtual bool corrupt_slot(std::int64_t slot_index) {
    (void)slot_index;
    return false;
  }

  /// Per-receiver delivery hook: `obs` is the true channel outcome; the
  /// return value is what `station_id` actually hears. SlotRecords and
  /// ChannelObservers always see the truth — only stations can be lied to.
  virtual SlotObservation deliver_to(int station_id, std::int64_t slot_index,
                                     const SlotObservation& obs) {
    (void)station_id;
    (void)slot_index;
    return obs;
  }
};

/// Aggregate channel statistics (maintained continuously).
struct ChannelStats {
  std::int64_t silence_slots = 0;
  std::int64_t collision_slots = 0;
  std::int64_t successes = 0;          ///< frames delivered (incl. bursts)
  std::int64_t burst_continuations = 0;
  std::int64_t arbitration_wins = 0;
  std::int64_t corrupted_frames = 0;   ///< transmissions destroyed by noise
  std::int64_t bits_delivered = 0;     ///< sum of l over delivered frames
  util::Duration busy_time;            ///< time spent transmitting
  util::Duration idle_time;            ///< silence slots
  util::Duration contention_time;      ///< collision/arbitration slots
};

/// Point-in-time introspection of a channel (docs/OBSERVABILITY.md).
/// Plain data; the bench harness serializes it into the "obs" section.
struct ChannelSnapshot {
  std::size_t stations = 0;
  bool running = false;
  std::int64_t observations_delivered = 0;
  ChannelStats stats;
  double utilization = 0.0;
};

class BroadcastChannel {
 public:
  /// `noise_seed` feeds the corruption draw stream (only used when
  /// phy.corruption_prob > 0).
  BroadcastChannel(sim::Simulator& simulator, PhyConfig phy,
                   CollisionMode mode = CollisionMode::kDestructive,
                   std::uint64_t noise_seed = 0x5EEDULL);

  /// Stations must be attached before start() and outlive the channel.
  void attach(Station& station);
  void add_observer(ChannelObserver& observer);

  /// Installs (or clears, with nullptr) the fault-injection hook. The
  /// interceptor must outlive the channel or be cleared before teardown.
  void set_interceptor(SlotInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Observations delivered so far; the index passed to the interceptor
  /// for the observation currently being formed equals this value.
  std::int64_t observations_delivered() const {
    return observations_delivered_;
  }

  /// Begins the slot loop at the simulator's current time. The loop runs
  /// until stop() or until the simulation horizon cuts it off.
  void start();
  void stop();

  const ChannelStats& stats() const { return stats_; }
  const PhyConfig& phy() const { return phy_; }
  CollisionMode mode() const { return mode_; }
  std::size_t station_count() const { return stations_.size(); }

  /// Fraction of elapsed channel time spent delivering payload bits.
  double utilization() const;

  /// Plain-data snapshot of stats + delivery progress.
  ChannelSnapshot snapshot() const;

 private:
  void begin_slot();
  void deliver(const SlotObservation& obs, const SlotRecord& record);
  void apply(const ChannelStats& delta);
  /// Continues a packet burst: polls `winner` for the next frame while
  /// budget remains, then hands the channel back to the contention loop.
  void continue_burst(Station& winner, std::int64_t budget_bits);

  sim::Simulator& simulator_;
  PhyConfig phy_;
  CollisionMode mode_;
  util::Rng noise_rng_;
  std::vector<Station*> stations_;
  std::vector<ChannelObserver*> observers_;
  SlotInterceptor* interceptor_ = nullptr;
  std::int64_t observations_delivered_ = 0;
  ChannelStats stats_;
  bool running_ = false;
  bool started_once_ = false;
  SimTime started_at_;
};

}  // namespace hrtdm::net
