// The CSMA/DDCR protocol state machine (section 3.2).
//
// Each station runs:
//  - LA: a local EDF queue; msg* is its head.
//  - CSMA-CD sharing while no unresolved collision is pending.
//  - On a collision, every station (with or without messages) initiates
//    CSMA/DDCR: a *time tree search* (TTs) over F deadline-equivalence
//    classes of width c, where a message's leaf is
//        f(reft, msg) = max(floor((DM - (alpha + reft)) / c), f* + 1),
//    and, on a time-leaf collision (several messages in one deadline
//    class), a *static tree search* (STs) over q per-source static indices
//    as the deterministic tie-break. The combination emulates distributed
//    non-preemptive EDF.
//
// The protocol state that must stay identical across stations (mode, tree
// engines, reft, the leaf under tie-break) is driven exclusively by channel
// observations; protocol_digest() exposes it for the consistency tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ddcr_config.hpp"
#include "core/edf_queue.hpp"
#include "core/tree_search.hpp"
#include "net/station.hpp"
#include "obs/event_tracer.hpp"
#include "traffic/message.hpp"

namespace hrtdm::core {

using net::Frame;
using net::SlotObservation;
using traffic::Message;
using util::SimTime;

/// Point-in-time introspection of one station (docs/OBSERVABILITY.md).
/// Plain data; the bench harness serializes it into the "obs" section.
struct StationSnapshot {
  int id = 0;
  const char* mode = "csma-cd";
  bool synced = true;
  std::size_t queue_depth = 0;
  bool has_head = false;
  std::int64_t head_uid = -1;
  std::int64_t head_deadline_ns = 0;
  std::int64_t reft_ns = 0;
  bool tts_active = false;
  std::int64_t tts_lo = 0;       ///< probed interval (valid iff tts_active)
  std::int64_t tts_size = 0;
  std::int64_t tts_resolved = 0; ///< f* + 1: leaves already searched
  bool sts_active = false;
  std::int64_t sts_lo = 0;       ///< probed interval (valid iff sts_active)
  std::int64_t sts_size = 0;
  std::int64_t sts_leaf = -1;    ///< time leaf under tie-break
  std::int64_t resync_silences = 0;
};

class DdcrStation final : public net::Station {
 public:
  enum class Mode { kCsmaCd, kTimeSearch, kStaticSearch, kResync, kOffline };

  static const char* mode_name(Mode mode);

  struct Counters {
    std::int64_t epochs = 0;            ///< CSMA/DDCR invocations
    std::int64_t tts_runs = 0;          ///< time tree searches started
    std::int64_t sts_runs = 0;          ///< static tree searches started
    std::int64_t compressions = 0;      ///< reft += theta applications
    std::int64_t rejoins = 0;           ///< crash-recovery resyncs completed
    std::int64_t transmitted = 0;       ///< own frames delivered
    std::int64_t burst_transmitted = 0; ///< own frames delivered in bursts
    std::int64_t search_slots_time = 0;   ///< time-tree search slots heard
    std::int64_t search_slots_static = 0; ///< static-tree search slots heard
    std::int64_t static_leaf_retries = 0; ///< noise-corrupted static leaves
    std::int64_t dropped_late = 0;        ///< shed past-deadline messages
    std::int64_t desyncs_detected = 0;    ///< protocol-impossible observations
    std::int64_t quarantines = 0;         ///< watchdog-triggered self-resets
    std::int64_t churn_leaves = 0;        ///< go_offline() departures
    std::int64_t churn_joins = 0;         ///< bring_online() re-entries
  };

  /// `static_indices` is this source's ranked subset of [0, q).
  DdcrStation(int id, const DdcrConfig& config,
              std::vector<std::int64_t> static_indices);

  /// Delivers a message to the local queue (LA runs on arrival).
  void enqueue(const Message& msg);

  // --- net::Station ---
  int id() const override { return id_; }
  std::optional<Frame> poll_intent(SimTime now) override;
  void observe(const SlotObservation& obs) override;
  std::optional<Frame> poll_burst(SimTime now,
                                  std::int64_t budget_bits) override;
  /// Idle CSMA-CD with an empty queue: poll_intent stays nullopt and
  /// observe(silence) is a state no-op (only a collision, a queued message
  /// or a pending post-TTs attempt changes anything). kResync is NOT
  /// quiescent — it counts silent slots toward the quiet certificate.
  /// kOffline IS quiescent: an offline station neither transmits nor
  /// processes observations, so every slot is a state no-op for it.
  bool quiescent() const override {
    return (mode_ == Mode::kCsmaCd && !post_tts_attempt_ && queue_.empty()) ||
           mode_ == Mode::kOffline;
  }

  /// Crash recovery — and the divergence watchdog's quarantine path:
  /// discards all protocol state (the queue survives — a
  /// MAC reset does not lose locally buffered messages) and re-enters via
  /// a listen-only resync phase. The station transmits nothing until it
  /// has heard config.resync_silence_threshold() consecutive silent slots,
  /// which certifies that no collision-resolution epoch is in progress, so
  /// rejoining in CSMA-CD mode is consistent with every live station.
  /// Requires a configuration with bounded in-epoch silence streaks
  /// (fallback mode with theta = 0 or max_empty_tts > 0).
  void reset_for_rejoin();

  /// Churn departure (fault::ChurnPlan): discards protocol state exactly
  /// like reset_for_rejoin() but parks the station fully offline — it
  /// neither transmits nor listens. The local queue survives, as for a
  /// crash. Requires a rejoinable configuration: the only way back is
  /// bring_online()'s listen-only resync.
  void go_offline();

  /// Churn re-entry: the station powers back up with no protocol state and
  /// re-enters through the same quiet-period resync path as a crash
  /// recovery. Only valid while offline.
  void bring_online();

  bool online() const { return mode_ != Mode::kOffline; }

  /// False while the station is in the listen-only resync phase or
  /// offline.
  bool synced() const {
    return mode_ != Mode::kResync && mode_ != Mode::kOffline;
  }

  // --- introspection ---
  Mode mode() const { return mode_; }
  const EdfQueue& queue() const { return queue_; }
  SimTime reft() const { return reft_; }
  const Counters& counters() const { return counters_; }
  /// Digest over the replicated protocol state only (identical across all
  /// stations at every slot boundary).
  std::uint64_t protocol_digest() const;

  /// Plain-data snapshot of mode, queue, tree positions and counters.
  StationSnapshot snapshot() const;

  /// Attaches a protocol event tracer: epoch/TTs/STs/watchdog events land
  /// on track (pid = channel_id, tid = id() + 1). nullptr detaches.
  /// Tracing never touches replicated state or protocol_digest().
  void set_trace(obs::EventTracer* tracer, int channel_id);

  /// The raw deadline-class index floor((DM - (alpha + reft)) / c).
  std::int64_t raw_time_index(SimTime absolute_deadline) const;

 private:
  /// With drop_late_messages set, sheds queue heads already past their
  /// deadline at `now`.
  void prune_late(SimTime now);

  // --- divergence watchdog (docs/FAULTS.md) ---
  // On consistent replicas a transmitter only speaks when its address falls
  // inside the interval every station is probing, so a success that fails
  // these checks proves the *local* replica has diverged (an asymmetric
  // receive fault rewrote some earlier observation). The checks are exact:
  // no false positives in fault-free operation.

  /// TTs: the sender's effective deadline-class index must lie in the
  /// probed interval.
  bool impossible_tts_success(const Frame& frame) const;
  /// STs: the sender must own a static index in the probed interval
  /// (judged only when config_.static_indices covers the sender).
  bool impossible_sts_success(const Frame& frame) const;
  /// Counts the detection and, when the configuration supports the
  /// quiet-period certificate, quarantines via reset_for_rejoin().
  /// Returns true when quarantined (the observation must not be processed).
  bool note_desync();


  /// f(reft, msg) with the f* + 1 floor; nullopt when the message cannot
  /// enter the current time tree (index beyond F - 1).
  std::optional<std::int64_t> effective_time_index(const Message& msg) const;

  /// EDF-first queued message due at or before the tie-break leaf.
  std::optional<Message> sts_candidate() const;

  Frame make_frame(const Message& msg) const;

  void start_epoch(SimTime now);
  void start_tts();
  void finish_tts(SimTime now);
  void finish_sts(SimTime now);

  /// True when an attached tracer is live (the emit helpers below bail out
  /// early otherwise, keeping the uninstrumented path to one branch).
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }
  void trace_instant(const char* name, const char* arg_names = "",
                     std::int64_t a0 = 0, std::int64_t a1 = 0,
                     std::int64_t a2 = 0);
  void trace_span(SimTime start, SimTime end, const char* name,
                  const char* arg_names = "", std::int64_t a0 = 0,
                  std::int64_t a1 = 0, std::int64_t a2 = 0);

  int id_;
  DdcrConfig config_;
  std::vector<std::int64_t> my_indices_;

  EdfQueue queue_;
  Mode mode_ = Mode::kCsmaCd;
  TreeSearchEngine time_engine_;
  TreeSearchEngine static_engine_;
  SimTime reft_;
  std::int64_t sts_leaf_ = -1;       ///< time leaf under tie-break
  std::size_t static_pos_ = 0;       ///< next of my indices usable this STs
  bool tts_saw_transmission_ = false;  ///< the `out` boolean of TTs
  bool post_tts_attempt_ = false;    ///< perpetual mode: restart TTs after
                                     ///< the à-la-CSMA-CD attempt slot
  int consecutive_empty_tts_ = 0;    ///< for the max_empty_tts cap
  int sts_retry_streak_ = 0;         ///< consecutive lone-leaf STs retries
                                     ///< (watchdog rule: bounded unless
                                     ///< replicas diverged)
  SimTime carried_reft_;             ///< compressed reft carried across
                                     ///< cap-closed epochs
  std::int64_t resync_silences_ = 0; ///< quiet streak heard while resyncing
  Counters counters_;

  // --- observability only (never part of protocol_digest()) ---
  obs::EventTracer* tracer_ = nullptr;
  std::int32_t trace_pid_ = 0;       ///< channel id = Perfetto process id
  SimTime trace_now_;                ///< timestamp for event-less hooks
};

}  // namespace hrtdm::core
