#include "core/ddcr_station.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrtdm::core {

const char* DdcrStation::mode_name(Mode mode) {
  switch (mode) {
    case Mode::kCsmaCd:
      return "csma-cd";
    case Mode::kTimeSearch:
      return "tts";
    case Mode::kStaticSearch:
      return "sts";
    case Mode::kResync:
      return "resync";
    case Mode::kOffline:
      return "offline";
  }
  return "?";
}

void DdcrStation::set_trace(obs::EventTracer* tracer, int channel_id) {
  tracer_ = tracer;
  trace_pid_ = channel_id;
  if (tracer_ != nullptr) {
    tracer_->set_thread_name(trace_pid_, id_ + 1,
                             "station " + std::to_string(id_));
  }
}

void DdcrStation::trace_instant(const char* name, const char* arg_names,
                                std::int64_t a0, std::int64_t a1,
                                std::int64_t a2) {
  if (!tracing()) {
    return;
  }
  tracer_->instant(trace_pid_, id_ + 1, trace_now_.ns(), name, arg_names, a0,
                   a1, a2);
}

void DdcrStation::trace_span(SimTime start, SimTime end, const char* name,
                             const char* arg_names, std::int64_t a0,
                             std::int64_t a1, std::int64_t a2) {
  if (!tracing()) {
    return;
  }
  tracer_->complete(trace_pid_, id_ + 1, start.ns(), end.ns() - start.ns(),
                    name, arg_names, a0, a1, a2);
}

StationSnapshot DdcrStation::snapshot() const {
  StationSnapshot snap;
  snap.id = id_;
  snap.mode = mode_name(mode_);
  snap.synced = synced();
  snap.queue_depth = queue_.size();
  if (const auto head = queue_.head()) {
    snap.has_head = true;
    snap.head_uid = head->uid;
    snap.head_deadline_ns = head->absolute_deadline.ns();
  }
  snap.reft_ns = reft_.ns();
  snap.tts_active = time_engine_.active();
  if (snap.tts_active) {
    snap.tts_lo = time_engine_.current().lo;
    snap.tts_size = time_engine_.current().size;
  }
  snap.tts_resolved = time_engine_.resolved_up_to();
  snap.sts_active = static_engine_.active();
  if (snap.sts_active) {
    snap.sts_lo = static_engine_.current().lo;
    snap.sts_size = static_engine_.current().size;
  }
  snap.sts_leaf = sts_leaf_;
  snap.resync_silences = resync_silences_;
  return snap;
}

DdcrStation::DdcrStation(int id, const DdcrConfig& config,
                         std::vector<std::int64_t> static_indices)
    : id_(id),
      config_(config),
      my_indices_(std::move(static_indices)),
      time_engine_(config.m_time, config.F, config.infer_last_child),
      static_engine_(config.m_static, config.q, config.infer_last_child) {
  HRTDM_EXPECT(id >= 0, "station id must be non-negative");
  HRTDM_EXPECT(!my_indices_.empty(), "a source needs >= 1 static index");
  HRTDM_EXPECT(std::is_sorted(my_indices_.begin(), my_indices_.end()),
               "static indices must be ranked increasing");
  HRTDM_EXPECT(my_indices_.front() >= 0 && my_indices_.back() < config.q,
               "static indices must lie in [0, q)");
}

void DdcrStation::enqueue(const Message& msg) {
  HRTDM_EXPECT(msg.source == id_, "message mapped to the wrong source");
  queue_.push(msg);
}

std::int64_t DdcrStation::raw_time_index(SimTime absolute_deadline) const {
  const util::Duration slack = absolute_deadline - (reft_ + config_.alpha);
  return slack.floor_div(config_.class_width_c);
}

std::optional<std::int64_t> DdcrStation::effective_time_index(
    const Message& msg) const {
  // f(reft, I.msg) = max(floor((DM - (alpha + reft)) / c), f* + 1). The
  // engine's resolved_up_to() is exactly f* + 1: leaves below it were
  // searched already, and the max guarantees a late message is processed
  // as soon as possible rather than waiting for the next time tree.
  const std::int64_t raw = raw_time_index(msg.absolute_deadline);
  const std::int64_t floor_idx = time_engine_.resolved_up_to();
  const std::int64_t idx = std::max(raw, floor_idx);
  if (idx > config_.F - 1) {
    return std::nullopt;  // beyond the scheduling horizon cF
  }
  return idx;
}

std::optional<Message> DdcrStation::sts_candidate() const {
  // Due-or-late rule (DESIGN.md decision 5): a message may enter the
  // tie-break for leaf j if its raw class index is <= j. The EDF head of
  // the eligible set is simply the queue head if it qualifies (EDF order
  // implies non-decreasing raw indices).
  const auto head = queue_.head();
  if (!head.has_value()) {
    return std::nullopt;
  }
  if (raw_time_index(head->absolute_deadline) > sts_leaf_) {
    return std::nullopt;
  }
  return head;
}

Frame DdcrStation::make_frame(const Message& msg) const {
  Frame frame;
  frame.source = id_;
  frame.msg_uid = msg.uid;
  frame.class_id = msg.class_id;
  frame.l_bits = msg.l_bits;
  frame.enqueue_time = msg.arrival;
  frame.absolute_deadline = msg.absolute_deadline;
  // Wired-OR arbitration key: earlier deadline wins, station id breaks ties
  // (section 5: message deadlines serve as ATM priorities). A positive
  // quantum models the coarse 802.1p priority field.
  const std::int64_t quantum = config_.arb_priority_quantum.ns();
  frame.arb_key = quantum > 0
                      ? util::floor_div(msg.absolute_deadline.ns(), quantum)
                      : msg.absolute_deadline.ns();
  return frame;
}

void DdcrStation::reset_for_rejoin() {
  // Validates that the configuration makes the quiet-period certificate
  // sound (bounded in-epoch silence streaks).
  (void)config_.resync_silence_threshold();
  trace_instant("resync-enter");
  time_engine_.abort();
  static_engine_.abort();
  mode_ = Mode::kResync;
  sts_leaf_ = -1;
  static_pos_ = 0;
  tts_saw_transmission_ = false;
  post_tts_attempt_ = false;
  consecutive_empty_tts_ = 0;
  sts_retry_streak_ = 0;
  resync_silences_ = 0;
  reft_ = SimTime();
  carried_reft_ = SimTime();
}

void DdcrStation::go_offline() {
  // Clears protocol state through the same path as a crash (the queue
  // survives), then parks the station out of the network entirely.
  reset_for_rejoin();
  mode_ = Mode::kOffline;
  ++counters_.churn_leaves;
  HRTDM_COUNT("ddcr.churn_leaves");
  trace_instant("offline-enter");
}

void DdcrStation::bring_online() {
  HRTDM_EXPECT(mode_ == Mode::kOffline,
               "bring_online() is only valid for an offline station");
  ++counters_.churn_joins;
  HRTDM_COUNT("ddcr.churn_joins");
  trace_instant("online-enter");
  reset_for_rejoin();
}

bool DdcrStation::impossible_tts_success(const Frame& frame) const {
  // A synced sender transmits in TTs only when its effective index
  // max(f(reft, msg), f* + 1) lies in the probed interval; both inputs are
  // replicated, so an out-of-interval index proves local divergence.
  const std::int64_t idx = std::max(raw_time_index(frame.absolute_deadline),
                                    time_engine_.resolved_up_to());
  return idx > config_.F - 1 || !time_engine_.current().contains(idx);
}

bool DdcrStation::impossible_sts_success(const Frame& frame) const {
  if (frame.source < 0 ||
      frame.source >= static_cast<int>(config_.static_indices.size())) {
    return false;  // partition unknown to this station: cannot judge
  }
  const auto& indices =
      config_.static_indices[static_cast<std::size_t>(frame.source)];
  if (indices.empty()) {
    return false;
  }
  const auto probed = static_engine_.current();
  return std::none_of(indices.begin(), indices.end(),
                      [&probed](std::int64_t leaf) {
                        return probed.contains(leaf);
                      });
}

bool DdcrStation::note_desync() {
  ++counters_.desyncs_detected;
  HRTDM_COUNT("ddcr.desyncs_detected");
  trace_instant("desync-detected");
  if (!config_.supports_quiet_rejoin()) {
    // No sound quiet-period certificate to re-enter through; record the
    // detection but keep the legacy behaviour (process the observation).
    return false;
  }
  ++counters_.quarantines;
  HRTDM_COUNT("ddcr.quarantines");
  trace_instant("quarantine");
  reset_for_rejoin();
  return true;
}

void DdcrStation::prune_late(SimTime now) {
  if (!config_.drop_late_messages) {
    return;
  }
  while (const auto head = queue_.head()) {
    if (head->absolute_deadline >= now) {
      return;
    }
    queue_.remove(head->uid);
    ++counters_.dropped_late;
    HRTDM_COUNT("ddcr.dropped_late");
  }
}

std::optional<Frame> DdcrStation::poll_intent(SimTime now) {
  prune_late(now);
  switch (mode_) {
    case Mode::kOffline:
      return std::nullopt;  // departed: not on the medium at all
    case Mode::kResync:
      return std::nullopt;  // listen-only until the quiet certificate
    case Mode::kCsmaCd: {
      const auto head = queue_.head();
      if (!head.has_value()) {
        return std::nullopt;
      }
      return make_frame(*head);
    }
    case Mode::kTimeSearch: {
      const auto head = queue_.head();
      if (!head.has_value()) {
        return std::nullopt;
      }
      const auto idx = effective_time_index(*head);
      if (!idx.has_value()) {
        return std::nullopt;
      }
      if (!time_engine_.current().contains(*idx)) {
        return std::nullopt;
      }
      return make_frame(*head);
    }
    case Mode::kStaticSearch: {
      if (static_pos_ >= my_indices_.size()) {
        return std::nullopt;  // all nu_i indices used this STs
      }
      const auto candidate = sts_candidate();
      if (!candidate.has_value()) {
        return std::nullopt;
      }
      if (!static_engine_.current().contains(my_indices_[static_pos_])) {
        return std::nullopt;
      }
      return make_frame(*candidate);
    }
  }
  return std::nullopt;
}

std::optional<Frame> DdcrStation::poll_burst(SimTime now,
                                             std::int64_t budget_bits) {
  // IEEE 802.3z packet bursting (section 5): having won the channel, chain
  // the next EDF-ranked messages without relinquishing, up to the budget.
  (void)now;
  if (mode_ == Mode::kResync || mode_ == Mode::kOffline) {
    // Crashed (or quarantined, or churned out) mid-burst: the station must
    // release the channel immediately.
    return std::nullopt;
  }
  const auto head = queue_.head();
  if (!head.has_value() || head->l_bits > budget_bits) {
    return std::nullopt;
  }
  return make_frame(*head);
}

void DdcrStation::start_epoch(SimTime now) {
  ++counters_.epochs;
  HRTDM_COUNT("ddcr.epochs");
  trace_instant("epoch-start", "epoch", counters_.epochs);
  // "reft is always set to local physical time whenever CSMA/DDCR is
  // started" — except that compression progress carried out of an epoch
  // the max_empty_tts cap closed must not be lost (every station carries
  // the same value, so consistency is preserved).
  reft_ = std::max(now, carried_reft_);
  post_tts_attempt_ = false;
  consecutive_empty_tts_ = 0;
  start_tts();
}

void DdcrStation::start_tts() {
  ++counters_.tts_runs;
  HRTDM_COUNT("ddcr.tts_runs");
  trace_instant("tts-start", "run,resolved", counters_.tts_runs,
                time_engine_.resolved_up_to());
  tts_saw_transmission_ = false;
  time_engine_.begin();  // root already probed by the triggering collision
  mode_ = Mode::kTimeSearch;
}

void DdcrStation::finish_tts(SimTime now) {
  // Boolean `out`: true iff at least one message was transmitted during
  // this time tree search (including inside nested static searches).
  const bool out = tts_saw_transmission_;
  HRTDM_OBSERVE("ddcr.tts_search_slots", time_engine_.search_slots());
  trace_instant("tts-end", "out,search_slots", out ? 1 : 0,
                time_engine_.search_slots());
  if (out) {
    // "attempt transmit msg* à la CSMA-CD": the next contention slot is a
    // plain CSMA-CD attempt; a collision there starts a fresh epoch.
    // The compressed-time carry is cleared: transmissions succeeded, so
    // the horizon crawl it was preserving has ended. (This also lets a
    // crash-recovered station — whose carry is necessarily empty —
    // converge to the live replicas' state.)
    consecutive_empty_tts_ = 0;
    carried_reft_ = SimTime();
    mode_ = Mode::kCsmaCd;
    post_tts_attempt_ = (config_.epoch_mode == EpochMode::kPerpetual);
    trace_instant("epoch-end", "epoch", counters_.epochs);
    return;
  }
  // out = false: pending messages sit beyond the horizon. Compressed time
  // shifts reft forward to pull them in; with theta = 0 the epoch closes
  // and physical time does the pulling on the next collision.
  ++consecutive_empty_tts_;
  if (config_.theta_factor > 0.0) {
    ++counters_.compressions;
    HRTDM_COUNT("ddcr.compressions");
    reft_ += config_.theta();
    if (config_.epoch_mode == EpochMode::kCsmaCdFallback &&
        config_.max_empty_tts > 0 &&
        consecutive_empty_tts_ >= config_.max_empty_tts) {
      // The cap closes the epoch but the compressed reference time is
      // carried into the next one, so compression still accumulates.
      carried_reft_ = reft_;
      consecutive_empty_tts_ = 0;
      mode_ = Mode::kCsmaCd;
      trace_instant("epoch-end", "epoch", counters_.epochs);
      return;
    }
    start_tts();
    return;
  }
  (void)now;
  consecutive_empty_tts_ = 0;
  mode_ = Mode::kCsmaCd;
  post_tts_attempt_ = (config_.epoch_mode == EpochMode::kPerpetual);
  trace_instant("epoch-end", "epoch", counters_.epochs);
}

void DdcrStation::finish_sts(SimTime now) {
  // "Variable reft is updated by STs, upon completion."
  HRTDM_OBSERVE("ddcr.sts_search_slots", static_engine_.search_slots());
  trace_instant("sts-end", "leaf,search_slots", sts_leaf_,
                static_engine_.search_slots());
  reft_ = now;
  sts_leaf_ = -1;
  mode_ = Mode::kTimeSearch;
  if (time_engine_.done()) {
    finish_tts(now);
  }
}

void DdcrStation::observe(const SlotObservation& obs) {
  if (mode_ == Mode::kOffline) {
    return;  // not listening: off the medium entirely
  }
  const bool mine = obs.frame.has_value() && obs.frame->source == id_;
  const SimTime now = obs.slot_end;
  trace_now_ = now;

  // Frame bookkeeping is mode-independent: every delivered frame of ours
  // leaves the queue.
  if (obs.kind == net::SlotKind::kSuccess && mine) {
    const bool removed = queue_.remove(obs.frame->msg_uid);
    HRTDM_ENSURE(removed, "delivered frame was not queued");
    ++counters_.transmitted;
    HRTDM_COUNT("ddcr.transmitted");
    if (obs.in_burst) {
      ++counters_.burst_transmitted;
      HRTDM_COUNT("ddcr.burst_transmitted");
    }
  }

  // Burst continuations never advance protocol search state: the channel
  // was not relinquished, so no new probe happened.
  if (obs.in_burst) {
    if (mode_ != Mode::kCsmaCd) {
      tts_saw_transmission_ = tts_saw_transmission_ ||
                              obs.kind == net::SlotKind::kSuccess;
    }
    return;
  }

  switch (mode_) {
    case Mode::kOffline:
      return;  // unreachable (early return above); keeps the switch total
    case Mode::kResync: {
      if (obs.kind == net::SlotKind::kSilence) {
        if (++resync_silences_ >= config_.resync_silence_threshold()) {
          // Quiet certificate: no epoch can still be in progress, so every
          // live station is in CSMA-CD mode — joining it is consistent.
          ++counters_.rejoins;
          HRTDM_COUNT("ddcr.rejoins");
          trace_instant("rejoin", "quiet_slots", resync_silences_);
          mode_ = Mode::kCsmaCd;
        }
      } else {
        resync_silences_ = 0;
      }
      return;
    }
    case Mode::kCsmaCd: {
      if (obs.kind == net::SlotKind::kCollision) {
        // Every source initiates CSMA/DDCR, message or not.
        start_epoch(now);
        return;
      }
      // Silence, successes and arbitration wins keep CSMA-CD going; in
      // perpetual mode the post-TTs attempt slot has now resolved, so the
      // next time tree search starts immediately.
      if (post_tts_attempt_) {
        post_tts_attempt_ = false;
        start_tts();
      }
      return;
    }
    case Mode::kTimeSearch: {
      if (config_.enable_divergence_watchdog &&
          obs.kind == net::SlotKind::kSuccess && !obs.arbitration &&
          obs.frame.has_value() && impossible_tts_success(*obs.frame) &&
          note_desync()) {
        return;  // quarantined: the observation proves we are the outlier
      }
      ++counters_.search_slots_time;
      if (obs.kind == net::SlotKind::kSuccess) {
        --counters_.search_slots_time;  // successes are not search slots
        tts_saw_transmission_ = true;
        // "whenever a message is successfully transmitted during a time
        //  tree search": reft advances to local physical time.
        reft_ = now;
      }
      const auto fb =
          obs.kind == net::SlotKind::kSilence
              ? TreeSearchEngine::Feedback::kSilence
              : obs.kind == net::SlotKind::kSuccess
                    ? TreeSearchEngine::Feedback::kSuccess
                    : TreeSearchEngine::Feedback::kCollision;
      const auto probed_time = time_engine_.current();
      const auto leaf_hint = obs.kind == net::SlotKind::kCollision &&
                                     probed_time.size == 1
                                 ? probed_time.lo
                                 : -1;
      const auto result = time_engine_.feedback(fb);
      // Descent step span: the probed deadline-class interval laid over the
      // slot it consumed, on this station's Perfetto track.
      trace_span(obs.slot_start, obs.slot_end, "tts-probe", "lo,size,resolved",
                 probed_time.lo, probed_time.size,
                 time_engine_.resolved_up_to());
      if (result == TreeSearchEngine::StepResult::kLeafCollision) {
        // s > 1 messages share one deadline class: run the static tree
        // tie-break. Its root probe was this very collision.
        HRTDM_ENSURE(leaf_hint >= 0, "leaf collision without a leaf");
        sts_leaf_ = leaf_hint;
        static_pos_ = 0;
        sts_retry_streak_ = 0;
        ++counters_.sts_runs;
        HRTDM_COUNT("ddcr.sts_runs");
        trace_instant("sts-start", "leaf", sts_leaf_);
        static_engine_.begin();
        mode_ = Mode::kStaticSearch;
        return;
      }
      if (time_engine_.done()) {
        finish_tts(now);
      }
      return;
    }
    case Mode::kStaticSearch: {
      if (config_.enable_divergence_watchdog &&
          obs.kind == net::SlotKind::kSuccess && !obs.arbitration &&
          obs.frame.has_value() && impossible_sts_success(*obs.frame) &&
          note_desync()) {
        return;  // quarantined: the observation proves we are the outlier
      }
      ++counters_.search_slots_static;
      TreeSearchEngine::Feedback fb;
      switch (obs.kind) {
        case net::SlotKind::kSilence:
          fb = TreeSearchEngine::Feedback::kSilence;
          break;
        case net::SlotKind::kSuccess:
          --counters_.search_slots_static;
          fb = TreeSearchEngine::Feedback::kSuccess;
          tts_saw_transmission_ = true;
          if (mine) {
            // "Next index in the ranking is used to keep conducting m-ts."
            ++static_pos_;
          }
          break;
        case net::SlotKind::kCollision:
          fb = TreeSearchEngine::Feedback::kCollision;
          break;
        default:
          HRTDM_ENSURE(false, "unreachable slot kind");
          return;
      }
      const auto probed = static_engine_.current();
      const auto result = static_engine_.feedback(fb);
      trace_span(obs.slot_start, obs.slot_end, "sts-probe", "lo,size,leaf",
                 probed.lo, probed.size, sts_leaf_);
      if (result == TreeSearchEngine::StepResult::kLeafCollision) {
        // Static indices are unique per source, so a genuine tie is
        // impossible — this is a lone transmission destroyed by channel
        // noise. The leaf cannot be split further; probe it again. A
        // *streak* of such retries is the watchdog's third rule: repeated
        // noise has vanishing probability, but a diverged replica
        // contending out of turn collides here every slot, so an unbounded
        // streak means this search can never complete.
        ++counters_.static_leaf_retries;
        HRTDM_COUNT("ddcr.static_leaf_retries");
        if (config_.enable_divergence_watchdog &&
            config_.sts_retry_desync_threshold > 0 &&
            ++sts_retry_streak_ == config_.sts_retry_desync_threshold &&
            note_desync()) {
          return;  // quarantined: the retry loop proves divergence
        }
        static_engine_.requeue(probed);
        return;
      }
      sts_retry_streak_ = 0;
      if (static_engine_.done()) {
        finish_sts(now);
      }
      return;
    }
  }
}

std::uint64_t DdcrStation::protocol_digest() const {
  util::SplitMix64 seed_mix(0xDDC12ULL);
  std::uint64_t h = seed_mix.next();
  auto mix = [&h](std::uint64_t v) {
    util::SplitMix64 m(h ^ v);
    h = m.next();
  };
  mix(static_cast<std::uint64_t>(mode_));
  mix(static_cast<std::uint64_t>(reft_.ns()));
  mix(static_cast<std::uint64_t>(carried_reft_.ns()));
  mix(static_cast<std::uint64_t>(consecutive_empty_tts_));
  mix(static_cast<std::uint64_t>(sts_leaf_));
  mix(static_cast<std::uint64_t>(tts_saw_transmission_));
  mix(static_cast<std::uint64_t>(post_tts_attempt_));
  mix(time_engine_.digest());
  mix(static_engine_.digest());
  return h;
}

}  // namespace hrtdm::core
