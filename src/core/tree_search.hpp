// The m-ary tree-search procedure m-ts (section 3.2), as a replicated
// deterministic state machine.
//
// Every station runs an identical copy of this engine, driven exclusively by
// the channel feedback everyone hears (silence / success / collision). Each
// probe targets an interval of leaf indices — the leaves of the subtree
// currently being examined; stations whose index falls inside the interval
// transmit. Feedback advances the DFS:
//
//   silence   -> the subtree holds no active source: prune   (1 search slot)
//   success   -> exactly one active source: it transmitted    (0 slots)
//   collision -> split into the m child subtrees, leftmost first (1 slot)
//
// A collision on a single-leaf interval cannot be split further; the engine
// reports it so the caller can run the tie-breaking static tree search
// (time trees) or treat it as a protocol-fatal event (static trees, where
// indices are unique by construction).
//
// Because all stations consume identical feedback, all replicas stay in
// lock-step — the distributed-consistency invariant the test suite checks
// by digest comparison.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace hrtdm::core {

class TreeSearchEngine {
 public:
  /// `leaves` must be a power of `m`. With `infer_last_child` enabled the
  /// engine applies the classic collision-resolution inference the paper's
  /// Eq. 1 recursion deliberately excludes: when the first m-1 children of
  /// a collided node all turn out silent, the last child must hold every
  /// colliding station (>= 2 of them), so its probe is skipped and the
  /// search descends directly. All replicas draw the same inference from
  /// the same feedback, so consistency is preserved; measured search costs
  /// drop below xi(k, t) (see bench E20).
  TreeSearchEngine(int m, std::int64_t leaves, bool infer_last_child = false);

  /// Starts a search with the root already probed (the collision that
  /// triggered the search counts as the root probe): the m root children
  /// are pending, leftmost on top.
  void begin();

  /// Discards any search in progress (crash / MAC reset recovery).
  void abort() {
    stack_.clear();
    groups_.clear();
  }

  /// A search is also considered done before the first begin().
  bool done() const { return stack_.empty(); }
  bool active() const { return !stack_.empty(); }

  struct Interval {
    std::int64_t lo = 0;
    std::int64_t size = 0;
    std::int64_t hi() const { return lo + size; }  // exclusive
    bool contains(std::int64_t leaf) const {
      return leaf >= lo && leaf < hi();
    }
  };

  /// The interval being probed this slot. Requires active().
  Interval current() const;

  enum class Feedback { kSilence, kSuccess, kCollision };
  enum class StepResult {
    kPruned,         ///< silence: interval removed
    kTransmitted,    ///< success: interval removed
    kDescended,      ///< collision on an internal interval: split
    kLeafCollision,  ///< collision on a single leaf: caller must tie-break
    kFinished,       ///< the removed interval was the last one
  };

  /// Consumes one slot of channel feedback. Requires active().
  /// On kLeafCollision the leaf is popped — the caller's tie-break procedure
  /// is responsible for every message in it.
  StepResult feedback(Feedback fb);

  /// Re-queues an interval as the next probe. Used to retry a leaf whose
  /// lone transmission was destroyed by channel noise (the collision
  /// cannot be split further); `interval.lo` must not precede the current
  /// left-to-right frontier, so resolved_up_to() stays monotone.
  void requeue(Interval interval);

  /// Leaves strictly below this index are fully resolved (f* + 1 in the
  /// paper's terms; equals `leaves` once done).
  std::int64_t resolved_up_to() const;

  /// Collision + silence slots consumed since begin() — the quantity xi
  /// bounds. Successful transmissions cost nothing (they are accounted as
  /// transmission time, not search time).
  std::int64_t search_slots() const { return search_slots_; }
  std::int64_t collision_slots() const { return collision_slots_; }
  std::int64_t silence_slots() const { return silence_slots_; }
  std::int64_t inferred_skips() const { return inferred_skips_; }

  int m() const { return m_; }
  std::int64_t leaves() const { return leaves_; }

  /// Order-sensitive digest of the replicated state (for consistency
  /// checks across stations).
  std::uint64_t digest() const;

 private:
  struct Entry {
    Interval interval;
    /// Sibling-group id (children of one collided parent share it);
    /// 0 = no group (requeued entries), exempt from inference.
    std::uint64_t group = 0;
  };
  struct Group {
    int remaining = 0;    ///< unprobed entries of the group still stacked
    bool activity = false;  ///< some probed sibling was non-silent
  };

  /// Applies the last-child inference to the top of the stack until the
  /// next genuine probe is exposed.
  void normalize();
  void push_children(Interval parent);
  void note_outcome(const Entry& entry, bool silent);

  int m_;
  std::int64_t leaves_;
  bool infer_last_child_;
  std::vector<Entry> stack_;  // back() is the next interval to probe
  std::map<std::uint64_t, Group> groups_;
  std::uint64_t next_group_ = 1;
  std::int64_t search_slots_ = 0;
  std::int64_t collision_slots_ = 0;
  std::int64_t silence_slots_ = 0;
  std::int64_t inferred_skips_ = 0;
};

}  // namespace hrtdm::core
