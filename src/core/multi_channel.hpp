// Parallel broadcast media (section 3.1: "a broadcast medium — many such
// media can be used in parallel").
//
// Each channel is an independent CSMA/DDCR segment; message classes are
// partitioned across channels at design time (a class's traffic always
// uses one channel, so per-class FIFO/EDF semantics are preserved and the
// per-channel feasibility conditions apply verbatim). The partitioner
// balances offered load greedily; the runner executes the per-channel
// simulations and aggregates metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ddcr_network.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::core {

/// Assignment of every class (by id) to a channel in [0, channels).
struct ChannelPlan {
  int channels = 1;
  /// plan[i] = {class ids on channel i}.
  std::vector<std::vector<int>> classes_per_channel;
  /// Offered load (bits/s) per channel under the plan.
  std::vector<double> load_per_channel;

  /// Largest/smallest channel load ratio (1.0 = perfectly balanced).
  double imbalance() const;
};

/// Greedy balanced partition: classes sorted by offered load, each placed
/// on the currently lightest channel (LPT scheduling).
ChannelPlan plan_channels(const traffic::Workload& workload, int channels);

/// The sub-workload of one channel under a plan: sources keep their ids;
/// sources with no class on the channel are dropped (they do not attach a
/// station there).
traffic::Workload channel_workload(const traffic::Workload& workload,
                                   const ChannelPlan& plan, int channel);

struct MultiChannelResult {
  std::vector<DdcrRunResult> per_channel;
  ChannelPlan plan;
  // Aggregates across channels:
  std::int64_t generated = 0;
  std::int64_t delivered = 0;
  std::int64_t misses = 0;
  std::int64_t undelivered = 0;
  double worst_latency_s = 0.0;
  double mean_utilization = 0.0;
  /// Order-sensitive combination of the per-channel protocol digests
  /// (channel order) — one number summarizing every replica's final state.
  std::uint64_t protocol_digest = 0;
};

/// The RNG seed channel `channel` runs under when the multi-channel run is
/// seeded with `base`. Seeds are drawn from a SplitMix64 stream keyed by
/// `base` (not `base + channel`, which would make run(seed=s, ch=1) replay
/// the exact arrival stream of run(seed=s+1, ch=0)).
std::uint64_t channel_seed(std::uint64_t base, int channel);

/// Runs the workload over `channels` parallel CSMA/DDCR segments (each an
/// independent simulation — the media do not interact) and aggregates.
/// `threads` > 1 executes the per-channel simulations on a deterministic
/// worker pool; results are bit-identical to the serial (threads = 1) run.
MultiChannelResult run_multi_channel(const traffic::Workload& workload,
                                     int channels,
                                     const DdcrRunOptions& options,
                                     int threads = 1);

}  // namespace hrtdm::core
