// Facade: builds a complete CSMA/DDCR network (simulator, channel,
// stations, traffic injection, metrics) from a workload and runs it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ddcr_config.hpp"
#include "core/ddcr_station.hpp"
#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"
#include "traffic/workload.hpp"

namespace hrtdm::obs {
class ChannelTracer;
class EventTracer;
}  // namespace hrtdm::obs

namespace hrtdm::core {

struct DdcrRunOptions {
  net::PhyConfig phy = net::PhyConfig::gigabit_ethernet();
  net::CollisionMode collision_mode = net::CollisionMode::kDestructive;
  /// ddcr.static_indices may be left empty: one spread index per source is
  /// allocated automatically.
  DdcrConfig ddcr;
  traffic::ArrivalKind arrivals = traffic::ArrivalKind::kSaturatingAdversary;
  /// Arrivals are generated over [0, arrival_horizon).
  SimTime arrival_horizon = SimTime::from_ns(100'000'000);
  /// After the arrival horizon the run continues (no new arrivals) until
  /// the queues drain or this cap is hit.
  SimTime drain_cap = SimTime::from_ns(400'000'000);
  std::uint64_t seed = 1;
  /// Compare every station's protocol digest after every slot (slow; used
  /// by the distributed-consistency tests).
  bool check_consistency = false;
  /// The run intends to exercise crash/rejoin or watchdog quarantine:
  /// configurations under which the quiet-period certificate is unsound
  /// (rejoin would livelock) are rejected at network construction with an
  /// actionable message instead of failing deep inside reset_for_rejoin().
  /// Fault campaigns (fault::run_campaign) set this implicitly.
  bool require_rejoinable = false;
  /// Number of scripted churn events (fault::ChurnPlan) the harness intends
  /// to drive through this network's stations. The core layer never sees
  /// the plan itself — churn is executed by the fault layer through
  /// go_offline()/bring_online() — but a nonzero declaration is validated
  /// at construction: every join re-enters through the quiet-period resync,
  /// so churn without require_rejoinable (the PR 1 crash-path rule) is
  /// rejected up front instead of failing deep inside bring_online().
  std::int64_t churn_events = 0;
  /// Protocol event tracer for this run. nullptr means "use the global
  /// tracer when HRTDM_TRACE_OUT / obs::set_trace_out enabled it"; pass a
  /// tracer explicitly to capture one run in isolation. Tracing never
  /// affects protocol state or digests.
  obs::EventTracer* tracer = nullptr;
  /// Perfetto process id for this run's channel track (multi-channel runs
  /// assign each channel its own id so tracks do not collide).
  int trace_channel = 0;
  /// Opt-in differential conformance checking (src/check): a ground-truth
  /// slot recorder is attached to the channel and, after the run, the
  /// recorded stream is replayed against an independent centralized NP-EDF
  /// oracle, the exact xi(k, t) / P2 search-cost bounds and an epoch
  /// accounting replica. Results land in DdcrRunResult::conformance; the
  /// checker is observation-only (protocol digests are unchanged).
  /// Requires hrtdm_check to be linked and
  /// check::install_conformance_auditor() to have been called — the run
  /// fails with an actionable contract violation otherwise.
  bool conformance_check = false;
};

/// Outcome of the opt-in differential conformance check (src/check).
struct ConformanceReport {
  bool checked = false;  ///< a checker actually ran
  bool ok = true;        ///< no violations found (vacuously true unchecked)
  std::vector<std::string> violations;
  std::int64_t slots_checked = 0;
  std::int64_t epochs = 0;             ///< epochs the tracker replayed
  std::int64_t tts_bound_checked = 0;  ///< time tree runs held against xi
  std::int64_t sts_bound_checked = 0;  ///< static tree runs held against xi
  std::int64_t p2_windows_checked = 0; ///< multi-tree windows vs Eq. 16-19
  std::int64_t edf_pairs_checked = 0;  ///< deliveries swept for EDF order
  std::int64_t observed_misses = 0;
  std::int64_t oracle_misses = 0;      ///< ideal centralized NP-EDF misses
  bool oracle_feasible = false;
  double oracle_makespan_s = 0.0;
  double observed_makespan_s = 0.0;
  /// One-line human rendering ("conformance OK: ..." / first violation).
  std::string summary() const;
};

struct DdcrRunResult {
  MetricsSummary metrics;
  net::ChannelStats channel;
  std::vector<DdcrStation::Counters> per_station;
  std::int64_t generated = 0;    ///< messages injected
  std::int64_t undelivered = 0;  ///< still queued when the run ended
  std::int64_t dropped_late = 0; ///< shed by drop_late_messages
  std::int64_t desyncs_detected = 0; ///< watchdog detections (all stations)
  std::int64_t quarantines = 0;      ///< watchdog self-resets (all stations)
  std::int64_t rejoins = 0;          ///< completed quiet-period rejoins
  double utilization = 0.0;      ///< busy fraction of channel time
  bool consistency_ok = true;    ///< all digests agreed on every slot
  /// Order-sensitive combination (FNV-1a chain, station order) of every
  /// station's protocol_digest() at the end of the run — the replicated
  /// protocol state as one number, used by the serial-vs-parallel
  /// determinism tests.
  std::uint64_t protocol_digest = 0;
  /// End-of-run introspection snapshots (docs/OBSERVABILITY.md).
  std::vector<StationSnapshot> snapshots;
  net::ChannelSnapshot channel_snapshot;
  /// Filled when DdcrRunOptions::conformance_check was set.
  ConformanceReport conformance;
};

/// Seam through which run_ddcr reaches the differential conformance
/// checker. The core library cannot link src/check (check sits above core),
/// so the checker installs a factory at static-init / first-use time via
/// check::install_conformance_auditor(); run_ddcr instantiates one auditor
/// per conformance-checked run.
class RunAuditor {
 public:
  virtual ~RunAuditor() = default;
  /// The observer that records the run's ground-truth slot stream; attached
  /// to the channel before start().
  virtual net::ChannelObserver& observer() = 0;
  /// Called once, after the run completed and `result` was fully populated
  /// (metrics, channel stats, per-station counters); fills
  /// result.conformance.
  virtual void finish(DdcrRunResult& result) = 0;
};

using AuditorFactory = std::unique_ptr<RunAuditor> (*)(
    const traffic::Workload& workload, const DdcrRunOptions& resolved);

/// Installs the factory conformance-checked runs construct auditors with.
/// Passing nullptr uninstalls it.
void set_auditor_factory(AuditorFactory factory);
AuditorFactory auditor_factory();

/// Runs the workload through a CSMA/DDCR network and returns the metrics.
DdcrRunResult run_ddcr(const traffic::Workload& workload,
                       const DdcrRunOptions& options);

/// Lower-level harness used by tests and the sim-vs-analysis benches: a
/// network with externally controlled message injection.
class DdcrTestbed {
 public:
  DdcrTestbed(int stations, const DdcrRunOptions& options);
  /// Out of line: the ChannelTracer member is only forward-declared here.
  ~DdcrTestbed();

  sim::Simulator& simulator() { return simulator_; }
  net::BroadcastChannel& channel() { return *channel_; }
  DdcrStation& station(int id) { return *stations_.at(static_cast<std::size_t>(id)); }
  MetricsCollector& metrics() { return metrics_; }
  int station_count() const { return static_cast<int>(stations_.size()); }

  /// Injects a message at the given arrival time (scheduled, not direct).
  void inject(int source, const traffic::Message& msg);

  /// Starts the channel and runs until `horizon`.
  void run(SimTime horizon);

  /// Starts the channel and runs until `count` frames have been delivered
  /// (or `cap` is reached) — the efficient way to run delivery-bounded
  /// scenarios without simulating trailing idle slots.
  void run_until_delivered(std::int64_t count, SimTime cap);

  /// True iff all stations' protocol digests currently agree.
  bool digests_agree() const;

  /// Total queued messages across stations.
  std::int64_t queued() const;

  /// Introspection snapshots of the current state (docs/OBSERVABILITY.md).
  net::ChannelSnapshot channel_snapshot() const;
  std::vector<StationSnapshot> station_snapshots() const;

 private:
  sim::Simulator simulator_;
  DdcrRunOptions options_;
  std::unique_ptr<net::BroadcastChannel> channel_;
  std::vector<std::unique_ptr<DdcrStation>> stations_;
  MetricsCollector metrics_;
  std::unique_ptr<obs::ChannelTracer> channel_tracer_;
  bool started_ = false;
};

/// The tracer a run should emit into: options.tracer when set, else the
/// global tracer when it is enabled (HRTDM_TRACE_OUT / --trace-out), else
/// nullptr (tracing off).
obs::EventTracer* effective_tracer(const DdcrRunOptions& options);

}  // namespace hrtdm::core
