#include "core/tree_search.hpp"

#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrtdm::core {

TreeSearchEngine::TreeSearchEngine(int m, std::int64_t leaves,
                                   bool infer_last_child)
    : m_(m), leaves_(leaves), infer_last_child_(infer_last_child) {
  HRTDM_EXPECT(m >= 2, "branching degree must be >= 2");
  HRTDM_EXPECT(util::is_power_of(m, leaves), "leaves must be a power of m");
}

void TreeSearchEngine::push_children(Interval parent) {
  const std::int64_t child = parent.size / m_;
  const std::uint64_t group = next_group_++;
  groups_[group] = Group{m_, false};
  // Rightmost first so the leftmost child is on top.
  for (int i = m_ - 1; i >= 0; --i) {
    stack_.push_back(Entry{Interval{parent.lo + i * child, child}, group});
  }
}

void TreeSearchEngine::note_outcome(const Entry& entry, bool silent) {
  if (entry.group == 0) {
    return;
  }
  const auto it = groups_.find(entry.group);
  HRTDM_ENSURE(it != groups_.end(), "sibling group lost");
  --it->second.remaining;
  it->second.activity = it->second.activity || !silent;
  if (it->second.remaining == 0) {
    groups_.erase(it);
  }
}

void TreeSearchEngine::normalize() {
  if (!infer_last_child_) {
    return;
  }
  while (!stack_.empty()) {
    const Entry top = stack_.back();
    if (top.group == 0 || top.interval.size == 1) {
      return;  // requeued entry or a leaf: always genuinely probed
    }
    const auto it = groups_.find(top.group);
    HRTDM_ENSURE(it != groups_.end(), "sibling group lost");
    if (it->second.remaining != 1 || it->second.activity) {
      return;  // earlier siblings still pending, or one was non-silent
    }
    // Every earlier sibling was silent, so this last child must contain
    // all >= 2 colliders of the parent: descend without spending a slot.
    ++inferred_skips_;
    stack_.pop_back();
    groups_.erase(it);
    push_children(top.interval);
  }
}

void TreeSearchEngine::begin() {
  HRTDM_EXPECT(stack_.empty(), "previous search still in progress");
  // Registry totals are flushed here — once per search, not per feedback
  // slot — so the feedback() hot path (bench E15 BM_TreeSearchEngine)
  // stays untouched. The per-search *distributions* (including the last
  // search of a run) are captured by the ddcr.*_search_slots histograms in
  // DdcrStation; these totals lag by the search in progress.
  HRTDM_COUNT("tree.searches");
  HRTDM_COUNT_N("tree.silence_slots", silence_slots_);
  HRTDM_COUNT_N("tree.collision_slots", collision_slots_);
  HRTDM_COUNT_N("tree.inferred_skips", inferred_skips_);
  search_slots_ = 0;
  collision_slots_ = 0;
  silence_slots_ = 0;
  inferred_skips_ = 0;
  groups_.clear();
  if (leaves_ == 1) {
    // Degenerate single-leaf tree: the root is the only leaf, and it was
    // already probed by the triggering collision — nothing to search.
    return;
  }
  // The triggering collision is the root probe: its children form the
  // first sibling group. No inference applies to them (the root is known
  // collided, but its group has no probed siblings yet).
  push_children(Interval{0, leaves_});
  normalize();
}

TreeSearchEngine::Interval TreeSearchEngine::current() const {
  HRTDM_EXPECT(!stack_.empty(), "no search in progress");
  return stack_.back().interval;
}

TreeSearchEngine::StepResult TreeSearchEngine::feedback(Feedback fb) {
  HRTDM_EXPECT(!stack_.empty(), "no search in progress");
  const Entry probed = stack_.back();
  StepResult result = StepResult::kFinished;
  switch (fb) {
    case Feedback::kSilence:
      ++search_slots_;
      ++silence_slots_;
      stack_.pop_back();
      note_outcome(probed, /*silent=*/true);
      result = stack_.empty() ? StepResult::kFinished : StepResult::kPruned;
      break;
    case Feedback::kSuccess:
      stack_.pop_back();
      note_outcome(probed, /*silent=*/false);
      result = stack_.empty() ? StepResult::kFinished
                              : StepResult::kTransmitted;
      break;
    case Feedback::kCollision: {
      ++search_slots_;
      ++collision_slots_;
      stack_.pop_back();
      note_outcome(probed, /*silent=*/false);
      if (probed.interval.size == 1) {
        // The tie-break procedure resolves every message on this leaf; pop
        // it so the search resumes at the adjacent subtree afterwards.
        result = StepResult::kLeafCollision;
        break;
      }
      push_children(probed.interval);
      result = StepResult::kDescended;
      break;
    }
  }
  normalize();
  if (stack_.empty() && result != StepResult::kLeafCollision) {
    result = StepResult::kFinished;
  }
  return result;
}

void TreeSearchEngine::requeue(Interval interval) {
  HRTDM_EXPECT(interval.size >= 1 && interval.lo >= 0 &&
                   interval.hi() <= leaves_,
               "requeued interval out of range");
  HRTDM_EXPECT(stack_.empty() || interval.lo <= stack_.back().interval.lo,
               "requeue must not skip ahead of the DFS frontier");
  stack_.push_back(Entry{interval, 0});
}

std::int64_t TreeSearchEngine::resolved_up_to() const {
  if (stack_.empty()) {
    return leaves_;
  }
  // DFS is strictly left-to-right: everything left of the pending top is
  // resolved.
  return stack_.back().interval.lo;
}

std::uint64_t TreeSearchEngine::digest() const {
  util::SplitMix64 mixer(0x9E3779B97F4A7C15ULL ^
                         static_cast<std::uint64_t>(search_slots_));
  std::uint64_t h = mixer.next();
  auto mix = [&h](std::uint64_t v) {
    util::SplitMix64 m2(h ^ v);
    h = m2.next();
  };
  mix(static_cast<std::uint64_t>(m_));
  mix(static_cast<std::uint64_t>(leaves_));
  mix(static_cast<std::uint64_t>(inferred_skips_));
  for (const Entry& entry : stack_) {
    mix(static_cast<std::uint64_t>(entry.interval.lo));
    mix(static_cast<std::uint64_t>(entry.interval.size));
    if (entry.group != 0) {
      const auto it = groups_.find(entry.group);
      if (it != groups_.end()) {
        mix(static_cast<std::uint64_t>(it->second.remaining));
        mix(static_cast<std::uint64_t>(it->second.activity));
      }
    }
  }
  return h;
}

}  // namespace hrtdm::core
