#include "core/ddcr_network.hpp"

#include <algorithm>
#include <sstream>

#include "obs/channel_tracer.hpp"
#include "util/check.hpp"

namespace hrtdm::core {

namespace {
AuditorFactory g_auditor_factory = nullptr;
}  // namespace

void set_auditor_factory(AuditorFactory factory) {
  g_auditor_factory = factory;
}

AuditorFactory auditor_factory() { return g_auditor_factory; }

std::string ConformanceReport::summary() const {
  if (!checked) {
    return "conformance: not checked";
  }
  std::ostringstream os;
  if (ok) {
    os << "conformance OK: " << slots_checked << " slots, " << epochs
       << " epochs, " << tts_bound_checked << " TTs + " << sts_bound_checked
       << " STs runs vs xi, " << p2_windows_checked << " P2 windows, "
       << edf_pairs_checked << " EDF comparisons";
    return os.str();
  }
  os << "conformance FAILED (" << violations.size()
     << " violation(s)); first: "
     << (violations.empty() ? "?" : violations.front());
  return os.str();
}

obs::EventTracer* effective_tracer(const DdcrRunOptions& options) {
  if (options.tracer != nullptr) {
    return options.tracer;
  }
  obs::EventTracer& global = obs::EventTracer::global();
  return global.enabled() ? &global : nullptr;
}

namespace {

/// Channel observer that verifies the replicated protocol state after every
/// slot delivery (stations observe before channel observers run).
class ConsistencyChecker final : public net::ChannelObserver {
 public:
  explicit ConsistencyChecker(
      const std::vector<std::unique_ptr<DdcrStation>>& stations)
      : stations_(stations) {}

  void on_slot(const net::SlotRecord& record) override {
    (void)record;
    // Stations in the listen-only resync phase intentionally hold no
    // protocol state; consistency is over the synced replicas.
    bool have_reference = false;
    std::uint64_t reference = 0;
    for (const auto& station : stations_) {
      if (!station->synced()) {
        continue;
      }
      if (!have_reference) {
        reference = station->protocol_digest();
        have_reference = true;
      } else if (station->protocol_digest() != reference) {
        ok_ = false;
        return;
      }
    }
  }

  /// Quiescent stations hold their digests through an idle gap, so one
  /// check covers the whole span.
  void on_idle_gap(std::int64_t slots, net::SimTime first_start,
                   util::Duration slot_x) override {
    (void)first_start;
    (void)slot_x;
    if (slots > 0) {
      on_slot(net::SlotRecord{});
    }
  }

  bool ok() const { return ok_; }

 private:
  const std::vector<std::unique_ptr<DdcrStation>>& stations_;
  bool ok_ = true;
};

DdcrConfig with_default_indices(DdcrConfig config, int z) {
  if (config.static_indices.empty()) {
    config.static_indices = DdcrConfig::one_index_per_source(z, config.q);
  }
  config.validate(z);
  return config;
}

DdcrRunOptions resolve_options(DdcrRunOptions options, int z) {
  options.ddcr = with_default_indices(options.ddcr, z);
  HRTDM_EXPECT(options.churn_events >= 0,
               "churn_events cannot be negative");
  HRTDM_EXPECT(options.churn_events == 0 || options.require_rejoinable,
               "a churn plan drives stations through the quiet-period "
               "rejoin path: set require_rejoinable when churn_events > 0");
  if (options.require_rejoinable) {
    options.ddcr.validate_rejoinable();
  }
  return options;
}

}  // namespace

DdcrTestbed::DdcrTestbed(int stations, const DdcrRunOptions& options)
    : options_(options) {
  HRTDM_EXPECT(stations >= 1, "need at least one station");
  options_ = resolve_options(options_, stations);
  channel_ = std::make_unique<net::BroadcastChannel>(
      simulator_, options_.phy, options_.collision_mode);
  for (int s = 0; s < stations; ++s) {
    stations_.push_back(std::make_unique<DdcrStation>(
        s, options_.ddcr,
        options_.ddcr.static_indices[static_cast<std::size_t>(s)]));
    channel_->attach(*stations_.back());
  }
  channel_->add_observer(metrics_);
  if (obs::EventTracer* tracer = effective_tracer(options_)) {
    channel_tracer_ =
        std::make_unique<obs::ChannelTracer>(*tracer, options_.trace_channel);
    channel_->add_observer(*channel_tracer_);
    for (auto& station : stations_) {
      station->set_trace(tracer, options_.trace_channel);
    }
  }
}

DdcrTestbed::~DdcrTestbed() = default;

void DdcrTestbed::inject(int source, const traffic::Message& msg) {
  HRTDM_EXPECT(source >= 0 && source < station_count(),
               "source id out of range");
  HRTDM_EXPECT(msg.arrival >= simulator_.now(),
               "cannot inject a message in the past");
  DdcrStation* station = stations_[static_cast<std::size_t>(source)].get();
  simulator_.schedule_at(
      msg.arrival, [station, msg] { station->enqueue(msg); }, "arrival");
}

void DdcrTestbed::run(SimTime horizon) {
  if (!started_) {
    started_ = true;
    channel_->start();
  }
  // The caller may have mutated station state directly since the last run
  // (crash, reset_for_rejoin) — force the slot loop to re-check quiescence.
  channel_->revalidate_idle_gap();
  simulator_.run_until(horizon);
  // Tests read metrics_ directly between run() calls; bring lazily
  // accounted fast-forwarded slots up to date before handing control back.
  channel_->flush_idle_accounting();
}

void DdcrTestbed::run_until_delivered(std::int64_t count, SimTime cap) {
  if (!started_) {
    started_ = true;
    channel_->start();
  }
  channel_->revalidate_idle_gap();
  const util::Duration step = options_.phy.slot_x * 256;
  sim::run_chunked(simulator_, step, cap, [this, count] {
    return static_cast<std::int64_t>(metrics_.log().size()) < count;
  });
  channel_->flush_idle_accounting();
}

bool DdcrTestbed::digests_agree() const {
  if (stations_.empty()) {
    return true;
  }
  const std::uint64_t reference = stations_.front()->protocol_digest();
  return std::all_of(stations_.begin(), stations_.end(),
                     [reference](const auto& station) {
                       return station->protocol_digest() == reference;
                     });
}

std::int64_t DdcrTestbed::queued() const {
  std::int64_t total = 0;
  for (const auto& station : stations_) {
    total += static_cast<std::int64_t>(station->queue().size());
  }
  return total;
}

net::ChannelSnapshot DdcrTestbed::channel_snapshot() const {
  return channel_->snapshot();
}

std::vector<StationSnapshot> DdcrTestbed::station_snapshots() const {
  std::vector<StationSnapshot> snaps;
  snaps.reserve(stations_.size());
  for (const auto& station : stations_) {
    snaps.push_back(station->snapshot());
  }
  return snaps;
}

DdcrRunResult run_ddcr(const traffic::Workload& workload,
                       const DdcrRunOptions& options) {
  workload.validate();
  const int z = workload.z();

  const DdcrRunOptions resolved = resolve_options(options, z);

  sim::Simulator simulator;
  net::BroadcastChannel channel(simulator, resolved.phy,
                                resolved.collision_mode);
  std::vector<std::unique_ptr<DdcrStation>> stations;
  for (int s = 0; s < z; ++s) {
    stations.push_back(std::make_unique<DdcrStation>(
        s, resolved.ddcr,
        resolved.ddcr.static_indices[static_cast<std::size_t>(s)]));
    channel.attach(*stations.back());
  }
  MetricsCollector metrics;
  channel.add_observer(metrics);
  std::unique_ptr<obs::ChannelTracer> channel_tracer;
  if (obs::EventTracer* tracer = effective_tracer(resolved)) {
    channel_tracer =
        std::make_unique<obs::ChannelTracer>(*tracer, resolved.trace_channel);
    channel.add_observer(*channel_tracer);
    for (auto& station : stations) {
      station->set_trace(tracer, resolved.trace_channel);
    }
  }
  ConsistencyChecker checker(stations);
  if (resolved.check_consistency) {
    channel.add_observer(checker);
  }
  std::unique_ptr<RunAuditor> auditor;
  if (resolved.conformance_check) {
    HRTDM_EXPECT(g_auditor_factory != nullptr,
                 "conformance_check requires the differential checker: link "
                 "hrtdm_check and call check::install_conformance_auditor()");
    auditor = g_auditor_factory(workload, resolved);
    channel.add_observer(auditor->observer());
  }

  const auto traffic = traffic::generate_traffic(
      workload, resolved.arrivals, resolved.arrival_horizon, resolved.seed);
  for (std::size_t s = 0; s < traffic.per_source.size(); ++s) {
    DdcrStation* station = stations[s].get();
    for (const traffic::Message& msg : traffic.per_source[s]) {
      simulator.schedule_at(
          msg.arrival, [station, msg] { station->enqueue(msg); }, "arrival");
    }
  }

  channel.start();
  simulator.run_until(resolved.arrival_horizon);
  // Drain: keep the channel running until every queue empties (or the cap).
  auto queued = [&stations] {
    std::int64_t total = 0;
    for (const auto& station : stations) {
      total += static_cast<std::int64_t>(station->queue().size());
    }
    return total;
  };
  const util::Duration drain_step = resolved.phy.slot_x * 1024;
  sim::run_chunked(simulator, drain_step, resolved.drain_cap,
                   [&queued] { return queued() > 0; });
  channel.stop();

  DdcrRunResult result;
  result.metrics = metrics.summarize();
  result.channel = channel.stats();
  result.protocol_digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const auto& station : stations) {
    result.protocol_digest =
        (result.protocol_digest ^ station->protocol_digest()) *
        0x100000001b3ULL;
    result.per_station.push_back(station->counters());
    result.snapshots.push_back(station->snapshot());
    result.dropped_late += station->counters().dropped_late;
    result.desyncs_detected += station->counters().desyncs_detected;
    result.quarantines += station->counters().quarantines;
    result.rejoins += station->counters().rejoins;
  }
  result.generated = traffic.total_messages;
  result.undelivered = queued();
  result.utilization = channel.utilization();
  result.channel_snapshot = channel.snapshot();
  result.consistency_ok = !resolved.check_consistency || checker.ok();
  if (auditor != nullptr) {
    auditor->finish(result);
  }
  return result;
}

}  // namespace hrtdm::core
