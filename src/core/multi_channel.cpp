#include "core/multi_channel.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hrtdm::core {

double ChannelPlan::imbalance() const {
  HRTDM_EXPECT(!load_per_channel.empty(), "empty plan");
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const double load : load_per_channel) {
    lo = std::min(lo, load);
    hi = std::max(hi, load);
  }
  return lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
}

ChannelPlan plan_channels(const traffic::Workload& workload, int channels) {
  workload.validate();
  HRTDM_EXPECT(channels >= 1, "need at least one channel");

  struct ClassLoad {
    int id;
    double bits_per_second;
  };
  std::vector<ClassLoad> loads;
  for (const auto& cls : workload.all_classes()) {
    loads.push_back({cls.id, static_cast<double>(cls.a) *
                                 static_cast<double>(cls.l_bits) /
                                 cls.w.to_seconds()});
  }
  // Longest-processing-time greedy: heaviest class onto lightest channel.
  std::sort(loads.begin(), loads.end(),
            [](const ClassLoad& a, const ClassLoad& b) {
              if (a.bits_per_second != b.bits_per_second) {
                return a.bits_per_second > b.bits_per_second;
              }
              return a.id < b.id;  // deterministic tie-break
            });

  ChannelPlan plan;
  plan.channels = channels;
  plan.classes_per_channel.resize(static_cast<std::size_t>(channels));
  plan.load_per_channel.assign(static_cast<std::size_t>(channels), 0.0);
  for (const ClassLoad& cls : loads) {
    const auto lightest = static_cast<std::size_t>(
        std::min_element(plan.load_per_channel.begin(),
                         plan.load_per_channel.end()) -
        plan.load_per_channel.begin());
    plan.classes_per_channel[lightest].push_back(cls.id);
    plan.load_per_channel[lightest] += cls.bits_per_second;
  }
  for (auto& ids : plan.classes_per_channel) {
    std::sort(ids.begin(), ids.end());
  }
  return plan;
}

traffic::Workload channel_workload(const traffic::Workload& workload,
                                   const ChannelPlan& plan, int channel) {
  HRTDM_EXPECT(channel >= 0 && channel < plan.channels,
               "channel index out of range");
  const auto& ids =
      plan.classes_per_channel[static_cast<std::size_t>(channel)];

  traffic::Workload sub;
  sub.name = workload.name + "#ch" + std::to_string(channel);
  for (const auto& src : workload.sources) {
    traffic::SourceSpec filtered;
    filtered.id = src.id;
    filtered.name = src.name;
    for (const auto& cls : src.classes) {
      if (std::binary_search(ids.begin(), ids.end(), cls.id)) {
        filtered.classes.push_back(cls);
      }
    }
    if (!filtered.classes.empty()) {
      sub.sources.push_back(std::move(filtered));
    }
  }
  return sub;
}

std::uint64_t channel_seed(std::uint64_t base, int channel) {
  HRTDM_EXPECT(channel >= 0, "channel index must be non-negative");
  util::SplitMix64 mix(base);
  std::uint64_t seed = mix.next();
  for (int i = 0; i < channel; ++i) {
    seed = mix.next();
  }
  return seed;
}

MultiChannelResult run_multi_channel(const traffic::Workload& workload,
                                     int channels,
                                     const DdcrRunOptions& options,
                                     int threads) {
  MultiChannelResult result;
  result.plan = plan_channels(workload, channels);

  // Stage the per-channel sub-workloads serially (cheap), then run the
  // simulations — the expensive, fully independent part — on the pool.
  // Each run writes only its own slot, so the aggregate below is invariant
  // under thread count.
  std::vector<traffic::Workload> subs;
  subs.reserve(static_cast<std::size_t>(channels));
  for (int ch = 0; ch < channels; ++ch) {
    traffic::Workload sub = channel_workload(workload, result.plan, ch);
    // Station ids must be contiguous from 0 for the per-channel network;
    // remap while keeping the class ids (metrics stay workload-global).
    for (std::size_t s = 0; s < sub.sources.size(); ++s) {
      const int new_id = static_cast<int>(s);
      for (auto& cls : sub.sources[s].classes) {
        cls.source = new_id;
      }
      sub.sources[s].id = new_id;
    }
    subs.push_back(std::move(sub));
  }

  result.per_channel.resize(static_cast<std::size_t>(channels));
  util::parallel_for_index(threads, channels, [&](std::int64_t ch) {
    const auto& sub = subs[static_cast<std::size_t>(ch)];
    if (sub.sources.empty()) {
      return;  // slot keeps its default-constructed (empty) result
    }
    DdcrRunOptions channel_options = options;
    channel_options.ddcr.static_indices.clear();  // re-derive per channel
    channel_options.seed = channel_seed(options.seed, static_cast<int>(ch));
    // Each channel gets its own Perfetto process so their slot tracks and
    // station tracks land side by side instead of colliding on pid 0.
    channel_options.trace_channel = static_cast<int>(ch);
    result.per_channel[static_cast<std::size_t>(ch)] =
        run_ddcr(sub, channel_options);
  });

  double utilization_sum = 0.0;
  int live_channels = 0;
  result.protocol_digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const auto& run : result.per_channel) {
    result.protocol_digest =
        (result.protocol_digest ^ run.protocol_digest) * 0x100000001b3ULL;
    result.generated += run.generated;
    result.delivered += run.metrics.delivered;
    result.misses += run.metrics.misses;
    result.undelivered += run.undelivered;
    result.worst_latency_s =
        std::max(result.worst_latency_s, run.metrics.worst_latency_s);
    if (run.generated > 0) {
      utilization_sum += run.utilization;
      ++live_channels;
    }
  }
  result.mean_utilization =
      live_channels > 0 ? utilization_sum / live_channels : 0.0;
  return result;
}

}  // namespace hrtdm::core
