// Configuration of the CSMA/DDCR protocol instance.
#pragma once

#include <cstdint>
#include <vector>

#include "util/simtime.hpp"

namespace hrtdm::core {

using util::Duration;

/// What happens when a time tree search completes (section 3.2 leaves the
/// outer loop informally specified; DESIGN.md decision 4.8).
enum class EpochMode {
  /// After a TTs with out = true the post-search à-la-CSMA-CD attempt is
  /// made and, absent a collision, the protocol returns to plain CSMA-CD
  /// until the next collision ("channel sharing works à la CSMA-CD whenever
  /// there is no unresolved collision pending"). After out = false with
  /// theta = 0 the epoch also closes.
  kCsmaCdFallback,
  /// The literal pseudocode loop: TTs runs perpetually, separated by single
  /// à-la-CSMA-CD attempt slots; out = false applies compressed time.
  kPerpetual,
};

struct DdcrConfig {
  // Time tree (TTs): F leaves of deadline-equivalence width c; cF is the
  // scheduling horizon.
  int m_time = 4;
  std::int64_t F = 64;
  Duration class_width_c = Duration::microseconds(100);  ///< constant c
  Duration alpha = Duration::microseconds(200);          ///< entry margin

  /// Compressed-time increment theta(c) = theta_factor * c applied when a
  /// time tree search ends without any transmission; 0 disables the mode.
  double theta_factor = 1.0;

  // Static tree (STs): q leaves; the set q' of allocated indices is
  // partitioned across the z sources (nu_i = static_indices[i].size()).
  int m_static = 4;
  std::int64_t q = 64;
  std::vector<std::vector<std::int64_t>> static_indices;

  EpochMode epoch_mode = EpochMode::kCsmaCdFallback;

  /// Enables the classic last-child inference in both tree searches: when
  /// the first m-1 children of a collided node are silent, the last child
  /// is descended into without a probe. Off by default — the paper's
  /// Eq. 1 analysis excludes it, so xi(k, t) remains the exact bound only
  /// with the flag off. Sound for static trees; for time trees a collider
  /// beyond the scheduling horizon can make the inference descend into an
  /// empty subtree (consistent across replicas, just extra silent slots).
  bool infer_last_child = false;

  /// When set, a station silently sheds queue-head messages whose absolute
  /// deadline has already passed instead of transmitting them late. HRTDM
  /// proper never sheds (the FCs guarantee no message IS late); the option
  /// models overloaded deployments where a late frame has no value. The
  /// decision is local, so replica consistency is unaffected.
  bool drop_late_messages = false;

  /// Granularity of the wired-OR arbitration key (ATM / 802.1Q mode).
  /// Zero: the key is the exact absolute deadline in nanoseconds (ideal
  /// EDF arbitration). Positive: deadlines are quantised to this quantum
  /// before keying — modelling section 5's suggestion to carry deadlines
  /// in the standard 802.1p priority field, whose 3 bits force coarse
  /// classes. Ties inside a quantum fall back to station order.
  Duration arb_priority_quantum = Duration::nanoseconds(0);

  /// Divergence watchdog (docs/FAULTS.md): on a protocol-impossible
  /// observation — a success whose sender's deadline class lies outside the
  /// subtree under probe, or an STs success from a source owning no static
  /// index in the probed interval — the station concludes its own replica
  /// has silently diverged (e.g. after a receiver-local CRC error) and, when
  /// the configuration supports the quiet-period certificate, self-
  /// quarantines through reset_for_rejoin() instead of corrupting the
  /// distributed state further. Detection is exact: on consistent replicas
  /// these observations cannot occur, so the watchdog never fires in
  /// fault-free operation. Counters: desyncs_detected / quarantines.
  bool enable_divergence_watchdog = true;

  /// Companion watchdog rule for the static search: static indices are
  /// unique per source, so consecutive leaf-collision retries on the same
  /// lone static leaf can only come from repeated channel noise (vanishing
  /// probability) or from diverged replicas contending out of turn — which
  /// is unbounded and would otherwise livelock the search. After this many
  /// consecutive retries the station concludes divergence (note_desync).
  /// 0 disables the rule. Only consulted when enable_divergence_watchdog.
  int sts_retry_desync_threshold = 6;

  /// Caps consecutive empty time tree searches within one epoch (fallback
  /// mode only; 0 = unbounded, the paper-literal behaviour). When the cap
  /// closes an epoch the compressed reference time is carried into the
  /// next epoch, so compression progress is not lost. A positive cap
  /// bounds the in-epoch silence streak, which is what makes quiet-period
  /// crash recovery (DdcrStation::reset_for_rejoin) sound under
  /// compressed time.
  int max_empty_tts = 0;

  Duration theta() const;

  /// True when the quiet-period (re)join certificate is sound under this
  /// configuration: fallback epoch mode with bounded in-epoch silence
  /// streaks (theta = 0, or the empty-TTs chain capped by max_empty_tts).
  /// Crash recovery, the divergence watchdog's quarantine, and fault
  /// campaigns all require this.
  bool supports_quiet_rejoin() const;

  /// Throws ContractViolation with an actionable message when
  /// supports_quiet_rejoin() is false. Called at network construction when
  /// a run requires rejoin capability (DdcrRunOptions::require_rejoinable,
  /// fault plans with crashes), so an impossible-to-rejoin configuration is
  /// rejected up front instead of livelocking a station in resync.
  void validate_rejoinable() const;

  /// Length of the silence streak that certifies "no epoch in progress"
  /// to a (re)joining station: longer than any silent run a live epoch
  /// can produce (pending-DFS stacks of both trees + the capped empty-TTs
  /// chain), plus margin. Requires a configuration under which that run
  /// is bounded — fallback mode with theta = 0 or max_empty_tts > 0.
  std::int64_t resync_silence_threshold() const;

  /// The scheduling horizon c * F.
  Duration horizon() const { return class_width_c * F; }

  /// Validates tree shapes and the static-index partition for z sources.
  void validate(int z) const;

  /// Allocates nu_i indices per source, interleaved across [0, q) so that
  /// concurrently active sources spread over distinct subtrees (which is
  /// what makes the static search cheap in the common case).
  static std::vector<std::vector<std::int64_t>> spread_indices(
      int z, std::int64_t q, const std::vector<std::int64_t>& nu);

  /// Convenience: one index per source.
  static std::vector<std::vector<std::int64_t>> one_index_per_source(
      int z, std::int64_t q);

  /// Picks the deadline-equivalence class width c so that the scheduling
  /// horizon cF covers the largest relative deadline, scaled by
  /// margin_percent (200 = horizon twice the largest deadline).
  ///
  /// Dimensioning note: the feasibility conditions of section 4.3 assume
  /// every pending message can enter the current time tree search; a
  /// message whose deadline lies beyond the horizon waits for compressed
  /// time (or for physical time) to pull it in — latency the analysis
  /// does not account for. Configure cF above the deadline range (with
  /// headroom for the reft drift across an epoch), as an end user applying
  /// the paper's FCs would.
  static Duration class_width_for(Duration max_deadline, std::int64_t F,
                                  int margin_percent = 200);
};

}  // namespace hrtdm::core
