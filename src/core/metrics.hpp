// Run metrics: latency, deadline misses, channel-slot accounting and
// deadline-inversion counting.
//
// A deadline inversion is a pair of delivered messages (A, B) where A was
// transmitted before B, A's absolute deadline is later than B's, and B was
// already waiting when A's transmission began — exactly the events a
// perfect network-wide NP-EDF would avoid (up to non-preemptability), and
// the quantity the deadline-equivalence-class width c trades against
// channel idleness (section 3.2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/channel.hpp"
#include "util/simtime.hpp"
#include "util/stats.hpp"

namespace hrtdm::core {

using util::SimTime;

struct TxRecord {
  std::int64_t uid = -1;
  int class_id = -1;
  int source = -1;
  SimTime arrival;
  SimTime deadline;
  SimTime tx_start;
  SimTime completed;
  bool in_burst = false;
};

struct ClassSummary {
  int class_id = -1;
  std::int64_t delivered = 0;
  std::int64_t misses = 0;
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double worst_latency_s = 0.0;
};

struct MetricsSummary {
  std::int64_t delivered = 0;
  std::int64_t misses = 0;
  std::int64_t silence_slots = 0;
  std::int64_t collision_slots = 0;
  std::int64_t deadline_inversions = 0;
  double mean_latency_s = 0.0;
  double worst_latency_s = 0.0;
  double p99_latency_s = 0.0;
  /// Jain's fairness index over per-source delivered counts: 1.0 = all
  /// sources served equally, 1/z = one source monopolised the medium.
  /// (Tree protocols with spread static indices should sit near 1 for
  /// symmetric workloads — a property randomized backoff lacks under
  /// capture effects.)
  double source_fairness = 1.0;
  std::map<int, ClassSummary> per_class;
};

class MetricsCollector final : public net::ChannelObserver {
 public:
  void on_slot(const net::SlotRecord& record) override;

  /// Fast-forwarded silence slots only move the silence counter; count them
  /// in bulk instead of synthesizing per-slot records.
  void on_idle_gap(std::int64_t slots, SimTime first_start,
                   util::Duration slot_x) override {
    (void)first_start;
    (void)slot_x;
    silence_slots_ += slots;
  }

  const std::vector<TxRecord>& log() const { return log_; }

  /// Aggregates the transmission log (O(n log n), dominated by the
  /// inversion count).
  MetricsSummary summarize() const;

 private:
  std::vector<TxRecord> log_;
  std::int64_t silence_slots_ = 0;
  std::int64_t collision_slots_ = 0;
};

/// Counts deadline inversions over a completion-ordered transmission log.
/// Exposed separately so tests can drive it with synthetic logs.
std::int64_t count_deadline_inversions(const std::vector<TxRecord>& log);

}  // namespace hrtdm::core
